use pipeleon::{Optimizer, OptimizerConfig, ResourceLimits};
use pipeleon_cost::{CostModel, CostParams};
use pipeleon_workloads::profiles::{random_profile, ProfileSynthConfig};
use pipeleon_workloads::synth::{synthesize, MatchMix, SynthConfig};

fn main() {
    let model = CostModel::new(CostParams::emulated_nic());
    let g = synthesize(&SynthConfig {
        pipelets: 11,
        pipelet_len: 1,
        drop_fraction: 0.1,
        match_mix: MatchMix {
            exact: 0.3,
            lpm: 0.3,
            ternary: 0.4,
        },
        seed: 5,
        ..SynthConfig::default()
    });
    let mut profile = random_profile(&g, &ProfileSynthConfig::default(), 2);
    for (n, _) in g.tables() {
        profile.set_distinct_keys(n.id, 16);
    }
    let opt = Optimizer::new(model.clone()).with_config(OptimizerConfig {
        top_k_fraction: 0.5,
        ..Default::default()
    });
    let out = opt
        .optimize(&g, &profile, ResourceLimits::unlimited())
        .unwrap();
    println!(
        "gain={} cands={} selected={:?} pipelets={}",
        out.est_gain_ns,
        out.candidates_evaluated,
        out.selected,
        out.pipelets.len()
    );
    for s in &out.scores {
        println!("  p{} cost {:.2} reach {:.3}", s.pipelet, s.cost, s.reach);
    }
    for s in &out.applied.summary {
        println!("  {s}");
    }
    let before = model.expected_latency(&g, &profile);
    let after = model.expected_latency(&out.applied.graph, &profile);
    println!("before {before:.1} after {after:.1}");
}
