//! Shared helpers for the figure-regeneration benchmark harness.
//!
//! Every `benches/figNN_*.rs` target is a `harness = false` binary that
//! prints the corresponding paper figure's series as tab-separated rows
//! (commented header lines start with `#`). Absolute numbers come from
//! the software emulator, so only the *shape* — orderings, ratios,
//! crossovers — is expected to match the paper; see `EXPERIMENTS.md`.

use pipeleon::plan::{Candidate, GlobalPlan, Segment, SegmentKind};
use pipeleon::{apply_plan, AppliedPlan, OptimizerConfig};
use pipeleon_cost::{CostModel, CostParams, RuntimeProfile};
use pipeleon_ir::{
    MatchKind, MatchValue, NodeId, Primitive, ProgramBuilder, ProgramGraph, TableEntry,
};

/// Prints the figure banner.
pub fn banner(fig: &str, title: &str) {
    println!("# ================================================================");
    println!("# {fig}: {title}");
    println!("# emulator-backed reproduction; compare shapes, not absolutes");
    println!("# ================================================================");
}

/// Prints a commented header row.
pub fn header(cols: &[&str]) {
    println!("# {}", cols.join("\t"));
}

/// Prints one data row.
pub fn row(values: &[String]) {
    println!("{}", values.join("\t"));
}

/// Formats a float with 3 significant decimals.
pub fn f(v: f64) -> String {
    format!("{v:.3}")
}

/// The microbenchmark program of §5.2.1: pipelets of four tables each,
/// "replicated with a scale factor N". Table `i` is exact-match on field
/// `f{i % 4}` with one single-primitive action. Returns the graph and
/// table ids in order.
pub fn micro_pipeline(num_tables: usize) -> (ProgramGraph, Vec<NodeId>) {
    let mut b = ProgramBuilder::named(format!("micro_{num_tables}"));
    let fields: Vec<_> = (0..4).map(|i| b.field(&format!("f{i}"))).collect();
    let mut ids = Vec::new();
    for i in 0..num_tables {
        let mut tb = b
            .table(format!("t{i}"))
            .key(fields[i % 4], MatchKind::Exact)
            .action("proc", vec![Primitive::Nop]);
        for e in 0..4u64 {
            tb = tb.entry(TableEntry::new(vec![MatchValue::Exact(e)], 0));
        }
        ids.push(tb.action_nop("nop").finish());
    }
    (b.seal(ids[0]).expect("valid"), ids)
}

/// Like [`micro_pipeline`] but with a chosen match kind. Ternary tables
/// install five distinct masks (the paper's §3.1 setting), LPM tables
/// three prefixes.
pub fn micro_pipeline_kind(num_tables: usize, kind: MatchKind) -> (ProgramGraph, Vec<NodeId>) {
    let mut b = ProgramBuilder::named(format!("micro_{num_tables}_{kind:?}"));
    let fields: Vec<_> = (0..4).map(|i| b.field(&format!("f{i}"))).collect();
    let mut ids = Vec::new();
    for i in 0..num_tables {
        let mut tb = b
            .table(format!("t{i}"))
            .key(fields[i % 4], kind)
            .action("proc", vec![Primitive::Nop]);
        match kind {
            MatchKind::Exact => {
                for e in 0..4u64 {
                    tb = tb.entry(TableEntry::new(vec![MatchValue::Exact(e)], 0));
                }
            }
            MatchKind::Lpm => {
                for p in 0..3u8 {
                    tb = tb.entry(TableEntry::new(
                        vec![MatchValue::Lpm {
                            value: ((p as u64) + 1) << 40,
                            prefix_len: 8 + 8 * p,
                        }],
                        0,
                    ));
                }
            }
            MatchKind::Ternary | MatchKind::Range => {
                for m in 0..5u64 {
                    tb = tb.entry(TableEntry::with_priority(
                        vec![MatchValue::Ternary {
                            value: m,
                            mask: 0xFF << (8 * m),
                        }],
                        0,
                        m as i32,
                    ));
                }
            }
        }
        ids.push(tb.action_nop("nop").finish());
    }
    (b.seal(ids[0]).expect("valid"), ids)
}

/// Converts the table at `acl_pos` of a [`micro_pipeline`]-style program
/// into an ACL keyed on its own field with a deny entry, preserving ids.
pub fn with_acl_at(
    num_tables: usize,
    acl_pos: usize,
    drop_value: u64,
) -> (ProgramGraph, Vec<NodeId>, pipeleon_ir::FieldRef) {
    let mut b = ProgramBuilder::named(format!("micro_acl_{num_tables}_{acl_pos}"));
    let fields: Vec<_> = (0..4).map(|i| b.field(&format!("f{i}"))).collect();
    let acl_field = b.field("acl.key");
    let mut ids = Vec::new();
    for i in 0..num_tables {
        if i == acl_pos {
            ids.push(
                b.table("acl")
                    .key(acl_field, MatchKind::Exact)
                    .action_nop("permit")
                    .action_drop("deny")
                    .entry(TableEntry::new(vec![MatchValue::Exact(drop_value)], 1))
                    .finish(),
            );
        } else {
            let mut tb = b
                .table(format!("t{i}"))
                .key(fields[i % 4], MatchKind::Exact)
                .action("proc", vec![Primitive::Nop]);
            for e in 0..4u64 {
                tb = tb.entry(TableEntry::new(vec![MatchValue::Exact(e)], 0));
            }
            ids.push(tb.action_nop("nop").finish());
        }
    }
    (b.seal(ids[0]).expect("valid"), ids, acl_field)
}

/// Applies a hand-picked plan (used to measure *specific* layout options
/// rather than whatever the search would choose).
pub fn apply_manual(
    g: &ProgramGraph,
    order: Vec<NodeId>,
    segments: Vec<(usize, usize, SegmentKind)>,
    params: &CostParams,
    cfg: &OptimizerConfig,
) -> AppliedPlan {
    let cand = Candidate {
        pipelet: 0,
        order,
        segments: segments
            .into_iter()
            .map(|(start, end, kind)| Segment { start, end, kind })
            .collect(),
        gain: 1.0,
        mem_cost: 0.0,
        update_cost: 0.0,
        group_branch: None,
    };
    let plan = GlobalPlan {
        total_gain: 1.0,
        total_mem: 0.0,
        total_update: 0.0,
        choices: vec![cand],
    };
    apply_plan(
        g,
        &plan,
        &CostModel::new(params.clone()),
        &RuntimeProfile::empty(),
        cfg,
    )
    .expect("manual plan applies")
}

/// Percentile of a sample (sorts a copy); `q` in [0, 1].
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((s.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    s[idx]
}

/// Prints a CDF of samples as (value, cumulative fraction) rows with the
/// given label columns prepended.
pub fn print_cdf(prefix: &[String], samples: &[f64], points: usize) {
    let mut s = samples.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    if s.is_empty() {
        return;
    }
    for i in 0..points {
        let q = (i + 1) as f64 / points as f64;
        let idx = ((s.len() as f64 * q).ceil() as usize - 1).min(s.len() - 1);
        let mut cols = prefix.to_vec();
        cols.push(f(s[idx]));
        cols.push(f(q));
        row(&cols);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_pipeline_builds() {
        let (g, ids) = micro_pipeline(8);
        g.validate().unwrap();
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn acl_variant_builds_at_every_position() {
        for pos in [0, 3, 7] {
            let (g, ids, _) = with_acl_at(8, pos, 0xDEAD);
            g.validate().unwrap();
            let name = g.node(ids[pos]).unwrap().name().to_owned();
            assert_eq!(name, "acl");
        }
    }

    #[test]
    fn percentile_behaves() {
        let s = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 1.0), 5.0);
        assert_eq!(percentile(&s, 0.5), 3.0);
    }

    #[test]
    fn manual_plan_applies_cache() {
        let (g, ids) = micro_pipeline(4);
        let applied = apply_manual(
            &g,
            ids.clone(),
            vec![(0, 4, SegmentKind::Cache)],
            &CostParams::bluefield2(),
            &OptimizerConfig::default(),
        );
        assert_eq!(applied.cache_nodes.len(), 1);
        applied.graph.validate().unwrap();
    }
}
