//! Throughput scaling of the sharded datapath: emulator packets/sec
//! (wall clock) of [`ShardedNic`] on the DASH routing pipeline as the
//! worker count grows, against the single-threaded [`SmartNic`] baseline.
//!
//! The *simulated* Gbps is worker-invariant by design (results merge
//! deterministically); what scales is how fast the emulator itself chews
//! through packets. Expect >1.5× at 4 workers on hosts with ≥4 CPUs —
//! the `host_cpus` column says how much hardware parallelism was
//! actually available for a given run.
//!
//! Also cross-checks determinism on every row: each worker count must
//! report batch statistics and a merged profile identical to the
//! 1-worker run.

use pipeleon_bench::{banner, f, header, row};
use pipeleon_cost::CostParams;
use pipeleon_sim::{BatchStats, Packet, ShardedNic};
use pipeleon_workloads::scenarios::DashRouting;
use std::time::Instant;

const PACKETS: usize = 60_000;
const FLOWS: usize = 2_000;
const REPS: u32 = 3;

fn batch(dash: &DashRouting) -> Vec<Packet> {
    dash.traffic(&[0.05, 0.05, 0.05], FLOWS, 1.1, 42)
        .batch(PACKETS)
}

fn run(dash: &DashRouting, workers: usize) -> (f64, BatchStats, u64) {
    let params = CostParams::bluefield2();
    let mut nic = ShardedNic::new(dash.graph.clone(), params, workers).unwrap();
    nic.set_instrumentation(true, 16);
    // Warm up code paths once, then time REPS full batches.
    nic.measure(batch(dash));
    let start = Instant::now();
    let mut stats = None;
    for _ in 0..REPS {
        stats = Some(nic.measure(batch(dash)));
    }
    let elapsed = start.elapsed().as_secs_f64();
    let profile = nic.take_profile();
    // Cheap determinism fingerprint: every edge counter plus totals.
    let edge_sum: u64 = profile.edges().map(|(_, n)| n).sum();
    let fingerprint = profile
        .total_packets
        .wrapping_mul(1_000_003)
        .wrapping_add(edge_sum);
    (
        (PACKETS as f64 * REPS as f64) / elapsed,
        stats.unwrap(),
        fingerprint,
    )
}

fn main() {
    banner(
        "sharded_scaling",
        "emulator throughput vs worker count (DASH routing)",
    );
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("# host_cpus: {cpus}");
    header(&[
        "workers",
        "emulator_pps",
        "speedup_vs_1",
        "sim_gbps",
        "mean_latency_ns",
        "identical_to_1_worker",
    ]);
    let dash = DashRouting::build();
    let mut base_pps = 0.0;
    let mut base: Option<(BatchStats, u64)> = None;
    for workers in [1usize, 2, 4, 8] {
        let (pps, stats, fingerprint) = run(&dash, workers);
        if workers == 1 {
            base_pps = pps;
            base = Some((stats, fingerprint));
        }
        let (base_stats, base_fp) = base.as_ref().unwrap();
        let identical = stats == *base_stats && fingerprint == *base_fp;
        assert!(
            identical,
            "worker count {workers} changed merged results (bit-reproducibility broken)"
        );
        row(&[
            workers.to_string(),
            f(pps),
            f(pps / base_pps),
            f(stats.throughput_gbps),
            f(stats.mean_latency_ns),
            identical.to_string(),
        ]);
    }
}
