//! Throughput scaling of the sharded datapath: emulator packets/sec
//! (wall clock) of [`ShardedNic`] on the DASH routing pipeline as the
//! worker count grows, per target preset and per [`ShardMode`].
//!
//! The point of the run-loop refactor is visible here as a *row pair*:
//! `bit-exact` replays the global arrival schedule (per-batch fork-join,
//! global record sort), which historically made more workers *slower*
//! than one; `run-loop` feeds persistent workers through SPSC rings and
//! defers merging to window boundaries, so added workers can only help
//! (and must never hurt — asserted below). The *simulated* Gbps stays
//! worker-invariant in both modes by design; what scales is how fast
//! the emulator itself chews through packets. The `host_cpus` line says
//! how much hardware parallelism was actually available for a run.
//!
//! Determinism cross-checks on every row:
//! - `bit-exact`: batch statistics and the merged-profile fingerprint
//!   must be bit-identical to the 1-worker run.
//! - `run-loop`: integer statistics, p99, and the merged-profile
//!   fingerprint must be identical to the 1-worker run (flow-keyed
//!   sampling makes the sampled set worker-invariant); the mean is
//!   order-relaxed and checked within reassociation tolerance.
//!
//! Output: the usual tab-separated table, plus `BENCH_shard_scaling.json`
//! at the repo root (override with `BENCH_SHARD_SCALING_OUT`). The
//! acceptance gate asserts run-loop at 8 workers is no slower than at 1
//! worker on every preset. `SHARD_SCALING_SMOKE=1` shrinks the batch
//! for CI smoke runs.

use pipeleon_bench::{banner, f, header, row};
use pipeleon_cost::CostParams;
use pipeleon_sim::{BatchStats, Packet, ShardMode, ShardedNic};
use pipeleon_workloads::scenarios::DashRouting;
use std::time::Instant;

const FLOWS: usize = 2_000;

fn presets() -> Vec<(&'static str, CostParams)> {
    vec![
        ("bluefield2", CostParams::bluefield2()),
        ("agilio_cx", CostParams::agilio_cx()),
        ("bmv2", CostParams::emulated_nic()),
    ]
}

fn batch(dash: &DashRouting, packets: usize) -> Vec<Packet> {
    dash.traffic(&[0.05, 0.05, 0.05], FLOWS, 1.1, 42)
        .batch(packets)
}

/// Times every worker count of one (preset, mode) pair with
/// *interleaved* repetitions: each sweep measures all worker counts
/// back-to-back, and each config keeps its best rep. On a noisy host
/// (shared vCPU, steal time) sequential per-config timing would hand
/// different configs different weather; interleaving plus best-of lets
/// every config sample a quiet window, so the speedup ratios compare
/// like with like. Returns `(pps, final stats, profile fingerprint)`
/// per worker count, in `worker_counts` order.
fn run_mode(
    dash: &DashRouting,
    params: &CostParams,
    mode: ShardMode,
    worker_counts: &[usize],
    batch: &[Packet],
    reps: u32,
) -> Vec<(f64, BatchStats, u64)> {
    let mut nics: Vec<ShardedNic> = worker_counts
        .iter()
        .map(|&workers| {
            let mut nic =
                ShardedNic::with_mode(dash.graph.clone(), params.clone(), workers, mode).unwrap();
            nic.set_instrumentation(true, 16);
            // Warm up code paths once before timing.
            nic.measure(batch.to_vec());
            nic
        })
        .collect();
    let mut best = vec![f64::INFINITY; nics.len()];
    let mut stats = vec![None; nics.len()];
    for _ in 0..reps {
        for (i, nic) in nics.iter_mut().enumerate() {
            let work = batch.to_vec();
            let start = Instant::now();
            stats[i] = Some(nic.measure(work));
            best[i] = best[i].min(start.elapsed().as_secs_f64());
        }
    }
    nics.into_iter()
        .enumerate()
        .map(|(i, mut nic)| {
            let profile = nic.take_profile();
            // Cheap determinism fingerprint: every edge counter plus totals.
            let edge_sum: u64 = profile.edges().map(|(_, n)| n).sum();
            let fingerprint = profile
                .total_packets
                .wrapping_mul(1_000_003)
                .wrapping_add(edge_sum);
            (batch.len() as f64 / best[i], stats[i].unwrap(), fingerprint)
        })
        .collect()
}

/// Worker-invariance check per mode (see module docs).
fn assert_identical_to_base(
    mode: ShardMode,
    workers: usize,
    stats: &BatchStats,
    fingerprint: u64,
    base_stats: &BatchStats,
    base_fp: u64,
) {
    let ctx = format!("{}/{workers}w", mode.as_str());
    assert_eq!(
        fingerprint, base_fp,
        "{ctx}: merged profile diverged from 1 worker"
    );
    match mode {
        ShardMode::BitExact => assert_eq!(
            stats, base_stats,
            "{ctx}: stats diverged (bit-reproducibility broken)"
        ),
        ShardMode::RunLoop => {
            assert_eq!(stats.packets, base_stats.packets, "{ctx}: packets");
            assert_eq!(stats.dropped, base_stats.dropped, "{ctx}: dropped");
            assert_eq!(stats.migrations, base_stats.migrations, "{ctx}: migrations");
            assert_eq!(
                stats.counter_updates, base_stats.counter_updates,
                "{ctx}: counter updates"
            );
            assert_eq!(
                stats.p99_latency_ns.to_bits(),
                base_stats.p99_latency_ns.to_bits(),
                "{ctx}: p99 must be exact (partition-invariant multiset)"
            );
            let rel = (stats.mean_latency_ns - base_stats.mean_latency_ns).abs()
                / base_stats.mean_latency_ns.abs().max(1.0);
            assert!(rel < 1e-9, "{ctx}: mean beyond reassociation tolerance");
        }
    }
}

struct Row {
    preset: &'static str,
    mode: ShardMode,
    workers: usize,
    pps: f64,
    speedup: f64,
}

fn main() {
    let smoke = std::env::var("SHARD_SCALING_SMOKE").is_ok();
    let packets = if smoke { 10_000 } else { 60_000 };
    // Best-of converges every config to its quiet-window minimum, and
    // noise only ever inflates a rep — so the gated mode (run-loop, whose
    // 8w-vs-1w ratio the acceptance check below asserts) gets the most
    // sweeps; the bit-exact oracle rows only need stable magnitudes.
    let reps_for = |mode: ShardMode| match (smoke, mode) {
        (true, _) => 1,
        (false, ShardMode::BitExact) => 8,
        (false, ShardMode::RunLoop) => 15,
    };
    let worker_counts: &[usize] = if smoke { &[1, 8] } else { &[1, 2, 4, 8] };
    banner(
        "sharded_scaling",
        "emulator throughput vs worker count and shard mode (DASH routing)",
    );
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "# host_cpus: {cpus}  packets_per_rep: {packets}  reps: bit-exact={} run-loop={}  smoke: {smoke}",
        reps_for(ShardMode::BitExact),
        reps_for(ShardMode::RunLoop)
    );
    header(&[
        "preset",
        "mode",
        "workers",
        "emulator_pps",
        "speedup_vs_1",
        "sim_gbps",
        "mean_latency_ns",
        "identical_to_1_worker",
    ]);
    let dash = DashRouting::build();
    let mut rows: Vec<Row> = Vec::new();
    for (preset, params) in presets() {
        let batch = batch(&dash, packets);
        for mode in [ShardMode::BitExact, ShardMode::RunLoop] {
            let results = run_mode(&dash, &params, mode, worker_counts, &batch, reps_for(mode));
            let mut base: Option<(f64, BatchStats, u64)> = None;
            for (&workers, (pps, stats, fp)) in worker_counts.iter().zip(results) {
                if workers == 1 {
                    base = Some((pps, stats.clone(), fp));
                }
                let (base_pps, base_stats, base_fp) = base.as_ref().unwrap();
                assert_identical_to_base(mode, workers, &stats, fp, base_stats, *base_fp);
                let speedup = pps / base_pps;
                row(&[
                    preset.to_string(),
                    mode.as_str().to_string(),
                    workers.to_string(),
                    f(pps),
                    f(speedup),
                    f(stats.throughput_gbps),
                    f(stats.mean_latency_ns),
                    "true".to_string(),
                ]);
                rows.push(Row {
                    preset,
                    mode,
                    workers,
                    pps,
                    speedup,
                });
            }
        }
    }

    // Machine-readable summary for EXPERIMENTS.md and the acceptance
    // gate (run-loop at 8 workers no slower than at 1, every preset).
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"program\": \"dash_routing\",\n  \"packets_per_rep\": {packets},\n  \"reps\": {},\n  \"smoke\": {smoke},\n  \"host_cpus\": {cpus},\n  \"gate_floor\": {},\n  \"results\": [\n",
        reps_for(ShardMode::RunLoop),
        if cpus > 1 { 1.0 } else { 0.95 }
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"preset\": \"{}\", \"mode\": \"{}\", \"workers\": {}, \"emulator_pps\": {:.1}, \"speedup_vs_1\": {:.3}}}{}\n",
            r.preset,
            r.mode.as_str(),
            r.workers,
            r.pps,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = std::env::var("BENCH_SHARD_SCALING_OUT").unwrap_or_else(|_| {
        format!(
            "{}/../../BENCH_shard_scaling.json",
            env!("CARGO_MANIFEST_DIR")
        )
    });
    std::fs::write(&out, json).expect("write BENCH_shard_scaling.json");
    println!("# wrote {out}");

    // Acceptance: the run-loop refactor removed the arrival-order
    // barrier, so added workers must not cost throughput (the fork-join
    // engine lost ~2.5x going 1->8 workers). On a host with a single CPU
    // there is no parallelism to win back — 8 workers' extra shard state
    // makes exact parity the theoretical best — so the gate there is
    // parity within the wall-clock resolution of a shared vCPU
    // (steal-time noise swings individual sweeps a few percent). With
    // real cores the run loop overlaps dispatch and execution and the
    // bar is strict. Smoke runs (single rep, tiny batch) keep the
    // determinism cross-checks above but skip the throughput gate — one
    // unrepeated sweep over a batch this small measures scheduler
    // weather, not the datapath.
    if smoke {
        println!("# acceptance: skipped (smoke run; the gate applies to full runs)");
        return;
    }
    let gate_floor = if cpus > 1 { 1.0 } else { 0.95 };
    for (preset, _) in presets() {
        let pps_at = |workers: usize| {
            rows.iter()
                .find(|r| {
                    r.preset == preset && r.mode == ShardMode::RunLoop && r.workers == workers
                })
                .map(|r| r.pps)
                .unwrap()
        };
        let (one, eight) = (pps_at(1), pps_at(8));
        assert!(
            eight >= one * gate_floor,
            "{preset}: run-loop at 8 workers ({eight:.0} pps) slower than 1 worker \
             ({one:.0} pps, floor {gate_floor})"
        );
    }
    println!("# acceptance: run-loop 8w/1w >= {gate_floor} on every preset (host_cpus={cpus})");
}
