//! Figure 5: cost-model validation against "hardware" (the emulator).
//!
//! The §3.1 methodology end-to-end: benchmark ~300 programs on the
//! target, fit `L_mat`/`L_act`/`m` by linear regression, then predict
//! *new* program scenarios and compare with measurement. Four panels:
//! (a) #exact tables, (b) #action primitives, (c) #LPM tables,
//! (d) #ternary tables — all normalized to the measurement, so a perfect
//! model sits at 1.0.

use pipeleon_bench::{banner, f, header, row};
use pipeleon_cost::{Calibrator, CostModel, CostParams, RuntimeProfile};
use pipeleon_ir::ProgramGraph;
use pipeleon_sim::{Packet, SmartNic};

/// Measures mean per-packet latency of `g` on the emulator.
///
/// `specific_hit_fraction` packets carry a value matching the programs'
/// most-specific LPM prefix (`0x0002 << 48`, the /24 entry), which the
/// multi-hash LPM engine resolves with a single probe — a real mechanism
/// the cost model's flat `m` deliberately approximates away. Calibration
/// uses 0 (steady miss traffic); validation uses a mix, which is where
/// the model's deviation comes from.
fn measure(g: &ProgramGraph, params: &CostParams, specific_hit_fraction: f64) -> f64 {
    let mut nic = SmartNic::new(g.clone(), params.clone()).expect("deploys");
    let key = g.fields.get("key").expect("calibration programs use 'key'");
    let packets: Vec<Packet> = (0..3000)
        .map(|i| {
            let mut p = Packet::new(&g.fields);
            let specific = (i % 100) as f64 / 100.0 < specific_hit_fraction;
            p.set(
                key,
                if specific {
                    (2u64 << 48) | (i % 16)
                } else {
                    i % 64
                },
            );
            p
        })
        .collect();
    nic.mean_latency(packets)
}

fn main() {
    banner(
        "Figure 5",
        "cost model vs emulator measurement (normalized throughput)",
    );
    let hw = CostParams::bluefield2();
    // Calibrate the model from black-box measurements only (the paper's
    // benchmarking suite; programs_measured reported below).
    let calibrator = Calibrator {
        exact_counts: vec![5, 10, 15, 20, 25, 30, 35, 40],
        action_counts: vec![1, 2, 3, 4, 5, 6, 7, 8],
        pattern_counts: vec![10, 12, 14, 16],
        ..Calibrator::default()
    };
    let report = calibrator.run(|g| measure(g, &hw, 0.0));
    println!(
        "# calibrated from {} programs: L_mat={:.2} L_act={:.2} m_lpm={:.2} m_ternary={:.2} (exact fit r2={:.4})",
        report.programs_measured,
        report.l_mat,
        report.l_act,
        report.m_lpm,
        report.m_ternary,
        report.exact_fit.r2
    );
    let model = CostModel::new(report.to_params(&hw));
    let profile = RuntimeProfile::empty();
    let pkt = 512;

    // Validation scenarios: 16 new configurations, 4 per panel, exactly
    // like the paper's Figure 5 axes.
    let norm_pair = |g: &ProgramGraph| {
        let measured_lat = measure(g, &hw, 0.15);
        let predicted_lat = model.expected_latency(g, &profile);
        let measured_tput = hw.throughput_gbps(measured_lat, pkt);
        let predicted_tput = hw.throughput_gbps(predicted_lat, pkt);
        (1.0, predicted_tput / measured_tput)
    };

    header(&["panel", "x", "measured_norm", "model_norm"]);
    let mut deviations: Vec<f64> = Vec::new();
    for n in [12usize, 18, 28, 38] {
        let g = calibrator.exact_program(n, 1);
        let (m, p) = norm_pair(&g);
        deviations.push((p - 1.0).abs());
        row(&["a_exact_tables".into(), n.to_string(), f(m), f(p)]);
    }
    for prims in [2usize, 4, 6, 8] {
        let g = calibrator.exact_program(20, prims);
        let (m, p) = norm_pair(&g);
        deviations.push((p - 1.0).abs());
        row(&["b_action_prims".into(), prims.to_string(), f(m), f(p)]);
    }
    for n in [10usize, 12, 14, 16] {
        let g = calibrator.lpm_program(n);
        let (m, p) = norm_pair(&g);
        deviations.push((p - 1.0).abs());
        row(&["c_lpm_tables".into(), n.to_string(), f(m), f(p)]);
    }
    for n in [10usize, 12, 14, 16] {
        let g = calibrator.ternary_program(n);
        let (m, p) = norm_pair(&g);
        deviations.push((p - 1.0).abs());
        row(&["d_ternary_tables".into(), n.to_string(), f(m), f(p)]);
    }
    let avg_dev = deviations.iter().sum::<f64>() / deviations.len() as f64;
    println!(
        "# average |deviation| = {:.2}% (paper reports ~5% on hardware)",
        100.0 * avg_dev
    );
}
