//! Socket-path ingest throughput: how much the wire costs.
//!
//! Packets/sec of the load-balancer scenario served two ways, per
//! engine (interpreter vs compiled) and per worker count (1/2/8):
//!
//! * **inproc** — the generated batch fed straight into the backend's
//!   `process_batch` (SmartNic at 1 worker, run-loop `ShardedNic`
//!   above), the emulator's native path;
//! * **socket** — the identical batch replayed by `NetClient` over a
//!   loopback UDP socket into an `IngestServer` fronting the same
//!   backend: codec + syscalls + scheduling on top of the datapath.
//!
//! The socket rows measure the full windowed request/response round
//! trip, so `socket_pps` is end-to-end serving throughput, not just
//! datapath speed; `wire_cost` = inproc/socket is the slowdown the
//! wire adds per engine/worker point.
//!
//! Output: tab-separated table on stdout plus `BENCH_ingest.json` at
//! the repo root (override with `BENCH_INGEST_OUT`). `INGEST_SMOKE=1`
//! shrinks the replay for CI smoke runs.

use pipeleon_bench::{banner, f, header, row};
use pipeleon_cost::CostParams;
use pipeleon_net::{FieldMap, IngestConfig, IngestServer, NetClient};
use pipeleon_sim::{EngineMode, NicBackend, Packet, ShardMode, ShardedNic, SmartNic};
use pipeleon_workloads::scenarios::LoadBalancer;
use std::time::{Duration, Instant};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn engines() -> [(&'static str, EngineMode); 2] {
    [
        ("interp", EngineMode::Interpreter),
        ("compiled", EngineMode::Compiled),
    ]
}

/// In-process pps: best-of-reps `process_batch` on the given backend.
fn run_inproc<N: NicBackend>(nic: &mut N, batch: &[Packet], reps: u32) -> f64 {
    let mut warm = batch.to_vec();
    nic.process_batch(&mut warm);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut work = batch.to_vec();
        let start = Instant::now();
        nic.process_batch(&mut work);
        best = best.min(start.elapsed().as_secs_f64());
    }
    batch.len() as f64 / best
}

/// Socket pps: serve the backend on a loopback socket from a thread,
/// replay the batch through a windowed client, time the full round
/// trip. Best of `reps` replays against a warm server.
fn run_socket<N: NicBackend + Send + 'static>(
    nic: N,
    map: &FieldMap,
    batch: &[Packet],
    reps: u32,
) -> f64 {
    let mut server = IngestServer::bind("127.0.0.1:0", IngestConfig::default()).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let expect = (u64::from(reps) + 1) * batch.len() as u64;
    let map2 = map.clone();
    let handle = std::thread::spawn(move || {
        let mut nic = nic;
        let deadline = Instant::now() + Duration::from_secs(120);
        while server.stats().responses < expect && Instant::now() < deadline {
            if server.poll_once(&mut nic, &map2).expect("poll") == 0 {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
        let s = server.stats();
        assert_eq!(s.decode_errors, 0, "bench traffic must decode cleanly");
        assert_eq!(s.dropped(), 0, "bench replay must be lossless");
        s
    });
    let client = NetClient::connect(addr)
        .expect("connect")
        .with_window(128)
        .with_timeout(Duration::from_secs(30));
    // Warm-up replay (first-touch compiles, page faults), then time.
    client.replay(batch, map).expect("warm-up replay");
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let report = client.replay(batch, map).expect("timed replay");
        best = best.min(start.elapsed().as_secs_f64());
        assert_eq!(report.echoes.len(), batch.len());
        assert_eq!(report.decode_errors, 0);
    }
    handle.join().expect("server thread");
    batch.len() as f64 / best
}

struct Row {
    engine: &'static str,
    workers: usize,
    inproc_pps: f64,
    socket_pps: f64,
}

fn main() {
    let smoke = std::env::var("INGEST_SMOKE").is_ok();
    let (packets, reps) = if smoke { (2_000, 1) } else { (20_000, 3) };
    banner(
        "ingest",
        "socket-path serving throughput vs in-process datapath (load balancer)",
    );
    println!("# packets_per_rep: {packets}  reps: {reps}  smoke: {smoke}");
    header(&["engine", "workers", "inproc_pps", "socket_pps", "wire_cost"]);
    let lb = LoadBalancer::build();
    let params = CostParams::bluefield2();
    let map = FieldMap::from_graph(&lb.graph).expect("wire contract");
    let batch = lb.traffic(&[0.05, 0.2], 256, 42).batch(packets);
    let mut rows: Vec<Row> = Vec::new();
    for (engine_name, engine) in engines() {
        for workers in WORKER_COUNTS {
            let (inproc_pps, socket_pps) = if workers == 1 {
                let mut nic = SmartNic::new(lb.graph.clone(), params.clone()).unwrap();
                nic.set_engine_mode(engine);
                let inproc = run_inproc(&mut nic, &batch, reps);
                let mut nic = SmartNic::new(lb.graph.clone(), params.clone()).unwrap();
                nic.set_engine_mode(engine);
                (inproc, run_socket(nic, &map, &batch, reps))
            } else {
                let mut nic = ShardedNic::with_mode(
                    lb.graph.clone(),
                    params.clone(),
                    workers,
                    ShardMode::RunLoop,
                )
                .unwrap();
                nic.set_engine_mode(engine);
                let inproc = run_inproc(&mut nic, &batch, reps);
                let mut nic = ShardedNic::with_mode(
                    lb.graph.clone(),
                    params.clone(),
                    workers,
                    ShardMode::RunLoop,
                )
                .unwrap();
                nic.set_engine_mode(engine);
                (inproc, run_socket(nic, &map, &batch, reps))
            };
            row(&[
                engine_name.to_string(),
                workers.to_string(),
                f(inproc_pps),
                f(socket_pps),
                f(inproc_pps / socket_pps),
            ]);
            rows.push(Row {
                engine: engine_name,
                workers,
                inproc_pps,
                socket_pps,
            });
        }
    }

    // Machine-readable summary for EXPERIMENTS.md and CI.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"program\": \"load_balancer\",\n  \"packets_per_rep\": {packets},\n  \"reps\": {reps},\n  \"smoke\": {smoke},\n  \"results\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"engine\": \"{}\", \"workers\": {}, \"inproc_pps\": {:.1}, \"socket_pps\": {:.1}, \"wire_cost\": {:.3}}}{}\n",
            r.engine,
            r.workers,
            r.inproc_pps,
            r.socket_pps,
            r.inproc_pps / r.socket_pps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = std::env::var("BENCH_INGEST_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_ingest.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, json).expect("write BENCH_ingest.json");
    println!("# wrote {out}");
}
