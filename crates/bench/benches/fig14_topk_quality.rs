//! Figure 14: top-k effectiveness relative to exhaustive search, at three
//! traffic-entropy levels.
//!
//! For each program, many random profiles are synthesized and ranked by
//! the entropy of the pipelet traffic distribution (Appendix A.3); the
//! 10th/50th/90th-percentile-entropy profiles are then optimized with
//! top-k ∈ {20,30,40,50}% and with ESearch, and the gain ratio
//! `topk_gain / esearch_gain` is reported as a CDF over programs.

use pipeleon::hotspot::score_pipelets;
use pipeleon::pipelet::partition;
use pipeleon::{Optimizer, OptimizerConfig, ResourceLimits};
use pipeleon_bench::{banner, header, print_cdf};
use pipeleon_cost::{CostModel, CostParams, RuntimeProfile};
use pipeleon_ir::ProgramGraph;
use pipeleon_workloads::profiles::{entropy, random_profile, ProfileSynthConfig};
use pipeleon_workloads::synth::{synthesize, SynthConfig};

/// Entropy of the pipelet traffic distribution under a profile.
fn pipelet_entropy(model: &CostModel, g: &ProgramGraph, p: &RuntimeProfile) -> f64 {
    let pipelets = partition(g, 24);
    let scores = score_pipelets(model, g, p, &pipelets);
    let shares: Vec<f64> = scores.iter().map(|s| s.reach).collect();
    entropy(&shares)
}

fn main() {
    banner(
        "Figure 14",
        "top-k gain / ESearch gain CDF at 10th/50th/90th entropy profiles",
    );
    header(&["entropy_pct", "k", "gain_ratio", "cdf"]);
    let model = CostModel::new(CostParams::emulated_nic());
    const PROGRAMS: usize = 40;
    const PROFILES_PER_PROGRAM: usize = 120;

    // ratios[entropy_level][k] -> samples over programs.
    let ks = [0.2, 0.3, 0.4, 0.5];
    let mut ratios = vec![vec![Vec::new(); ks.len()]; 3];
    for seed in 0..PROGRAMS as u64 {
        let g = synthesize(&SynthConfig {
            pipelets: 12,
            pipelet_len: 2,
            seed: seed * 101 + 7,
            ..SynthConfig::default()
        });
        // Rank random profiles by entropy, pick p10/p50/p90.
        let mut profiles: Vec<(f64, RuntimeProfile)> = (0..PROFILES_PER_PROGRAM as u64)
            .map(|ps| {
                let p = random_profile(&g, &ProfileSynthConfig::default(), seed * 1009 + ps);
                (pipelet_entropy(&model, &g, &p), p)
            })
            .collect();
        profiles.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite entropy"));
        let picks = [
            profiles.len() / 10,
            profiles.len() / 2,
            profiles.len() * 9 / 10,
        ];
        for (level, &idx) in picks.iter().enumerate() {
            let profile = &profiles[idx].1;
            let esearch_gain = Optimizer::new(model.clone())
                .esearch()
                .optimize(&g, profile, ResourceLimits::unlimited())
                .expect("optimizes")
                .est_gain_ns;
            if esearch_gain <= 1e-9 {
                continue;
            }
            for (ki, &k) in ks.iter().enumerate() {
                let gain = Optimizer::new(model.clone())
                    .with_config(OptimizerConfig {
                        top_k_fraction: k,
                        ..OptimizerConfig::default()
                    })
                    .optimize(&g, profile, ResourceLimits::unlimited())
                    .expect("optimizes")
                    .est_gain_ns;
                ratios[level][ki].push((gain / esearch_gain).min(1.0));
            }
        }
    }
    for (level, name) in ["10th", "50th", "90th"].iter().enumerate() {
        for (ki, &k) in ks.iter().enumerate() {
            print_cdf(
                &[name.to_string(), format!("{}%", (k * 100.0) as u32)],
                &ratios[level][ki],
                10,
            );
        }
    }
}
