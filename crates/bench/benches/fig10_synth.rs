//! Figure 10: optimization benefit on synthesized single-pipelet programs
//! across three workload categories — heavy packet drops, small static
//! tables, high traffic locality — by pipelet length (1–2, 2–3, 3–4),
//! attributed per technique. Latency reduction is computed with the cost
//! model, as in the paper ("average optimization performance computed by
//! the cost model"). ~100 programs per category.

use pipeleon::{Optimizer, OptimizerConfig, ResourceLimits};
use pipeleon_bench::{banner, f, header, row};
use pipeleon_cost::{CostModel, CostParams, RuntimeProfile};
use pipeleon_ir::ProgramGraph;
use pipeleon_workloads::profiles::{random_profile, ProfileSynthConfig};
use pipeleon_workloads::synth::{synthesize, MatchMix, SynthConfig};

#[derive(Clone, Copy)]
enum Category {
    HeavyDrop,
    SmallStatic,
    HighLocality,
}

impl Category {
    fn name(self) -> &'static str {
        match self {
            Category::HeavyDrop => "heavy_packet_drop",
            Category::SmallStatic => "small_static_tables",
            Category::HighLocality => "high_traffic_locality",
        }
    }

    /// Synthesizes a single-pipelet program of the category.
    fn program(self, pl: usize, seed: u64) -> ProgramGraph {
        let base = SynthConfig {
            pipelets: 1,
            pipelet_len: pl,
            seed,
            ..SynthConfig::default()
        };
        let cfg = match self {
            Category::HeavyDrop => SynthConfig {
                drop_fraction: 0.8,
                write_fraction: 0.05,
                match_mix: MatchMix::default_mix(),
                ..base
            },
            Category::SmallStatic => SynthConfig {
                drop_fraction: 0.0,
                write_fraction: 0.05,
                entries_per_table: 3,
                match_mix: MatchMix::all_exact(),
                ..base
            },
            Category::HighLocality => SynthConfig {
                drop_fraction: 0.1,
                write_fraction: 0.05,
                match_mix: MatchMix {
                    exact: 0.2,
                    lpm: 0.3,
                    ternary: 0.5,
                },
                ..base
            },
        };
        synthesize(&cfg)
    }

    /// Synthesizes the category's runtime profile.
    fn profile(self, g: &ProgramGraph, seed: u64) -> RuntimeProfile {
        match self {
            Category::SmallStatic => {
                // All traffic hits installed entries; zero churn.
                let mut p = RuntimeProfile::empty();
                p.total_packets = 1_000_000;
                for (n, _) in g.tables() {
                    p.record_action(n.id, 0, 1_000_000);
                }
                p
            }
            Category::HighLocality => {
                // Few distinct keys per table and stable entries ->
                // caches hit and stay valid.
                let mut p = random_profile(
                    g,
                    &ProfileSynthConfig {
                        updating_fraction: 0.0,
                        ..ProfileSynthConfig::default()
                    },
                    seed,
                );
                for (n, _) in g.tables() {
                    p.set_distinct_keys(n.id, 8);
                }
                p
            }
            Category::HeavyDrop => {
                // Dropping actions dominate where they exist.
                let mut p = random_profile(g, &ProfileSynthConfig::default(), seed);
                for (n, t) in g.tables() {
                    for (i, a) in t.actions.iter().enumerate() {
                        p.record_action(n.id, i, if a.drops() { 900_000 } else { 50_000 });
                    }
                }
                p
            }
        }
    }
}

fn main() {
    banner(
        "Figure 10",
        "latency reduction on synthesized programs by category, pipelet length, technique",
    );
    header(&[
        "category",
        "pipelet_len",
        "technique",
        "mean_latency_reduction_pct",
        "programs",
    ]);
    let params = CostParams::emulated_nic();
    let model = CostModel::new(params);
    let techniques: [(&str, fn(&mut OptimizerConfig)); 3] = [
        ("reordering", |c| {
            c.enable_cache = false;
            c.enable_merge = false;
        }),
        ("merging", |c| {
            c.enable_reorder = false;
            c.enable_cache = false;
        }),
        ("caching", |c| {
            c.enable_reorder = false;
            c.enable_merge = false;
        }),
    ];
    for cat in [
        Category::HeavyDrop,
        Category::SmallStatic,
        Category::HighLocality,
    ] {
        for (pl_label, pl) in [("1~2", 2usize), ("2~3", 3), ("3~4", 4)] {
            for (tech, tweak) in &techniques {
                let mut total = 0.0;
                let mut n = 0usize;
                // ~33 programs per (category, PL) bucket => ~100/category.
                for seed in 0..33u64 {
                    let g = cat.program(pl, seed * 13 + pl as u64);
                    let profile = cat.profile(&g, seed * 7 + 1);
                    let mut cfg = OptimizerConfig {
                        top_k_fraction: 1.0,
                        enable_groups: false,
                        ..OptimizerConfig::default()
                    };
                    tweak(&mut cfg);
                    let optimizer = Optimizer::new(model.clone()).with_config(cfg);
                    let outcome = optimizer
                        .optimize(&g, &profile, ResourceLimits::unlimited())
                        .expect("optimizes");
                    // Estimated reduction: caches are priced at their
                    // estimated hit rates (re-evaluating the fresh graph
                    // would price new caches at uninformed uniform priors).
                    let before = model.expected_latency(&g, &profile);
                    total += (outcome.est_gain_ns / before).max(0.0);
                    n += 1;
                }
                row(&[
                    cat.name().into(),
                    pl_label.into(),
                    (*tech).into(),
                    f(100.0 * total / n as f64),
                    n.to_string(),
                ]);
            }
        }
    }
}
