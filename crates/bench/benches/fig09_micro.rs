//! Figure 9: microbenchmarks of the three optimizations on the
//! BlueField2-like and Agilio-CX-like targets.
//!
//! * (a)/(b) table reordering: throughput as the ACL table moves from the
//!   end of a ~22-table program to the front, for 25/50/75% drop rates.
//! * (c) table caching: the §5.2.1 caching options `[1][2][3][4]` …
//!   `[1,2,3,4]` over a 4-table pipelet replicated to 16 tables, with
//!   40 000 flows (per-table key spaces are small but the cross product
//!   explodes, so one big cache underperforms several small ones).
//! * (d) table merging: merged options `[1,2]`, `[1,2,3]`, `[1,2,3,4]`
//!   over small static tables, reporting materialized entry counts.

use pipeleon::plan::SegmentKind;
use pipeleon::OptimizerConfig;
use pipeleon_bench::{apply_manual, banner, f, header, micro_pipeline, row, with_acl_at};
use pipeleon_cost::CostParams;
use pipeleon_ir::ProgramGraph;
use pipeleon_sim::{Packet, SmartNic};
use pipeleon_workloads::traffic::{FieldBias, FlowGen};

fn targets() -> Vec<CostParams> {
    vec![CostParams::bluefield2(), CostParams::agilio_cx()]
}

fn reordering() {
    header(&["panel", "target", "drop_rate", "acl_position", "gbps"]);
    const TABLES: usize = 22;
    for params in targets() {
        let panel = if params.name == "bluefield2" {
            "a"
        } else {
            "b"
        };
        for drop in [0.25, 0.50, 0.75] {
            for pos in (0..TABLES).step_by(3).chain([TABLES - 1]) {
                let (g, _, acl_field) = with_acl_at(TABLES, pos, 0xDEAD);
                let mut nic = SmartNic::new(g.clone(), params.clone()).unwrap();
                let flow_fields: Vec<_> = (0..4)
                    .map(|i| g.fields.get(&format!("f{i}")).unwrap())
                    .collect();
                let mut gen = FlowGen::new(g.fields.len(), flow_fields, 1000, pos as u64)
                    .with_bias(FieldBias {
                        field: acl_field,
                        value: 0xDEAD,
                        probability: drop,
                    });
                let stats = nic.measure(gen.batch(12_000));
                row(&[
                    panel.into(),
                    params.name.clone(),
                    f(drop),
                    pos.to_string(),
                    f(stats.throughput_gbps),
                ]);
            }
        }
    }
}

/// Expands a per-replica grouping pattern over the whole program: the
/// paper's option `[1,2,3][4]` caches tables 1–3 together and table 4
/// separately *in each four-table pipelet replica*.
fn replicate_pattern(
    pattern: &[(usize, usize)],
    num_tables: usize,
    kind: SegmentKind,
) -> Vec<(usize, usize, SegmentKind)> {
    let mut out = Vec::new();
    for replica in (0..num_tables).step_by(4) {
        for &(s, e) in pattern {
            if replica + e <= num_tables {
                out.push((replica + s, replica + e, kind));
            }
        }
    }
    out
}

/// The §5.2.1 ~40 000-flow workload: each of the four key fields takes
/// one of 14 values (a base-14 digit of the flow id), so per-table key
/// spaces are tiny (14), pairs/triples still fit a 4096-entry cache
/// (196 / 2744), but the full cross product is 14⁴ = 38 416 — the
/// Figure 9c cross-product blow-up.
fn structured_flows(g: &ProgramGraph, n: usize, seed: u64) -> Vec<Packet> {
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let zipf = pipeleon_workloads::traffic::ZipfSampler::new(14usize.pow(4), 1.05);
    let fields: Vec<_> = (0..4)
        .map(|i| g.fields.get(&format!("f{i}")).unwrap())
        .collect();
    (0..n)
        .map(|_| {
            let flow = zipf.sample(&mut rng) as u64;
            let mut p = Packet::new(&g.fields);
            for (i, &fld) in fields.iter().enumerate() {
                p.set(fld, (flow / 14u64.pow(i as u32)) % 14);
            }
            p
        })
        .collect()
}

fn caching() {
    header(&["panel", "target", "option", "gbps", "total_cache_entries"]);
    // Ternary tables: the complex matches caching is meant to bypass.
    let (g, ids) = pipeleon_bench::micro_pipeline_kind(8, pipeleon_ir::MatchKind::Ternary);
    let options: Vec<(&str, Vec<(usize, usize)>)> = vec![
        ("no_cache", vec![]),
        ("[1][2][3][4]", vec![(0, 1), (1, 2), (2, 3), (3, 4)]),
        ("[1,2][3][4]", vec![(0, 2), (2, 3), (3, 4)]),
        ("[1,2,3][4]", vec![(0, 3), (3, 4)]),
        ("[1,2,3,4]", vec![(0, 4)]),
    ];
    let cfg = OptimizerConfig::default();
    for params in targets() {
        for (label, pattern) in &options {
            let (graph, cache_nodes) = if pattern.is_empty() {
                (g.clone(), Vec::new())
            } else {
                let segs = replicate_pattern(pattern, ids.len(), SegmentKind::Cache);
                let applied = apply_manual(&g, ids.clone(), segs, &params, &cfg);
                (applied.graph, applied.cache_nodes)
            };
            let mut nic = SmartNic::new(graph.clone(), params.clone()).unwrap();
            // Warm-up to steady state (several simulated milliseconds, so
            // the cache insertion rate limiter is not the bottleneck),
            // then measure (TRex style).
            for w in 0..5 {
                nic.measure(structured_flows(&g, 40_000, w));
            }
            let stats = nic.measure(structured_flows(&g, 40_000, 99));
            let entries: usize = cache_nodes
                .iter()
                .map(|&c| nic.executor_mut().cache_len(c))
                .sum();
            row(&[
                "c".into(),
                params.name.clone(),
                (*label).into(),
                f(stats.throughput_gbps),
                entries.to_string(),
            ]);
        }
    }
}

fn merging() {
    header(&["panel", "target", "option", "gbps", "merged_entries"]);
    // Small static exact tables (4 entries each) that all traffic hits —
    // the DASH-style merge case.
    let (g, ids) = micro_pipeline(16);
    let mut cfg = OptimizerConfig::default();
    cfg.max_merge_tables = 4;
    let options: Vec<(&str, Vec<(usize, usize)>)> = vec![
        ("no_merge", vec![]),
        ("[1,2]", vec![(0, 2)]),
        ("[1,2,3]", vec![(0, 3)]),
        ("[1,2,3,4]", vec![(0, 4)]),
    ];
    for params in targets() {
        for (label, pattern) in &options {
            let (graph, entries) = if pattern.is_empty() {
                (g.clone(), 0)
            } else {
                let segs =
                    replicate_pattern(pattern, ids.len(), SegmentKind::Merge { as_cache: true });
                let applied = apply_manual(&g, ids.clone(), segs, &params, &cfg);
                let merged_entries = applied
                    .graph
                    .tables()
                    .filter(|(_, t)| t.cache_role == pipeleon_ir::CacheRole::MergedCache)
                    .map(|(_, t)| t.entries.len())
                    .sum();
                (applied.graph, merged_entries)
            };
            let mut nic = SmartNic::new(graph.clone(), params.clone()).unwrap();
            // Traffic always hits the installed entries (static tables).
            let packets: Vec<Packet> = (0..20_000)
                .map(|i| {
                    let mut p = Packet::new(&g.fields);
                    for fi in 0..4 {
                        p.set(g.fields.get(&format!("f{fi}")).unwrap(), i % 4);
                    }
                    p
                })
                .collect();
            let stats = nic.measure(packets);
            row(&[
                "d".into(),
                params.name.clone(),
                (*label).into(),
                f(stats.throughput_gbps),
                entries.to_string(),
            ]);
        }
    }
}

fn main() {
    banner(
        "Figure 9",
        "reordering / caching / merging microbenchmarks (BlueField2 + Agilio CX models)",
    );
    reordering();
    caching();
    merging();
}
