//! Figures 18 & 19 (Appendix A.3): traffic distributions by entropy and
//! ESearch effectiveness across them.
//!
//! * Fig. 18: one program's pipelet traffic distribution at the
//!   10th/50th/90th entropy percentiles of 2000 random profiles.
//! * Fig. 19: CDF of `ESearch throughput / original throughput` across
//!   programs for the three entropy levels (throughput ratio approximated
//!   as the cost-model latency ratio, which is what the emulated
//!   throughput is proportional to below line rate).

use pipeleon::hotspot::score_pipelets;
use pipeleon::pipelet::partition;
use pipeleon::{Optimizer, ResourceLimits};
use pipeleon_bench::{banner, f, header, print_cdf, row};
use pipeleon_cost::{CostModel, CostParams, RuntimeProfile};
use pipeleon_ir::ProgramGraph;
use pipeleon_workloads::profiles::{entropy, random_profile, ProfileSynthConfig};
use pipeleon_workloads::synth::{synthesize, SynthConfig};

fn pipelet_shares(model: &CostModel, g: &ProgramGraph, p: &RuntimeProfile) -> Vec<f64> {
    let pipelets = partition(g, 24);
    score_pipelets(model, g, p, &pipelets)
        .iter()
        .map(|s| s.reach)
        .collect()
}

fn main() {
    banner(
        "Figures 18+19",
        "pipelet traffic distributions by entropy; ESearch gains across entropy levels",
    );
    let model = CostModel::new(CostParams::emulated_nic());

    // Figure 18: one 12-pipelet program, 2000 random profiles.
    let g = synthesize(&SynthConfig {
        pipelets: 12,
        pipelet_len: 2,
        seed: 424242,
        ..SynthConfig::default()
    });
    let mut ranked: Vec<(f64, RuntimeProfile)> = (0..2000u64)
        .map(|s| {
            let p = random_profile(&g, &ProfileSynthConfig::default(), s);
            let e = entropy(&pipelet_shares(&model, &g, &p));
            (e, p)
        })
        .collect();
    ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    println!("# --- Figure 18: pipelet traffic share per entropy level ---");
    header(&["entropy_pct", "entropy_bits", "pipelet_id", "traffic_share"]);
    let picks = [
        ("10th", ranked.len() / 10),
        ("50th", ranked.len() / 2),
        ("90th", ranked.len() * 9 / 10),
    ];
    for (name, idx) in picks {
        let (e, p) = &ranked[idx];
        let shares = pipelet_shares(&model, &g, p);
        let total: f64 = shares.iter().sum();
        for (i, s) in shares.iter().enumerate() {
            row(&[
                name.into(),
                f(*e),
                (i + 1).to_string(),
                f(s / total.max(1e-12)),
            ]);
        }
    }

    // Figure 19: across 50 programs, ESearch latency improvement ratio at
    // each entropy level.
    println!("# --- Figure 19: ESearch improvement CDF per entropy level ---");
    header(&["entropy_pct", "esearch_improvement_ratio", "cdf"]);
    const PROGRAMS: usize = 50;
    const PROFILES: usize = 150;
    let mut ratios = vec![Vec::new(); 3];
    for seed in 0..PROGRAMS as u64 {
        let g = synthesize(&SynthConfig {
            pipelets: 12,
            pipelet_len: 2,
            seed: seed * 97 + 11,
            ..SynthConfig::default()
        });
        let mut profs: Vec<(f64, RuntimeProfile)> = (0..PROFILES as u64)
            .map(|s| {
                let p = random_profile(&g, &ProfileSynthConfig::default(), seed * 7000 + s);
                let e = entropy(&pipelet_shares(&model, &g, &p));
                (e, p)
            })
            .collect();
        profs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let picks = [profs.len() / 10, profs.len() / 2, profs.len() * 9 / 10];
        for (level, &idx) in picks.iter().enumerate() {
            let p = &profs[idx].1;
            let outcome = Optimizer::new(model.clone())
                .esearch()
                .optimize(&g, p, ResourceLimits::unlimited())
                .expect("optimizes");
            // Throughput ratio == latency ratio below line rate; the
            // plan's estimated gain prices caches at their estimated hit
            // rates (the cost model cannot re-price a fresh cache from
            // counters it does not have yet).
            let before = model.expected_latency(&g, p);
            let after = (before - outcome.est_gain_ns).max(1e-9);
            ratios[level].push(before / after);
        }
    }
    let mut means = Vec::new();
    for (level, name) in ["10th", "50th", "90th"].iter().enumerate() {
        print_cdf(&[name.to_string()], &ratios[level], 12);
        means.push(ratios[level].iter().sum::<f64>() / ratios[level].len() as f64);
    }
    println!(
        "# mean improvement by entropy level: 10th={:.2}x 50th={:.2}x 90th={:.2}x (paper: 1.32x/1.37x/1.43x)",
        means[0], means[1], means[2]
    );
}
