//! Figure 17 (Appendix A.2): table copying reduces ASIC↔CPU migration
//! overhead.
//!
//! An interleaved program alternates ASIC-capable tables with tables
//! requiring CPU execution. Copying k interleaved tables to the CPU cores
//! removes migrations. (a) sweeps the migration latency; (b) sweeps the
//! share of traffic taking the software (CPU) path. Reported as emulated
//! mean packet latency vs. number of copied tables — including the
//! paper's observation that copying *one* table alone does not help.

use pipeleon::hetero::partition_placement;
use pipeleon_bench::{banner, f, header, row};
use pipeleon_cost::{CostModel, CostParams, Placement, RuntimeProfile};
use pipeleon_ir::{Condition, MatchKind, NodeId, Primitive, ProgramBuilder, ProgramGraph};
use pipeleon_sim::{Packet, SmartNic};
use std::collections::HashSet;

/// Interleaved chain asic0 cpu0 asic1 cpu1 asic2 cpu2 tail.
fn interleaved() -> (ProgramGraph, HashSet<NodeId>) {
    let mut b = ProgramBuilder::named("fig17");
    let fld = b.field("x");
    let mut ids: Vec<NodeId> = Vec::new();
    let mut cpu_only = HashSet::new();
    for i in 0..3 {
        ids.push(
            b.table(format!("asic{i}"))
                .key(fld, MatchKind::Exact)
                .action("fast", vec![Primitive::Nop])
                .finish(),
        );
        let c = b
            .table(format!("cpu{i}"))
            .key(fld, MatchKind::Exact)
            .action("unsupported", vec![Primitive::Nop])
            .finish();
        cpu_only.insert(c);
        ids.push(c);
    }
    ids.push(
        b.table("tail")
            .key(fld, MatchKind::Exact)
            .action("fwd", vec![Primitive::Forward { port: 1 }])
            .finish(),
    );
    (b.seal(ids[0]).expect("valid"), cpu_only)
}

/// Branch steering `sw_share` of traffic to the interleaved (software-
/// needing) path and the rest to a pure-ASIC bypass.
fn with_software_share(sw_share: f64) -> (ProgramGraph, HashSet<NodeId>, pipeleon_ir::FieldRef) {
    let mut b = ProgramBuilder::named("fig17b");
    let fld = b.field("x");
    let steer = b.field("steer");
    let mut cpu_only = HashSet::new();
    // Software path: interleaved ASIC/CPU tables.
    let mut sw_ids = Vec::new();
    for i in 0..3 {
        sw_ids.push(
            b.table(format!("asic{i}"))
                .key(fld, MatchKind::Exact)
                .action("fast", vec![Primitive::Nop])
                .finish(),
        );
        let c = b
            .table(format!("cpu{i}"))
            .key(fld, MatchKind::Exact)
            .action("unsupported", vec![Primitive::Nop])
            .finish();
        cpu_only.insert(c);
        sw_ids.push(c);
    }
    for w in sw_ids.windows(2) {
        b.set_next(w[0], Some(w[1]));
    }
    b.set_next(*sw_ids.last().unwrap(), None);
    // Hardware bypass.
    let hw = b
        .table("hw_path")
        .key(fld, MatchKind::Exact)
        .action("fast", vec![Primitive::Nop])
        .finish();
    b.set_next(hw, None);
    let threshold = (sw_share * 1000.0) as u64;
    let br = b.branch(
        "steer",
        Condition::lt(steer, threshold),
        Some(sw_ids[0]),
        Some(hw),
    );
    (b.seal(br).expect("valid"), cpu_only, steer)
}

fn main() {
    banner(
        "Figure 17",
        "table copying vs migration latency / software traffic share",
    );

    println!("# --- (a) migration latency sweep (all traffic on the software path) ---");
    header(&[
        "panel",
        "migration_latency_ns",
        "copied_tables",
        "emulated_latency_ns",
    ]);
    let (g, cpu_only) = interleaved();
    for migration in [100.0, 300.0, 600.0] {
        let mut params = CostParams::emulated_nic();
        params.l_migration = migration;
        let model = CostModel::new(params.clone());
        let profile = RuntimeProfile::empty();
        for copies in 0..=4usize {
            // Exact-budget placement: force exactly `copies` by taking the
            // DP plan and measuring it.
            let plan = partition_placement(&model, &g, &profile, &cpu_only, copies);
            let mut nic = SmartNic::new(g.clone(), params.clone()).unwrap();
            nic.set_placement(plan.placement.clone());
            let pkts: Vec<Packet> = (0..4000)
                .map(|i| {
                    let mut p = Packet::new(&g.fields);
                    p.set(g.fields.get("x").unwrap(), i % 64);
                    p
                })
                .collect();
            let stats = nic.measure(pkts);
            row(&[
                "a".into(),
                f(migration),
                plan.copied.len().to_string(),
                f(stats.mean_latency_ns),
            ]);
        }
    }

    println!("# --- (b) software traffic share sweep (migration 400 ns) ---");
    header(&[
        "panel",
        "software_share",
        "copied_tables",
        "emulated_latency_ns",
    ]);
    for share in [0.3, 0.5, 0.7] {
        let (g, cpu_only, steer) = with_software_share(share);
        let mut params = CostParams::emulated_nic();
        params.l_migration = 400.0;
        let model = CostModel::new(params.clone());
        let profile = RuntimeProfile::empty();
        for copies in 0..=4usize {
            // The branchy program uses greedy placement for forced nodes;
            // copy the interleaved ASIC tables manually in chain order.
            let mut plan = partition_placement(&model, &g, &profile, &cpu_only, 0);
            let mut copied = 0;
            for n in g.iter_nodes() {
                let name = n.name();
                if copied < copies && (name.starts_with("asic") || name == "tail") {
                    // Copy interleaved ASIC tables (asic1, asic2, tail are
                    // the ones between/after CPU tables).
                    if name != "asic0" {
                        plan.placement[n.id.index()] = Placement::Cpu;
                        copied += 1;
                    }
                }
            }
            let mut nic = SmartNic::new(g.clone(), params.clone()).unwrap();
            nic.set_placement(plan.placement.clone());
            let pkts: Vec<Packet> = (0..6000)
                .map(|i| {
                    let mut p = Packet::new(&g.fields);
                    p.set(g.fields.get("x").unwrap(), i % 64);
                    p.set(steer, (i as u64 * 7919) % 1000);
                    p
                })
                .collect();
            let stats = nic.measure(pkts);
            row(&[
                "b".into(),
                f(share),
                copied.to_string(),
                f(stats.mean_latency_ns),
            ]);
        }
    }
}
