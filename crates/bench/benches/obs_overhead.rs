//! Observability overhead: the mean-latency cost of leaving sampled
//! instrumentation (counters + latency histograms) enabled on the hot
//! path, versus the same run with instrumentation off.
//!
//! The histograms themselves are host-side bookkeeping and add zero
//! simulated latency; what this bounds is the *modeled* per-packet cost
//! the executor charges when instrumentation is on — the sampling check
//! on every packet plus the full counter/observation work on sampled
//! ones. The run fails (exits nonzero) if any configuration with
//! sampling enabled regresses mean latency by more than 5%.

use pipeleon_bench::{banner, f, header, micro_pipeline, row};
use pipeleon_cost::CostParams;
use pipeleon_sim::{Packet, SmartNic};

const BATCH: usize = 30_000;

fn packets(g: &pipeleon_ir::ProgramGraph, n: usize) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            let mut p = Packet::new(&g.fields);
            for fi in 0..4 {
                p.set(g.fields.get(&format!("f{fi}")).unwrap(), (i as u64) % 4);
            }
            p
        })
        .collect()
}

fn main() {
    banner(
        "Observability overhead",
        "mean-latency regression of sampled instrumentation (bound: <= 5%)",
    );
    header(&[
        "target",
        "tables",
        "sample_every",
        "mean_ns_off",
        "mean_ns_on",
        "overhead_pct",
        "sampled_packets",
    ]);
    let mut worst: f64 = 0.0;
    for params in [CostParams::bluefield2(), CostParams::agilio_cx()] {
        for tables in [8usize, 16] {
            for sample in [64u64, 1024] {
                let (g, _) = micro_pipeline(tables);
                // Uninstrumented baseline.
                let mut nic = SmartNic::new(g.clone(), params.clone()).unwrap();
                let base = nic.measure(packets(&g, BATCH));
                // Sampled instrumentation: counters + histograms.
                let mut nic = SmartNic::new(g.clone(), params.clone()).unwrap();
                nic.set_instrumentation(true, sample);
                let inst = nic.measure(packets(&g, BATCH));
                let obs = nic.take_observations();
                let overhead =
                    100.0 * (inst.mean_latency_ns - base.mean_latency_ns) / base.mean_latency_ns;
                worst = worst.max(overhead);
                row(&[
                    params.name.clone(),
                    tables.to_string(),
                    sample.to_string(),
                    f(base.mean_latency_ns),
                    f(inst.mean_latency_ns),
                    f(overhead),
                    obs.packet_latency.count().to_string(),
                ]);
                let expected = BATCH as u64 / sample;
                assert_eq!(
                    obs.packet_latency.count(),
                    expected,
                    "1-in-{sample} sampling must record {expected} packets"
                );
            }
        }
    }
    println!("# worst overhead: {}%", f(worst));
    assert!(
        worst <= 5.0,
        "sampled instrumentation overhead {worst:.3}% exceeds the 5% bound"
    );
    println!("# PASS: sampled instrumentation stays within the 5% latency bound");
}
