//! Emulator packet-processing throughput: interpreter vs compiled engine.
//!
//! Wall-clock packets/sec of the datapath on a 16-table synthetic
//! program (mixed exact/LPM/ternary tables), per target preset (bluefield2,
//! agilio_cx, bmv2 → `emulated_nic`) and per worker count (1/2/8).
//! Single-worker rows time `SmartNic::process_batch`; multi-worker rows
//! time `ShardedNic::measure` once per shard mode — `run-loop`
//! (persistent workers fed by SPSC rings, merge at window boundaries)
//! and `bit-exact` (per-batch fork-join replaying the global arrival
//! schedule, the historical inversion where 8 workers ran slower than
//! 1; kept as the oracle row).
//!
//! Every row cross-checks bit-identity: the two engines must report the
//! same per-packet latency totals and drop counts, or the row asserts.
//!
//! Output: the usual tab-separated table on stdout, plus
//! `BENCH_throughput.json` at the repo root (override the path with
//! `BENCH_THROUGHPUT_OUT`). `THROUGHPUT_SMOKE=1` shrinks the batch for
//! CI smoke runs.

use pipeleon_bench::{banner, f, header, row};
use pipeleon_cost::CostParams;
use pipeleon_ir::ProgramGraph;
use pipeleon_sim::{EngineMode, Packet, ShardMode, ShardedNic, SmartNic};
use pipeleon_workloads::synth::{synthesize, MatchMix, SynthConfig};
use pipeleon_workloads::traffic::FlowGen;
use std::time::Instant;

const TABLES: usize = 16;

/// The 16-table synthetic program: four pipelets of ~four tables with
/// the default exact/LPM/ternary match mix and no drops, so every packet
/// walks its full path. Pipelet lengths are randomized by the
/// synthesizer, so scan seeds (deterministically) for an exact 16-table
/// instance.
fn synth_program() -> ProgramGraph {
    (0..256)
        .map(|seed| {
            synthesize(&SynthConfig {
                pipelets: 4,
                pipelet_len: 4,
                match_mix: MatchMix::default_mix(),
                drop_fraction: 0.0,
                seed,
                ..SynthConfig::default()
            })
        })
        .find(|g| g.tables().count() == TABLES)
        .expect("some seed yields a 16-table program")
}

fn presets() -> Vec<(&'static str, CostParams)> {
    vec![
        ("bluefield2", CostParams::bluefield2()),
        ("agilio_cx", CostParams::agilio_cx()),
        ("bmv2", CostParams::emulated_nic()),
    ]
}

/// Seeded flow traffic over every field any table matches on (the same
/// population the CLI's `simulate` command generates).
fn traffic(g: &ProgramGraph, packets: usize) -> Vec<Packet> {
    let mut flow_fields = Vec::new();
    for (_, t) in g.tables() {
        for k in &t.keys {
            if !flow_fields.contains(&k.field) {
                flow_fields.push(k.field);
            }
        }
    }
    FlowGen::new(g.fields.len(), flow_fields, 2_000, 42)
        .with_zipf(1.1)
        .batch(packets)
}

/// Fingerprint used to assert the engines agree: total latency bits,
/// drops, and migrations across the whole batch.
fn fingerprint(reports: &[pipeleon_sim::ExecReport]) -> (u64, u64, u64) {
    let mut lat = 0u64;
    let mut dropped = 0u64;
    let mut migrations = 0u64;
    for r in reports {
        lat = lat.wrapping_add(r.latency_ns.to_bits());
        dropped += r.dropped as u64;
        migrations += r.migrations as u64;
    }
    (lat, dropped, migrations)
}

/// Single-worker pps via the batch API. Returns (pps, fingerprint).
fn run_single(
    g: &pipeleon_ir::ProgramGraph,
    params: &CostParams,
    mode: EngineMode,
    batch: &[Packet],
    reps: u32,
) -> (f64, (u64, u64, u64)) {
    let mut nic = SmartNic::new(g.clone(), params.clone()).unwrap();
    nic.set_engine_mode(mode);
    // Raw datapath throughput: instrumentation off (the obs_overhead
    // bench covers the instrumented regime).
    // Warm up once (first-touch compiles, map growth), then time.
    let mut warm = batch.to_vec();
    nic.process_batch(&mut warm);
    let mut fp = (0, 0, 0);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut work = batch.to_vec();
        let start = Instant::now();
        let reports = nic.process_batch(&mut work);
        // Fastest rep: scheduler noise only ever slows a rep down.
        best = best.min(start.elapsed().as_secs_f64());
        fp = fingerprint(&reports);
    }
    (batch.len() as f64 / best, fp)
}

/// Multi-worker pps via the sharded measurement path. Returns
/// (pps, fingerprint of the merged batch statistics).
fn run_sharded(
    g: &pipeleon_ir::ProgramGraph,
    params: &CostParams,
    workers: usize,
    shard_mode: ShardMode,
    mode: EngineMode,
    batch: &[Packet],
    reps: u32,
) -> (f64, (u64, u64, u64)) {
    let mut nic = ShardedNic::with_mode(g.clone(), params.clone(), workers, shard_mode).unwrap();
    nic.set_engine_mode(mode);
    nic.measure(batch.to_vec());
    let mut fp = (0, 0, 0);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let work = batch.to_vec();
        let start = Instant::now();
        let stats = nic.measure(work);
        best = best.min(start.elapsed().as_secs_f64());
        fp = (
            stats.mean_latency_ns.to_bits(),
            stats.dropped,
            stats.migrations,
        );
    }
    (batch.len() as f64 / best, fp)
}

struct Row {
    preset: &'static str,
    mode: &'static str,
    workers: usize,
    interp_pps: f64,
    compiled_pps: f64,
}

fn main() {
    let smoke = std::env::var("THROUGHPUT_SMOKE").is_ok();
    let (packets, reps) = if smoke { (8_000, 1) } else { (40_000, 3) };
    banner(
        "throughput",
        "datapath packets/sec: interpreter vs compiled engine (16-table synth)",
    );
    println!("# packets_per_rep: {packets}  reps: {reps}  smoke: {smoke}");
    header(&[
        "preset",
        "mode",
        "workers",
        "interp_pps",
        "compiled_pps",
        "speedup",
        "identical",
    ]);
    let g = synth_program();
    assert_eq!(g.tables().count(), TABLES);
    let batch = traffic(&g, packets);
    let mut rows: Vec<Row> = Vec::new();
    for (name, params) in presets() {
        // Single-worker baseline plus, per multi-worker count, one row
        // per shard mode (run-loop is what the scaling story is about;
        // bit-exact is the oracle's price tag).
        let mut configs: Vec<(&'static str, usize, Option<ShardMode>)> = vec![("single", 1, None)];
        for workers in [2usize, 8] {
            configs.push(("run-loop", workers, Some(ShardMode::RunLoop)));
            configs.push(("bit-exact", workers, Some(ShardMode::BitExact)));
        }
        for (mode_name, workers, shard_mode) in configs {
            let (ipps, ifp, cpps, cfp) = match shard_mode {
                None => {
                    let (ipps, ifp) =
                        run_single(&g, &params, EngineMode::Interpreter, &batch, reps);
                    let (cpps, cfp) = run_single(&g, &params, EngineMode::Compiled, &batch, reps);
                    (ipps, ifp, cpps, cfp)
                }
                Some(sm) => {
                    let (ipps, ifp) = run_sharded(
                        &g,
                        &params,
                        workers,
                        sm,
                        EngineMode::Interpreter,
                        &batch,
                        reps,
                    );
                    let (cpps, cfp) =
                        run_sharded(&g, &params, workers, sm, EngineMode::Compiled, &batch, reps);
                    (ipps, ifp, cpps, cfp)
                }
            };
            assert_eq!(
                ifp, cfp,
                "{name}/{mode_name}/{workers}w: engines disagree (bit-identity broken)"
            );
            row(&[
                name.to_string(),
                mode_name.to_string(),
                workers.to_string(),
                f(ipps),
                f(cpps),
                f(cpps / ipps),
                "true".to_string(),
            ]);
            rows.push(Row {
                preset: name,
                mode: mode_name,
                workers,
                interp_pps: ipps,
                compiled_pps: cpps,
            });
        }
    }

    // Machine-readable summary for EXPERIMENTS.md and the acceptance
    // gate (compiled >= 2x interpreter on agilio_cx, single worker).
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"program\": \"synth_{TABLES}\",\n  \"packets_per_rep\": {packets},\n  \"reps\": {reps},\n  \"smoke\": {smoke},\n  \"results\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"preset\": \"{}\", \"mode\": \"{}\", \"workers\": {}, \"interp_pps\": {:.1}, \"compiled_pps\": {:.1}, \"speedup\": {:.3}}}{}\n",
            r.preset,
            r.mode,
            r.workers,
            r.interp_pps,
            r.compiled_pps,
            r.compiled_pps / r.interp_pps,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = std::env::var("BENCH_THROUGHPUT_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_throughput.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, json).expect("write BENCH_throughput.json");
    println!("# wrote {out}");
}
