//! Figure 15: pipelet-group (cross-pipelet) optimization benefit.
//!
//! Programs dominated by short (one-table) pipelets restrict what
//! per-pipelet optimization can do; letting neighboring pipelets under a
//! common branch be optimized jointly (a group cache) recovers more
//! latency. (a) mean latency reduction with/without groups per top-k;
//! (b) the per-program CDF at k = 50%.

use pipeleon::{Optimizer, OptimizerConfig, ResourceLimits};
use pipeleon_bench::{banner, f, header, print_cdf, row};
use pipeleon_cost::{CostModel, CostParams};
use pipeleon_workloads::profiles::{random_profile, ProfileSynthConfig};
use pipeleon_workloads::synth::{synthesize_diamonds, MatchMix, SynthConfig};

fn main() {
    banner(
        "Figure 15",
        "pipelet-group optimization on short-pipelet programs",
    );
    let model = CostModel::new(CostParams::emulated_nic());
    const PROGRAMS: usize = 60;
    let reductions = |k: f64, groups: bool| -> Vec<f64> {
        (0..PROGRAMS as u64)
            .map(|seed| {
                let g = synthesize_diamonds(&SynthConfig {
                    pipelets: 11,
                    pipelet_len: 1, // short pipelets dominate
                    drop_fraction: 0.1,
                    match_mix: MatchMix {
                        exact: 0.3,
                        lpm: 0.3,
                        ternary: 0.4,
                    },
                    seed: seed * 37 + 5,
                    ..SynthConfig::default()
                });
                let mut profile = random_profile(
                    &g,
                    &ProfileSynthConfig {
                        updating_fraction: 0.0, // stable entries: caches stay valid
                        ..ProfileSynthConfig::default()
                    },
                    seed * 7 + 2,
                );
                // Locality so caches pay off.
                for (n, _) in g.tables() {
                    profile.set_distinct_keys(n.id, 16);
                }
                let optimizer = Optimizer::new(model.clone()).with_config(OptimizerConfig {
                    top_k_fraction: k,
                    enable_groups: groups,
                    ..OptimizerConfig::default()
                });
                let outcome = optimizer
                    .optimize(&g, &profile, ResourceLimits::unlimited())
                    .expect("optimizes");
                // Estimated reduction (the paper computes Fig. 15 with the
                // cost model, which prices caches at their estimated hit
                // rate).
                let before = model.expected_latency(&g, &profile);
                (100.0 * outcome.est_gain_ns / before).max(0.0)
            })
            .collect()
    };

    println!("# --- (a) average latency reduction ---");
    header(&["k", "variant", "mean_latency_reduction_pct"]);
    for k in [0.4, 0.5, 0.6] {
        for (variant, groups) in [("without_group", false), ("with_group", true)] {
            let r = reductions(k, groups);
            let mean = r.iter().sum::<f64>() / r.len() as f64;
            row(&[format!("{}%", (k * 100.0) as u32), variant.into(), f(mean)]);
        }
    }

    println!("# --- (b) per-program CDF at k=50% ---");
    header(&["variant", "latency_reduction_pct", "cdf"]);
    for (variant, groups) in [("without_group", false), ("with_group", true)] {
        print_cdf(&[variant.to_string()], &reductions(0.5, groups), 15);
    }
}
