//! Profile-guided specialization speedup: compiled engine with vs
//! without a [`SpecPlan`](pipeleon_sim::SpecConfig) applied.
//!
//! Wall-clock packets/sec of the compiled datapath on the skewed
//! classifier pipeline ([`SkewedPipeline`]), per target preset
//! (bluefield2, agilio_cx, bmv2 → `emulated_nic`), per worker count
//! (1/2/8, run-loop sharding above 1) and per workload (Zipf-skewed,
//! where the hot-key guards and inline caches earn their keep, and
//! uniform, where no sketch qualifies and specialization must be ~free).
//!
//! Methodology per row: warm a profiling window with instrumentation on
//! (sample-every-1 feeds the hot-key sketches), apply the plan (or
//! don't, for the baseline), switch instrumentation off, then time. The
//! two variants differ by exactly one `specialize()` call. Every row
//! cross-checks bit-identity of the timed traffic against both oracles —
//! the unspecialized compiled engine and the interpreter.
//!
//! Output: tab-separated table on stdout plus `BENCH_specialize.json`
//! at the repo root (override with `BENCH_SPECIALIZE_OUT`).
//! `SPECIALIZE_SMOKE=1` shrinks batches for CI; the acceptance gate
//! (skewed speedup >= 1.5x single-worker, uniform within 10% — the
//! run-to-run wall-clock noise floor on a shared box) is only asserted
//! on full runs.

use pipeleon_bench::{banner, f, header, row};
use pipeleon_cost::CostParams;
use pipeleon_sim::{EngineMode, Packet, ShardMode, ShardedNic, SmartNic, SpecStats};
use pipeleon_workloads::scenarios::SkewedPipeline;
use std::time::Instant;

/// Zipf exponent for the skewed workload: the top flow takes ~83% of
/// packets, far past the sketch's majority bar.
const SKEW: f64 = 3.0;
const FLOWS: usize = 400;

fn presets() -> Vec<(&'static str, CostParams)> {
    vec![
        ("bluefield2", CostParams::bluefield2()),
        ("agilio_cx", CostParams::agilio_cx()),
        ("bmv2", CostParams::emulated_nic()),
    ]
}

/// Batch fingerprint for the bit-identity cross-check: summed latency
/// bits, drops, migrations.
fn fingerprint(reports: &[pipeleon_sim::ExecReport]) -> (u64, u64, u64) {
    let mut lat = 0u64;
    let mut dropped = 0u64;
    let mut migrations = 0u64;
    for r in reports {
        lat = lat.wrapping_add(r.latency_ns.to_bits());
        dropped += r.dropped as u64;
        migrations += r.migrations as u64;
    }
    (lat, dropped, migrations)
}

/// Single-worker run. Warm + profile with instrumentation on, optionally
/// specialize, then time with instrumentation off. Returns
/// (pps, fingerprint, spec stats).
fn run_single(
    s: &SkewedPipeline,
    params: &CostParams,
    engine: EngineMode,
    specialize: bool,
    warm: &[Packet],
    batch: &[Packet],
    reps: u32,
) -> (f64, (u64, u64, u64), SpecStats) {
    let mut nic = SmartNic::new(s.graph.clone(), params.clone()).unwrap();
    nic.set_engine_mode(engine);
    nic.set_instrumentation(true, 1);
    let mut w = warm.to_vec();
    nic.process_batch(&mut w);
    if specialize {
        assert!(nic.specialize(), "profiling window must yield a plan");
    }
    nic.set_instrumentation(false, 1);
    let mut fp = (0, 0, 0);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut work = batch.to_vec();
        let start = Instant::now();
        let reports = nic.process_batch(&mut work);
        // Fastest rep: scheduler noise only ever slows a rep down.
        best = best.min(start.elapsed().as_secs_f64());
        fp = fingerprint(&reports);
    }
    (batch.len() as f64 / best, fp, nic.spec_stats())
}

/// Run-loop sharded run, same protocol; the fingerprint comes from the
/// merged window statistics.
#[allow(clippy::too_many_arguments)]
fn run_sharded(
    s: &SkewedPipeline,
    params: &CostParams,
    workers: usize,
    engine: EngineMode,
    specialize: bool,
    warm: &[Packet],
    batch: &[Packet],
    reps: u32,
) -> (f64, (u64, u64, u64), SpecStats) {
    let mut nic =
        ShardedNic::with_mode(s.graph.clone(), params.clone(), workers, ShardMode::RunLoop)
            .unwrap();
    nic.set_engine_mode(engine);
    nic.set_instrumentation(true, 1);
    nic.measure(warm.to_vec());
    if specialize {
        assert!(nic.specialize(), "profiling window must yield a plan");
    }
    nic.set_instrumentation(false, 1);
    let mut fp = (0, 0, 0);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let work = batch.to_vec();
        let start = Instant::now();
        let stats = nic.measure(work);
        best = best.min(start.elapsed().as_secs_f64());
        fp = (
            stats.mean_latency_ns.to_bits(),
            stats.dropped,
            stats.migrations,
        );
    }
    (batch.len() as f64 / best, fp, nic.spec_stats())
}

struct Row {
    preset: &'static str,
    workload: &'static str,
    workers: usize,
    plain_pps: f64,
    spec_pps: f64,
    specialized_tables: u64,
    guard_hit_rate: f64,
}

fn main() {
    let smoke = std::env::var("SPECIALIZE_SMOKE").is_ok();
    let (warm_n, packets, reps) = if smoke {
        (2_000, 6_000, 1)
    } else {
        (4_000, 30_000, 3)
    };
    banner(
        "specialize",
        "compiled-datapath pps: specialized vs unspecialized (skewed classifier pipeline)",
    );
    println!("# packets_per_rep: {packets}  reps: {reps}  smoke: {smoke}");
    header(&[
        "preset",
        "workload",
        "workers",
        "plain_pps",
        "spec_pps",
        "speedup",
        "spec_tables",
        "guard_hit_rate",
        "identical",
    ]);
    // 8 classifiers x 128 ternary rules: each guard hit skips a ~1k-rule
    // priority-scan budget per packet, the regime the 1.5x gate targets.
    let s = SkewedPipeline::build_with_entries(8, 4, 128);
    let mut rows: Vec<Row> = Vec::new();
    for (name, params) in presets() {
        for (workload, skew) in [("skewed", SKEW), ("uniform", 0.0)] {
            let warm = s.traffic(skew, FLOWS, 42).batch(warm_n);
            let batch = s.traffic(skew, FLOWS, 43).batch(packets);
            for workers in [1usize, 2, 8] {
                let (ipp, ifp, plain, pfp, spec, sfp, st) = if workers == 1 {
                    let (ipp, ifp, _) = run_single(
                        &s,
                        &params,
                        EngineMode::Interpreter,
                        false,
                        &warm,
                        &batch,
                        reps,
                    );
                    let (ppp, pfp, _) = run_single(
                        &s,
                        &params,
                        EngineMode::Compiled,
                        false,
                        &warm,
                        &batch,
                        reps,
                    );
                    let (spp, sfp, st) =
                        run_single(&s, &params, EngineMode::Compiled, true, &warm, &batch, reps);
                    (ipp, ifp, ppp, pfp, spp, sfp, st)
                } else {
                    let (ipp, ifp, _) = run_sharded(
                        &s,
                        &params,
                        workers,
                        EngineMode::Interpreter,
                        false,
                        &warm,
                        &batch,
                        reps,
                    );
                    let (ppp, pfp, _) = run_sharded(
                        &s,
                        &params,
                        workers,
                        EngineMode::Compiled,
                        false,
                        &warm,
                        &batch,
                        reps,
                    );
                    let (spp, sfp, st) = run_sharded(
                        &s,
                        &params,
                        workers,
                        EngineMode::Compiled,
                        true,
                        &warm,
                        &batch,
                        reps,
                    );
                    (ipp, ifp, ppp, pfp, spp, sfp, st)
                };
                let _ = ipp;
                assert_eq!(
                    ifp, pfp,
                    "{name}/{workload}/{workers}w: interpreter vs compiled disagree"
                );
                assert_eq!(
                    pfp, sfp,
                    "{name}/{workload}/{workers}w: specialization broke bit-identity"
                );
                let guarded = st.guard_hits + st.guard_misses;
                let hit_rate = if guarded == 0 {
                    0.0
                } else {
                    st.guard_hits as f64 / guarded as f64
                };
                row(&[
                    name.to_string(),
                    workload.to_string(),
                    workers.to_string(),
                    f(plain),
                    f(spec),
                    f(spec / plain),
                    st.specialized_tables.to_string(),
                    f(hit_rate),
                    "true".to_string(),
                ]);
                rows.push(Row {
                    preset: name,
                    workload,
                    workers,
                    plain_pps: plain,
                    spec_pps: spec,
                    specialized_tables: st.specialized_tables,
                    guard_hit_rate: hit_rate,
                });
            }
        }
    }

    // Acceptance gate (full runs only — smoke batches are too small to
    // time meaningfully): single-worker skewed speedup >= 1.5x, uniform
    // within 10% of baseline (best-of-reps wall clock still jitters
    // ~10% run to run on a contended single-CPU host).
    if !smoke {
        for r in rows.iter().filter(|r| r.workers == 1) {
            let speedup = r.spec_pps / r.plain_pps;
            match r.workload {
                "skewed" => assert!(
                    speedup >= 1.5,
                    "{}: skewed speedup {speedup:.3} below the 1.5x gate",
                    r.preset
                ),
                _ => assert!(
                    speedup >= 0.90,
                    "{}: uniform tax {speedup:.3} worse than 10%",
                    r.preset
                ),
            }
        }
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"program\": \"skewed_pipeline_14\",\n  \"packets_per_rep\": {packets},\n  \"reps\": {reps},\n  \"smoke\": {smoke},\n  \"skew\": {SKEW},\n  \"results\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"preset\": \"{}\", \"workload\": \"{}\", \"workers\": {}, \"plain_pps\": {:.1}, \"spec_pps\": {:.1}, \"speedup\": {:.3}, \"specialized_tables\": {}, \"guard_hit_rate\": {:.3}, \"identical\": true}}{}\n",
            r.preset,
            r.workload,
            r.workers,
            r.plain_pps,
            r.spec_pps,
            r.spec_pps / r.plain_pps,
            r.specialized_tables,
            r.guard_hit_rate,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let out = std::env::var("BENCH_SPECIALIZE_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_specialize.json", env!("CARGO_MANIFEST_DIR")));
    std::fs::write(&out, json).expect("write BENCH_specialize.json");
    println!("# wrote {out}");
}
