//! Figure 2: profile-guided optimization adapts to traffic changes.
//!
//! A pipeline of four ACL tables (cloud/tenant/subnet/VM) plus regular
//! tables and routing. The heavy-drop ACL shifts over time; the static
//! order's throughput sags after each shift while the dynamic (Pipeleon)
//! order recovers to (near) line rate.

use pipeleon::search::Optimizer;
use pipeleon::OptimizerConfig;
use pipeleon_bench::{banner, f, header, row};
use pipeleon_cost::{CostModel, CostParams};
use pipeleon_runtime::{Controller, ControllerConfig, SimTarget};
use pipeleon_sim::SmartNic;
use pipeleon_workloads::scenarios::AclPipeline;

fn main() {
    banner(
        "Figure 2",
        "dynamic vs static ACL order under drop-rate changes (BlueField2 model)",
    );
    let pipeline = AclPipeline::build(12, 4);
    let params = CostParams::bluefield2();

    let mut static_nic = SmartNic::new(pipeline.graph.clone(), params.clone()).unwrap();
    let mut managed = SmartNic::new(pipeline.graph.clone(), params.clone()).unwrap();
    managed.set_instrumentation(true, 64);
    let mut controller = Controller::new(
        SimTarget::live(managed),
        pipeline.graph.clone(),
        // Figure 2 isolates the reordering optimization (the paper applies
        // only dynamic ACL ordering here).
        Optimizer::new(CostModel::new(params)).with_config(OptimizerConfig {
            enable_cache: false,
            enable_merge: false,
            enable_groups: false,
            ..OptimizerConfig::default()
        }),
        ControllerConfig::default(),
    )
    .unwrap();

    // Dropping-rate schedule: the dominant ACL rotates at t = 24s and 48s
    // (the paper's "dropping rate change" arrows).
    let schedule: [(u64, [f64; 4]); 3] = [
        (0, [0.05, 0.05, 0.70, 0.05]),
        (24, [0.70, 0.05, 0.05, 0.05]),
        (48, [0.05, 0.70, 0.05, 0.05]),
    ];
    header(&["time_s", "static_gbps", "dynamic_gbps", "event"]);
    let window_s = 4u64;
    for t in (0..72).step_by(window_s as usize) {
        let rates = schedule
            .iter()
            .rev()
            .find(|(start, _)| t >= *start)
            .map(|(_, r)| *r)
            .unwrap();
        let mut gen = pipeline.traffic(&rates, 2000, t);
        let batch = gen.batch(20_000);
        let s = static_nic.measure(batch.clone());
        let d = controller.target.nic.measure(batch);
        let report = controller.tick().unwrap();
        let event = if schedule.iter().any(|(start, _)| *start == t && t > 0) {
            "dropping-rate change"
        } else if report.deployed {
            "reoptimized"
        } else {
            ""
        };
        row(&[
            t.to_string(),
            f(s.throughput_gbps),
            f(d.throughput_gbps),
            event.to_string(),
        ]);
    }
}
