//! Figure 12: profiling (counter-instrumentation) overhead.
//!
//! Latency increase and throughput degradation vs. the number of
//! per-packet counter updates (20/30/40), for simple (1-primitive) and
//! complex (8-primitive) actions, with and without 1/1024 packet
//! sampling, on the Agilio CX and BlueField2 models.

use pipeleon_bench::{banner, f, header, row};
use pipeleon_cost::CostParams;
use pipeleon_ir::{MatchKind, MatchValue, Primitive, ProgramBuilder, ProgramGraph, TableEntry};
use pipeleon_sim::{Packet, SmartNic};

/// A linear program with `tables` tables of `prims` primitives each —
/// instrumentation updates one action counter per table per packet.
fn program(tables: usize, prims: usize) -> ProgramGraph {
    let mut b = ProgramBuilder::named(format!("prof_{tables}x{prims}"));
    let fields: Vec<_> = (0..4).map(|i| b.field(&format!("f{i}"))).collect();
    let mut first = None;
    for i in 0..tables {
        let t = b
            .table(format!("t{i}"))
            .key(fields[i % 4], MatchKind::Exact)
            .action(
                "proc",
                (0..prims).map(|_| Primitive::Nop).collect::<Vec<_>>(),
            )
            .entry(TableEntry::new(vec![MatchValue::Exact(0)], 0))
            .finish();
        first.get_or_insert(t);
    }
    b.seal(first.unwrap()).expect("valid")
}

fn packets(g: &ProgramGraph, n: usize) -> Vec<Packet> {
    (0..n)
        .map(|i| {
            let mut p = Packet::new(&g.fields);
            for fi in 0..4 {
                p.set(g.fields.get(&format!("f{fi}")).unwrap(), (i as u64) % 64);
            }
            p
        })
        .collect()
}

fn main() {
    banner(
        "Figure 12",
        "counter instrumentation overhead (latency / throughput), Agilio + BlueField2 models",
    );
    header(&[
        "target",
        "counter_updates",
        "variant",
        "latency_increase_pct",
        "throughput_degradation_pct",
    ]);
    for params in [CostParams::agilio_cx(), CostParams::bluefield2()] {
        for updates in [20usize, 30, 40] {
            for (variant, prims, sample) in [
                ("simple_action", 1usize, 1u64),
                ("complex_action", 8, 1),
                ("simple_action_sampling_1_1024", 1, 1024),
            ] {
                let g = program(updates, prims);
                // Uninstrumented baseline.
                let mut nic = SmartNic::new(g.clone(), params.clone()).unwrap();
                let base = nic.measure(packets(&g, 20_000));
                // Instrumented.
                let mut nic = SmartNic::new(g.clone(), params.clone()).unwrap();
                nic.set_instrumentation(true, sample);
                let inst = nic.measure(packets(&g, 20_000));
                let lat_inc =
                    100.0 * (inst.mean_latency_ns - base.mean_latency_ns) / base.mean_latency_ns;
                let tput_deg =
                    100.0 * (base.throughput_gbps - inst.throughput_gbps) / base.throughput_gbps;
                row(&[
                    params.name.clone(),
                    updates.to_string(),
                    variant.into(),
                    f(lat_inc),
                    f(tput_deg.max(0.0)),
                ]);
            }
        }
    }
}
