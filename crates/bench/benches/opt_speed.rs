//! Criterion micro-benchmarks of the optimizer's building blocks: the
//! full top-k search vs. ESearch, pipelet partitioning, hot-pipelet
//! scoring, and plan application.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipeleon::hotspot::score_pipelets;
use pipeleon::pipelet::partition;
use pipeleon::{apply_plan, Optimizer, OptimizerConfig, ResourceLimits};
use pipeleon_cost::{CostModel, CostParams};
use pipeleon_workloads::profiles::{random_profile, ProfileSynthConfig};
use pipeleon_workloads::synth::{synthesize, SynthConfig};

fn bench_optimize(c: &mut Criterion) {
    let model = CostModel::new(CostParams::emulated_nic());
    let mut group = c.benchmark_group("optimize");
    group.sample_size(20);
    for (label, pn, pl) in [("pn12_pl2", 12usize, 2usize), ("pn15_pl3", 15, 3)] {
        let g = synthesize(&SynthConfig {
            pipelets: pn,
            pipelet_len: pl,
            seed: 7,
            ..SynthConfig::default()
        });
        let profile = random_profile(&g, &ProfileSynthConfig::default(), 9);
        for k in [0.2f64, 1.0] {
            let optimizer = Optimizer::new(model.clone()).with_config(OptimizerConfig {
                top_k_fraction: k,
                ..OptimizerConfig::default()
            });
            group.bench_with_input(
                BenchmarkId::new(label, format!("k{}", (k * 100.0) as u32)),
                &k,
                |b, _| {
                    b.iter(|| {
                        optimizer
                            .optimize(&g, &profile, ResourceLimits::unlimited())
                            .unwrap()
                            .est_gain_ns
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_components(c: &mut Criterion) {
    let model = CostModel::new(CostParams::emulated_nic());
    let g = synthesize(&SynthConfig {
        pipelets: 15,
        pipelet_len: 3,
        seed: 3,
        ..SynthConfig::default()
    });
    let profile = random_profile(&g, &ProfileSynthConfig::default(), 4);
    c.bench_function("partition", |b| b.iter(|| partition(&g, 24).len()));
    let pipelets = partition(&g, 24);
    c.bench_function("score_pipelets", |b| {
        b.iter(|| score_pipelets(&model, &g, &profile, &pipelets).len())
    });
    let optimizer = Optimizer::new(model.clone()).esearch();
    let outcome = optimizer
        .optimize(&g, &profile, ResourceLimits::unlimited())
        .unwrap();
    let cfg = OptimizerConfig::default();
    c.bench_function("apply_plan", |b| {
        b.iter(|| {
            apply_plan(&g, &outcome.plan, &model, &profile, &cfg)
                .unwrap()
                .graph
                .num_nodes()
        })
    });
    c.bench_function("expected_latency", |b| {
        b.iter(|| model.expected_latency(&g, &profile))
    });
}

criterion_group!(benches, bench_optimize, bench_components);
criterion_main!(benches);
