//! Figure 11: runtime profile-guided optimization, three case studies.
//!
//! * (a) Service load balancer on the BlueField2 model: the baseline
//!   caches the whole program statically. An entry-insertion burst
//!   invalidates its cache and tanks its throughput; Pipeleon removes /
//!   re-scopes caches. A later ACL drop-rate change triggers reordering.
//! * (b) DASH-style packet routing on the Agilio model (reload-based
//!   reconfiguration with downtime): merge small static tables + reorder
//!   ACLs first; switch to caching when flows become long-lived with even
//!   drop rates.
//! * (c) NF composition on the emulated NIC model: the dominant NF (and
//!   hence the top-k pipelets) changes over time; reported as average
//!   emulated latency per window, Pipeleon vs. the unoptimized baseline.

use pipeleon::plan::SegmentKind;
use pipeleon::search::Optimizer;
use pipeleon::OptimizerConfig;
use pipeleon_bench::{apply_manual, banner, f, header, row};
use pipeleon_cost::{CostModel, CostParams};
use pipeleon_ir::{MatchValue, TableEntry};
use pipeleon_runtime::{Controller, ControllerConfig, SimTarget};
use pipeleon_sim::SmartNic;
use pipeleon_workloads::scenarios::{DashRouting, LoadBalancer, NfComposition};

fn case_a_load_balancer() {
    println!("# --- (a) load balancer, BlueField2 model ---");
    header(&["panel", "time_s", "baseline_gbps", "pipeleon_gbps", "event"]);
    let lb = LoadBalancer::build();
    let params = CostParams::bluefield2();

    // Baseline: one whole-program cache, applied statically, never
    // adapted.
    let order: Vec<_> = lb
        .regular
        .iter()
        .chain(&lb.lb)
        .chain(&lb.acls)
        .copied()
        .collect();
    let n = order.len();
    let baseline_graph = apply_manual(
        &lb.graph,
        order,
        vec![(0, n, SegmentKind::Cache)],
        &params,
        &OptimizerConfig::default(),
    )
    .graph;
    let mut baseline = SmartNic::new(baseline_graph, params.clone()).unwrap();

    let mut managed = SmartNic::new(lb.graph.clone(), params.clone()).unwrap();
    managed.set_instrumentation(true, 64);
    let mut controller = Controller::new(
        SimTarget::live(managed),
        lb.graph.clone(),
        Optimizer::new(CostModel::new(params)),
        ControllerConfig::default(),
    )
    .unwrap();

    let mut entry_seq = 0u64;
    for window in 0..10u64 {
        let t = window * 5;
        // Windows 3..6: high entry-insertion rate on the LB tables.
        let churn = (3..6).contains(&window);
        if churn {
            for _ in 0..300 {
                entry_seq += 1;
                // Baseline suffers the same churn: its whole-program cache
                // is flushed per insertion (cache invalidation).
                baseline
                    .insert_entry(
                        lb.lb[(entry_seq % 2) as usize],
                        TableEntry::new(vec![MatchValue::Exact(1 << 20 | entry_seq)], 0),
                    )
                    .unwrap();
                let caches: Vec<_> = baseline
                    .graph()
                    .tables()
                    .filter(|(_, t)| t.cache_role == pipeleon_ir::CacheRole::FlowCache)
                    .map(|(n, _)| n.id)
                    .collect();
                for c in caches {
                    baseline.flush_cache(c);
                }
                controller
                    .insert_entry(
                        lb.lb[(entry_seq % 2) as usize],
                        TableEntry::new(vec![MatchValue::Exact(1 << 20 | entry_seq)], 0),
                    )
                    .unwrap();
            }
        }
        // Windows 6+: the ACL drop rates shift.
        let rates = if window < 6 {
            [0.05, 0.10]
        } else {
            [0.60, 0.05]
        };
        let mut gen = lb.traffic(&rates, 700, window);
        let batch = gen.batch(20_000);
        let b = baseline.measure(batch.clone());
        let m = controller.target.nic.measure(batch);
        let report = controller.tick().unwrap();
        let event = match (window, report.deployed) {
            (3, _) => "high insertion rate starts",
            (6, _) => "dropping-rate change",
            (_, true) => "reoptimized",
            _ => "",
        };
        row(&[
            "a".into(),
            t.to_string(),
            f(b.throughput_gbps),
            f(m.throughput_gbps),
            event.into(),
        ]);
    }
}

fn case_b_dash_routing() {
    println!("# --- (b) DASH packet routing, Agilio CX model (reload) ---");
    header(&[
        "panel",
        "time_s",
        "baseline_gbps",
        "pipeleon_gbps",
        "downtime_s",
        "event",
    ]);
    let dash = DashRouting::build();
    let params = CostParams::agilio_cx();
    let mut baseline = SmartNic::new(dash.graph.clone(), params.clone()).unwrap();
    let mut managed = SmartNic::new(dash.graph.clone(), params.clone()).unwrap();
    managed.set_instrumentation(true, 64);
    let mut controller = Controller::new(
        SimTarget::reloading(managed, 2.0),
        dash.graph.clone(),
        Optimizer::new(CostModel::new(params)),
        ControllerConfig::default(),
    )
    .unwrap();

    for window in 0..12u64 {
        let t = window * 10;
        // Phase 1 (0..6): biased ACL drops, small static tables dominate.
        // Phase 2 (6..): even drops + long-lived flows.
        let (rates, flows, zipf) = if window < 6 {
            ([0.55, 0.05, 0.02], 30_000, 0.0)
        } else {
            ([0.10, 0.10, 0.10], 96, 1.1)
        };
        let mut gen = dash.traffic(&rates, flows, zipf, window);
        let batch = gen.batch(20_000);
        let b = baseline.measure(batch.clone());
        let m = controller.target.nic.measure(batch);
        let report = controller.tick().unwrap();
        let event = match (window, report.deployed) {
            (6, _) => "traffic becomes long-lived / even drops",
            (_, true) => "reoptimized (reload)",
            _ => "",
        };
        row(&[
            "b".into(),
            t.to_string(),
            f(b.throughput_gbps),
            f(m.throughput_gbps),
            f(report.downtime_s),
            event.into(),
        ]);
    }
}

fn case_c_nf_composition() {
    println!("# --- (c) NF composition, emulated NIC model ---");
    header(&[
        "panel",
        "window",
        "dominant_nf",
        "baseline_latency_ns",
        "pipeleon_latency_ns",
        "reduction_pct",
    ]);
    let nf = NfComposition::build();
    let params = CostParams::emulated_nic();
    let mut baseline = SmartNic::new(nf.graph.clone(), params.clone()).unwrap();
    let mut managed = SmartNic::new(nf.graph.clone(), params.clone()).unwrap();
    managed.set_instrumentation(true, 16);
    let optimizer = Optimizer::new(CostModel::new(params)).with_config(OptimizerConfig {
        top_k_fraction: 0.3, // the paper's top-30% pipelet selection
        ..OptimizerConfig::default()
    });
    let mut controller = Controller::new(
        SimTarget::live(managed),
        nf.graph.clone(),
        optimizer,
        ControllerConfig::default(),
    )
    .unwrap();

    let phases = [
        ("NF1", [0.8, 0.1]),
        ("NF2", [0.1, 0.8]),
        ("NF3", [0.1, 0.1]),
    ];
    let mut reductions = Vec::new();
    for (p, (label, shares)) in phases.iter().enumerate() {
        for w in 0..3u64 {
            let window = p as u64 * 3 + w;
            let mut gen = nf.traffic(shares, 512, window);
            let batch = gen.batch(15_000);
            let b = baseline.measure(batch.clone());
            let m = controller.target.nic.measure(batch);
            controller.tick().unwrap();
            let red = 100.0 * (b.mean_latency_ns - m.mean_latency_ns) / b.mean_latency_ns;
            if w > 0 {
                reductions.push(red);
            }
            row(&[
                "c".into(),
                window.to_string(),
                (*label).into(),
                f(b.mean_latency_ns),
                f(m.mean_latency_ns),
                f(red),
            ]);
        }
    }
    println!(
        "# steady-state average latency reduction: {:.1}% (paper: 49%)",
        reductions.iter().sum::<f64>() / reductions.len() as f64
    );
}

fn main() {
    banner(
        "Figure 11",
        "runtime profile-guided optimization case studies",
    );
    case_a_load_balancer();
    case_b_dash_routing();
    case_c_nf_composition();
}
