//! Figure 13: optimization turnaround time vs. top-k, as a CDF over
//! synthesized programs grouped by pipelet count (PN) and length (PL).
//!
//! The paper's absolute times are seconds (a Python prototype searching
//! larger spaces); this Rust implementation is orders of magnitude
//! faster, so compare the *relative* ordering: time grows with PN, PL,
//! and k, with ESearch (k = 100%) slowest.

use pipeleon::{Optimizer, OptimizerConfig, ResourceLimits};
use pipeleon_bench::{banner, header, print_cdf};
use pipeleon_cost::{CostModel, CostParams};
use pipeleon_workloads::profiles::{random_profile, ProfileSynthConfig};
use pipeleon_workloads::synth::{synthesize, SynthConfig};

fn main() {
    banner(
        "Figure 13",
        "optimization time CDF per top-k, three program groups (PN, PL)",
    );
    header(&["group", "k", "search_time_us", "cdf"]);
    let model = CostModel::new(CostParams::emulated_nic());
    let groups = [
        ("PN=12_PL=2", 12usize, 2usize),
        ("PN=13_PL=3", 13, 3),
        ("PN=15_PL=3", 15, 3),
    ];
    const PROGRAMS_PER_GROUP: usize = 100;
    for (label, pn, pl) in groups {
        for k in [0.2, 0.3, 0.4, 1.0] {
            let mut times_us = Vec::with_capacity(PROGRAMS_PER_GROUP);
            for seed in 0..PROGRAMS_PER_GROUP as u64 {
                let g = synthesize(&SynthConfig {
                    pipelets: pn,
                    pipelet_len: pl,
                    seed: seed * 31 + pn as u64,
                    ..SynthConfig::default()
                });
                let profile = random_profile(&g, &ProfileSynthConfig::default(), seed * 17 + 3);
                let optimizer = Optimizer::new(model.clone()).with_config(OptimizerConfig {
                    top_k_fraction: k,
                    ..OptimizerConfig::default()
                });
                let outcome = optimizer
                    .optimize(&g, &profile, ResourceLimits::unlimited())
                    .expect("optimizes");
                times_us.push(outcome.search_time.as_secs_f64() * 1e6);
            }
            let k_label = if k >= 1.0 {
                "ESearch(100%)".to_string()
            } else {
                format!("{}%", (k * 100.0) as u32)
            };
            print_cdf(&[label.to_string(), k_label], &times_us, 20);
        }
    }
}
