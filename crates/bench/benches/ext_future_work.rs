//! Extensions beyond the paper's prototype — its §6 future-work items,
//! implemented and measured:
//!
//! * **Hierarchical memory** ("Hierarchical memory support"): assign the
//!   hottest tables to an SRAM tier under a capacity budget; sweep the
//!   budget and report predicted + emulated latency.
//! * **Incremental re-optimization** ("compute new optimizations …
//!   incrementally"): cache per-pipelet candidate lists keyed by local
//!   profile signatures; re-optimize after a localized profile change and
//!   compare search effort/time against the from-scratch search.

use pipeleon::hierarchical::assign_tiers;
use pipeleon::{IncrementalState, Optimizer, ResourceLimits};
use pipeleon_bench::{banner, f, header, row};
use pipeleon_cost::{CostModel, CostParams};
use pipeleon_sim::SmartNic;
use pipeleon_workloads::profiles::{random_profile, ProfileSynthConfig};
use pipeleon_workloads::scenarios::DashRouting;
use pipeleon_workloads::synth::{synthesize, SynthConfig};

fn memory_tiers() {
    println!("# --- hierarchical memory: SRAM budget sweep (DASH on Agilio model) ---");
    header(&[
        "sram_budget_bytes",
        "tables_promoted",
        "sram_used_bytes",
        "predicted_latency_ns",
        "emulated_latency_ns",
    ]);
    let dash = DashRouting::build();
    for budget in [0.0, 256.0, 1024.0, 4096.0, 65536.0] {
        let mut params = CostParams::agilio_cx();
        params.tiers.sram_capacity_bytes = budget;
        params.tiers.sram_speedup = 3.0;
        let model = CostModel::new(params.clone());
        // Profile from instrumented traffic.
        let mut nic = SmartNic::new(dash.graph.clone(), params.clone()).unwrap();
        nic.set_instrumentation(true, 1);
        let mut gen = dash.traffic(&[0.1, 0.1, 0.1], 500, 0.0, 3);
        nic.measure(gen.batch(10_000));
        let profile = nic.take_profile();
        let plan = assign_tiers(&model, &dash.graph, &profile);
        // Measure the assignment on the emulator.
        let mut nic = SmartNic::new(dash.graph.clone(), params.clone()).unwrap();
        nic.set_memory_tiers(plan.tiers.clone());
        let mut gen = dash.traffic(&[0.1, 0.1, 0.1], 500, 0.0, 4);
        let stats = nic.measure(gen.batch(10_000));
        row(&[
            f(budget),
            plan.promoted.len().to_string(),
            f(plan.sram_used),
            f(plan.expected_latency),
            f(stats.mean_latency_ns),
        ]);
    }
}

fn incremental() {
    println!("# --- incremental re-optimization: localized profile change ---");
    header(&[
        "run",
        "candidates_evaluated",
        "candidates_reused",
        "search_time_us",
        "est_gain_ns",
    ]);
    let g = synthesize(&SynthConfig {
        pipelets: 15,
        pipelet_len: 3,
        seed: 11,
        ..SynthConfig::default()
    });
    let base_profile = random_profile(&g, &ProfileSynthConfig::default(), 21);
    let optimizer = Optimizer::new(CostModel::new(CostParams::emulated_nic())).esearch();
    let mut state = IncrementalState::new();
    let report = |label: &str, o: &pipeleon::OptimizationOutcome| {
        row(&[
            label.into(),
            o.candidates_evaluated.to_string(),
            o.candidates_reused.to_string(),
            f(o.search_time.as_secs_f64() * 1e6),
            f(o.est_gain_ns),
        ]);
    };
    let cold = optimizer
        .optimize_incremental(&g, &base_profile, ResourceLimits::unlimited(), &mut state)
        .unwrap();
    report("cold", &cold);
    let warm = optimizer
        .optimize_incremental(&g, &base_profile, ResourceLimits::unlimited(), &mut state)
        .unwrap();
    report("warm_unchanged", &warm);
    // Localized change: shift one branch's split drastically.
    let mut changed = base_profile.clone();
    if let Some(branch) = g.iter_nodes().find(|n| n.as_branch().is_some()) {
        changed.record_edge(pipeleon_ir::EdgeRef::new(branch.id, 1), 10_000_000);
    }
    let localized = optimizer
        .optimize_incremental(&g, &changed, ResourceLimits::unlimited(), &mut state)
        .unwrap();
    report("warm_one_branch_shift", &localized);
    // Global change: fresh random profile.
    let global = random_profile(&g, &ProfileSynthConfig::default(), 99);
    let rerun = optimizer
        .optimize_incremental(&g, &global, ResourceLimits::unlimited(), &mut state)
        .unwrap();
    report("warm_global_shift", &rerun);
}

fn main() {
    banner(
        "Extensions",
        "paper §6 future work: hierarchical memory + incremental re-optimization",
    );
    memory_tiers();
    incremental();
}
