//! Vector clocks and epochs — the happens-before machinery.
//!
//! Every model thread carries a [`VClock`]; every synchronization object
//! (atomic location, mutex) carries the clock its last release published.
//! Data accesses are summarized as [`Epoch`]s (a FastTrack-style
//! `(thread, counter)` pair): an access `e` happens-before the current
//! operation of thread `t` iff `t`'s clock covers `e`. Two accesses to
//! the same cell with neither covering the other — and at least one a
//! write — are a data race.

/// Maximum number of concurrently live model threads per execution.
pub const MAX_THREADS: usize = 8;

/// A fixed-width vector clock over model thread ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock {
    t: [u32; MAX_THREADS],
}

impl VClock {
    /// The zero clock (happens-before everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pointwise maximum: after `self.join(o)`, everything that
    /// happened-before `o` also happens-before `self`.
    pub fn join(&mut self, o: &VClock) {
        for i in 0..MAX_THREADS {
            self.t[i] = self.t[i].max(o.t[i]);
        }
    }

    /// Advances `tid`'s own component (one per tracked operation).
    pub fn tick(&mut self, tid: usize) {
        self.t[tid] += 1;
    }

    /// The component for `tid`.
    pub fn get(&self, tid: usize) -> u32 {
        self.t[tid]
    }

    /// This thread's current epoch — its own component, as a summary of
    /// "everything I have done so far".
    pub fn epoch(&self, tid: usize) -> Epoch {
        Epoch {
            tid,
            at: self.t[tid],
        }
    }

    /// Whether the access summarized by `e` happens-before a thread
    /// whose clock is `self`.
    pub fn covers(&self, e: Epoch) -> bool {
        self.t[e.tid] >= e.at
    }

    /// Forgets everything (used when a Relaxed store breaks a release
    /// sequence: subsequent acquire loads synchronize with nothing).
    pub fn clear(&mut self) {
        self.t = [0; MAX_THREADS];
    }
}

/// One recorded access: which thread, and where that thread's own clock
/// component stood when it happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Epoch {
    /// The accessing model thread.
    pub tid: usize,
    /// That thread's own clock component at the access.
    pub at: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max_and_covers_tracks_hb() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0); // a = [2, 0, ...]
        let mut b = VClock::new();
        b.tick(1); // b = [0, 1, ...]
        let e_a = a.epoch(0);
        assert!(!b.covers(e_a), "no edge yet");
        b.join(&a);
        assert!(b.covers(e_a), "join creates the edge");
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 1);
    }

    #[test]
    fn clear_forgets_the_release() {
        let mut a = VClock::new();
        a.tick(2);
        let e = a.epoch(2);
        let mut sync = a.clone();
        sync.clear();
        let mut reader = VClock::new();
        reader.join(&sync);
        assert!(!reader.covers(e), "cleared clock publishes nothing");
    }
}
