//! Tracked drop-in replacements for `std::sync::atomic`,
//! `UnsafeCell`, `Mutex`, and `thread` primitives.
//!
//! Inside a model execution every operation on these types is a
//! scheduling point and feeds the happens-before machinery:
//!
//! - **Values** are sequentially consistent: each shim holds a real
//!   `std` atomic accessed with `SeqCst` (operations are serialized by
//!   the scheduler token anyway), so a load always observes the most
//!   recent store in the explored interleaving.
//! - **Orderings** are tracked separately with vector clocks under the
//!   C11 release/acquire rules: a `Release` store publishes the
//!   storer's clock on the location, an `Acquire` load joins it, a
//!   `Relaxed` store *breaks* the release sequence (clears the
//!   location's clock), and read-modify-writes continue it. A weakened
//!   ordering therefore does not change the values the model observes —
//!   it removes happens-before edges, which the [`cell::CheckCell`]
//!   race detector then reports when a data access is no longer
//!   ordered.
//!
//! Outside a model execution (no ambient [`sched::ExecCtx`] — e.g. the
//! same code running in an ordinary test, or during panic unwinding)
//! every shim falls back to the plain `std` operation with the caller's
//! orderings.

use crate::clock::VClock;
use crate::sched::{self, current, ExecCtx, LocSt};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The ambient model context, suppressed while unwinding: shim calls
/// made from destructors of a failing execution must not re-enter the
/// scheduler (the scheduler panics on `abort`, and a panic inside a
/// drop during unwind would abort the process).
fn active_model() -> Option<(Arc<ExecCtx>, usize)> {
    if std::thread::panicking() {
        None
    } else {
        current()
    }
}

/// Lazily binds a tracked object to a location id in the current
/// execution. The stamp packs `(exec_id << 32) | (loc + 1)`; a stale
/// stamp (object created in an earlier execution, e.g. re-used across
/// `explore` iterations) re-registers.
#[derive(Debug)]
struct LocHandle {
    stamp: std::sync::atomic::AtomicU64,
}

impl Default for LocHandle {
    fn default() -> Self {
        Self::new()
    }
}

impl LocHandle {
    const fn new() -> Self {
        Self {
            stamp: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn get(&self, ctx: &Arc<ExecCtx>, mk: impl FnOnce() -> LocSt) -> usize {
        let s = self.stamp.load(Ordering::Relaxed);
        if s != 0 && (s >> 32) == ctx.exec_id {
            return (s as u32 as usize) - 1;
        }
        let loc = ctx.register_location(mk());
        debug_assert!(loc < u32::MAX as usize);
        self.stamp
            .store((ctx.exec_id << 32) | (loc as u64 + 1), Ordering::Relaxed);
        loc
    }
}

fn acquires(o: Ordering) -> bool {
    matches!(o, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releases(o: Ordering) -> bool {
    matches!(o, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Happens-before bookkeeping for a tracked load.
fn track_load(ctx: &Arc<ExecCtx>, tid: usize, loc: usize, ord: Ordering) {
    ctx.with_loc(tid, loc, |l, clock| {
        if let LocSt::Atomic { sync } = l {
            if acquires(ord) {
                clock.join(sync);
            }
        }
        Ok(())
    });
}

/// Happens-before bookkeeping for a tracked store: a release store
/// heads a new release sequence (replaces the location clock); a
/// relaxed store breaks the current one (clears it).
fn track_store(ctx: &Arc<ExecCtx>, tid: usize, loc: usize, ord: Ordering) {
    ctx.with_loc(tid, loc, |l, clock| {
        if let LocSt::Atomic { sync } = l {
            if releases(ord) {
                *sync = clock.clone();
            } else {
                sync.clear();
            }
        }
        Ok(())
    });
}

/// Happens-before bookkeeping for a read-modify-write: acquires join
/// the location clock in, releases join the thread clock into the
/// location (an RMW continues an existing release sequence, so the old
/// clock is kept either way).
fn track_rmw(ctx: &Arc<ExecCtx>, tid: usize, loc: usize, ord: Ordering) {
    ctx.with_loc(tid, loc, |l, clock| {
        if let LocSt::Atomic { sync } = l {
            if acquires(ord) {
                clock.join(sync);
            }
            if releases(ord) {
                let snapshot = clock.clone();
                sync.join(&snapshot);
            }
        }
        Ok(())
    });
}

fn new_atomic_loc() -> LocSt {
    LocSt::Atomic {
        sync: VClock::new(),
    }
}

macro_rules! int_atomic {
    ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty) => {
        $(#[$doc])*
        pub struct $name {
            v: std::sync::atomic::$std,
            loc: LocHandle,
        }

        impl $name {
            /// Creates a new tracked atomic.
            pub const fn new(v: $ty) -> Self {
                Self {
                    v: std::sync::atomic::$std::new(v),
                    loc: LocHandle::new(),
                }
            }

            /// Tracked load.
            pub fn load(&self, ord: Ordering) -> $ty {
                if let Some((ctx, tid)) = active_model() {
                    ctx.yield_point(tid);
                    let val = self.v.load(Ordering::SeqCst);
                    let loc = self.loc.get(&ctx, new_atomic_loc);
                    track_load(&ctx, tid, loc, ord);
                    val
                } else {
                    self.v.load(ord)
                }
            }

            /// Tracked store.
            pub fn store(&self, val: $ty, ord: Ordering) {
                if let Some((ctx, tid)) = active_model() {
                    ctx.yield_point(tid);
                    self.v.store(val, Ordering::SeqCst);
                    let loc = self.loc.get(&ctx, new_atomic_loc);
                    track_store(&ctx, tid, loc, ord);
                } else {
                    self.v.store(val, ord);
                }
            }

            /// Tracked swap (read-modify-write).
            pub fn swap(&self, val: $ty, ord: Ordering) -> $ty {
                self.rmw(ord, |a| a.swap(val, Ordering::SeqCst), |a| a.swap(val, ord))
            }

            /// Tracked fetch-add (read-modify-write).
            pub fn fetch_add(&self, val: $ty, ord: Ordering) -> $ty {
                self.rmw(
                    ord,
                    |a| a.fetch_add(val, Ordering::SeqCst),
                    |a| a.fetch_add(val, ord),
                )
            }

            /// Tracked fetch-sub (read-modify-write).
            pub fn fetch_sub(&self, val: $ty, ord: Ordering) -> $ty {
                self.rmw(
                    ord,
                    |a| a.fetch_sub(val, Ordering::SeqCst),
                    |a| a.fetch_sub(val, ord),
                )
            }

            /// Tracked fetch-or (read-modify-write).
            pub fn fetch_or(&self, val: $ty, ord: Ordering) -> $ty {
                self.rmw(
                    ord,
                    |a| a.fetch_or(val, Ordering::SeqCst),
                    |a| a.fetch_or(val, ord),
                )
            }

            /// Tracked fetch-and (read-modify-write).
            pub fn fetch_and(&self, val: $ty, ord: Ordering) -> $ty {
                self.rmw(
                    ord,
                    |a| a.fetch_and(val, Ordering::SeqCst),
                    |a| a.fetch_and(val, ord),
                )
            }

            /// Tracked fetch-max (read-modify-write).
            pub fn fetch_max(&self, val: $ty, ord: Ordering) -> $ty {
                self.rmw(
                    ord,
                    |a| a.fetch_max(val, Ordering::SeqCst),
                    |a| a.fetch_max(val, ord),
                )
            }

            /// Tracked compare-exchange: RMW semantics on success, load
            /// semantics (with `fail`) on failure.
            pub fn compare_exchange(
                &self,
                cur: $ty,
                new: $ty,
                succ: Ordering,
                fail: Ordering,
            ) -> Result<$ty, $ty> {
                if let Some((ctx, tid)) = active_model() {
                    ctx.yield_point(tid);
                    let r = self
                        .v
                        .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst);
                    let loc = self.loc.get(&ctx, new_atomic_loc);
                    match r {
                        Ok(_) => track_rmw(&ctx, tid, loc, succ),
                        Err(_) => track_load(&ctx, tid, loc, fail),
                    }
                    r
                } else {
                    self.v.compare_exchange(cur, new, succ, fail)
                }
            }

            /// Tracked compare-exchange-weak (never fails spuriously in
            /// the model — spurious failure is a hardware artifact the
            /// SC executor does not reproduce).
            pub fn compare_exchange_weak(
                &self,
                cur: $ty,
                new: $ty,
                succ: Ordering,
                fail: Ordering,
            ) -> Result<$ty, $ty> {
                self.compare_exchange(cur, new, succ, fail)
            }

            /// Untracked exclusive access (no concurrency possible).
            pub fn get_mut(&mut self) -> &mut $ty {
                self.v.get_mut()
            }

            /// Consumes the atomic, returning the value.
            pub fn into_inner(self) -> $ty {
                self.v.into_inner()
            }

            fn rmw(
                &self,
                ord: Ordering,
                model_op: impl FnOnce(&std::sync::atomic::$std) -> $ty,
                plain_op: impl FnOnce(&std::sync::atomic::$std) -> $ty,
            ) -> $ty {
                if let Some((ctx, tid)) = active_model() {
                    ctx.yield_point(tid);
                    let val = model_op(&self.v);
                    let loc = self.loc.get(&ctx, new_atomic_loc);
                    track_rmw(&ctx, tid, loc, ord);
                    val
                } else {
                    plain_op(&self.v)
                }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // Debug must not perturb the schedule: peek untracked.
                write!(f, "{}({:?})", stringify!($name), self.v)
            }
        }
    };
}

int_atomic!(
    /// Tracked `AtomicUsize`.
    AtomicUsize,
    AtomicUsize,
    usize
);
int_atomic!(
    /// Tracked `AtomicU64`.
    AtomicU64,
    AtomicU64,
    u64
);
int_atomic!(
    /// Tracked `AtomicU32`.
    AtomicU32,
    AtomicU32,
    u32
);

/// Tracked `AtomicBool`.
pub struct AtomicBool {
    v: std::sync::atomic::AtomicBool,
    loc: LocHandle,
}

impl AtomicBool {
    /// Creates a new tracked atomic flag.
    pub const fn new(v: bool) -> Self {
        Self {
            v: std::sync::atomic::AtomicBool::new(v),
            loc: LocHandle::new(),
        }
    }

    /// Tracked load.
    pub fn load(&self, ord: Ordering) -> bool {
        if let Some((ctx, tid)) = active_model() {
            ctx.yield_point(tid);
            let val = self.v.load(Ordering::SeqCst);
            let loc = self.loc.get(&ctx, new_atomic_loc);
            track_load(&ctx, tid, loc, ord);
            val
        } else {
            self.v.load(ord)
        }
    }

    /// Tracked store.
    pub fn store(&self, val: bool, ord: Ordering) {
        if let Some((ctx, tid)) = active_model() {
            ctx.yield_point(tid);
            self.v.store(val, Ordering::SeqCst);
            let loc = self.loc.get(&ctx, new_atomic_loc);
            track_store(&ctx, tid, loc, ord);
        } else {
            self.v.store(val, ord);
        }
    }

    /// Tracked swap (read-modify-write).
    pub fn swap(&self, val: bool, ord: Ordering) -> bool {
        if let Some((ctx, tid)) = active_model() {
            ctx.yield_point(tid);
            let out = self.v.swap(val, Ordering::SeqCst);
            let loc = self.loc.get(&ctx, new_atomic_loc);
            track_rmw(&ctx, tid, loc, ord);
            out
        } else {
            self.v.swap(val, ord)
        }
    }

    /// Untracked exclusive access.
    pub fn get_mut(&mut self) -> &mut bool {
        self.v.get_mut()
    }
}

impl Default for AtomicBool {
    fn default() -> Self {
        Self::new(false)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicBool({:?})", self.v)
    }
}

/// Tracked `AtomicPtr`.
pub struct AtomicPtr<T> {
    v: std::sync::atomic::AtomicPtr<T>,
    loc: LocHandle,
}

impl<T> AtomicPtr<T> {
    /// Creates a new tracked atomic pointer.
    pub const fn new(p: *mut T) -> Self {
        Self {
            v: std::sync::atomic::AtomicPtr::new(p),
            loc: LocHandle::new(),
        }
    }

    /// Tracked load.
    pub fn load(&self, ord: Ordering) -> *mut T {
        if let Some((ctx, tid)) = active_model() {
            ctx.yield_point(tid);
            let val = self.v.load(Ordering::SeqCst);
            let loc = self.loc.get(&ctx, new_atomic_loc);
            track_load(&ctx, tid, loc, ord);
            val
        } else {
            self.v.load(ord)
        }
    }

    /// Tracked store.
    pub fn store(&self, p: *mut T, ord: Ordering) {
        if let Some((ctx, tid)) = active_model() {
            ctx.yield_point(tid);
            self.v.store(p, Ordering::SeqCst);
            let loc = self.loc.get(&ctx, new_atomic_loc);
            track_store(&ctx, tid, loc, ord);
        } else {
            self.v.store(p, ord);
        }
    }

    /// Tracked swap (read-modify-write).
    pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
        if let Some((ctx, tid)) = active_model() {
            ctx.yield_point(tid);
            let out = self.v.swap(p, Ordering::SeqCst);
            let loc = self.loc.get(&ctx, new_atomic_loc);
            track_rmw(&ctx, tid, loc, ord);
            out
        } else {
            self.v.swap(p, ord)
        }
    }

    /// Tracked compare-exchange.
    pub fn compare_exchange(
        &self,
        cur: *mut T,
        new: *mut T,
        succ: Ordering,
        fail: Ordering,
    ) -> Result<*mut T, *mut T> {
        if let Some((ctx, tid)) = active_model() {
            ctx.yield_point(tid);
            let r = self
                .v
                .compare_exchange(cur, new, Ordering::SeqCst, Ordering::SeqCst);
            let loc = self.loc.get(&ctx, new_atomic_loc);
            match r {
                Ok(_) => track_rmw(&ctx, tid, loc, succ),
                Err(_) => track_load(&ctx, tid, loc, fail),
            }
            r
        } else {
            self.v.compare_exchange(cur, new, succ, fail)
        }
    }

    /// Untracked exclusive access.
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.v.get_mut()
    }
}

pub mod cell {
    //! A tracked `UnsafeCell` with loom's closure-based access API.

    use super::{active_model, LocHandle, LocSt};

    /// A tracked `UnsafeCell`: every `with`/`with_mut` access is
    /// checked against all other accesses for happens-before ordering,
    /// and reads of never-written [`CheckCell::new_uninit`] cells are
    /// diagnosed.
    ///
    /// Outside a model, accesses compile down to `UnsafeCell::get`.
    #[derive(Debug)]
    pub struct CheckCell<T> {
        v: std::cell::UnsafeCell<T>,
        loc: LocHandle,
        born_init: bool,
    }

    // SAFETY: CheckCell adds only tracking state (plain atomics and a
    // bool) to UnsafeCell<T>; it is exactly as Send/Sync as the loom
    // UnsafeCell it mirrors — the *user* of the cell (e.g. the ring's
    // `Inner`) is responsible for the cross-thread access discipline,
    // which is precisely what the model checker verifies.
    unsafe impl<T: Send> Send for CheckCell<T> {}
    // SAFETY: see above; shared references only hand out raw pointers.
    unsafe impl<T: Sync> Sync for CheckCell<T> {}

    impl<T> CheckCell<T> {
        /// A cell whose initial value counts as initialized.
        pub fn new(v: T) -> Self {
            Self {
                v: std::cell::UnsafeCell::new(v),
                loc: LocHandle::new(),
                born_init: true,
            }
        }

        /// A cell whose payload (typically `MaybeUninit`) is *not*
        /// initialized: a model read before the first `with_mut` write
        /// is reported as a bug.
        pub fn new_uninit(v: T) -> Self {
            Self {
                v: std::cell::UnsafeCell::new(v),
                loc: LocHandle::new(),
                born_init: false,
            }
        }

        fn mk_loc(&self) -> LocSt {
            LocSt::Cell {
                write: None,
                reads: Vec::new(),
                init: self.born_init,
            }
        }

        /// Immutable (read) access. In a model: a scheduling point plus
        /// a race/uninit check against every concurrent access.
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            if let Some((ctx, tid)) = active_model() {
                ctx.yield_point(tid);
                let loc = self.loc.get(&ctx, || self.mk_loc());
                ctx.with_loc(tid, loc, |l, clock| {
                    if let LocSt::Cell { write, reads, init } = l {
                        if !*init {
                            return Err(format!(
                                "thread {tid} read an uninitialized cell \
                                 (no prior write to this slot)"
                            ));
                        }
                        if let Some(w) = write {
                            if !clock.covers(*w) {
                                return Err(format!(
                                    "data race: thread {tid} read a cell \
                                     concurrently written by thread {} \
                                     (write not ordered before the read)",
                                    w.tid
                                ));
                            }
                        }
                        let e = clock.epoch(tid);
                        if let Some(slot) = reads.iter_mut().find(|r| r.tid == tid) {
                            *slot = e;
                        } else {
                            reads.push(e);
                        }
                    }
                    Ok(())
                });
            }
            f(self.v.get())
        }

        /// Mutable (write) access. In a model: a scheduling point plus
        /// a race check against every concurrent read and write; marks
        /// the cell initialized.
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            if let Some((ctx, tid)) = active_model() {
                ctx.yield_point(tid);
                let loc = self.loc.get(&ctx, || self.mk_loc());
                ctx.with_loc(tid, loc, |l, clock| {
                    if let LocSt::Cell { write, reads, init } = l {
                        if let Some(w) = write {
                            if !clock.covers(*w) {
                                return Err(format!(
                                    "data race: thread {tid} wrote a cell \
                                     concurrently written by thread {} \
                                     (writes unordered)",
                                    w.tid
                                ));
                            }
                        }
                        for r in reads.iter() {
                            if !clock.covers(*r) {
                                return Err(format!(
                                    "data race: thread {tid} wrote a cell \
                                     concurrently read by thread {} \
                                     (read not ordered before the write)",
                                    r.tid
                                ));
                            }
                        }
                        *write = Some(clock.epoch(tid));
                        reads.clear();
                        *init = true;
                    }
                    Ok(())
                });
            }
            f(self.v.get())
        }

        /// Untracked exclusive access (`&mut self` rules out
        /// concurrency; used by destructors).
        pub fn get_mut(&mut self) -> &mut T {
            self.v.get_mut()
        }
    }
}

pub mod mutex {
    //! A tracked mutex: blocking is modeled by the scheduler (the
    //! waiting thread is descheduled, never spinning), lock/unlock
    //! carry the usual acquire/release happens-before edges.

    use super::{active_model, ExecCtx, LocHandle, LocSt, VClock};
    use std::ops::{Deref, DerefMut};
    use std::sync::Arc;

    /// Tracked `Mutex`. Inside a model, contention is resolved by the
    /// scheduler (deadlocks are detected and reported); outside, it is
    /// a plain `std::sync::Mutex`.
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
        loc: LocHandle,
    }

    /// Guard for [`Mutex`]; releases the model-level lock (a tracked
    /// operation) before the underlying `std` guard.
    pub struct MutexGuard<'a, T> {
        inner: Option<std::sync::MutexGuard<'a, T>>,
        model: Option<(Arc<ExecCtx>, usize, usize)>,
    }

    impl<T> Mutex<T> {
        /// Creates a new tracked mutex.
        pub const fn new(v: T) -> Self {
            Self {
                inner: std::sync::Mutex::new(v),
                loc: LocHandle::new(),
            }
        }

        /// Locks, blocking (in model time) until available. The
        /// `LockResult` mirrors `std`: inside a model it is always
        /// `Ok` (a failing execution aborts instead of poisoning).
        pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
            if let Some((ctx, tid)) = active_model() {
                let loc = self.loc.get(&ctx, || LocSt::Mutex {
                    held_by: None,
                    sync: VClock::new(),
                });
                ctx.mutex_lock(tid, loc);
                // The model-level lock is held, so no other model
                // thread holds the std mutex; ignore poison left by an
                // earlier aborted execution.
                let g = self
                    .inner
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                Ok(MutexGuard {
                    inner: Some(g),
                    model: Some((ctx, tid, loc)),
                })
            } else {
                match self.inner.lock() {
                    Ok(g) => Ok(MutexGuard {
                        inner: Some(g),
                        model: None,
                    }),
                    Err(p) => Err(std::sync::PoisonError::new(MutexGuard {
                        inner: Some(p.into_inner()),
                        model: None,
                    })),
                }
            }
        }

        /// Untracked exclusive access.
        pub fn get_mut(&mut self) -> std::sync::LockResult<&mut T> {
            self.inner.get_mut()
        }

        /// Consumes the mutex, returning the value.
        pub fn into_inner(self) -> std::sync::LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard accessed after drop")
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard accessed after drop")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if let Some((ctx, tid, loc)) = self.model.take() {
                // During an abort unwind the scheduler is gone; skip
                // the model unlock (its state dies with the execution)
                // rather than panic inside this drop.
                if !std::thread::panicking() {
                    ctx.mutex_unlock(tid, loc);
                }
            }
            self.inner.take();
        }
    }
}

pub mod thread {
    //! Model-aware `thread::spawn` / `JoinHandle` / `yield_now`.

    use super::{active_model, sched};
    use std::sync::Arc;

    enum Imp<T> {
        Std(std::thread::JoinHandle<T>),
        Model {
            child: usize,
            os: Option<std::thread::JoinHandle<()>>,
            result: Arc<std::sync::Mutex<Option<T>>>,
        },
    }

    /// Handle to a spawned (model or OS) thread.
    pub struct JoinHandle<T> {
        imp: Imp<T>,
    }

    /// Spawns a thread. Inside a model this registers a new model
    /// thread (inheriting the spawner's clock — the spawn edge) whose
    /// steps the scheduler interleaves; outside it is `std`'s spawn.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if let Some((ctx, tid)) = active_model() {
            let child = ctx.register_thread(tid);
            let result = Arc::new(std::sync::Mutex::new(None));
            let slot = Arc::clone(&result);
            let os = sched::spawn_model_thread(Arc::clone(&ctx), child, move || {
                let v = f();
                *slot
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(v);
            });
            JoinHandle {
                imp: Imp::Model {
                    child,
                    os: Some(os),
                    result,
                },
            }
        } else {
            JoinHandle {
                imp: Imp::Std(std::thread::spawn(f)),
            }
        }
    }

    impl<T> JoinHandle<T> {
        /// Joins the thread: a scheduling point that blocks (in model
        /// time) until the target finishes, then establishes the join
        /// happens-before edge.
        pub fn join(self) -> std::thread::Result<T> {
            match self.imp {
                Imp::Std(h) => h.join(),
                Imp::Model {
                    child,
                    mut os,
                    result,
                } => {
                    let (ctx, tid) =
                        active_model().expect("model JoinHandle joined outside the model");
                    ctx.join_thread(tid, child);
                    if let Some(h) = os.take() {
                        let _ = h.join();
                    }
                    match result
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .take()
                    {
                        Some(v) => Ok(v),
                        // Unreachable in practice: a child panic aborts
                        // the execution before the join returns.
                        None => Err(Box::new("model thread panicked")),
                    }
                }
            }
        }
    }

    /// Yield: in a model, deprioritizes the caller until another
    /// thread has run (so spin-wait loops make progress under the
    /// deterministic scheduler); outside, `std`'s yield.
    pub fn yield_now() {
        if let Some((ctx, tid)) = active_model() {
            ctx.yield_now(tid);
        } else {
            std::thread::yield_now();
        }
    }
}
