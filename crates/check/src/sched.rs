//! The cooperative scheduler and interleaving explorer.
//!
//! # Execution model
//!
//! A model run executes the user's closure on *model threads* — real OS
//! threads whose execution is serialized by a token: exactly one model
//! thread runs at a time, and it runs uninterrupted from one *tracked
//! operation* (atomic access, cell access, mutex lock/unlock, spawn,
//! join, yield) to the next. Each tracked operation is therefore a
//! scheduling point, and one complete run corresponds to one
//! sequentially-consistent interleaving of tracked operations.
//!
//! # Exploration
//!
//! [`Mode::Exhaustive`] enumerates interleavings by depth-first search
//! over the scheduling choices, CHESS-style: the *default* continuation
//! never switches away from a runnable thread (so the baseline schedule
//! has zero preemptions), and backtracking introduces alternative
//! choices bounded by [`Config::preemption_bound`] — a switch away from
//! a still-runnable, non-yielded thread counts against the bound; a
//! forced switch (current thread blocked/finished/yielded) is free.
//! Replay is deterministic: the model closure must behave identically
//! given the same schedule, which the tracked shims guarantee as long
//! as the closure itself is deterministic.
//!
//! [`Mode::Random`] instead samples `executions` schedules with a seeded
//! SplitMix64 walk (uniform over runnable threads at every point) — no
//! bound, so it reaches interleavings the bounded DFS cannot, at the
//! price of no exhaustiveness guarantee.
//!
//! # What a failure is
//!
//! Any panic on a model thread (an assertion in the model body, or a
//! diagnostic raised by the tracked shims: data race, read of an
//! uninitialized cell, deadlock, step-budget livelock) aborts the
//! execution and is reported as a [`Failure`] carrying the panic message
//! and the thread schedule that produced it.

use crate::clock::{Epoch, VClock, MAX_THREADS};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// How the explorer picks schedules.
#[derive(Clone, Copy, Debug)]
pub enum Mode {
    /// Depth-first enumeration of every interleaving reachable with at
    /// most [`Config::preemption_bound`] preemptions.
    Exhaustive,
    /// `executions` seeded random walks over the full schedule space.
    Random {
        /// RNG seed (SplitMix64).
        seed: u64,
        /// Number of schedules to sample.
        executions: u64,
    },
}

/// Exploration bounds.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Schedule-selection mode.
    pub mode: Mode,
    /// Maximum preemptions per schedule in [`Mode::Exhaustive`].
    pub preemption_bound: u32,
    /// Hard cap on explored executions; exceeding it ends exploration
    /// with [`Report::complete`] = false instead of running forever.
    pub max_executions: u64,
    /// Per-execution cap on tracked operations (livelock guard).
    pub max_steps: u64,
}

impl Config {
    /// Exhaustive DFS with the given preemption bound.
    pub fn exhaustive(preemption_bound: u32) -> Self {
        Self {
            mode: Mode::Exhaustive,
            preemption_bound,
            max_executions: 2_000_000,
            max_steps: 50_000,
        }
    }

    /// Seeded random walk of `executions` schedules.
    pub fn random(seed: u64, executions: u64) -> Self {
        Self {
            mode: Mode::Random { seed, executions },
            preemption_bound: u32::MAX,
            max_executions: executions,
            max_steps: 50_000,
        }
    }

    /// Caps the number of executions explored.
    pub fn max_executions(mut self, n: u64) -> Self {
        self.max_executions = n;
        self
    }

    /// Caps tracked operations per execution.
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }
}

/// Successful exploration summary.
#[derive(Clone, Debug)]
pub struct Report {
    /// Distinct complete executions (interleavings) explored.
    pub executions: u64,
    /// Whether the bounded schedule space was exhausted (false in
    /// random mode and when `max_executions` was hit first).
    pub complete: bool,
}

/// A failing interleaving.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The diagnostic: shim-raised ("data race: ...") or the model
    /// body's own panic message.
    pub message: String,
    /// Executions completed before this one failed.
    pub executions: u64,
    /// The thread id executing each step of the failing schedule.
    pub schedule: Vec<usize>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model check failed after {} passing executions: {}\n  schedule: {:?}",
            self.executions, self.message, self.schedule
        )
    }
}

/// Sentinel panic payload used to unwind model threads when an execution
/// aborts (failure raised here or elsewhere); never reported as a
/// failure itself.
pub(crate) struct Abort;

/// Thread run state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    /// Slot not occupied by a live thread in this execution.
    Unused,
    Runnable,
    /// Waiting for a mutex location to be released.
    BlockedMutex(usize),
    /// Waiting for a thread to finish.
    BlockedJoin(usize),
    Finished,
}

struct ThreadSt {
    status: Status,
    clock: VClock,
    /// Set by `yield_now`; cleared at the next grant (to anyone). A
    /// yielded thread is deprioritized so spin loops make progress.
    yielded: bool,
}

/// Synchronization state of one tracked object.
pub(crate) enum LocSt {
    Atomic {
        /// Clock published by the release (sequence) currently visible
        /// to acquiring loads of this location.
        sync: VClock,
    },
    Mutex {
        held_by: Option<usize>,
        sync: VClock,
    },
    Cell {
        /// Last write, if any (FastTrack epoch: covers ⇔ happens-before).
        write: Option<Epoch>,
        /// Reads since the last write (at most one epoch per thread).
        reads: Vec<Epoch>,
        /// Whether the cell has ever been written.
        init: bool,
    },
}

/// One scheduling decision point.
#[derive(Clone, Debug)]
struct Frame {
    /// Candidate threads in preference order (default continuation
    /// first). The DFS explores them left to right.
    alts: Vec<usize>,
    /// Index into `alts` actually taken.
    chosen: usize,
    /// Thread that executed the previous step (`usize::MAX` at step 0).
    last_run: usize,
    /// Preemptions consumed before this point.
    preemptions_before: u32,
}

struct Shared {
    threads: Vec<ThreadSt>,
    /// Which model thread currently holds the run token.
    active: Option<usize>,
    /// Tracked-operation count this execution.
    step: u64,
    /// Thread that executed the previous step.
    last_run: usize,
    preemptions: u32,
    /// The schedule: replayed prefix (from the explorer's plan) plus
    /// default extensions recorded as they happen.
    frames: Vec<Frame>,
    /// How many frames have been consumed (replay/record cursor).
    cursor: usize,
    locations: Vec<LocSt>,
    failure: Option<String>,
    abort: bool,
    /// Unfinished model threads.
    live: usize,
    /// Random-mode RNG state.
    rng: u64,
    /// The executed schedule (thread per step), for failure reports.
    trace: Vec<usize>,
}

pub(crate) struct ExecCtx {
    shared: Mutex<Shared>,
    cv: Condvar,
    cfg: Config,
    /// Identifies this execution; tracked objects lazily (re)register
    /// their location when their stamp is stale.
    pub(crate) exec_id: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<ExecCtx>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The ambient execution context of the calling thread, if it is a
/// model thread of an active exploration.
pub(crate) fn current() -> Option<(Arc<ExecCtx>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

impl ExecCtx {
    /// Locks the shared state, ignoring poison: a failing execution
    /// panics (by design) while holding the lock, and every path that
    /// observes the poisoned state only reads fields written before the
    /// poisoning panic (`abort`, `failure`).
    fn lock(&self) -> MutexGuard<'_, Shared> {
        self.shared.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn wait<'a>(&self, g: MutexGuard<'a, Shared>) -> MutexGuard<'a, Shared> {
        self.cv.wait(g).unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a new tracked object and returns its location id.
    pub(crate) fn register_location(&self, loc: LocSt) -> usize {
        let mut sh = self.lock();
        sh.locations.push(loc);
        sh.locations.len() - 1
    }

    /// Raises a checker diagnostic: record it, abort every model thread,
    /// unwind the caller.
    fn fail(&self, sh: &mut Shared, msg: String) -> ! {
        if sh.failure.is_none() {
            sh.failure = Some(msg);
        }
        sh.abort = true;
        self.cv.notify_all();
        abort_panic()
    }

    /// The scheduling point: the calling thread is about to perform its
    /// next tracked operation. Picks who runs next (possibly the caller
    /// itself, which costs no preemption) and blocks until the caller is
    /// granted the token again. On return the caller owns the token and
    /// may perform exactly one tracked operation.
    pub(crate) fn yield_point(self: &Arc<Self>, tid: usize) {
        let sh = self.lock();
        if sh.abort {
            drop(sh);
            abort_panic();
        }
        debug_assert_eq!(sh.active, Some(tid), "yield from a non-active thread");
        let mut sh = sh;
        self.schedule_next(&mut sh);
        self.await_grant(sh, tid);
    }

    /// Blocks until `tid` holds the token, then performs per-step
    /// bookkeeping.
    fn await_grant(self: &Arc<Self>, mut sh: MutexGuard<'_, Shared>, tid: usize) {
        while sh.active != Some(tid) {
            if sh.abort {
                drop(sh);
                abort_panic();
            }
            sh = self.wait(sh);
        }
        self.grant_bookkeeping(&mut sh, tid);
    }

    /// Marks the step as executed by `tid`: trace, step budget, clock
    /// tick, yielded-flag reset.
    fn grant_bookkeeping(&self, sh: &mut Shared, tid: usize) {
        sh.step += 1;
        sh.trace.push(tid);
        if sh.step > self.cfg.max_steps {
            self.fail(
                sh,
                format!(
                    "execution exceeded {} tracked operations (livelock or unbounded loop?)",
                    self.cfg.max_steps
                ),
            );
        }
        sh.last_run = tid;
        for t in sh.threads.iter_mut() {
            t.yielded = false;
        }
        sh.threads[tid].clock.tick(tid);
    }

    /// Picks the next thread to run and hands it the token. The caller's
    /// `status` must already reflect whether it is pausing (Runnable),
    /// blocking, or finished.
    fn schedule_next(self: &Arc<Self>, sh: &mut Shared) {
        let runnable: Vec<usize> = sh
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if sh.live > 0 {
                // Someone is blocked but nobody can run: deadlock.
                let blocked: Vec<(usize, Status)> = sh
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| {
                        matches!(t.status, Status::BlockedMutex(_) | Status::BlockedJoin(_))
                    })
                    .map(|(i, t)| (i, t.status))
                    .collect();
                self.fail(sh, format!("deadlock: blocked threads {blocked:?}"));
            }
            // Execution over.
            sh.active = None;
            self.cv.notify_all();
            return;
        }
        // Deprioritize yielded threads so spin loops let peers progress.
        let candidates: Vec<usize> = {
            let non_yielded: Vec<usize> = runnable
                .iter()
                .copied()
                .filter(|&t| !sh.threads[t].yielded)
                .collect();
            if non_yielded.is_empty() {
                runnable
            } else {
                non_yielded
            }
        };
        let chosen = match self.cfg.mode {
            Mode::Random { .. } => {
                let r = splitmix64(&mut sh.rng) as usize;
                candidates[r % candidates.len()]
            }
            Mode::Exhaustive => {
                if sh.cursor < sh.frames.len() {
                    // Replay the planned prefix.
                    let f = &sh.frames[sh.cursor];
                    debug_assert!(
                        f.alts.iter().all(|t| candidates.contains(t)),
                        "nondeterministic model: replay diverged \
                         (planned {:?}, runnable {:?})",
                        f.alts,
                        candidates
                    );
                    f.alts[f.chosen]
                } else {
                    // Extend with the default (preemption-free) policy:
                    // keep running the previous thread when possible.
                    let alts = preference_order(&candidates, sh.last_run);
                    let tid = alts[0];
                    let frame = Frame {
                        alts,
                        chosen: 0,
                        last_run: sh.last_run,
                        preemptions_before: sh.preemptions,
                    };
                    sh.frames.push(frame);
                    tid
                }
            }
        };
        sh.cursor += 1;
        if chosen != sh.last_run
            && sh.last_run != usize::MAX
            && sh
                .threads
                .get(sh.last_run)
                .map(|t| t.status == Status::Runnable && !t.yielded)
                .unwrap_or(false)
        {
            sh.preemptions += 1;
        }
        sh.active = Some(chosen);
        self.cv.notify_all();
    }

    /// Registers a new model thread (spawned by `parent`) and returns
    /// its id. The child's clock inherits the parent's (spawn edge).
    pub(crate) fn register_thread(&self, parent: usize) -> usize {
        let mut sh = self.lock();
        let tid = sh
            .threads
            .iter()
            .position(|t| t.status == Status::Unused)
            .unwrap_or(sh.threads.len());
        if tid >= MAX_THREADS {
            self.fail(
                &mut sh,
                format!("model spawned more than {MAX_THREADS} threads"),
            );
        }
        let mut clock = sh.threads[parent].clock.clone();
        clock.tick(tid);
        let st = ThreadSt {
            status: Status::Runnable,
            clock,
            yielded: false,
        };
        if tid == sh.threads.len() {
            sh.threads.push(st);
        } else {
            sh.threads[tid] = st;
        }
        sh.live += 1;
        tid
    }

    /// Model-thread top level: wait for the first grant, run the body
    /// (catching panics into the shared failure slot), hand the token
    /// onward.
    pub(crate) fn run_thread<F: FnOnce()>(self: &Arc<Self>, tid: usize, body: F) {
        {
            let mut sh = self.lock();
            while sh.active != Some(tid) && !sh.abort {
                sh = self.wait(sh);
            }
            if sh.abort {
                // Aborted before we ever ran: just finish.
                drop(sh);
                self.finish_thread(tid);
                return;
            }
            self.grant_bookkeeping(&mut sh, tid);
        }
        let result = panic::catch_unwind(AssertUnwindSafe(body));
        if let Err(payload) = result {
            if payload.downcast_ref::<Abort>().is_none() {
                let msg = panic_message(payload.as_ref());
                let mut sh = self.lock();
                if sh.failure.is_none() {
                    sh.failure = Some(msg);
                }
                sh.abort = true;
                self.cv.notify_all();
            }
        }
        self.finish_thread(tid);
    }

    fn finish_thread(self: &Arc<Self>, tid: usize) {
        let mut sh = self.lock();
        sh.threads[tid].status = Status::Finished;
        sh.live -= 1;
        // Wake joiners.
        for t in sh.threads.iter_mut() {
            if t.status == Status::BlockedJoin(tid) {
                t.status = Status::Runnable;
            }
        }
        if sh.abort {
            sh.active = None;
            self.cv.notify_all();
        } else if sh.active == Some(tid) {
            self.schedule_next(&mut sh);
        }
        if sh.live == 0 {
            sh.active = None;
            self.cv.notify_all();
        }
    }

    /// Blocks the calling thread until `target` finishes, then joins the
    /// target's final clock (the join edge).
    pub(crate) fn join_thread(self: &Arc<Self>, tid: usize, target: usize) {
        self.yield_point(tid);
        loop {
            let mut sh = self.lock();
            if sh.threads[target].status == Status::Finished {
                let tclock = sh.threads[target].clock.clone();
                sh.threads[tid].clock.join(&tclock);
                return;
            }
            sh.threads[tid].status = Status::BlockedJoin(target);
            self.schedule_next(&mut sh);
            self.await_grant(sh, tid);
            // Woken because the target finished; loop re-checks.
        }
    }

    /// Marks the caller yielded (deprioritized until the next grant) and
    /// passes through a scheduling point.
    pub(crate) fn yield_now(self: &Arc<Self>, tid: usize) {
        {
            let mut sh = self.lock();
            sh.threads[tid].yielded = true;
        }
        self.yield_point(tid);
    }

    /// Runs `f` against the location table and the caller's clock — the
    /// shims' entry point for happens-before bookkeeping. Must be called
    /// with the token held (i.e., right after `yield_point`). An `Err`
    /// from `f` is a checker diagnostic and fails the execution.
    pub(crate) fn with_loc<R>(
        self: &Arc<Self>,
        tid: usize,
        loc: usize,
        f: impl FnOnce(&mut LocSt, &mut VClock) -> Result<R, String>,
    ) -> R {
        let mut sh = self.lock();
        debug_assert_eq!(sh.active, Some(tid));
        // Split-borrow threads vs locations.
        let Shared {
            threads, locations, ..
        } = &mut *sh;
        let clock = &mut threads[tid].clock;
        match f(&mut locations[loc], clock) {
            Ok(r) => r,
            Err(msg) => self.fail(&mut sh, msg),
        }
    }

    /// Mutex lock: loops through scheduling points until the location is
    /// free, blocking (not spinning) while it is held.
    pub(crate) fn mutex_lock(self: &Arc<Self>, tid: usize, loc: usize) {
        self.yield_point(tid);
        loop {
            let mut sh = self.lock();
            let held = match &sh.locations[loc] {
                LocSt::Mutex { held_by, .. } => *held_by,
                _ => unreachable!("location {loc} is not a mutex"),
            };
            match held {
                None => {
                    let Shared {
                        threads, locations, ..
                    } = &mut *sh;
                    if let LocSt::Mutex { held_by, sync } = &mut locations[loc] {
                        *held_by = Some(tid);
                        threads[tid].clock.join(sync);
                    }
                    return;
                }
                Some(_) => {
                    sh.threads[tid].status = Status::BlockedMutex(loc);
                    self.schedule_next(&mut sh);
                    self.await_grant(sh, tid);
                    // Woken by an unlock; retry the acquisition.
                }
            }
        }
    }

    /// Mutex unlock: publishes the holder's clock and wakes waiters.
    pub(crate) fn mutex_unlock(self: &Arc<Self>, tid: usize, loc: usize) {
        self.yield_point(tid);
        let mut sh = self.lock();
        let Shared {
            threads, locations, ..
        } = &mut *sh;
        if let LocSt::Mutex { held_by, sync } = &mut locations[loc] {
            debug_assert_eq!(*held_by, Some(tid), "unlock by non-holder");
            *held_by = None;
            *sync = threads[tid].clock.clone();
        }
        for t in threads.iter_mut() {
            if t.status == Status::BlockedMutex(loc) {
                t.status = Status::Runnable;
            }
        }
    }
}

/// Candidate list in DFS preference order: the previous thread first
/// (continuation, no preemption), then the rest ascending.
fn preference_order(candidates: &[usize], last_run: usize) -> Vec<usize> {
    let mut alts: Vec<usize> = candidates.to_vec();
    alts.sort_unstable();
    if let Some(pos) = alts.iter().position(|&t| t == last_run) {
        alts.remove(pos);
        alts.insert(0, last_run);
    }
    alts
}

fn abort_panic() -> ! {
    panic::panic_any(Abort)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

/// Silences the default panic printer for model threads (their panics
/// are expected and reported through [`Failure`]); all other threads
/// keep the previous hook behaviour.
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let in_model = CURRENT.with(|c| c.borrow().is_some());
            if !in_model {
                prev(info);
            }
        }));
    });
}

/// Spawns an OS thread hosting model thread `tid`. Used for the root
/// thread here and for child threads by the shims.
pub(crate) fn spawn_model_thread<F>(
    ctx: Arc<ExecCtx>,
    tid: usize,
    body: F,
) -> std::thread::JoinHandle<()>
where
    F: FnOnce() + Send + 'static,
{
    std::thread::spawn(move || {
        CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&ctx), tid)));
        // Catch everything: even a `fail` raised from within
        // `finish_thread` (e.g. deadlock detection) must not unwind the
        // OS thread, or the explorer would see a dead root thread
        // instead of the recorded failure.
        let _ = panic::catch_unwind(AssertUnwindSafe(|| ctx.run_thread(tid, body)));
        CURRENT.with(|c| *c.borrow_mut() = None);
    })
}

/// Runs one execution replaying `plan` as a schedule prefix; returns the
/// final shared state (frames, trace, failure).
fn run_once<F>(cfg: Config, exec_id: u64, rng_seed: u64, plan: Vec<Frame>, body: &Arc<F>) -> Shared
where
    F: Fn() + Send + Sync + 'static,
{
    let ctx = Arc::new(ExecCtx {
        shared: Mutex::new(Shared {
            threads: vec![ThreadSt {
                status: Status::Runnable,
                clock: VClock::new(),
                yielded: false,
            }],
            active: None,
            step: 0,
            last_run: usize::MAX,
            preemptions: 0,
            frames: plan,
            cursor: 0,
            locations: Vec::new(),
            failure: None,
            abort: false,
            live: 1,
            rng: rng_seed,
            trace: Vec::new(),
        }),
        cv: Condvar::new(),
        cfg,
        exec_id,
    });

    let root = {
        let body = Arc::clone(body);
        spawn_model_thread(Arc::clone(&ctx), 0, move || body())
    };
    // Hand the token to thread 0 (the only possible first choice).
    {
        let mut sh = ctx.lock();
        sh.active = Some(0);
        ctx.cv.notify_all();
    }
    let _ = root.join();
    // Child OS threads the model did not join drain on abort/finish;
    // wait for all of them so the state below is final.
    {
        let mut sh = ctx.lock();
        while sh.live > 0 {
            sh = ctx.wait(sh);
        }
    }
    let mut ctx = ctx;
    loop {
        match Arc::try_unwrap(ctx) {
            Ok(inner) => {
                return inner
                    .shared
                    .into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
            }
            Err(again) => {
                // A child OS thread can hold its clone for an instant
                // after decrementing `live`; let it exit.
                ctx = again;
                std::thread::yield_now();
            }
        }
    }
}

/// Explores interleavings of `body` under `cfg`. Returns a [`Report`]
/// if every explored interleaving passed, or the first [`Failure`].
pub fn explore<F>(cfg: Config, body: F) -> Result<Report, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let body = Arc::new(body);
    let mut executions: u64 = 0;
    match cfg.mode {
        Mode::Random {
            seed,
            executions: n,
        } => {
            let mut rng_state = seed;
            for _ in 0..n.min(cfg.max_executions) {
                let rng_seed = splitmix64(&mut rng_state);
                let sh = run_once(cfg, executions, rng_seed, Vec::new(), &body);
                if let Some(message) = sh.failure {
                    return Err(Failure {
                        message,
                        executions,
                        schedule: sh.trace,
                    });
                }
                executions += 1;
            }
            Ok(Report {
                executions,
                complete: false,
            })
        }
        Mode::Exhaustive => {
            let mut plan: Vec<Frame> = Vec::new();
            loop {
                let sh = run_once(cfg, executions, 0, plan, &body);
                if let Some(message) = sh.failure {
                    return Err(Failure {
                        message,
                        executions,
                        schedule: sh.trace,
                    });
                }
                executions += 1;
                if executions >= cfg.max_executions {
                    return Ok(Report {
                        executions,
                        complete: false,
                    });
                }
                // Backtrack: find the deepest frame with an untried
                // alternative that fits the preemption bound.
                let mut frames = sh.frames;
                let next_plan = loop {
                    let Some(mut f) = frames.pop() else {
                        break None;
                    };
                    let mut alt = f.chosen + 1;
                    let feasible = loop {
                        if alt >= f.alts.len() {
                            break None;
                        }
                        let tid = f.alts[alt];
                        // Choosing `tid` preempts iff the previously
                        // running thread was itself a candidate (it sits
                        // in `alts`) and we pick someone else.
                        let preempts = f.last_run != usize::MAX
                            && tid != f.last_run
                            && f.alts.contains(&f.last_run);
                        if !preempts || f.preemptions_before < cfg.preemption_bound {
                            break Some(alt);
                        }
                        alt += 1;
                    };
                    if let Some(alt) = feasible {
                        f.chosen = alt;
                        frames.push(f);
                        break Some(frames);
                    }
                };
                match next_plan {
                    Some(p) => plan = p,
                    None => {
                        return Ok(Report {
                            executions,
                            complete: true,
                        })
                    }
                }
            }
        }
    }
}
