//! `pipeleon-check` — a loom-style deterministic concurrency model
//! checker for Pipeleon's lock-free datapath.
//!
//! The datapath's hot structures — the SPSC ring (`pipeleon-sim`'s
//! `ring` module) and the RCU generation chain — are hand-rolled
//! lock-free code whose correctness rests on specific happens-before
//! edges (which `Acquire` load synchronizes with which `Release`
//! store). Stress tests exercise a handful of interleavings per run
//! and say nothing when they pass; this crate *enumerates*
//! interleavings deterministically and checks every data access for
//! ordering, so a missing edge becomes a reported counterexample
//! schedule instead of a once-a-month corruption.
//!
//! # How it works
//!
//! - [`sync::atomic`], [`cell::CheckCell`], [`sync::Mutex`], and
//!   [`thread`] are drop-in shims. Inside [`explore`], each operation
//!   is a scheduling point on a cooperative scheduler that runs
//!   exactly one model thread at a time; outside, they fall back to
//!   plain `std` behaviour (so shimmed code still runs normally).
//! - Values are sequentially consistent; *orderings* are tracked
//!   separately with vector clocks under C11 release/acquire rules
//!   (see [`cell::CheckCell`] and the `shim` module docs). Weakening
//!   an ordering removes happens-before edges and surfaces as a data
//!   race on the guarded plain-memory access.
//! - [`Mode::Exhaustive`] enumerates schedules by DFS with a
//!   preemption bound (CHESS-style); [`Mode::Random`] samples with a
//!   seeded walk.
//!
//! # What it cannot see
//!
//! The executor is sequentially consistent, so bugs that *only*
//! manifest as weak-memory value reorderings (e.g. IRIW, or an
//! algorithm that is HB-race-free yet relies on a store becoming
//! visible out of order) are out of scope; the race detector
//! compensates for the common cases by flagging any plain access not
//! ordered by the tracked synchronization. Spurious
//! `compare_exchange_weak` failures are not modeled, and model
//! executions are capped at [`clock::MAX_THREADS`] threads.
//!
//! # Example
//!
//! ```
//! use pipeleon_check as check;
//! use check::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//!
//! let report = check::explore(check::Config::exhaustive(2), || {
//!     let flag = Arc::new(AtomicUsize::new(0));
//!     let f2 = Arc::clone(&flag);
//!     let t = check::thread::spawn(move || {
//!         f2.store(1, Ordering::Release);
//!     });
//!     let _ = flag.load(Ordering::Acquire);
//!     t.join().unwrap();
//! })
//! .unwrap();
//! assert!(report.complete);
//! ```

#![deny(missing_docs)]

pub mod clock;
mod sched;
mod shim;

pub use sched::{explore, Config, Failure, Mode, Report};

/// Tracked `std::sync` stand-ins: atomics and a mutex.
pub mod sync {
    pub use crate::shim::mutex::{Mutex, MutexGuard};

    /// Tracked `std::sync::atomic` stand-ins. `Ordering` is re-exported
    /// from `std` so shimmed code keeps its ordering annotations.
    pub mod atomic {
        pub use crate::shim::{AtomicBool, AtomicPtr, AtomicU32, AtomicU64, AtomicUsize};
        pub use std::sync::atomic::Ordering;
    }
}

/// Tracked `UnsafeCell` stand-in.
pub mod cell {
    pub use crate::shim::cell::CheckCell;
}

/// Model-aware `std::thread` stand-ins.
pub mod thread {
    pub use crate::shim::thread::{spawn, yield_now, JoinHandle};
}

/// Explores every interleaving of `$body` under `$cfg` and panics with
/// the counterexample schedule if any fails; evaluates to the
/// [`Report`] on success.
///
/// ```
/// use pipeleon_check::{model, Config};
/// let report = model!(Config::exhaustive(2), || {
///     // ... spawn model threads, assert invariants ...
/// });
/// assert!(report.executions >= 1);
/// ```
#[macro_export]
macro_rules! model {
    ($cfg:expr, $body:expr) => {{
        match $crate::explore($cfg, $body) {
            Ok(report) => report,
            Err(failure) => panic!("{failure}"),
        }
    }};
}

/// Asserts that exploring `$body` finds a failing interleaving whose
/// diagnostic contains `$needle`; evaluates to the [`Failure`]. This is
/// the mutant-kill harness: a weakened ordering must produce a
/// detectable counterexample, or the checker itself is broken.
#[macro_export]
macro_rules! model_expect_failure {
    ($cfg:expr, $body:expr, $needle:expr) => {{
        match $crate::explore($cfg, $body) {
            Ok(report) => panic!(
                "expected a failing interleaving containing {:?}, but all {} explored \
                 executions passed (complete = {})",
                $needle, report.executions, report.complete
            ),
            Err(failure) => {
                assert!(
                    failure.message.contains($needle),
                    "model failed as expected, but with the wrong diagnostic \
                     (wanted {:?}): {failure}",
                    $needle
                );
                failure
            }
        }
    }};
}
