//! Self-verification of the model checker: known-good protocols must
//! pass with full exploration, and known-broken protocols (missing
//! edges, uninit reads, deadlocks) must produce the right diagnostic.
//! If any of these fail, no result from the datapath model tests can
//! be trusted.

use pipeleon_check as check;

use check::cell::CheckCell;
use check::sync::atomic::{AtomicUsize, Ordering};
use check::sync::Mutex;
use check::{model, model_expect_failure, Config};
use std::mem::MaybeUninit;
use std::sync::Arc;

/// Release/acquire message passing is the canonical correct protocol:
/// writer initializes the cell, release-stores the flag; reader
/// acquire-loads the flag, then reads the cell. No interleaving races.
#[test]
fn message_passing_release_acquire_passes() {
    let report = model!(Config::exhaustive(3), || {
        let cell = Arc::new(CheckCell::new_uninit(MaybeUninit::<u64>::uninit()));
        let flag = Arc::new(AtomicUsize::new(0));
        let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
        let t = check::thread::spawn(move || {
            c2.with_mut(|p| unsafe { (*p).write(42) });
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            let v = cell.with(|p| unsafe { (*p).assume_init_read() });
            assert_eq!(v, 42);
        }
        t.join().unwrap();
    });
    assert!(report.complete, "space should be exhausted");
    // Both orders of the 2-thread handoff plus interior schedules.
    assert!(
        report.executions >= 4,
        "got {} executions",
        report.executions
    );
}

/// Same protocol with a Relaxed flag store: the release sequence is
/// broken, so the reader's cell access races with the writer's.
#[test]
fn message_passing_relaxed_store_is_a_race() {
    model_expect_failure!(
        Config::exhaustive(3),
        || {
            let cell = Arc::new(CheckCell::new_uninit(MaybeUninit::<u64>::uninit()));
            let flag = Arc::new(AtomicUsize::new(0));
            let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
            let t = check::thread::spawn(move || {
                c2.with_mut(|p| unsafe { (*p).write(42) });
                f2.store(1, Ordering::Relaxed); // broken: no release edge
            });
            if flag.load(Ordering::Acquire) == 1 {
                cell.with(|p| unsafe { (*p).assume_init_read() });
            }
            t.join().unwrap();
        },
        "data race"
    );
}

/// Relaxed load on the reader side is just as broken.
#[test]
fn message_passing_relaxed_load_is_a_race() {
    model_expect_failure!(
        Config::exhaustive(3),
        || {
            let cell = Arc::new(CheckCell::new_uninit(MaybeUninit::<u64>::uninit()));
            let flag = Arc::new(AtomicUsize::new(0));
            let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
            let t = check::thread::spawn(move || {
                c2.with_mut(|p| unsafe { (*p).write(42) });
                f2.store(1, Ordering::Release);
            });
            if flag.load(Ordering::Relaxed) == 1 {
                // broken: no acquire edge
                cell.with(|p| unsafe { (*p).assume_init_read() });
            }
            t.join().unwrap();
        },
        "data race"
    );
}

/// Reading a slot nobody ever wrote is flagged even without any
/// concurrent writer — the flag's value (not its ordering) is wrong.
#[test]
fn uninit_read_is_flagged() {
    model_expect_failure!(
        Config::exhaustive(2),
        || {
            let cell = CheckCell::new_uninit(MaybeUninit::<u64>::uninit());
            cell.with(|p| unsafe { (*p).assume_init_read() });
        },
        "uninitialized"
    );
}

/// Two unsynchronized writers to the same cell: write-write race.
#[test]
fn concurrent_writes_race() {
    model_expect_failure!(
        Config::exhaustive(2),
        || {
            let cell = Arc::new(CheckCell::new(0u64));
            let c2 = Arc::clone(&cell);
            let t = check::thread::spawn(move || {
                c2.with_mut(|p| unsafe { *p = 1 });
            });
            cell.with_mut(|p| unsafe { *p = 2 });
            t.join().unwrap();
        },
        "data race"
    );
}

/// A mutex serializes the same writes: no race, and both increments
/// always land.
#[test]
fn mutex_serializes_writers() {
    let report = model!(Config::exhaustive(3), || {
        let n = Arc::new(Mutex::new(0u64));
        let n2 = Arc::clone(&n);
        let t = check::thread::spawn(move || {
            *n2.lock().expect("model mutex") += 1;
        });
        *n.lock().expect("model mutex") += 1;
        t.join().unwrap();
        assert_eq!(*n.lock().expect("model mutex"), 2);
    });
    assert!(report.complete);
    assert!(report.executions >= 2);
}

/// Classic ABBA deadlock must be detected, not hung on.
#[test]
fn abba_deadlock_is_detected() {
    model_expect_failure!(
        Config::exhaustive(4),
        || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = check::thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
            drop((_ga, _gb));
            t.join().unwrap();
        },
        "deadlock"
    );
}

/// An assertion inside the model body is reported with its message —
/// the checker finds the interleaving where the reader misses the
/// writer's value *and* the body wrongly insists on seeing it.
#[test]
fn model_assertions_become_failures() {
    model_expect_failure!(
        Config::exhaustive(2),
        || {
            let flag = Arc::new(AtomicUsize::new(0));
            let f2 = Arc::clone(&flag);
            let t = check::thread::spawn(move || {
                f2.store(1, Ordering::Release);
            });
            let seen = flag.load(Ordering::Acquire);
            t.join().unwrap();
            assert_eq!(seen, 1, "reader must always see the flag (it must not)");
        },
        "reader must always see the flag"
    );
}

/// A spin loop written with `yield_now` terminates under the
/// deterministic scheduler (the yielded thread is deprioritized until
/// the peer runs) instead of tripping the livelock budget.
#[test]
fn yield_spin_loop_terminates() {
    let report = model!(Config::exhaustive(2), || {
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&flag);
        let t = check::thread::spawn(move || {
            f2.store(1, Ordering::Release);
        });
        while flag.load(Ordering::Acquire) == 0 {
            check::thread::yield_now();
        }
        t.join().unwrap();
    });
    assert!(report.complete);
}

/// RMWs continue a release sequence: writer release-stores, a third
/// thread relaxed-fetch-adds the same location, reader acquire-loads —
/// the reader still synchronizes with the original release store.
#[test]
fn rmw_continues_release_sequence() {
    let report = model!(Config::exhaustive(2), || {
        let cell = Arc::new(CheckCell::new_uninit(MaybeUninit::<u64>::uninit()));
        let flag = Arc::new(AtomicUsize::new(0));
        let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
        let t1 = check::thread::spawn(move || {
            c2.with_mut(|p| unsafe { (*p).write(7) });
            f2.store(10, Ordering::Release);
            Ok::<(), ()>(())
        });
        let f3 = Arc::clone(&flag);
        let t2 = check::thread::spawn(move || {
            // Continues (does not break) the writer's release sequence.
            f3.fetch_add(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) >= 10 {
            let v = cell.with(|p| unsafe { (*p).assume_init_read() });
            assert_eq!(v, 7);
        }
        t1.join().unwrap().unwrap();
        t2.join().unwrap();
    });
    assert!(report.executions >= 6);
}

/// Random mode finds the same seeded race an exhaustive run finds.
#[test]
fn random_walk_finds_races() {
    model_expect_failure!(
        Config::random(0xfeed_beef, 500),
        || {
            let cell = Arc::new(CheckCell::new(0u64));
            let c2 = Arc::clone(&cell);
            let t = check::thread::spawn(move || {
                c2.with_mut(|p| unsafe { *p = 1 });
            });
            cell.with_mut(|p| unsafe { *p = 2 });
            t.join().unwrap();
        },
        "data race"
    );
}

/// The preemption bound actually bounds: bound 0 explores only the
/// run-to-completion schedules, so it cannot see a torn protocol that
/// needs a mid-sequence preemption... but it still explores forced
/// switches (spawn order), so both serializations are covered.
#[test]
fn preemption_bound_zero_explores_serializations() {
    let report = model!(Config::exhaustive(0), || {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = check::thread::spawn(move || {
            n2.fetch_add(1, Ordering::AcqRel);
            n2.fetch_add(1, Ordering::AcqRel);
        });
        n.fetch_add(1, Ordering::AcqRel);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::Acquire), 3);
    });
    assert!(report.complete);
    // With bound 0 the space is tiny (blocking join forces the only
    // switches); with a higher bound it must strictly grow.
    let bigger = model!(Config::exhaustive(2), || {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = Arc::clone(&n);
        let t = check::thread::spawn(move || {
            n2.fetch_add(1, Ordering::AcqRel);
            n2.fetch_add(1, Ordering::AcqRel);
        });
        n.fetch_add(1, Ordering::AcqRel);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::Acquire), 3);
    });
    assert!(
        bigger.executions > report.executions,
        "bound 2 ({}) should explore more than bound 0 ({})",
        bigger.executions,
        report.executions
    );
}

/// Three threads with interleaved atomic counters: the exploration
/// count grows combinatorially, demonstrating real DFS coverage.
#[test]
fn three_thread_exploration_scales() {
    let report = model!(Config::exhaustive(3), || {
        let n = Arc::new(AtomicUsize::new(0));
        let mk = |n: &Arc<AtomicUsize>| {
            let n = Arc::clone(n);
            check::thread::spawn(move || {
                for _ in 0..2 {
                    n.fetch_add(1, Ordering::AcqRel);
                }
            })
        };
        let (t1, t2) = (mk(&n), mk(&n));
        for _ in 0..2 {
            n.fetch_add(1, Ordering::AcqRel);
        }
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(n.load(Ordering::Acquire), 6);
    });
    assert!(report.complete);
    assert!(
        report.executions >= 50,
        "expected combinatorial growth, got {}",
        report.executions
    );
}
