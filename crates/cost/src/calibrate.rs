//! Cost-model calibration from black-box measurements (paper §3.1).
//!
//! The paper fits `L_mat` and `L_act` by benchmarking families of programs
//! with varying numbers of exact tables and action primitives, measuring
//! maximum throughput, using its reciprocal as average latency, and
//! extrapolating with linear regression (`Y1 = A1·x + B1`,
//! `Y2 = A2·y + B2`). The `m` multiplier of LPM/ternary tables is then
//! estimated by normalizing their observed per-table slope against the
//! exact-match baseline.
//!
//! [`Calibrator`] reproduces that workflow against any measurement
//! function (in this repo: the `pipeleon-sim` emulator standing in for
//! hardware).

use crate::params::{CostParams, MatchCostModel};
use pipeleon_ir::{MatchKind, MatchValue, Primitive, ProgramBuilder, ProgramGraph, TableEntry};

/// Ordinary least-squares fit of `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect fit).
    pub r2: f64,
}

/// Least-squares line fit. Panics if fewer than two points are provided.
pub fn fit_line(xs: &[f64], ys: &[f64]) -> LineFit {
    assert!(xs.len() == ys.len() && xs.len() >= 2, "need >= 2 points");
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let intercept = mean_y - slope * mean_x;
    let r2 = if syy == 0.0 {
        1.0
    } else {
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| {
                let e = y - (slope * x + intercept);
                e * e
            })
            .sum();
        (1.0 - ss_res / syy).clamp(0.0, 1.0)
    };
    LineFit {
        slope,
        intercept,
        r2,
    }
}

/// The outcome of a calibration run: fitted constants plus the raw fits.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// Fitted `L_mat` (per-exact-match latency).
    pub l_mat: f64,
    /// Fitted `L_act` (per-primitive latency).
    pub l_act: f64,
    /// Estimated `m` multiplier of the LPM benchmark tables.
    pub m_lpm: f64,
    /// Estimated `m` multiplier of the ternary benchmark tables.
    pub m_ternary: f64,
    /// Fit of latency vs. number of exact tables.
    pub exact_fit: LineFit,
    /// Fit of latency vs. number of action primitives.
    pub action_fit: LineFit,
    /// Number of benchmark programs measured.
    pub programs_measured: usize,
}

impl CalibrationReport {
    /// Converts the report into usable [`CostParams`], inheriting envelope
    /// parameters (core counts, line rate, …) from `base`.
    pub fn to_params(&self, base: &CostParams) -> CostParams {
        let mut p = base.clone();
        p.name = format!("{}-calibrated", base.name);
        p.l_mat = self.l_mat;
        p.l_act = self.l_act;
        p.l_base = self.exact_fit.intercept.max(0.0);
        p.match_model = MatchCostModel::Fixed {
            lpm: self.m_lpm,
            ternary: self.m_ternary,
            range: self.m_ternary,
        };
        p
    }
}

/// Generates the §3.1 benchmarking suite and fits the model against a
/// measurement function returning the average per-packet latency of a
/// program (in the same units the resulting parameters should use —
/// typically the reciprocal of measured throughput, rescaled).
#[derive(Debug, Clone)]
pub struct Calibrator {
    /// Table counts for the exact-table sweep (x axis of Fig. 5a).
    pub exact_counts: Vec<usize>,
    /// Primitive counts for the action sweep (x axis of Fig. 5b).
    pub action_counts: Vec<usize>,
    /// Table counts for the LPM/ternary sweeps (Fig. 5c–d).
    pub pattern_counts: Vec<usize>,
    /// Distinct prefix lengths installed in LPM benchmark tables (the
    /// paper uses 3).
    pub lpm_prefixes: usize,
    /// Distinct masks installed in ternary benchmark tables (the paper
    /// uses 5).
    pub ternary_masks: usize,
}

impl Default for Calibrator {
    fn default() -> Self {
        Self {
            exact_counts: vec![5, 10, 15, 20, 25, 30, 35, 40],
            action_counts: vec![1, 2, 3, 4, 5, 6, 7, 8],
            pattern_counts: vec![10, 12, 14, 16],
            lpm_prefixes: 3,
            ternary_masks: 5,
        }
    }
}

impl Calibrator {
    /// A program of `n` exact tables, each with `prims` primitives per
    /// action and one installed entry.
    pub fn exact_program(&self, n: usize, prims: usize) -> ProgramGraph {
        let mut b = ProgramBuilder::named(format!("cal_exact_{n}x{prims}"));
        let f = b.field("key");
        let mut first = None;
        for i in 0..n {
            let t = b
                .table(format!("t{i}"))
                .key(f, MatchKind::Exact)
                .action(
                    "hit",
                    (0..prims).map(|_| Primitive::Nop).collect::<Vec<_>>(),
                )
                .entry(TableEntry::new(vec![MatchValue::Exact(i as u64)], 0))
                .finish();
            first.get_or_insert(t);
        }
        b.seal(first.expect("n >= 1")).expect("valid program")
    }

    /// A program of `n` LPM tables with `self.lpm_prefixes` distinct
    /// prefix lengths each.
    pub fn lpm_program(&self, n: usize) -> ProgramGraph {
        let mut b = ProgramBuilder::named(format!("cal_lpm_{n}"));
        let f = b.field("key");
        let mut first = None;
        for i in 0..n {
            let mut tb = b
                .table(format!("t{i}"))
                .key(f, MatchKind::Lpm)
                .action("hit", vec![Primitive::Nop]);
            for p in 0..self.lpm_prefixes {
                tb = tb.entry(TableEntry::new(
                    vec![MatchValue::Lpm {
                        value: (p as u64) << 48,
                        prefix_len: 8 + 8 * p as u8,
                    }],
                    0,
                ));
            }
            let t = tb.finish();
            first.get_or_insert(t);
        }
        b.seal(first.expect("n >= 1")).expect("valid program")
    }

    /// A program of `n` ternary tables with `self.ternary_masks` distinct
    /// masks each.
    pub fn ternary_program(&self, n: usize) -> ProgramGraph {
        let mut b = ProgramBuilder::named(format!("cal_ternary_{n}"));
        let f = b.field("key");
        let mut first = None;
        for i in 0..n {
            let mut tb = b
                .table(format!("t{i}"))
                .key(f, MatchKind::Ternary)
                .action("hit", vec![Primitive::Nop]);
            for m in 0..self.ternary_masks {
                tb = tb.entry(TableEntry::with_priority(
                    vec![MatchValue::Ternary {
                        value: m as u64,
                        mask: 0xFF << (8 * m),
                    }],
                    0,
                    m as i32,
                ));
            }
            let t = tb.finish();
            first.get_or_insert(t);
        }
        b.seal(first.expect("n >= 1")).expect("valid program")
    }

    /// Runs the full calibration against `measure`.
    ///
    /// `measure` is called once per benchmark program and must return its
    /// average per-packet latency. The suite size is
    /// `exact_counts + action_counts + 2·pattern_counts` programs.
    pub fn run<F>(&self, mut measure: F) -> CalibrationReport
    where
        F: FnMut(&ProgramGraph) -> f64,
    {
        let mut programs_measured = 0;
        // Sweep 1: latency vs number of exact tables (1 primitive each).
        let xs: Vec<f64> = self.exact_counts.iter().map(|&n| n as f64).collect();
        let ys: Vec<f64> = self
            .exact_counts
            .iter()
            .map(|&n| {
                programs_measured += 1;
                measure(&self.exact_program(n, 1))
            })
            .collect();
        let exact_fit = fit_line(&xs, &ys);

        // Sweep 2: latency vs primitives in a fixed 20-table program.
        let base_tables = 20;
        let xs2: Vec<f64> = self.action_counts.iter().map(|&n| n as f64).collect();
        let ys2: Vec<f64> = self
            .action_counts
            .iter()
            .map(|&n| {
                programs_measured += 1;
                measure(&self.exact_program(base_tables, n))
            })
            .collect();
        let action_fit_raw = fit_line(&xs2, &ys2);
        // Slope is (per-primitive latency) × base_tables.
        let l_act = action_fit_raw.slope / base_tables as f64;

        // The exact-table slope includes one primitive per table.
        let l_mat = (exact_fit.slope - l_act).max(1e-9);

        // Sweeps 3 & 4: LPM / ternary per-table slopes, normalized by the
        // exact baseline slope to estimate m.
        let xs3: Vec<f64> = self.pattern_counts.iter().map(|&n| n as f64).collect();
        let ys_lpm: Vec<f64> = self
            .pattern_counts
            .iter()
            .map(|&n| {
                programs_measured += 1;
                measure(&self.lpm_program(n))
            })
            .collect();
        let ys_tern: Vec<f64> = self
            .pattern_counts
            .iter()
            .map(|&n| {
                programs_measured += 1;
                measure(&self.ternary_program(n))
            })
            .collect();
        let lpm_fit = fit_line(&xs3, &ys_lpm);
        let tern_fit = fit_line(&xs3, &ys_tern);
        let m_lpm = ((lpm_fit.slope - l_act) / l_mat).max(1.0);
        let m_ternary = ((tern_fit.slope - l_act) / l_mat).max(1.0);

        CalibrationReport {
            l_mat,
            l_act,
            m_lpm,
            m_ternary,
            exact_fit,
            action_fit: action_fit_raw,
            programs_measured,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CostModel;
    use crate::profile::RuntimeProfile;

    #[test]
    fn fit_line_recovers_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [5.0, 7.0, 9.0, 11.0];
        let f = fit_line(&xs, &ys);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 3.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fit_line_handles_noise_with_r2_below_one() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.1, 3.9, 6.2, 7.8, 10.1];
        let f = fit_line(&xs, &ys);
        assert!(f.r2 > 0.98 && f.r2 < 1.0);
        assert!((f.slope - 2.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "need >= 2 points")]
    fn fit_line_rejects_single_point() {
        fit_line(&[1.0], &[1.0]);
    }

    #[test]
    fn calibration_recovers_known_model() {
        // Measure with the cost model itself: the calibrator must recover
        // its constants (closing the loop of §3.1).
        let mut truth = CostParams::emulated_nic();
        truth.l_mat = 25.0;
        truth.l_act = 6.0;
        truth.l_base = 100.0;
        truth.match_model = MatchCostModel::Fixed {
            lpm: 3.0,
            ternary: 5.0,
            range: 5.0,
        };
        let model = CostModel::new(truth.clone());
        let profile = RuntimeProfile::empty();
        let cal = Calibrator::default();
        let report = cal.run(|g| model.expected_latency(g, &profile));
        assert!(
            (report.l_mat - 25.0).abs() < 0.5,
            "l_mat = {}",
            report.l_mat
        );
        assert!((report.l_act - 6.0).abs() < 0.2, "l_act = {}", report.l_act);
        assert!((report.m_lpm - 3.0).abs() < 0.2, "m_lpm = {}", report.m_lpm);
        assert!(
            (report.m_ternary - 5.0).abs() < 0.3,
            "m_ternary = {}",
            report.m_ternary
        );
        assert!(report.exact_fit.r2 > 0.999);
        assert_eq!(report.programs_measured, 8 + 8 + 4 + 4);

        let fitted = report.to_params(&truth);
        assert!((fitted.l_base - 100.0).abs() < 1.0);
    }
}
