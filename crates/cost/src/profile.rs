//! Runtime profiles: the counters Pipeleon instruments programs with.
//!
//! A [`RuntimeProfile`] carries per-edge and per-action packet counts
//! (from P4 counters, §4.1.2), per-table entry-update rates (from control
//! plane API monitoring, §4), and per-cache hit statistics. Probability
//! helpers convert raw counts into the `P(e_i|…)` and `P(a)` terms of the
//! cost model, with sensible defaults (uniform splits) where counters have
//! seen no traffic.

use pipeleon_ir::{EdgeRef, NextHops, NodeId, NodeKind, ProgramGraph};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Hit/miss/insertion statistics for one cache table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries installed (≤ misses; limited by the insertion rate cap).
    pub insertions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; `None` if the cache saw no lookups.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }
}

/// Counters and rates collected (or synthesized) for one program layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeProfile {
    /// Total packets observed at the program root.
    pub total_packets: u64,
    edge_counts: HashMap<EdgeRef, u64>,
    action_counts: HashMap<(NodeId, usize), u64>,
    /// Entry updates per second per table (insert/delete/modify).
    pub entry_update_rates: HashMap<NodeId, f64>,
    /// Per-cache statistics, keyed by the cache table node.
    pub cache_stats: HashMap<NodeId, CacheStats>,
    /// Approximate number of distinct key values observed per table —
    /// drives the cache cross-product estimate of §3.2.2.
    pub distinct_keys: HashMap<NodeId, u64>,
    /// Measured hit rates of previously deployed caches, keyed by the
    /// sorted set of covered (original) tables. The optimizer prefers
    /// these over its static estimate (§3.2.2: "continuously monitors its
    /// actual performance at runtime").
    pub cache_hit_hints: HashMap<Vec<NodeId>, f64>,
    /// The measurement window this profile covers, in seconds (converts
    /// packet counts to rates).
    pub window_s: f64,
}

impl Default for RuntimeProfile {
    fn default() -> Self {
        Self {
            total_packets: 0,
            edge_counts: HashMap::new(),
            action_counts: HashMap::new(),
            entry_update_rates: HashMap::new(),
            cache_stats: HashMap::new(),
            distinct_keys: HashMap::new(),
            cache_hit_hints: HashMap::new(),
            window_s: 1.0,
        }
    }
}

impl RuntimeProfile {
    /// An empty profile: every probability falls back to uniform defaults.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Approximate distinct key values seen at a table; `None` if never
    /// measured.
    pub fn distinct_keys_of(&self, node: NodeId) -> Option<u64> {
        self.distinct_keys.get(&node).copied()
    }

    /// Records the distinct-key estimate for a table.
    pub fn set_distinct_keys(&mut self, node: NodeId, n: u64) {
        self.distinct_keys.insert(node, n);
    }

    /// The packet arrival rate this profile represents (packets/s).
    pub fn packet_rate(&self) -> f64 {
        if self.window_s > 0.0 {
            self.total_packets as f64 / self.window_s
        } else {
            self.total_packets as f64
        }
    }

    /// Adds `n` packets to an edge counter.
    pub fn record_edge(&mut self, edge: EdgeRef, n: u64) {
        *self.edge_counts.entry(edge).or_insert(0) += n;
    }

    /// Adds `n` packets to a `(table, action)` counter.
    pub fn record_action(&mut self, node: NodeId, action: usize, n: u64) {
        *self.action_counts.entry((node, action)).or_insert(0) += n;
    }

    /// Iterates all edge counters.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeRef, u64)> + '_ {
        self.edge_counts.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates all `(node, action)` counters.
    pub fn actions(&self) -> impl Iterator<Item = ((NodeId, usize), u64)> + '_ {
        self.action_counts.iter().map(|(k, v)| (*k, *v))
    }

    /// Raw edge counter value.
    pub fn edge_count(&self, edge: EdgeRef) -> u64 {
        self.edge_counts.get(&edge).copied().unwrap_or(0)
    }

    /// Raw action counter value.
    pub fn action_count(&self, node: NodeId, action: usize) -> u64 {
        self.action_counts
            .get(&(node, action))
            .copied()
            .unwrap_or(0)
    }

    /// Sets the entry-update rate (ops/s) of a table.
    pub fn set_entry_update_rate(&mut self, node: NodeId, rate: f64) {
        self.entry_update_rates.insert(node, rate);
    }

    /// Entry-update rate (ops/s) of a table, 0 if unknown.
    pub fn entry_update_rate(&self, node: NodeId) -> f64 {
        self.entry_update_rates.get(&node).copied().unwrap_or(0.0)
    }

    /// Observed hit rate of a cache node, if any lookups were recorded.
    pub fn cache_hit_rate(&self, node: NodeId) -> Option<f64> {
        self.cache_stats.get(&node).and_then(CacheStats::hit_rate)
    }

    /// Records a measured hit rate for a cache covering `tables`.
    pub fn set_cache_hint(&mut self, mut tables: Vec<NodeId>, hit_rate: f64) {
        tables.sort();
        self.cache_hit_hints
            .insert(tables, hit_rate.clamp(0.0, 1.0));
    }

    /// A previously measured hit rate for a cache covering exactly
    /// `tables`, if any.
    pub fn cache_hint(&self, tables: &[NodeId]) -> Option<f64> {
        let mut key: Vec<NodeId> = tables.to_vec();
        key.sort();
        self.cache_hit_hints.get(&key).copied()
    }

    /// Per-action probabilities `P(a)` for a table (Eq. 4b): normalized
    /// action counters, or a uniform distribution if the table saw no
    /// traffic.
    pub fn action_probs(&self, g: &ProgramGraph, node: NodeId) -> Vec<f64> {
        let Some(n) = g.node(node) else {
            return Vec::new();
        };
        let Some(t) = n.as_table() else {
            return Vec::new();
        };
        let counts: Vec<u64> = (0..t.actions.len())
            .map(|i| self.action_count(node, i))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            let u = 1.0 / t.actions.len().max(1) as f64;
            return vec![u; t.actions.len()];
        }
        counts.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// The probability a packet *entering* the table leaves it dropped:
    /// `Σ P(a)` over dropping actions.
    pub fn drop_rate(&self, g: &ProgramGraph, node: NodeId) -> f64 {
        let Some(t) = g.node(node).and_then(|n| n.as_table()) else {
            return 0.0;
        };
        self.action_probs(g, node)
            .iter()
            .zip(&t.actions)
            .filter(|(_, a)| a.drops())
            .map(|(p, _)| *p)
            .sum()
    }

    /// The outgoing probability distribution over a node's next-hop slots,
    /// conditioned on the packet having entered the node. Dropping actions
    /// contribute zero to their slot (the packet leaves the pipeline).
    pub fn slot_probs(&self, g: &ProgramGraph, node: NodeId) -> Vec<f64> {
        let Some(n) = g.node(node) else {
            return Vec::new();
        };
        match (&n.kind, &n.next) {
            (NodeKind::Table(t), NextHops::Always(_)) => {
                vec![
                    1.0 - {
                        // Inline drop-rate using action probs.
                        self.action_probs(g, node)
                            .iter()
                            .zip(&t.actions)
                            .filter(|(_, a)| a.drops())
                            .map(|(p, _)| *p)
                            .sum::<f64>()
                    },
                ]
            }
            (NodeKind::Table(t), NextHops::ByAction(slots)) => {
                let probs = self.action_probs(g, node);
                (0..slots.len())
                    .map(|i| {
                        if t.actions[i].drops() {
                            0.0
                        } else {
                            probs.get(i).copied().unwrap_or(0.0)
                        }
                    })
                    .collect()
            }
            (NodeKind::Branch(_), NextHops::Branch { .. }) => {
                let t = self.edge_count(EdgeRef::new(node, 0));
                let f = self.edge_count(EdgeRef::new(node, 1));
                if t + f == 0 {
                    vec![0.5, 0.5]
                } else {
                    let total = (t + f) as f64;
                    vec![t as f64 / total, f as f64 / total]
                }
            }
            // Structurally invalid combinations: treat as opaque pass-through.
            _ => vec![1.0],
        }
    }

    /// The probability each node is visited by a packet, propagated from
    /// the root (`p(root) = 1`). Returned dense, indexed by node id.
    ///
    /// Equivalent to summing `P(π)` over all paths through each node
    /// (Eq. 2a) but linear-time on the DAG.
    pub fn visit_probabilities(&self, g: &ProgramGraph) -> Vec<f64> {
        let mut p = vec![0.0f64; g.id_bound()];
        let Some(root) = g.root() else {
            return p;
        };
        let Ok(order) = g.topo_order() else {
            return p;
        };
        p[root.index()] = 1.0;
        for id in order {
            let prob = p[id.index()];
            if prob == 0.0 {
                continue;
            }
            let Some(n) = g.node(id) else { continue };
            let slot_probs = self.slot_probs(g, id);
            for (slot, target) in n.next.targets().into_iter().enumerate() {
                if let Some(t) = target {
                    p[t.index()] += prob * slot_probs.get(slot).copied().unwrap_or(0.0);
                }
            }
        }
        p
    }

    /// The probability a packet reaches `node` (paper §4.1.2 `P(G')`).
    pub fn reach_probability(&self, g: &ProgramGraph, node: NodeId) -> f64 {
        self.visit_probabilities(g)
            .get(node.index())
            .copied()
            .unwrap_or(0.0)
    }

    /// Total entry-update rate across all tables (the Eq. 5 `E` term's
    /// consumption side).
    pub fn total_entry_update_rate(&self) -> f64 {
        self.entry_update_rates.values().sum()
    }

    /// True when nothing has been recorded: no packets, counters, rates,
    /// cache statistics, or hints. Empty profiles act as the identity of
    /// [`RuntimeProfile::merge`] (their `window_s` is ignored).
    pub fn is_empty(&self) -> bool {
        self.total_packets == 0
            && self.edge_counts.is_empty()
            && self.action_counts.is_empty()
            && self.entry_update_rates.is_empty()
            && self.cache_stats.is_empty()
            && self.distinct_keys.is_empty()
            && self.cache_hit_hints.is_empty()
    }

    /// Merges another profile shard into this one (sharded datapaths
    /// collect one profile per worker; the merged profile is what a
    /// single instrumentation point would have observed).
    ///
    /// Semantics, chosen so the operation is commutative, associative,
    /// and has [`RuntimeProfile::empty`] as identity:
    /// - packet totals, edge counters, action counters, cache statistics,
    ///   and entry-update rates **sum** per key;
    /// - `distinct_keys` **sum** per table — an upper bound, since shards
    ///   cannot see each other's key sets (a sharded NIC that tracks raw
    ///   key sets should overwrite these with exact union counts);
    /// - `cache_hit_hints` union, keeping the **max** rate on conflicts;
    /// - `window_s` is the **max** of both windows (shards cover the same
    ///   wall-clock window, not consecutive ones); an empty side's window
    ///   is ignored.
    pub fn merge(&mut self, other: &RuntimeProfile) {
        if !other.is_empty() {
            if self.is_empty() {
                self.window_s = other.window_s;
            } else {
                self.window_s = self.window_s.max(other.window_s);
            }
        }
        self.total_packets += other.total_packets;
        for (&edge, &n) in &other.edge_counts {
            *self.edge_counts.entry(edge).or_insert(0) += n;
        }
        for (&key, &n) in &other.action_counts {
            *self.action_counts.entry(key).or_insert(0) += n;
        }
        for (&node, &rate) in &other.entry_update_rates {
            *self.entry_update_rates.entry(node).or_insert(0.0) += rate;
        }
        for (&node, s) in &other.cache_stats {
            let e = self.cache_stats.entry(node).or_default();
            e.hits += s.hits;
            e.misses += s.misses;
            e.insertions += s.insertions;
        }
        for (&node, &n) in &other.distinct_keys {
            *self.distinct_keys.entry(node).or_insert(0) += n;
        }
        for (tables, &rate) in &other.cache_hit_hints {
            let e = self.cache_hit_hints.entry(tables.clone()).or_insert(rate);
            *e = e.max(rate);
        }
    }

    /// Scales all counters by `factor` (used when extrapolating sampled
    /// profiles back to full traffic; §5.4.1 packet sampling).
    pub fn scale_counts(&mut self, factor: u64) {
        for v in self.edge_counts.values_mut() {
            *v *= factor;
        }
        for v in self.action_counts.values_mut() {
            *v *= factor;
        }
        self.total_packets *= factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeleon_ir::{Condition, MatchKind, ProgramBuilder};

    /// acl (drop 30%) -> branch (70/30) -> [left table | right table]
    fn program_with_profile() -> (ProgramGraph, RuntimeProfile, Vec<NodeId>) {
        let mut b = ProgramBuilder::new();
        let f = b.field("x");
        let left = b.table("left").key(f, MatchKind::Exact).finish();
        b.set_next(left, None);
        let right = b.table("right").key(f, MatchKind::Exact).finish();
        b.set_next(right, None);
        let br = b.branch("br", Condition::eq(f, 1), Some(left), Some(right));
        let acl = b
            .table("acl")
            .key(f, MatchKind::Exact)
            .action_nop("permit")
            .action_drop("deny")
            .finish();
        b.set_next(acl, Some(br));
        let g = b.seal(acl).unwrap();

        let mut p = RuntimeProfile::empty();
        p.total_packets = 1000;
        p.record_action(acl, 0, 700); // permit
        p.record_action(acl, 1, 300); // deny -> dropped
        p.record_edge(EdgeRef::new(br, 0), 490); // true arm
        p.record_edge(EdgeRef::new(br, 1), 210); // false arm
        (g, p, vec![acl, br, left, right])
    }

    #[test]
    fn action_probs_normalize() {
        let (g, p, ids) = program_with_profile();
        let probs = p.action_probs(&g, ids[0]);
        assert!((probs[0] - 0.7).abs() < 1e-12);
        assert!((probs[1] - 0.3).abs() < 1e-12);
        assert!((p.drop_rate(&g, ids[0]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_defaults_to_uniform() {
        let (g, _, ids) = program_with_profile();
        let p = RuntimeProfile::empty();
        let probs = p.action_probs(&g, ids[0]);
        assert_eq!(probs, vec![0.5, 0.5]);
        assert_eq!(p.slot_probs(&g, ids[1]), vec![0.5, 0.5]);
    }

    #[test]
    fn visit_probabilities_respect_drops_and_branches() {
        let (g, p, ids) = program_with_profile();
        let v = p.visit_probabilities(&g);
        assert!((v[ids[0].index()] - 1.0).abs() < 1e-12);
        // 30% dropped at the ACL.
        assert!((v[ids[1].index()] - 0.7).abs() < 1e-12);
        // Branch splits 70/30 of the surviving 0.7.
        assert!((v[ids[2].index()] - 0.49).abs() < 1e-12);
        assert!((v[ids[3].index()] - 0.21).abs() < 1e-12);
        assert!((p.reach_probability(&g, ids[3]) - 0.21).abs() < 1e-12);
    }

    #[test]
    fn switch_case_slots_zero_out_dropping_actions() {
        let mut b = ProgramBuilder::new();
        let f = b.field("x");
        let t1 = b.table("t1").key(f, MatchKind::Exact).finish();
        b.set_next(t1, None);
        let sw = b
            .table("sw")
            .key(f, MatchKind::Exact)
            .action_nop("go")
            .action_drop("die")
            .by_action(vec![Some(t1), None])
            .finish();
        let g = b.seal(sw).unwrap();
        let mut p = RuntimeProfile::empty();
        p.record_action(sw, 0, 60);
        p.record_action(sw, 1, 40);
        let slots = p.slot_probs(&g, sw);
        assert!((slots[0] - 0.6).abs() < 1e-12);
        assert_eq!(slots[1], 0.0);
        let v = p.visit_probabilities(&g);
        assert!((v[t1.index()] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn cache_stats_hit_rate() {
        let s = CacheStats {
            hits: 90,
            misses: 10,
            insertions: 10,
        };
        assert!((s.hit_rate().unwrap() - 0.9).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), None);
    }

    #[test]
    fn entry_update_rates_accumulate() {
        let (_, mut p, ids) = program_with_profile();
        p.set_entry_update_rate(ids[0], 10.0);
        p.set_entry_update_rate(ids[2], 5.0);
        assert_eq!(p.entry_update_rate(ids[0]), 10.0);
        assert_eq!(p.entry_update_rate(ids[1]), 0.0);
        assert_eq!(p.total_entry_update_rate(), 15.0);
    }

    #[test]
    fn scale_counts_multiplies_everything() {
        let (g, mut p, ids) = program_with_profile();
        p.scale_counts(1024);
        assert_eq!(p.total_packets, 1_024_000);
        assert_eq!(p.action_count(ids[0], 0), 700 * 1024);
        // Probabilities are unchanged by scaling.
        assert!((p.drop_rate(&g, ids[0]) - 0.3).abs() < 1e-12);
    }
}
