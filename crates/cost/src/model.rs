//! Expected-latency computation (paper Eq. 1–4).
//!
//! `L(G) = Σ_π P(π)·L(π)` is computed in linear time by weighting each
//! node's cost with its visit probability (identical on DAGs because every
//! path's probability distributes over its nodes).

use crate::params::CostParams;
use crate::profile::RuntimeProfile;
use pipeleon_ir::{CacheRole, NodeId, NodeKind, ProgramGraph, Table};
use serde::{Deserialize, Serialize};

/// Which core class a node executes on (heterogeneous targets, §3.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Placement {
    /// ASIC packet-engine cores (fast path).
    #[default]
    Asic,
    /// General-purpose / SoC CPU cores (slow path, `cpu_scale`× cost).
    Cpu,
}

/// The approximate cost model, parameterized by a target's [`CostParams`].
#[derive(Debug, Clone)]
pub struct CostModel {
    /// The target parameters in use.
    pub params: CostParams,
}

impl CostModel {
    /// Creates a model over the given target parameters.
    pub fn new(params: CostParams) -> Self {
        Self { params }
    }

    /// `L_match(v) = m_v · L_mat` (Eq. 4a).
    pub fn match_cost(&self, table: &Table) -> f64 {
        self.params.memory_accesses(table) * self.params.l_mat
    }

    /// `L_action(v) = Σ_a P(a) · n_a · L_act` (Eq. 4b), given per-action
    /// probabilities.
    pub fn action_cost(&self, table: &Table, action_probs: &[f64]) -> f64 {
        table
            .actions
            .iter()
            .enumerate()
            .map(|(i, a)| {
                action_probs.get(i).copied().unwrap_or(0.0)
                    * a.num_primitives() as f64
                    * self.params.l_act
            })
            .sum()
    }

    /// The expected cost of executing one node, conditioned on a packet
    /// entering it. Flow caches additionally pay the entry-insertion cost
    /// on the miss (default-action) path.
    pub fn node_cost(&self, g: &ProgramGraph, id: NodeId, profile: &RuntimeProfile) -> f64 {
        let Some(n) = g.node(id) else {
            return 0.0;
        };
        match &n.kind {
            NodeKind::Table(t) => {
                let probs = profile.action_probs(g, id);
                let mut cost = self.match_cost(t) + self.action_cost(t, &probs);
                if t.cache_role == CacheRole::FlowCache {
                    let miss_p = probs.get(t.default_action).copied().unwrap_or(0.0);
                    cost += miss_p * self.params.l_cache_insert;
                }
                cost
            }
            NodeKind::Branch(b) => {
                self.params.l_branch * b.condition.num_comparisons().max(1) as f64
            }
        }
    }

    /// Expected program latency `L(G)` (Eq. 1): base overhead plus each
    /// node's cost weighted by its visit probability.
    pub fn expected_latency(&self, g: &ProgramGraph, profile: &RuntimeProfile) -> f64 {
        let visits = profile.visit_probabilities(g);
        self.params.l_base
            + g.iter_nodes()
                .map(|n| visits[n.id.index()] * self.node_cost(g, n.id, profile))
                .sum::<f64>()
    }

    /// Expected program latency on a heterogeneous target: node costs on
    /// CPU cores are scaled by `cpu_scale`, and each edge whose endpoints
    /// have different placements pays `l_migration`, weighted by the
    /// probability the edge is traversed.
    ///
    /// `placement` is dense, indexed by node id; missing ids default to
    /// [`Placement::Asic`].
    pub fn expected_latency_placed(
        &self,
        g: &ProgramGraph,
        profile: &RuntimeProfile,
        placement: &[Placement],
    ) -> f64 {
        let visits = profile.visit_probabilities(g);
        let place = |id: NodeId| {
            placement
                .get(id.index())
                .copied()
                .unwrap_or(Placement::Asic)
        };
        let mut total = self.params.l_base;
        for n in g.iter_nodes() {
            let p = visits[n.id.index()];
            if p == 0.0 {
                continue;
            }
            let scale = match place(n.id) {
                Placement::Asic => 1.0,
                Placement::Cpu => self.params.cpu_scale,
            };
            total += p * self.node_cost(g, n.id, profile) * scale;
            // Migration on placement-crossing edges.
            let slot_probs = profile.slot_probs(g, n.id);
            for (slot, target) in n.next.targets().into_iter().enumerate() {
                if let Some(t) = target {
                    if place(n.id) != place(t) {
                        total += p
                            * slot_probs.get(slot).copied().unwrap_or(0.0)
                            * self.params.l_migration;
                    }
                }
            }
        }
        total
    }

    /// Expected program latency with per-table memory-tier assignments
    /// (§6 extension): key matches of tables on the fast tier are scaled
    /// by `tiers.match_scale`. `tiers` is dense by node id; missing ids
    /// default to [`crate::MemoryTier::Emem`].
    pub fn expected_latency_tiered(
        &self,
        g: &ProgramGraph,
        profile: &RuntimeProfile,
        tiers: &[crate::MemoryTier],
    ) -> f64 {
        let visits = profile.visit_probabilities(g);
        let mut total = self.params.l_base;
        for n in g.iter_nodes() {
            let p = visits[n.id.index()];
            if p == 0.0 {
                continue;
            }
            let mut cost = self.node_cost(g, n.id, profile);
            if let Some(t) = n.as_table() {
                let tier = tiers
                    .get(n.id.index())
                    .copied()
                    .unwrap_or(crate::MemoryTier::Emem);
                let scale = self.params.tiers.match_scale(tier);
                // Rescale only the match component.
                cost += self.match_cost(t) * (scale - 1.0);
            }
            total += p * cost;
        }
        total
    }

    /// The latency of one concrete path (Eq. 2b), using the profile only
    /// for per-action probabilities inside tables. Used by tests to check
    /// the propagation-based computation against path enumeration.
    pub fn path_latency(&self, g: &ProgramGraph, path: &[NodeId], profile: &RuntimeProfile) -> f64 {
        self.params.l_base
            + path
                .iter()
                .map(|&id| self.node_cost(g, id, profile))
                .sum::<f64>()
    }

    /// The cost contribution of a node subset (a pipelet), weighted by the
    /// probability of reaching each member: `Σ_{v∈S} p(v)·L(v)` — the
    /// `L(G')·P(G')` hot-pipelet score of §4.1.2 generalized to members
    /// with unequal reach.
    pub fn subset_cost(&self, g: &ProgramGraph, nodes: &[NodeId], profile: &RuntimeProfile) -> f64 {
        let visits = profile.visit_probabilities(g);
        nodes
            .iter()
            .map(|&id| {
                visits.get(id.index()).copied().unwrap_or(0.0) * self.node_cost(g, id, profile)
            })
            .sum()
    }

    /// Mean throughput implied by the expected latency, in Gbit/s.
    pub fn throughput_gbps(
        &self,
        g: &ProgramGraph,
        profile: &RuntimeProfile,
        packet_bytes: usize,
    ) -> f64 {
        self.params
            .throughput_gbps(self.expected_latency(g, profile), packet_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MatchCostModel;
    use pipeleon_ir::{Condition, MatchKind, Primitive, ProgramBuilder};

    fn params() -> CostParams {
        let mut p = CostParams::bluefield2();
        p.l_mat = 10.0;
        p.l_act = 2.0;
        p.l_branch = 1.0;
        p.l_base = 0.0;
        p.l_cache_insert = 100.0;
        p.match_model = MatchCostModel::Fixed {
            lpm: 3.0,
            ternary: 3.0,
            range: 3.0,
        };
        p
    }

    #[test]
    fn single_exact_table_cost() {
        let mut b = ProgramBuilder::new();
        let f = b.field("x");
        let t = b
            .table("t")
            .key(f, MatchKind::Exact)
            .action("a", vec![Primitive::set(f, 1), Primitive::Nop])
            .finish();
        let g = b.seal(t).unwrap();
        let m = CostModel::new(params());
        // match 1*10 + action 1.0 prob * 2 prims * 2.0 = 14.
        let lat = m.expected_latency(&g, &RuntimeProfile::empty());
        assert!((lat - 14.0).abs() < 1e-9, "got {lat}");
    }

    #[test]
    fn expected_latency_matches_path_enumeration() {
        // Build a branchy program and verify propagation == Σ P(π)L(π).
        let mut b = ProgramBuilder::new();
        let f = b.field("x");
        let l1 = b
            .table("l1")
            .key(f, MatchKind::Exact)
            .action("a", vec![Primitive::Nop])
            .finish();
        b.set_next(l1, None);
        let l2 = b
            .table("l2")
            .key(f, MatchKind::Lpm)
            .action("a", vec![Primitive::Nop, Primitive::Nop])
            .finish();
        b.set_next(l2, None);
        let br = b.branch("br", Condition::eq(f, 1), Some(l1), Some(l2));
        let head = b
            .table("head")
            .key(f, MatchKind::Exact)
            .action_nop("go")
            .finish();
        b.set_next(head, Some(br));
        let g = b.seal(head).unwrap();

        let mut prof = RuntimeProfile::empty();
        prof.record_edge(pipeleon_ir::EdgeRef::new(br, 0), 30);
        prof.record_edge(pipeleon_ir::EdgeRef::new(br, 1), 70);

        let m = CostModel::new(params());
        let fast = m.expected_latency(&g, &prof);
        // Path enumeration: two paths, head->br->l1 (p=.3), head->br->l2 (p=.7).
        let paths = g.enumerate_paths(16);
        assert_eq!(paths.len(), 2);
        let mut slow = 0.0;
        for p in &paths {
            let prob = if p.contains(&l1) { 0.3 } else { 0.7 };
            // path_latency includes l_base once per path; weights sum to 1.
            slow += prob * m.path_latency(&g, p, &prof);
        }
        assert!((fast - slow).abs() < 1e-9, "fast={fast} slow={slow}");
    }

    #[test]
    fn dropped_packets_shorten_expected_latency() {
        // acl(drop 50%) -> big table. Higher drop rate => lower latency.
        let build = || {
            let mut b = ProgramBuilder::new();
            let f = b.field("x");
            let acl = b
                .table("acl")
                .key(f, MatchKind::Exact)
                .action_nop("permit")
                .action_drop("deny")
                .finish();
            let big = b
                .table("big")
                .key(f, MatchKind::Ternary)
                .action("a", vec![Primitive::Nop; 4])
                .finish();
            let _ = big;
            (b.seal(acl).unwrap(), acl)
        };
        let m = CostModel::new(params());
        let (g, acl) = build();
        let mut low_drop = RuntimeProfile::empty();
        low_drop.record_action(acl, 0, 90);
        low_drop.record_action(acl, 1, 10);
        let mut high_drop = RuntimeProfile::empty();
        high_drop.record_action(acl, 0, 10);
        high_drop.record_action(acl, 1, 90);
        assert!(m.expected_latency(&g, &high_drop) < m.expected_latency(&g, &low_drop));
    }

    #[test]
    fn flow_cache_pays_insert_cost_on_miss() {
        use pipeleon_ir::CacheRole;
        let mut b = ProgramBuilder::new();
        let f = b.field("x");
        let orig = b.table("orig").key(f, MatchKind::Exact).finish();
        b.set_next(orig, None);
        let cache = b
            .table("cache")
            .key(f, MatchKind::Exact)
            .action_nop("hit")
            .action_nop("miss")
            .default_action(1)
            .cache_role(CacheRole::FlowCache)
            .by_action(vec![None, Some(orig)])
            .finish();
        let g = b.seal(cache).unwrap();
        let m = CostModel::new(params());
        let mut prof = RuntimeProfile::empty();
        prof.record_action(cache, 0, 80);
        prof.record_action(cache, 1, 20);
        let cost = m.node_cost(&g, cache, &prof);
        // match 10 + actions 0 + miss 0.2 * 100 insert.
        assert!((cost - 30.0).abs() < 1e-9, "got {cost}");
    }

    #[test]
    fn placement_scales_and_charges_migration() {
        let mut b = ProgramBuilder::new();
        let f = b.field("x");
        let t0 = b
            .table("t0")
            .key(f, MatchKind::Exact)
            .action("a", vec![Primitive::Nop])
            .finish();
        let t1 = b
            .table("t1")
            .key(f, MatchKind::Exact)
            .action("a", vec![Primitive::Nop])
            .finish();
        let _ = t1;
        let g = b.seal(t0).unwrap();
        let mut p = params();
        p.cpu_scale = 5.0;
        p.l_migration = 50.0;
        let m = CostModel::new(p);
        let prof = RuntimeProfile::empty();
        let all_asic = m.expected_latency_placed(&g, &prof, &[Placement::Asic, Placement::Asic]);
        let base = m.expected_latency(&g, &prof);
        assert!((all_asic - base).abs() < 1e-9);
        // Node cost each: 10 + 2 = 12. Split placement: t1 on CPU.
        let split = m.expected_latency_placed(&g, &prof, &[Placement::Asic, Placement::Cpu]);
        // t0 12 + migration 50 + t1 12*5 = 122.
        assert!((split - 122.0).abs() < 1e-9, "got {split}");
    }

    #[test]
    fn subset_cost_weights_by_reach() {
        let mut b = ProgramBuilder::new();
        let f = b.field("x");
        let acl = b
            .table("acl")
            .key(f, MatchKind::Exact)
            .action_nop("permit")
            .action_drop("deny")
            .finish();
        let tail = b
            .table("tail")
            .key(f, MatchKind::Exact)
            .action("a", vec![Primitive::Nop])
            .finish();
        let g = b.seal(acl).unwrap();
        let m = CostModel::new(params());
        let mut prof = RuntimeProfile::empty();
        prof.record_action(acl, 0, 50);
        prof.record_action(acl, 1, 50);
        let full = m.subset_cost(&g, &[acl, tail], &prof);
        let tail_only = m.subset_cost(&g, &[tail], &prof);
        // tail reached with p=0.5; cost = 0.5*(10+1*... tail has 1 action prob 1 * 1 prim * 2) = 0.5*12.
        assert!((tail_only - 6.0).abs() < 1e-9, "got {tail_only}");
        assert!(full > tail_only);
    }

    #[test]
    fn throughput_decreases_with_program_size() {
        let make = |n: usize| {
            let mut b = ProgramBuilder::new();
            let f = b.field("x");
            let mut first = None;
            for i in 0..n {
                let t = b
                    .table(format!("t{i}"))
                    .key(f, MatchKind::Exact)
                    .action("a", vec![Primitive::Nop])
                    .finish();
                first.get_or_insert(t);
            }
            b.seal(first.unwrap()).unwrap()
        };
        let m = CostModel::new(CostParams::bluefield2());
        let prof = RuntimeProfile::empty();
        let small = m.throughput_gbps(&make(5), &prof, 512);
        let large = m.throughput_gbps(&make(40), &prof, 512);
        assert!(small > large, "small={small} large={large}");
    }
}
