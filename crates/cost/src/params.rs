//! Target-specific cost parameters and presets.
//!
//! All latencies are in abstract nanosecond-like units; the cost model only
//! needs *relative* differences across layouts (paper §3.1: "the cost model
//! estimates relative latency differences across optimization options,
//! instead of their absolute values"). The presets below are chosen so the
//! emulator reproduces the paper's relative results (line-rate plateaus,
//! ~2.5× cache gains, 1.3–2.1× merge gains).

use crate::tiers::TierParams;
use pipeleon_ir::{MatchKind, Table};
use serde::{Deserialize, Serialize};

/// Which physical target a parameter set models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetKind {
    /// dRMT-style ASIC packet engines fetching entries over a memory bus
    /// (Nvidia BlueField2-like).
    AsicCores,
    /// SoC CPU cores / micro-engines (Netronome Agilio CX-like).
    CpuCores,
    /// Software emulator with a configurable NIC model (the paper's
    /// BMv2-based emulator).
    Emulated,
}

/// How the number of memory accesses `m` (Eq. 4a) is derived for non-exact
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MatchCostModel {
    /// `m` = number of distinct prefix lengths / masks among the installed
    /// entries (the multiple-hash-table implementation), capped at `cap`.
    /// This is the BlueField2 behaviour measured in §3.1.
    PerDistinctPattern {
        /// Upper bound on `m` per table.
        cap: usize,
    },
    /// Fixed multipliers per match kind, e.g. the §5.3.3 emulated NIC where
    /// "LPM and ternary matches have the same cost, which is 3x slower than
    /// exact matches".
    Fixed {
        /// Multiplier for LPM tables.
        lpm: f64,
        /// Multiplier for ternary tables.
        ternary: f64,
        /// Multiplier for range tables.
        range: f64,
    },
}

/// The constants of the approximate cost model (paper Table 1) plus the
/// target envelope (core counts, line rate) the simulator needs to convert
/// latency into throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Preset name for diagnostics.
    pub name: String,
    /// What kind of target this models.
    pub target: TargetKind,
    /// `L_mat`: latency of one memory access (one exact match), ns.
    pub l_mat: f64,
    /// `L_act`: latency of one action primitive, ns.
    pub l_act: f64,
    /// Latency of one branch comparison, ns (§5.3.3: 1/10 of an exact
    /// table on the emulated NIC; effectively negligible on hardware).
    pub l_branch: f64,
    /// Fixed per-packet overhead (parsing, deparsing, dispatch), ns.
    pub l_base: f64,
    /// Latency of one P4 counter update, ns (profiling overhead, §5.4.1).
    pub l_counter: f64,
    /// Extra latency when a cache miss installs a new cache entry, ns.
    pub l_cache_insert: f64,
    /// Latency of migrating a packet between ASIC and CPU cores, ns
    /// (Appendix A.2).
    pub l_migration: f64,
    /// Multiplier applied to node costs executed on CPU cores relative to
    /// ASIC cores (heterogeneous targets, §3.2.4).
    pub cpu_scale: f64,
    /// How `m` is derived for LPM/ternary/range tables.
    pub match_model: MatchCostModel,
    /// Number of (ASIC) processing cores packets are dispatched across.
    pub num_cores: usize,
    /// Number of auxiliary CPU cores for heterogeneous partitions.
    pub num_cpu_cores: usize,
    /// Port line rate in Gbit/s; throughput is capped here.
    pub line_rate_gbps: f64,
    /// Fast-memory (SRAM) tier parameters (§6 extension).
    pub tiers: TierParams,
}

impl CostParams {
    /// A BlueField2-like target: ASIC MA cores, per-distinct-pattern match
    /// cost, 100 Gbps line rate. Constants are calibration outputs of the
    /// emulator itself (see `calibrate`), scaled so a ~10-exact-table
    /// program saturates the port at 512 B packets.
    pub fn bluefield2() -> Self {
        Self {
            name: "bluefield2".into(),
            target: TargetKind::AsicCores,
            l_mat: 18.0,
            l_act: 4.0,
            l_branch: 1.0,
            l_base: 60.0,
            l_counter: 0.35,
            l_cache_insert: 40.0,
            l_migration: 350.0,
            cpu_scale: 6.0,
            match_model: MatchCostModel::PerDistinctPattern { cap: 8 },
            num_cores: 6,
            num_cpu_cores: 8,
            line_rate_gbps: 100.0,
            tiers: TierParams::default(),
        }
    }

    /// An Agilio-CX-like target: micro-engine CPU cores, 40 Gbps line rate,
    /// slower memory path and costlier counter updates (§5.4.1 measures
    /// noticeably higher profiling overhead on Agilio).
    pub fn agilio_cx() -> Self {
        Self {
            name: "agilio_cx".into(),
            target: TargetKind::CpuCores,
            l_mat: 55.0,
            l_act: 10.0,
            l_branch: 2.0,
            l_base: 150.0,
            l_counter: 14.0,
            l_cache_insert: 120.0,
            l_migration: 500.0,
            cpu_scale: 1.0,
            match_model: MatchCostModel::PerDistinctPattern { cap: 8 },
            num_cores: 5,
            num_cpu_cores: 0,
            line_rate_gbps: 40.0,
            tiers: TierParams::default(),
        }
    }

    /// The paper's emulated NIC model (§5.3.3): LPM and ternary cost 3×
    /// exact; conditional branches cost 1/10 of an exact table.
    pub fn emulated_nic() -> Self {
        Self {
            name: "emulated_nic".into(),
            target: TargetKind::Emulated,
            l_mat: 20.0,
            l_act: 5.0,
            l_branch: 2.0, // 1/10 of an exact table (l_mat 20)
            l_base: 40.0,
            l_counter: 0.5,
            l_cache_insert: 30.0,
            l_migration: 200.0,
            cpu_scale: 4.0,
            match_model: MatchCostModel::Fixed {
                lpm: 3.0,
                ternary: 3.0,
                range: 3.0,
            },
            num_cores: 4,
            num_cpu_cores: 4,
            line_rate_gbps: 100.0,
            tiers: TierParams::default(),
        }
    }

    /// The effective number of memory accesses `m` for a table under this
    /// target's match model (Eq. 4a).
    pub fn memory_accesses(&self, table: &Table) -> f64 {
        if table.keys.is_empty() {
            return 0.0;
        }
        match self.match_model {
            MatchCostModel::PerDistinctPattern { cap } => table.memory_accesses().min(cap) as f64,
            MatchCostModel::Fixed {
                lpm,
                ternary,
                range,
            } => match table.effective_kind() {
                MatchKind::Exact => 1.0,
                MatchKind::Lpm => lpm,
                MatchKind::Ternary => ternary,
                MatchKind::Range => range,
            },
        }
    }

    /// Converts a mean per-packet latency into aggregate throughput in
    /// Gbit/s for `self.num_cores` run-to-completion cores, capped at line
    /// rate. `latency_ns = 0` yields line rate.
    pub fn throughput_gbps(&self, latency_ns: f64, packet_bytes: usize) -> f64 {
        if latency_ns <= 0.0 {
            return self.line_rate_gbps;
        }
        let pps_per_core = 1.0e9 / latency_ns;
        let bits = (packet_bytes * 8) as f64;
        let gbps = pps_per_core * self.num_cores as f64 * bits / 1.0e9;
        gbps.min(self.line_rate_gbps)
    }

    /// The offered line-rate packet rate (packets/s) at a packet size.
    pub fn line_rate_pps(&self, packet_bytes: usize) -> f64 {
        self.line_rate_gbps * 1.0e9 / ((packet_bytes * 8) as f64)
    }
}

impl Default for CostParams {
    fn default() -> Self {
        Self::bluefield2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeleon_ir::FieldRef;
    use pipeleon_ir::{MatchKey, MatchValue, TableEntry};

    fn lpm_table(prefix_lens: &[u8]) -> Table {
        let mut t = Table::new("t");
        t.keys = vec![MatchKey {
            field: FieldRef(0),
            kind: MatchKind::Lpm,
        }];
        for (i, &p) in prefix_lens.iter().enumerate() {
            t.entries.push(TableEntry::new(
                vec![MatchValue::Lpm {
                    value: (i as u64) << 40,
                    prefix_len: p,
                }],
                0,
            ));
        }
        t
    }

    #[test]
    fn per_pattern_model_counts_prefixes() {
        let p = CostParams::bluefield2();
        assert_eq!(p.memory_accesses(&lpm_table(&[8, 16, 24])), 3.0);
        assert_eq!(p.memory_accesses(&lpm_table(&[8, 8])), 1.0);
    }

    #[test]
    fn per_pattern_model_caps() {
        let mut p = CostParams::bluefield2();
        p.match_model = MatchCostModel::PerDistinctPattern { cap: 2 };
        assert_eq!(p.memory_accesses(&lpm_table(&[1, 2, 3, 4, 5])), 2.0);
    }

    #[test]
    fn fixed_model_ignores_entries() {
        let p = CostParams::emulated_nic();
        assert_eq!(p.memory_accesses(&lpm_table(&[8, 16, 24])), 3.0);
        assert_eq!(p.memory_accesses(&lpm_table(&[8])), 3.0);
        let mut exact = Table::new("e");
        exact.keys = vec![MatchKey {
            field: FieldRef(0),
            kind: MatchKind::Exact,
        }];
        assert_eq!(p.memory_accesses(&exact), 1.0);
    }

    #[test]
    fn keyless_table_has_no_match_cost() {
        let p = CostParams::bluefield2();
        assert_eq!(p.memory_accesses(&Table::new("keyless")), 0.0);
    }

    #[test]
    fn throughput_caps_at_line_rate() {
        let p = CostParams::bluefield2();
        assert_eq!(p.throughput_gbps(0.0, 512), 100.0);
        assert_eq!(p.throughput_gbps(1.0, 512), 100.0); // absurdly fast
        let t = p.throughput_gbps(10_000.0, 512);
        assert!(t < 100.0 && t > 0.0, "got {t}");
    }

    #[test]
    fn throughput_scales_with_cores_and_packet_size() {
        let mut p = CostParams::bluefield2();
        p.line_rate_gbps = 1e9; // effectively uncapped
        let one = p.throughput_gbps(1000.0, 512);
        p.num_cores *= 2;
        let two = p.throughput_gbps(1000.0, 512);
        assert!((two / one - 2.0).abs() < 1e-9);
        let big = p.throughput_gbps(1000.0, 1024);
        assert!((big / two - 2.0).abs() < 1e-9);
    }

    #[test]
    fn line_rate_pps_is_consistent() {
        let p = CostParams::bluefield2();
        let pps = p.line_rate_pps(512);
        // 100 Gbps / 4096 bits.
        assert!((pps - 100.0e9 / 4096.0).abs() < 1.0);
    }
}
