//! Resource accounting: the `M(v)` and `E(v)` terms of Eq. 5.
//!
//! Memory is approximated as entries × per-entry bytes × `m` (LPM/ternary
//! tables are materialized once per hash table, paper §4). Entry-update
//! rates come from control-plane API monitoring, carried in the profile.

use crate::params::CostParams;
use crate::profile::RuntimeProfile;
use pipeleon_ir::{NodeId, ProgramGraph, Table};

/// Computes memory and entry-update-rate consumption for nodes and whole
/// programs under a target's cost parameters.
#[derive(Debug, Clone)]
pub struct ResourceModel {
    /// Target parameters (for the `m` multiplier).
    pub params: CostParams,
}

impl ResourceModel {
    /// Creates a resource model for the target.
    pub fn new(params: CostParams) -> Self {
        Self { params }
    }

    /// `M(v)` for one table, in bytes.
    pub fn table_memory(&self, table: &Table) -> f64 {
        let m = self.params.memory_accesses(table).max(1.0);
        table.entries.len() as f64 * table.entry_bytes as f64 * m
    }

    /// Memory reserved for a table: its capacity if bounded (caches reserve
    /// their full budget, §3.2.2), otherwise its current entries.
    pub fn table_memory_reserved(&self, table: &Table) -> f64 {
        let m = self.params.memory_accesses(table).max(1.0);
        let entries = table.max_entries.unwrap_or(table.entries.len());
        entries.max(table.entries.len()) as f64 * table.entry_bytes as f64 * m
    }

    /// `Σ M(v)` over all tables in the program, in bytes (reserved sizes).
    pub fn program_memory(&self, g: &ProgramGraph) -> f64 {
        g.tables().map(|(_, t)| self.table_memory_reserved(t)).sum()
    }

    /// `E(v)`: entry updates per second for one node.
    pub fn node_update_rate(&self, profile: &RuntimeProfile, id: NodeId) -> f64 {
        profile.entry_update_rate(id)
    }

    /// `Σ E(v)` over the program.
    pub fn program_update_rate(&self, g: &ProgramGraph, profile: &RuntimeProfile) -> f64 {
        g.iter_nodes()
            .map(|n| profile.entry_update_rate(n.id))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeleon_ir::FieldRef;
    use pipeleon_ir::{MatchKey, MatchKind, MatchValue, ProgramBuilder, TableEntry};

    #[test]
    fn table_memory_scales_with_entries_and_m() {
        let rm = ResourceModel::new(CostParams::emulated_nic());
        let mut t = Table::new("tern");
        t.keys = vec![MatchKey {
            field: FieldRef(0),
            kind: MatchKind::Ternary,
        }];
        t.entries.push(TableEntry::new(
            vec![MatchValue::Ternary { value: 0, mask: 1 }],
            0,
        ));
        // Fixed model: ternary m = 3. 1 entry * 32 B * 3.
        assert_eq!(rm.table_memory(&t), 96.0);
    }

    #[test]
    fn reserved_memory_uses_capacity() {
        let rm = ResourceModel::new(CostParams::bluefield2());
        let mut t = Table::new("cache");
        t.keys = vec![MatchKey {
            field: FieldRef(0),
            kind: MatchKind::Exact,
        }];
        t.max_entries = Some(1000);
        assert_eq!(rm.table_memory_reserved(&t), 1000.0 * 32.0);
        assert_eq!(rm.table_memory(&t), 0.0);
    }

    #[test]
    fn program_totals_sum_tables() {
        let mut b = ProgramBuilder::new();
        let f = b.field("x");
        let t0 = b
            .table("a")
            .key(f, MatchKind::Exact)
            .entry(TableEntry::new(vec![MatchValue::Exact(1)], 0))
            .finish();
        let t1 = b
            .table("b")
            .key(f, MatchKind::Exact)
            .entry(TableEntry::new(vec![MatchValue::Exact(2)], 0))
            .finish();
        let g = b.seal(t0).unwrap();
        let rm = ResourceModel::new(CostParams::bluefield2());
        assert_eq!(rm.program_memory(&g), 64.0);
        let mut prof = RuntimeProfile::empty();
        prof.set_entry_update_rate(t0, 3.0);
        prof.set_entry_update_rate(t1, 4.0);
        assert_eq!(rm.program_update_rate(&g, &prof), 7.0);
        assert_eq!(rm.node_update_rate(&prof, t1), 4.0);
    }
}
