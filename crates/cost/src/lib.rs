#![warn(missing_docs)]

//! # pipeleon-cost — approximate SmartNIC performance model
//!
//! Implements the cost model of paper §3.1 (Equations 1–4): a P4 program's
//! expected latency is the per-path latency weighted by path probability,
//! where a table costs `m · L_mat` for its key match (`m` = number of
//! memory accesses, a function of match kind and installed entries) plus
//! `Σ_a P(a) · n_a · L_act` for its actions, and branches are nearly free.
//!
//! * [`params`] — target-specific constants ([`CostParams`]) with presets
//!   for a BlueField2-like ASIC target, an Agilio-CX-like CPU target, and
//!   the paper's BMv2-based emulated NIC model (§5.3.3: LPM/ternary 3×
//!   exact, branches 1/10 of an exact table).
//! * [`profile`] — [`RuntimeProfile`]: per-edge / per-action packet
//!   counters, entry-update rates, and cache statistics collected at
//!   runtime; converts raw counters into the probabilities of Eq. 2a/4b.
//! * [`model`] — [`CostModel`]: expected program latency `L(G)` via a
//!   linear-time probability propagation (equivalent to path enumeration on
//!   DAGs), per-node and per-path costs, and throughput conversion.
//! * [`resources`] — the `M(v)` memory and `E(v)` entry-update-rate terms
//!   of the optimization constraints (Eq. 5).
//! * [`calibrate`] — least-squares fitting of `L_mat` / `L_act` from
//!   black-box throughput observations, reproducing the paper's
//!   benchmarking methodology (§3.1 "Methodology and results").

pub mod calibrate;
pub mod model;
pub mod params;
pub mod profile;
pub mod resources;
pub mod tiers;

pub use calibrate::{fit_line, CalibrationReport, Calibrator, LineFit};
pub use model::{CostModel, Placement};
pub use params::{CostParams, MatchCostModel, TargetKind};
pub use profile::{CacheStats, RuntimeProfile};
pub use resources::ResourceModel;
pub use tiers::{MemoryTier, TierParams};
