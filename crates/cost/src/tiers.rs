//! Hierarchical memory tiers (paper §6 "Hierarchical memory support").
//!
//! Some SmartNICs expose a memory hierarchy — e.g. Netronome's internal
//! SRAM vs. external EMEM — but P4 has no native way to place tables, so
//! the paper's prototype assumes a flat memory (its §6 calls tier-aware
//! optimization future work). This module implements that extension: each
//! table can be assigned a [`MemoryTier`], key-match memory accesses on
//! the fast tier are `sram_speedup`× cheaper, and `assign_tiers` (in the
//! optimizer crate's `hierarchical` module) chooses the hottest tables
//! that fit the fast tier's capacity.

use serde::{Deserialize, Serialize};

/// Which memory a table's entries live in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MemoryTier {
    /// External/far memory (the default; the paper's flat model).
    #[default]
    Emem,
    /// On-chip SRAM: `sram_speedup`× faster key matches, tight capacity.
    Sram,
}

/// The fast tier's parameters, attached to [`crate::CostParams`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierParams {
    /// Factor by which SRAM key matches are faster than EMEM.
    pub sram_speedup: f64,
    /// SRAM capacity in bytes.
    pub sram_capacity_bytes: f64,
}

impl Default for TierParams {
    fn default() -> Self {
        Self {
            sram_speedup: 3.0,
            sram_capacity_bytes: 256.0 * 1024.0,
        }
    }
}

impl TierParams {
    /// The match-cost multiplier of a tier.
    pub fn match_scale(&self, tier: MemoryTier) -> f64 {
        match tier {
            MemoryTier::Emem => 1.0,
            MemoryTier::Sram => 1.0 / self.sram_speedup.max(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_is_faster() {
        let t = TierParams::default();
        assert_eq!(t.match_scale(MemoryTier::Emem), 1.0);
        assert!((t.match_scale(MemoryTier::Sram) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_below_one_clamps() {
        let t = TierParams {
            sram_speedup: 0.5,
            ..TierParams::default()
        };
        assert_eq!(t.match_scale(MemoryTier::Sram), 1.0);
    }
}
