//! Integration tests for the memory-model lint (`PV2xx`).
//!
//! Two halves: the repository's own sources must be lint-clean (this is
//! the same gate CI runs via `pipeleon analyze --concurrency`), and a
//! synthetic repo with one seeded violation per rule must trip exactly
//! the expected diagnostics — proving the gate can actually fail.

use pipeleon_verify::{lint_concurrency, lint_concurrency_with_count};
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // crates/verify -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

/// The actual repository must pass its own gate: every atomic in the
/// datapath audited, every unsafe site justified, no raw std::sync in
/// facade-covered files.
#[test]
fn repository_is_concurrency_clean() {
    let (diags, scanned) = lint_concurrency_with_count(&repo_root()).expect("lint must run");
    assert!(
        scanned >= 50,
        "sanity: expected to scan the whole workspace, saw {scanned} files"
    );
    assert!(
        diags.is_empty(),
        "repository violates its own memory-model contract:\n{}",
        diags
            .iter()
            .map(|d| d.render_text())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Builds a throwaway directory tree with the given (path, contents)
/// files and lints it.
fn lint_fixture(files: &[(&str, &str)]) -> Vec<String> {
    let dir = std::env::temp_dir().join(format!(
        "pv2xx-fixture-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    for (rel, text) in files {
        let p = dir.join(rel);
        fs::create_dir_all(p.parent().unwrap()).unwrap();
        fs::write(&p, text).unwrap();
    }
    let diags = lint_concurrency(&dir).expect("lint must run");
    let mut out: Vec<String> = diags
        .iter()
        .map(|d| format!("{} {}", d.code, d.context[0]))
        .collect();
    out.sort();
    fs::remove_dir_all(&dir).unwrap();
    out
}

#[test]
fn seeded_violations_trip_every_rule() {
    let found = lint_fixture(&[
        // PV201 + PV204: a Relaxed op and an undocumented Acquire.
        (
            "crates/sim/src/ring.rs",
            "fn f(a: &AtomicUsize) {\n    a.load(Ordering::Relaxed);\n    a.load(Ordering::Acquire);\n}\n",
        ),
        // PV205: raw std::sync import in a datapath source.
        (
            "crates/sim/src/sharded.rs",
            "use std::sync::atomic::AtomicU64;\n",
        ),
        // PV202: unsafe outside the allowlist.
        (
            "crates/core/src/lib.rs",
            "fn f(p: *mut u8) { unsafe { *p = 0 }; }\n",
        ),
        // PV203: allowlisted unsafe without a SAFETY comment.
        (
            "crates/sim/src/packet.rs",
            "fn f(p: *mut u8) { unsafe { *p = 0 }; }\n",
        ),
        // Clean file for contrast.
        (
            "crates/cost/src/lib.rs",
            "pub fn add(a: u64, b: u64) -> u64 { a + b }\n",
        ),
    ]);
    assert_eq!(
        found,
        [
            "PV201 crates/sim/src/ring.rs:2",
            "PV202 crates/core/src/lib.rs:1",
            "PV203 crates/sim/src/packet.rs:1",
            "PV204 crates/sim/src/ring.rs:3",
            "PV205 crates/sim/src/sharded.rs:1",
        ]
    );
}

/// Vendored code is never the repository's problem: the same violation
/// under `vendor/` is invisible.
#[test]
fn vendor_and_hidden_dirs_are_skipped() {
    let found = lint_fixture(&[
        ("vendor/some-crate/src/lib.rs", "fn f() { unsafe {} }\n"),
        (".hidden/src/lib.rs", "fn f() { unsafe {} }\n"),
        ("crates/ok/src/lib.rs", "pub fn ok() {}\n"),
    ]);
    assert!(found.is_empty(), "{found:?}");
}
