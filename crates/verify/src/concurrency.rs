//! Memory-model lint for the lock-free datapath (`PV2xx` codes).
//!
//! The deterministic model checker (`pipeleon-check`) proves the ring
//! and generation-chain protocols correct *for the sources as written*;
//! this lint is the static fence that keeps future edits inside the
//! audited envelope the proofs cover:
//!
//! - **PV201** — `Ordering::Relaxed` in a datapath source. The model
//!   suite establishes that every edge of the Lamport/RCU protocols
//!   needs Release/Acquire; a new `Relaxed` means the proof no longer
//!   matches the code and must be re-run, so the lint denies it
//!   outright.
//! - **PV202** — `unsafe` in a file outside the allowlist. Unsafe code
//!   is confined to the few files whose invariants the model checker
//!   (or the allocator-guard test) actually exercises.
//! - **PV203** — an `unsafe` site in an allowlisted *source* file
//!   without a `// SAFETY:` comment in the preceding lines. Test files
//!   under the allowlist are exempt: their accesses run under the
//!   checker, which is stronger than a comment.
//! - **PV204** — an atomic operation (`Ordering::` at a call site) in a
//!   datapath source without an `// ORDERING:` comment nearby stating
//!   the happens-before edge it implements.
//! - **PV205** — a raw `std::sync` atomic or mutex in a datapath
//!   source. The datapath must import synchronization through the
//!   `crate::sync` facade so model builds swap in the tracked shims; a
//!   raw import silently escapes the checker.
//!
//! This is a line-level lint over the repository's own sources (no
//! parsing, no external deps): comments and string literals are
//! stripped before token matching, `#[cfg(test)]` tails of datapath
//! files are skipped for the datapath rules (test counters legitimately
//! use `SeqCst` std atomics), and `vendor/`, `target/` and hidden
//! directories are never scanned.

use crate::{Code, Diagnostic};
use std::fs;
use std::path::{Path, PathBuf};

/// Datapath sources: must use the `crate::sync` facade, documented
/// orderings, and no `Relaxed`.
const DATAPATH: &[&str] = &[
    "crates/sim/src/ring.rs",
    "crates/sim/src/generation.rs",
    "crates/sim/src/sharded.rs",
];

/// Source files allowed to contain `unsafe`, each site requiring a
/// `// SAFETY:` comment (PV203 enforced).
const UNSAFE_SRC_ALLOWLIST: &[&str] = &[
    // The SPSC ring's MaybeUninit slots — protocol verified by the
    // model suite.
    "crates/sim/src/ring.rs",
    // `_mm_prefetch` hint on packet slots.
    "crates/sim/src/packet.rs",
    // The std-side CheckCell newtype (Send/Sync impls + UnsafeCell).
    "crates/sim/src/sync.rs",
    // The checker's own shims are the instrument, not the subject.
    "crates/check/src/",
];

/// Test files allowed to contain `unsafe` without SAFETY comments:
/// their raw accesses execute under the model checker (or, for the
/// alloc guard, implement the counting `GlobalAlloc`).
const UNSAFE_TEST_ALLOWLIST: &[&str] = &[
    "crates/sim/tests/model.rs",
    "crates/sim/tests/alloc_guard.rs",
    "crates/check/tests/",
];

/// How many preceding lines may carry the justifying comment. Wide
/// enough for a doc-commented helper whose body is a cfg pair (see
/// `ring.rs`'s ordering helpers), narrow enough that a comment cannot
/// justify a site half a screen away.
const COMMENT_WINDOW: usize = 12;

/// Runs the memory-model lint over the repository rooted at `root`.
/// Scans every first-party `.rs` file (skipping `vendor/`, `target/`,
/// and hidden directories) and returns one diagnostic per violation.
pub fn lint_concurrency(root: &Path) -> Result<Vec<Diagnostic>, String> {
    lint_concurrency_with_count(root).map(|(diags, _)| diags)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "vendor" || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip prefix: {e}"))?;
            out.push(rel_slashes(rel));
        }
    }
    Ok(())
}

fn rel_slashes(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

fn in_list(rel: &str, list: &[&str]) -> bool {
    list.iter().any(|e| {
        if e.ends_with('/') {
            rel.starts_with(e)
        } else {
            rel == *e
        }
    })
}

fn lint_file(rel: &str, text: &str, diags: &mut Vec<Diagnostic>) {
    let datapath = in_list(rel, DATAPATH);
    let unsafe_src_ok = in_list(rel, UNSAFE_SRC_ALLOWLIST);
    let unsafe_test_ok = in_list(rel, UNSAFE_TEST_ALLOWLIST);

    let raw_lines: Vec<&str> = text.lines().collect();
    // Code content with comments and string literals blanked, per line.
    let code_lines: Vec<String> = strip_noncode(text);

    // Datapath rules stop at the file's `#[cfg(test)]` tail: test
    // modules may use std atomics for instrumentation counters.
    let test_tail = raw_lines
        .iter()
        .position(|l| l.trim() == "#[cfg(test)]")
        .unwrap_or(raw_lines.len());

    for (i, code) in code_lines.iter().enumerate() {
        let lineno = i + 1;
        let at = format!("{rel}:{lineno}");

        if datapath && i < test_tail {
            if code.contains("Ordering::Relaxed") {
                diags.push(diag(
                    Code::RelaxedOrdering,
                    "`Ordering::Relaxed` in a datapath source; the model-checked \
                     protocol proofs cover Release/Acquire only — re-run the model \
                     suite and use the facade's audited orderings instead"
                        .to_string(),
                    &at,
                ));
            }
            if code.contains("std::sync::atomic::Atomic") || code.contains("std::sync::Mutex") {
                diags.push(diag(
                    Code::RawAtomicOutsideFacade,
                    "raw `std::sync` primitive in a datapath source; import it \
                     through `crate::sync` so `--cfg pipeleon_check` builds swap \
                     in the tracked shims"
                        .to_string(),
                    &at,
                ));
            }
            if code.contains("Ordering::")
                && !code.contains("Ordering::Relaxed")
                && !has_comment_nearby(&raw_lines, i, "ORDERING:")
            {
                diags.push(diag(
                    Code::MissingOrderingComment,
                    format!(
                        "atomic operation without an `// ORDERING:` comment within the \
                         preceding {COMMENT_WINDOW} lines stating its happens-before edge"
                    ),
                    &at,
                ));
            }
        }

        if contains_unsafe_token(code) {
            if unsafe_test_ok {
                // Model-checked (or alloc-guard) test code: exempt.
            } else if unsafe_src_ok {
                if !has_comment_nearby(&raw_lines, i, "SAFETY:") {
                    diags.push(diag(
                        Code::MissingSafetyComment,
                        format!(
                            "`unsafe` without a `// SAFETY:` comment within the \
                             preceding {COMMENT_WINDOW} lines"
                        ),
                        &at,
                    ));
                }
            } else {
                diags.push(diag(
                    Code::UnsafeOutsideAllowlist,
                    "`unsafe` outside the audited allowlist; keep unsafe code in \
                     the model-checked datapath files or extend the allowlist in \
                     crates/verify/src/concurrency.rs with a review"
                        .to_string(),
                    &at,
                ));
            }
        }
    }
}

fn diag(code: Code, message: String, at: &str) -> Diagnostic {
    Diagnostic {
        code,
        severity: code.default_severity(),
        message,
        context: vec![at.to_string()],
    }
}

/// Whether any of the `COMMENT_WINDOW` raw lines above `i` (or line `i`
/// itself) carries the given marker (`SAFETY:` / `ORDERING:`) in a
/// comment.
fn has_comment_nearby(raw: &[&str], i: usize, marker: &str) -> bool {
    let lo = i.saturating_sub(COMMENT_WINDOW);
    raw[lo..=i].iter().any(|l| {
        let t = l.trim_start();
        // Accept both standalone comment lines and trailing comments.
        t.contains("//") && l.contains(marker)
    })
}

/// Whether the (comment/string-stripped) line contains the `unsafe`
/// keyword as a standalone token. `unsafe_op_in_unsafe_fn` and
/// `forbid(unsafe_code)` fail the word-boundary check on the trailing
/// `_` and are naturally skipped.
fn contains_unsafe_token(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find("unsafe") {
        let start = from + pos;
        let end = start + "unsafe".len();
        let before_ok = start == 0 || !is_ident(bytes[start - 1]);
        let after_ok = end == bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Blanks comments (`//` to end of line, `/* ... */` across lines) and
/// string literals (`"..."`, with escapes; raw strings handled as plain
/// quotes conservatively) so token scans only see code. Char literals
/// like `'"'` are short enough not to matter for our tokens.
fn strip_noncode(text: &str) -> Vec<String> {
    #[derive(PartialEq)]
    enum St {
        Code,
        Block,
        Str,
    }
    let mut st = St::Code;
    let mut out = Vec::new();
    for line in text.lines() {
        let b = line.as_bytes();
        let mut keep = String::with_capacity(line.len());
        let mut i = 0;
        while i < b.len() {
            match st {
                St::Code => {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
                        break; // line comment: drop the rest
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        st = St::Block;
                        i += 2;
                    } else if b[i] == b'"' {
                        st = St::Str;
                        keep.push(' ');
                        i += 1;
                    } else {
                        keep.push(b[i] as char);
                        i += 1;
                    }
                }
                St::Block => {
                    if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        st = St::Code;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                St::Str => {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'"' {
                        st = St::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        // An unterminated string continues on the next line (multi-line
        // literal); nothing to do — state carries over.
        out.push(keep);
    }
    out
}

/// Convenience used by the CLI and tests: lints the repo and also
/// returns how many files were scanned, for reporting.
pub fn lint_concurrency_with_count(root: &Path) -> Result<(Vec<Diagnostic>, usize), String> {
    let mut files: Vec<String> = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let n = files.len();
    let mut diags = Vec::new();
    for rel in &files {
        let path: PathBuf = root.join(rel);
        let text =
            fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        lint_file(rel, &text, &mut diags);
    }
    Ok((diags, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_snippet(rel: &str, text: &str) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        lint_file(rel, text, &mut diags);
        diags
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn relaxed_in_datapath_is_denied() {
        let d = lint_snippet(
            "crates/sim/src/ring.rs",
            "fn f(a: &AtomicUsize) { a.load(Ordering::Relaxed); }\n",
        );
        assert_eq!(codes(&d), ["PV201"]);
    }

    #[test]
    fn relaxed_in_comment_or_string_is_ignored() {
        let d = lint_snippet(
            "crates/sim/src/ring.rs",
            "// a Relaxed store via Ordering::Relaxed breaks the sequence\n\
             fn f() { let _ = \"Ordering::Relaxed\"; }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn raw_std_atomic_in_datapath_is_denied() {
        let d = lint_snippet(
            "crates/sim/src/sharded.rs",
            "use std::sync::atomic::AtomicU64;\n",
        );
        assert_eq!(codes(&d), ["PV205"]);
    }

    #[test]
    fn raw_std_mutex_in_datapath_is_denied() {
        let d = lint_snippet("crates/sim/src/sharded.rs", "use std::sync::Mutex;\n");
        assert_eq!(codes(&d), ["PV205"]);
    }

    #[test]
    fn facade_import_is_clean() {
        let d = lint_snippet(
            "crates/sim/src/sharded.rs",
            "use crate::sync::{AtomicU64, Mutex, Ordering};\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn atomic_op_without_ordering_comment_is_flagged() {
        let d = lint_snippet(
            "crates/sim/src/generation.rs",
            "fn f(a: &AtomicU64) { a.load(Ordering::Acquire); }\n",
        );
        assert_eq!(codes(&d), ["PV204"]);
    }

    #[test]
    fn ordering_comment_within_window_satisfies_pv204() {
        let d = lint_snippet(
            "crates/sim/src/generation.rs",
            "// ORDERING: Acquire — pairs with the publisher's Release.\n\
             fn f(a: &AtomicU64) { a.load(Ordering::Acquire); }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn cfg_test_tail_is_exempt_from_datapath_rules() {
        let d = lint_snippet(
            "crates/sim/src/ring.rs",
            "fn real() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 use std::sync::atomic::AtomicUsize;\n\
                 fn t(a: &AtomicUsize) { a.load(std::sync::atomic::Ordering::SeqCst); }\n\
             }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn unsafe_outside_allowlist_is_denied() {
        let d = lint_snippet(
            "crates/core/src/optimizer.rs",
            "fn f() { unsafe { std::hint::unreachable_unchecked() } }\n",
        );
        assert_eq!(codes(&d), ["PV202"]);
    }

    #[test]
    fn unsafe_in_allowlisted_src_needs_safety_comment() {
        let d = lint_snippet(
            "crates/sim/src/ring.rs",
            "fn f(p: *mut u8) { unsafe { *p = 0 }; }\n",
        );
        assert_eq!(codes(&d), ["PV203"]);
        let ok = lint_snippet(
            "crates/sim/src/ring.rs",
            "// SAFETY: exclusive access proven by the SPSC protocol.\n\
             fn f(p: *mut u8) { unsafe { *p = 0 }; }\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn model_test_files_may_use_raw_unsafe() {
        let d = lint_snippet(
            "crates/sim/tests/model.rs",
            "fn f(c: &CheckCell<u64>) { c.with(|p| unsafe { *p }); }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn lint_attributes_are_not_unsafe_tokens() {
        let d = lint_snippet(
            "crates/core/src/lib.rs",
            "#![deny(unsafe_op_in_unsafe_fn)]\n#![forbid(unsafe_code)]\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
