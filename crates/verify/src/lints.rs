//! Program lints: a dataflow walk over the IR DAG emitting `PV0xx`
//! diagnostics.
//!
//! ## Field classification
//!
//! The IR has no explicit header/metadata distinction, so the lints use a
//! naming convention (configurable via [`LintConfig::meta_prefixes`]):
//! fields whose names start with `meta.`, `tmp.`, `local.` or `scratch.`
//! are *metadata* — undefined until some action writes them. Every other
//! field is assumed parser-defined (a header) and therefore initialized at
//! the root. This keeps the lints quiet on the workspace's existing
//! programs, which use bare header-style names.
//!
//! ## The must-write dataflow (PV001)
//!
//! `PV001` flags reads of metadata fields that are not written on *every*
//! root-to-node path. We compute, per node, the intersection over all
//! incoming paths of the guaranteed write sets (headers seeded at the
//! root; a table's guaranteed writes are the intersection over all of its
//! actions' write sets, since any action — including the default — may
//! run). The analysis is conservative: a path that drops the packet still
//! counts, so some reported reads may be dynamically unreachable.

use crate::{Code, Diagnostic};
use pipeleon_cost::params::CostParams;
use pipeleon_cost::resources::ResourceModel;
use pipeleon_ir::{CacheRole, Node, NodeKind, ProgramGraph, Table};

/// Configuration for [`lint_program`].
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Target cost parameters; when present, resource lints (PV005) run
    /// against the target's memory tiers.
    pub params: Option<CostParams>,
    /// Field-name prefixes classified as metadata (uninitialized until
    /// written). Everything else counts as parser-defined header state.
    pub meta_prefixes: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        Self {
            params: None,
            meta_prefixes: vec![
                "meta.".into(),
                "tmp.".into(),
                "local.".into(),
                "scratch.".into(),
            ],
        }
    }
}

impl LintConfig {
    /// A config with a target attached (enables PV005).
    pub fn with_params(params: CostParams) -> Self {
        Self {
            params: Some(params),
            ..Self::default()
        }
    }

    fn is_meta(&self, name: &str) -> bool {
        self.meta_prefixes.iter().any(|p| name.starts_with(p))
    }
}

/// A dense bitset over the program's interned fields.
#[derive(Clone, PartialEq)]
struct FieldSet(Vec<u64>);

impl FieldSet {
    fn empty(len: usize) -> Self {
        FieldSet(vec![0; len.div_ceil(64)])
    }

    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }

    fn get(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }

    fn union_with(&mut self, other: &FieldSet) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a |= b;
        }
    }

    fn intersect_with(&mut self, other: &FieldSet) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a &= b;
        }
    }
}

fn node_label(n: &Node) -> String {
    match &n.kind {
        NodeKind::Table(t) => format!("table `{}` (node {})", t.name, n.id.index()),
        NodeKind::Branch(b) => format!("branch `{}` (node {})", b.name, n.id.index()),
    }
}

fn field_name(g: &ProgramGraph, f: pipeleon_ir::FieldRef) -> String {
    g.fields
        .name(f)
        .map(str::to_owned)
        .unwrap_or_else(|| format!("<field {}>", f.index()))
}

/// The write set a table is *guaranteed* to perform, whichever action
/// fires: the intersection over all actions' write sets.
fn guaranteed_writes(t: &Table, len: usize) -> FieldSet {
    let mut out: Option<FieldSet> = None;
    for a in &t.actions {
        let mut w = FieldSet::empty(len);
        for p in &a.primitives {
            if let Some(f) = p.written_field() {
                w.set(f.index());
            }
        }
        match &mut out {
            None => out = Some(w),
            Some(acc) => acc.intersect_with(&w),
        }
    }
    out.unwrap_or_else(|| FieldSet::empty(len))
}

/// Runs every program lint over `g` and returns the findings in a
/// deterministic order (grouped by pass, then by node id).
pub fn lint_program(g: &ProgramGraph, cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let nf = g.fields.len();
    let reachable = g.reachable();

    // PV002: unreachable nodes.
    for n in g.iter_nodes() {
        if !reachable[n.id.index()] {
            diags.push(Diagnostic {
                code: Code::Unreachable,
                severity: Code::Unreachable.default_severity(),
                message: format!("{} is unreachable from the program root", node_label(n)),
                context: vec![node_label(n)],
            });
        }
    }

    // Fields written by *some* action anywhere in the program (for PV004).
    let mut written_anywhere = FieldSet::empty(nf);
    for n in g.iter_nodes() {
        if let NodeKind::Table(t) = &n.kind {
            for a in &t.actions {
                for p in &a.primitives {
                    if let Some(f) = p.written_field() {
                        written_anywhere.set(f.index());
                    }
                }
            }
        }
    }

    // Header fields are parser-defined at the root.
    let mut headers = FieldSet::empty(nf);
    for (i, name) in (0..nf).map(|i| (i, g.fields.name(pipeleon_ir::FieldRef(i as u16)))) {
        if let Some(name) = name {
            if !cfg.is_meta(name) {
                headers.set(i);
            }
        }
    }

    // Must-write dataflow over the reachable DAG (PV001 / PV004).
    if let Ok(topo) = g.topo_order() {
        let mut ins: Vec<Option<FieldSet>> = vec![None; g.num_nodes()];
        if let Some(root) = g.root() {
            ins[root.index()] = Some(headers.clone());
        }
        for &id in &topo {
            if !reachable[id.index()] {
                continue;
            }
            let Some(n) = g.node(id) else { continue };
            let in_set = match &ins[id.index()] {
                Some(s) => s.clone(),
                None => continue,
            };
            check_node_reads(g, cfg, n, &in_set, &written_anywhere, &mut diags);
            let mut out = in_set;
            if let NodeKind::Table(t) = &n.kind {
                out.union_with(&guaranteed_writes(t, nf));
            }
            for t in n.next.targets().into_iter().flatten() {
                match &mut ins[t.index()] {
                    slot @ None => *slot = Some(out.clone()),
                    Some(existing) => existing.intersect_with(&out),
                }
            }
        }
    }

    // Per-table lints: PV003 (dead actions), PV006 (self-conflicting
    // actions), PV007 (shadowed entries).
    for n in g.iter_nodes() {
        let Some(t) = n.as_table() else { continue };
        if t.cache_role != CacheRole::None {
            continue; // synthetic cache tables manage their own actions
        }
        lint_table_actions(n, t, &mut diags, reachable[n.id.index()]);
        lint_table_entries(n, t, &mut diags);
    }

    // PV005: reserved footprint vs the target's fast tier.
    if let Some(params) = &cfg.params {
        let capacity = params.tiers.sram_capacity_bytes;
        let rm = ResourceModel::new(params.clone());
        for n in g.iter_nodes() {
            let Some(t) = n.as_table() else { continue };
            let reserved = rm.table_memory_reserved(t);
            if reserved > capacity {
                diags.push(Diagnostic {
                    code: Code::TierOverflow,
                    severity: Code::TierOverflow.default_severity(),
                    message: format!(
                        "{} reserves {:.0} bytes, exceeding the fast-tier capacity \
                         of {:.0} bytes on target `{}`",
                        node_label(n),
                        reserved,
                        capacity,
                        params.name
                    ),
                    context: vec![node_label(n)],
                });
            }
        }
    }

    diags
}

/// Checks every read performed at `n` (match keys / branch condition at
/// entry, then action operands in primitive order) against the must-write
/// facts `in_set`.
fn check_node_reads(
    g: &ProgramGraph,
    cfg: &LintConfig,
    n: &Node,
    in_set: &FieldSet,
    written_anywhere: &FieldSet,
    diags: &mut Vec<Diagnostic>,
) {
    let mut flagged: Vec<(u16, Code)> = Vec::new();
    let flag = |diags: &mut Vec<Diagnostic>,
                flagged: &mut Vec<(u16, Code)>,
                code: Code,
                f: pipeleon_ir::FieldRef,
                site: String| {
        if flagged.contains(&(f.0, code)) {
            return;
        }
        flagged.push((f.0, code));
        let noun = match code {
            Code::UndefinedBranchField => format!(
                "branch condition reads field `{}`, which no action in the program writes",
                field_name(g, f)
            ),
            _ => format!(
                "field `{}` may be read before it is written",
                field_name(g, f)
            ),
        };
        diags.push(Diagnostic {
            code,
            severity: code.default_severity(),
            message: noun,
            context: vec![site, node_label(n)],
        });
    };

    let entry_reads: Vec<pipeleon_ir::FieldRef> = match &n.kind {
        NodeKind::Table(t) => t.keys.iter().map(|k| k.field).collect(),
        NodeKind::Branch(b) => {
            let mut fs = Vec::new();
            b.condition.read_fields(&mut fs);
            fs
        }
    };
    for f in entry_reads {
        let name = field_name(g, f);
        if !cfg.is_meta(&name) || in_set.get(f.index()) {
            continue;
        }
        let is_branch = matches!(n.kind, NodeKind::Branch(_));
        if is_branch && !written_anywhere.get(f.index()) {
            flag(
                diags,
                &mut flagged,
                Code::UndefinedBranchField,
                f,
                format!("condition of {}", node_label(n)),
            );
        } else {
            let site = match &n.kind {
                NodeKind::Table(t) => format!("match key of table `{}`", t.name),
                NodeKind::Branch(b) => format!("condition of branch `{}`", b.name),
            };
            flag(diags, &mut flagged, Code::UninitializedRead, f, site);
        }
    }

    if let NodeKind::Table(t) = &n.kind {
        for a in &t.actions {
            let mut live = in_set.clone();
            for p in &a.primitives {
                if let Some(f) = p.read_field() {
                    let name = field_name(g, f);
                    if cfg.is_meta(&name) && !live.get(f.index()) {
                        flag(
                            diags,
                            &mut flagged,
                            Code::UninitializedRead,
                            f,
                            format!("action `{}` of table `{}`", a.name, t.name),
                        );
                    }
                }
                if let Some(f) = p.written_field() {
                    live.set(f.index());
                }
            }
        }
    }
}

/// PV003 (dead actions) and PV006 (write-after-write within one action).
fn lint_table_actions(n: &Node, t: &Table, diags: &mut Vec<Diagnostic>, reachable: bool) {
    // PV006 fires regardless of reachability: the action body itself is
    // self-conflicting.
    for a in &t.actions {
        let mut pending: Vec<u16> = Vec::new();
        for p in &a.primitives {
            if let Some(f) = p.read_field() {
                pending.retain(|&x| x != f.0);
            }
            if let Some(f) = p.written_field() {
                if pending.contains(&f.0) {
                    diags.push(Diagnostic {
                        code: Code::SelfConflictingAction,
                        severity: Code::SelfConflictingAction.default_severity(),
                        message: format!(
                            "action `{}` writes field {} twice without reading it; \
                             the first write is dead",
                            a.name,
                            f.index()
                        ),
                        context: vec![
                            format!("action `{}` of table `{}`", a.name, t.name),
                            node_label(n),
                        ],
                    });
                } else {
                    pending.push(f.0);
                }
            }
        }
    }

    // PV003 only makes sense for populated, reachable program tables.
    if !reachable || t.entries.is_empty() {
        return;
    }
    for (i, a) in t.actions.iter().enumerate() {
        let referenced = i == t.default_action || t.entries.iter().any(|e| e.action == i);
        if !referenced {
            diags.push(Diagnostic {
                code: Code::DeadAction,
                severity: Code::DeadAction.default_severity(),
                message: format!(
                    "action `{}` of table `{}` is never referenced by an entry \
                     or as the default",
                    a.name, t.name
                ),
                context: vec![node_label(n)],
            });
        }
    }
}

/// PV007: entries with identical match values shadow one another.
fn lint_table_entries(n: &Node, t: &Table, diags: &mut Vec<Diagnostic>) {
    for j in 1..t.entries.len() {
        if let Some(i) = (0..j).find(|&i| t.entries[i].matches == t.entries[j].matches) {
            diags.push(Diagnostic {
                code: Code::ShadowedEntry,
                severity: Code::ShadowedEntry.default_severity(),
                message: format!(
                    "entry #{j} of table `{}` duplicates the match values of \
                     entry #{i}; one of them can never fire",
                    t.name
                ),
                context: vec![node_label(n)],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use pipeleon_ir::{Condition, MatchKind, MatchValue, Primitive, ProgramBuilder, TableEntry};

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_is_lint_free() {
        let mut b = ProgramBuilder::named("clean");
        let x = b.field("x");
        b.table("t")
            .key(x, MatchKind::Exact)
            .action_nop("permit")
            .action_drop("deny")
            .entry(TableEntry::new(vec![MatchValue::Exact(1)], 1))
            .finish();
        let g = b.seal_sequential().unwrap();
        let diags = lint_program(&g, &LintConfig::default());
        assert!(diags.is_empty(), "unexpected: {diags:?}");
    }

    #[test]
    fn pv001_flags_uninitialized_metadata_match() {
        let mut b = ProgramBuilder::named("p");
        let m = b.field("meta.class");
        b.table("t").key(m, MatchKind::Exact).finish();
        let g = b.seal_sequential().unwrap();
        let diags = lint_program(&g, &LintConfig::default());
        assert_eq!(codes(&diags), vec![Code::UninitializedRead]);
        assert!(diags[0].message.contains("meta.class"));
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn pv001_not_emitted_when_every_path_writes_first() {
        let mut b = ProgramBuilder::named("p");
        let m = b.field("meta.class");
        let x = b.field("x");
        b.table("classify")
            .key(x, MatchKind::Exact)
            .action("set_class", vec![Primitive::set(m, 1)])
            .finish();
        b.table("use").key(m, MatchKind::Exact).finish();
        let g = b.seal_sequential().unwrap();
        assert!(lint_program(&g, &LintConfig::default()).is_empty());
    }

    #[test]
    fn pv001_fires_when_only_one_action_writes() {
        // `classify` writes meta.class in one action but not the other, so
        // the write is not guaranteed.
        let mut b = ProgramBuilder::named("p");
        let m = b.field("meta.class");
        let x = b.field("x");
        b.table("classify")
            .key(x, MatchKind::Exact)
            .action("set_class", vec![Primitive::set(m, 1)])
            .action_nop("skip")
            .finish();
        b.table("use").key(m, MatchKind::Exact).finish();
        let g = b.seal_sequential().unwrap();
        let diags = lint_program(&g, &LintConfig::default());
        assert_eq!(codes(&diags), vec![Code::UninitializedRead]);
    }

    #[test]
    fn pv002_flags_unreachable_table() {
        let mut b = ProgramBuilder::named("p");
        let x = b.field("x");
        let t0 = b.table("t0").key(x, MatchKind::Exact).finish();
        let orphan = b.table("orphan").key(x, MatchKind::Exact).finish();
        b.set_next(t0, None);
        b.set_next(orphan, None);
        let g = b.seal(t0).unwrap();
        let diags = lint_program(&g, &LintConfig::default());
        assert_eq!(codes(&diags), vec![Code::Unreachable]);
        assert!(diags[0].message.contains("orphan"));
    }

    #[test]
    fn pv003_flags_dead_action() {
        let mut b = ProgramBuilder::named("p");
        let x = b.field("x");
        b.table("t")
            .key(x, MatchKind::Exact)
            .action_nop("permit")
            .action_drop("deny")
            .action("unused", vec![Primitive::set(x, 9)])
            .entry(TableEntry::new(vec![MatchValue::Exact(1)], 1))
            .finish();
        let g = b.seal_sequential().unwrap();
        let diags = lint_program(&g, &LintConfig::default());
        assert_eq!(codes(&diags), vec![Code::DeadAction]);
        assert!(diags[0].message.contains("unused"));
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn pv004_flags_branch_over_never_written_meta_field() {
        let mut b = ProgramBuilder::named("p");
        let x = b.field("x");
        let m = b.field("meta.flag");
        let t = b.table("t").key(x, MatchKind::Exact).finish();
        b.set_next(t, None);
        let br = b.branch("check", Condition::eq(m, 1), Some(t), Some(t));
        let g = b.seal(br).unwrap();
        let diags = lint_program(&g, &LintConfig::default());
        assert_eq!(codes(&diags), vec![Code::UndefinedBranchField]);
        assert!(diags[0].message.contains("meta.flag"));
    }

    #[test]
    fn branch_over_written_meta_field_reports_pv001_not_pv004() {
        // Some action writes meta.flag, but not before the branch runs.
        let mut b = ProgramBuilder::named("p");
        let x = b.field("x");
        let m = b.field("meta.flag");
        let t = b
            .table("t")
            .key(x, MatchKind::Exact)
            .action("late_write", vec![Primitive::set(m, 1)])
            .finish();
        b.set_next(t, None);
        let br = b.branch("check", Condition::eq(m, 1), Some(t), Some(t));
        let g = b.seal(br).unwrap();
        let diags = lint_program(&g, &LintConfig::default());
        assert_eq!(codes(&diags), vec![Code::UninitializedRead]);
    }

    #[test]
    fn pv005_flags_table_exceeding_fast_tier() {
        let mut b = ProgramBuilder::named("p");
        let x = b.field("x");
        b.table("huge")
            .key(x, MatchKind::Exact)
            .max_entries(1 << 20)
            .finish();
        let g = b.seal_sequential().unwrap();
        let params = CostParams::emulated_nic();
        let diags = lint_program(&g, &LintConfig::with_params(params));
        assert_eq!(codes(&diags), vec![Code::TierOverflow]);
        assert!(diags[0].message.contains("fast-tier"));
        // Without a target, the resource lint is silent.
        assert!(lint_program(&g, &LintConfig::default()).is_empty());
    }

    #[test]
    fn pv006_flags_dead_write_within_action() {
        let mut b = ProgramBuilder::named("p");
        let x = b.field("x");
        let y = b.field("y");
        b.table("t")
            .key(y, MatchKind::Exact)
            .action(
                "double_set",
                vec![Primitive::set(x, 1), Primitive::set(x, 2)],
            )
            .finish();
        let g = b.seal_sequential().unwrap();
        let diags = lint_program(&g, &LintConfig::default());
        assert_eq!(codes(&diags), vec![Code::SelfConflictingAction]);
    }

    #[test]
    fn pv006_silent_when_intervening_read_exists() {
        // set x; y = x; set x  — the middle copy reads x, so neither write
        // is dead.
        let mut b = ProgramBuilder::named("p");
        let x = b.field("x");
        let y = b.field("y");
        b.table("t")
            .action(
                "ok",
                vec![
                    Primitive::set(x, 1),
                    Primitive::Copy { dst: y, src: x },
                    Primitive::set(x, 2),
                ],
            )
            .finish();
        let g = b.seal_sequential().unwrap();
        assert!(lint_program(&g, &LintConfig::default()).is_empty());
    }

    #[test]
    fn pv007_flags_duplicate_entries() {
        let mut b = ProgramBuilder::named("p");
        let x = b.field("x");
        b.table("t")
            .key(x, MatchKind::Exact)
            .action_nop("permit")
            .action_drop("deny")
            .entry(TableEntry::new(vec![MatchValue::Exact(7)], 0))
            .entry(TableEntry::new(vec![MatchValue::Exact(7)], 1))
            .finish();
        let g = b.seal_sequential().unwrap();
        let diags = lint_program(&g, &LintConfig::default());
        assert_eq!(codes(&diags), vec![Code::ShadowedEntry]);
    }

    #[test]
    fn action_read_of_uninitialized_meta_is_flagged() {
        let mut b = ProgramBuilder::named("p");
        let x = b.field("x");
        let m = b.field("meta.acc");
        b.table("t")
            .key(x, MatchKind::Exact)
            .action("bump", vec![Primitive::add(m, 1)])
            .finish();
        let g = b.seal_sequential().unwrap();
        let diags = lint_program(&g, &LintConfig::default());
        assert_eq!(codes(&diags), vec![Code::UninitializedRead]);
        assert!(diags[0].context[0].contains("bump"));
    }

    #[test]
    fn diamond_requires_writes_on_both_arms() {
        // branch -> {writes on true arm only} -> join reading meta: the
        // false arm does not write, so the join read is flagged.
        let mut b = ProgramBuilder::named("p");
        let x = b.field("x");
        let m = b.field("meta.class");
        let join = b.table("join").key(m, MatchKind::Exact).finish();
        b.set_next(join, None);
        let wt = b
            .table("wt")
            .action("w", vec![Primitive::set(m, 1)])
            .finish();
        b.set_next(wt, Some(join));
        let wf = b.table("wf").action_nop("skip").finish();
        b.set_next(wf, Some(join));
        let br = b.branch("split", Condition::eq(x, 0), Some(wt), Some(wf));
        let g = b.seal(br).unwrap();
        let diags = lint_program(&g, &LintConfig::default());
        assert_eq!(codes(&diags), vec![Code::UninitializedRead]);

        // Making both arms write silences it.
        let mut b = ProgramBuilder::named("p2");
        let x = b.field("x");
        let m = b.field("meta.class");
        let join = b.table("join").key(m, MatchKind::Exact).finish();
        b.set_next(join, None);
        let wt = b
            .table("wt")
            .action("w", vec![Primitive::set(m, 1)])
            .finish();
        b.set_next(wt, Some(join));
        let wf = b
            .table("wf")
            .action("w", vec![Primitive::set(m, 2)])
            .finish();
        b.set_next(wf, Some(join));
        let br = b.branch("split", Condition::eq(x, 0), Some(wt), Some(wf));
        let g = b.seal(br).unwrap();
        assert!(lint_program(&g, &LintConfig::default()).is_empty());
    }
}
