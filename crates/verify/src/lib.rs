//! # pipeleon-verify — static program lints and plan-safety verification
//!
//! Pipeleon's rewrites (reorder §3.2.1, flow-cache §3.2.2, merge §3.2.3)
//! are only profitable if they are *semantics-preserving*. This crate is
//! the correctness backbone for the rest of the workspace; it has two
//! independent passes:
//!
//! 1. **Program lints** ([`lint_program`]): a dataflow walk over the
//!    [`pipeleon_ir::ProgramGraph`] DAG producing rustc-style typed
//!    diagnostics (`PV0xx` codes) — possibly-uninitialized metadata reads,
//!    unreachable tables, dead actions, branch conditions over fields no
//!    action defines, tables whose reserved footprint exceeds the target's
//!    fast-memory tier, intra-action dead writes, and shadowed entries.
//! 2. **Plan safety** ([`PlanVerifier`]): for every optimization candidate,
//!    prove the rewrite legal with path-sensitive Bernstein-condition
//!    checks over all DAG paths through the affected region (every
//!    inverted pair must commute, cache segments must be outcome-determined
//!    by their entry key, merges need key-compatibility) and return a
//!    machine-readable [`Verdict`].
//!
//! The crate deliberately depends only on `pipeleon-ir` and
//! `pipeleon-cost` so that the optimizer core, the runtime controller and
//! the CLI can all consume it without cycles.

#![forbid(unsafe_code)]

mod concurrency;
mod lints;
mod plan;

pub use concurrency::{lint_concurrency, lint_concurrency_with_count};
pub use lints::{lint_program, LintConfig};
pub use plan::{
    verify_candidate, CandidateSpec, PlanVerifier, RewriteKind, SegmentSpec, Verdict, Violation,
    DEFAULT_PATH_LIMIT,
};

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not provably wrong; `--deny-warnings` promotes it.
    Warning,
    /// The program (or plan) is wrong or would misbehave when deployed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Typed diagnostic codes. `PV0xx` are program lints, `PV1xx` are
/// plan-safety violations, `PV2xx` are memory-model (concurrency)
/// lints over the repository's own datapath sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// PV001: a match key, branch condition, or action operand reads a
    /// metadata field that is not written on every root-to-node path.
    UninitializedRead,
    /// PV002: a node is unreachable from the program root.
    Unreachable,
    /// PV003: a populated table carries an action no entry or default
    /// references.
    DeadAction,
    /// PV004: a branch condition reads a metadata field that no action in
    /// the whole program writes.
    UndefinedBranchField,
    /// PV005: the table's reserved memory footprint exceeds the target's
    /// fast-tier (SRAM) capacity.
    TierOverflow,
    /// PV006: an action writes a field twice without reading it in
    /// between (the first write is dead).
    SelfConflictingAction,
    /// PV007: two entries of one table have identical match values, so one
    /// of them can never fire.
    ShadowedEntry,
    /// PV101: the candidate is structurally malformed (unknown nodes,
    /// out-of-range or overlapping segments, non-table members, ...).
    PlanShape,
    /// PV102: the candidate inverts two tables that do not commute
    /// (read/write hazard on some execution path).
    ReorderHazard,
    /// PV103: a cache segment is not outcome-determined by its entry key
    /// (internal write feeds a later match, or a member is not cacheable).
    CacheUnsafe,
    /// PV104: a merge segment violates key-compatibility or the
    /// exact-match requirement of merged caches.
    MergeUnsafe,
    /// PV105: the candidate's members are not contiguous along an
    /// execution path (a non-member executes in the middle of the region).
    NonContiguous,
    /// PV106: the verifier's path budget was exhausted, so legality could
    /// not be proven; the candidate is conservatively rejected.
    PathBudget,
    /// PV201: `Ordering::Relaxed` in a datapath source — outside the
    /// envelope the model-checked protocol proofs cover.
    RelaxedOrdering,
    /// PV202: `unsafe` in a file outside the audited allowlist.
    UnsafeOutsideAllowlist,
    /// PV203: an allowlisted `unsafe` site without a `// SAFETY:`
    /// comment nearby.
    MissingSafetyComment,
    /// PV204: an atomic operation in a datapath source without an
    /// `// ORDERING:` comment stating its happens-before edge.
    MissingOrderingComment,
    /// PV205: a raw `std::sync` primitive in a datapath source instead
    /// of the `crate::sync` facade the model build swaps out.
    RawAtomicOutsideFacade,
}

impl Code {
    /// The canonical `PVnnn` string for this code.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UninitializedRead => "PV001",
            Code::Unreachable => "PV002",
            Code::DeadAction => "PV003",
            Code::UndefinedBranchField => "PV004",
            Code::TierOverflow => "PV005",
            Code::SelfConflictingAction => "PV006",
            Code::ShadowedEntry => "PV007",
            Code::PlanShape => "PV101",
            Code::ReorderHazard => "PV102",
            Code::CacheUnsafe => "PV103",
            Code::MergeUnsafe => "PV104",
            Code::NonContiguous => "PV105",
            Code::PathBudget => "PV106",
            Code::RelaxedOrdering => "PV201",
            Code::UnsafeOutsideAllowlist => "PV202",
            Code::MissingSafetyComment => "PV203",
            Code::MissingOrderingComment => "PV204",
            Code::RawAtomicOutsideFacade => "PV205",
        }
    }

    /// The severity this code carries by default.
    pub fn default_severity(self) -> Severity {
        match self {
            Code::Unreachable
            | Code::DeadAction
            | Code::TierOverflow
            | Code::SelfConflictingAction
            | Code::ShadowedEntry => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rendered finding of the lint pass: a code, a severity, a one-line
/// message, and span-ish context lines naming the table/action/edge the
/// finding anchors to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The typed code (`PV0xx`).
    pub code: Code,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable one-line description.
    pub message: String,
    /// Context lines (innermost first), e.g. `table `acl` (node 3)`.
    pub context: Vec<String>,
}

impl Diagnostic {
    /// Renders the diagnostic in a rustc-style multi-line format.
    pub fn render_text(&self) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        for c in &self.context {
            out.push_str("\n  --> ");
            out.push_str(c);
        }
        out
    }

    /// Renders the diagnostic as one JSON object (no external
    /// serialization dependency; strings are escaped by hand).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"context\":[",
            self.code,
            self.severity,
            escape_json(&self.message)
        ));
        for (i, c) in self.context.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape_json(c));
            out.push('"');
        }
        out.push_str("]}");
        out
    }
}

/// Renders a batch of diagnostics as rustc-style text, one blank line
/// between entries, followed by a summary line.
pub fn render_report(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render_text());
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    out.push_str(&format!(
        "analysis: {} error(s), {} warning(s)\n",
        errors, warnings
    ));
    out
}

/// Renders a batch of diagnostics as a JSON array.
pub fn render_report_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.render_json());
    }
    out.push(']');
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_strings() {
        assert_eq!(Code::UninitializedRead.as_str(), "PV001");
        assert_eq!(Code::ShadowedEntry.as_str(), "PV007");
        assert_eq!(Code::ReorderHazard.as_str(), "PV102");
        assert_eq!(Code::UninitializedRead.to_string(), "PV001");
    }

    #[test]
    fn severity_ordering_puts_error_above_warning() {
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn text_rendering_is_rustc_style() {
        let d = Diagnostic {
            code: Code::Unreachable,
            severity: Severity::Warning,
            message: "table `t` is unreachable".into(),
            context: vec!["table `t` (node 3)".into()],
        };
        let s = d.render_text();
        assert!(s.starts_with("warning[PV002]: "));
        assert!(s.contains("\n  --> table `t` (node 3)"));
    }

    #[test]
    fn json_rendering_escapes_quotes() {
        let d = Diagnostic {
            code: Code::DeadAction,
            severity: Severity::Warning,
            message: "action \"x\" is dead".into(),
            context: vec![],
        };
        let s = d.render_json();
        assert!(s.contains("\\\"x\\\""));
        assert!(s.contains("\"code\":\"PV003\""));
    }

    #[test]
    fn report_summary_counts() {
        let diags = vec![
            Diagnostic {
                code: Code::UninitializedRead,
                severity: Severity::Error,
                message: "m".into(),
                context: vec![],
            },
            Diagnostic {
                code: Code::Unreachable,
                severity: Severity::Warning,
                message: "m".into(),
                context: vec![],
            },
        ];
        let txt = render_report(&diags);
        assert!(txt.contains("1 error(s), 1 warning(s)"));
        let json = render_report_json(&diags);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("PV001") && json.contains("PV002"));
    }
}
