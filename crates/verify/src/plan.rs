//! Plan-safety verification: prove a candidate rewrite legal before it is
//! scored, selected, or deployed.
//!
//! A candidate (see `pipeleon-core`'s `plan::Candidate`) proposes a new
//! table order for one pipelet plus cache/merge segments, or a joint
//! "group" cache fronting a branch. The verifier re-derives legality from
//! first principles — independently of the enumeration heuristics — with
//! path-sensitive Bernstein-condition checks:
//!
//! * **Reorder** (§3.2.1): every *inverted pair* of tables (not just
//!   adjacent ones) must commute — no read-after-write, write-after-read,
//!   or write-after-write hazard between them.
//! * **Cache** (§3.2.2): every table in the segment must be a plain keyed
//!   program table and no table may write a field a later segment member
//!   matches on, so the outcome is a pure function of the entry key.
//! * **Merge** (§3.2.3): pairwise key-compatibility (no table's write
//!   feeds another's match key) plus the materialization constraints
//!   (merged caches need all-exact components; ternary merges cannot
//!   contain range tables).
//! * **Groups** (§4.1.1): members must lie on the branch's arm/join
//!   chains with a common exit and be cacheable along *every* root-to-exit
//!   path through the region.
//!
//! The verdict is machine-readable ([`Verdict`]) so the optimizer can
//! count rejections and the runtime controller can refuse deployment with
//! a typed [`RuntimeError`-style] payload.

use crate::{Code, Severity};
use pipeleon_ir::deps::{DependencyAnalysis, RwSets};
use pipeleon_ir::{MatchKind, NodeId, NodeKind, ProgramGraph};
use std::fmt;

/// Default step budget for the group-region path walk. Far above any real
/// program; exists so pathological graphs fail closed ([`Code::PathBudget`])
/// instead of hanging.
pub const DEFAULT_PATH_LIMIT: usize = 65_536;

/// The rewrite applied to one segment of a candidate's order. Mirrors
/// `pipeleon-core`'s `SegmentKind` without depending on it (the core crate
/// depends on this crate, not the reverse).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewriteKind {
    /// Front the segment with a flow cache (§3.2.2).
    Cache,
    /// Merge the segment into a single table (§3.2.3).
    Merge {
        /// Materialize the merged exact table as a fall-through cache.
        as_cache: bool,
    },
}

/// A contiguous `[start, end)` slice of a candidate's order tagged with
/// its rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentSpec {
    /// Start index into [`CandidateSpec::order`] (inclusive).
    pub start: usize,
    /// End index (exclusive).
    pub end: usize,
    /// The rewrite applied to the slice.
    pub kind: RewriteKind,
}

/// The verifier-facing description of one optimization candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateSpec {
    /// The proposed table sequence (a permutation of the pipelet's tables,
    /// or the member tables of a group cache).
    pub order: Vec<NodeId>,
    /// Disjoint rewrite segments over `order`.
    pub segments: Vec<SegmentSpec>,
    /// For group candidates: the branch node the joint cache fronts.
    pub group_branch: Option<NodeId>,
}

/// One reason a candidate is illegal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The typed `PV1xx` code.
    pub code: Code,
    /// Human-readable description naming the offending tables/fields.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", Severity::Error, self.code, self.message)
    }
}

/// The verifier's machine-readable answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Whether the candidate is provably safe.
    pub legal: bool,
    /// Every violation found (empty iff `legal`).
    pub violations: Vec<Violation>,
}

impl Verdict {
    fn from_violations(violations: Vec<Violation>) -> Self {
        Verdict {
            legal: violations.is_empty(),
            violations,
        }
    }

    /// Renders all violations, one per line.
    pub fn render(&self) -> String {
        if self.legal {
            return "plan verified: no violations".into();
        }
        let lines: Vec<String> = self.violations.iter().map(|v| v.to_string()).collect();
        lines.join("\n")
    }
}

/// Verifies candidates against one program.
///
/// Construction precomputes the per-node read/write sets;
/// [`PlanVerifier::verify`] must be called with the *same* program the
/// verifier was built from.
#[derive(Debug, Clone)]
pub struct PlanVerifier {
    sets: Vec<Option<RwSets>>,
    path_limit: usize,
}

impl PlanVerifier {
    /// Builds a verifier for `g` with the default path budget.
    pub fn new(g: &ProgramGraph) -> Self {
        Self::with_path_limit(g, DEFAULT_PATH_LIMIT)
    }

    /// Builds a verifier with an explicit step budget for the group-region
    /// path walk.
    pub fn with_path_limit(g: &ProgramGraph, path_limit: usize) -> Self {
        let mut sets = vec![None; g.num_nodes()];
        for n in g.iter_nodes() {
            sets[n.id.index()] = Some(RwSets::of_node(n));
        }
        PlanVerifier { sets, path_limit }
    }

    fn rw(&self, id: NodeId) -> Option<&RwSets> {
        self.sets.get(id.index()).and_then(|s| s.as_ref())
    }

    /// Checks `spec` against `g` and returns the verdict. Deterministic:
    /// identical inputs always produce identical verdicts (violations in
    /// the same order).
    pub fn verify(&self, g: &ProgramGraph, spec: &CandidateSpec) -> Verdict {
        let mut v = Vec::new();
        self.check_shape(g, spec, &mut v);
        if !v.is_empty() {
            // Structural problems make the semantic checks meaningless.
            return Verdict::from_violations(v);
        }
        match spec.group_branch {
            Some(branch) => self.check_group(g, spec, branch, &mut v),
            None => self.check_chain(g, spec, &mut v),
        }
        self.check_segments(g, spec, &mut v);
        Verdict::from_violations(v)
    }

    /// Structural validity: known nodes, plain program tables, well-formed
    /// disjoint segments.
    fn check_shape(&self, g: &ProgramGraph, spec: &CandidateSpec, v: &mut Vec<Violation>) {
        if spec.order.is_empty() {
            v.push(Violation {
                code: Code::PlanShape,
                message: "candidate has an empty table order".into(),
            });
            return;
        }
        for (i, &id) in spec.order.iter().enumerate() {
            if spec.order[..i].contains(&id) {
                v.push(Violation {
                    code: Code::PlanShape,
                    message: format!("node {id} appears more than once in the order"),
                });
            }
            let Some(n) = g.node(id) else {
                v.push(Violation {
                    code: Code::PlanShape,
                    message: format!("order references unknown node {id}"),
                });
                continue;
            };
            let Some(t) = n.as_table() else {
                v.push(Violation {
                    code: Code::PlanShape,
                    message: format!("node {id} is a branch, not a table"),
                });
                continue;
            };
            if t.cache_role != pipeleon_ir::CacheRole::None || n.is_switch_case() {
                v.push(Violation {
                    code: Code::PlanShape,
                    message: format!(
                        "table `{}` (node {id}) is not a plain program table",
                        t.name
                    ),
                });
            }
        }
        let mut prev_end = 0usize;
        for s in &spec.segments {
            if s.start >= s.end || s.end > spec.order.len() {
                v.push(Violation {
                    code: Code::PlanShape,
                    message: format!(
                        "segment [{}, {}) is out of range for an order of {} tables",
                        s.start,
                        s.end,
                        spec.order.len()
                    ),
                });
                continue;
            }
            if s.start < prev_end {
                v.push(Violation {
                    code: Code::PlanShape,
                    message: format!(
                        "segment [{}, {}) overlaps or is out of order with the previous segment",
                        s.start, s.end
                    ),
                });
            }
            prev_end = s.end;
            if matches!(s.kind, RewriteKind::Merge { .. }) && s.end - s.start < 2 {
                v.push(Violation {
                    code: Code::PlanShape,
                    message: format!(
                        "merge segment [{}, {}) needs at least two tables",
                        s.start, s.end
                    ),
                });
            }
        }
        if spec.group_branch.is_some() && !spec.segments.is_empty() {
            v.push(Violation {
                code: Code::PlanShape,
                message: "group candidates cache their whole region and take no segments".into(),
            });
        }
    }

    /// Chain candidates: reconstruct the original execution order of the
    /// members along the program's edges, require contiguity, and check
    /// every inverted pair for commutativity.
    fn check_chain(&self, g: &ProgramGraph, spec: &CandidateSpec, v: &mut Vec<Violation>) {
        let members = &spec.order;
        // Each plain table has exactly one next hop; build the member
        // successor relation and find the unique chain entry.
        let next_member = |id: NodeId| -> Option<NodeId> {
            let t = g.node(id)?.next.targets().first().copied().flatten()?;
            members.contains(&t).then_some(t)
        };
        let entries: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|&m| !members.iter().any(|&o| o != m && next_member(o) == Some(m)))
            .collect();
        if entries.len() != 1 {
            v.push(Violation {
                code: Code::NonContiguous,
                message: format!(
                    "candidate tables do not form one contiguous chain in the program \
                     ({} chain fragments); a non-member node or branch lies between them",
                    entries.len().max(1)
                ),
            });
            return;
        }
        let mut original = vec![entries[0]];
        while let Some(n) = next_member(*original.last().expect("non-empty")) {
            if original.contains(&n) {
                break;
            }
            original.push(n);
        }
        if original.len() != members.len() {
            v.push(Violation {
                code: Code::NonContiguous,
                message: format!(
                    "only {} of {} candidate tables are reachable along the chain from \
                     table {}; the rest sit on other paths",
                    original.len(),
                    members.len(),
                    entries[0]
                ),
            });
            return;
        }
        // Bernstein check over every inverted pair along the path.
        let pos = |id: NodeId| spec.order.iter().position(|&x| x == id).expect("member");
        for i in 0..original.len() {
            for j in (i + 1)..original.len() {
                let (a, b) = (original[i], original[j]);
                if pos(a) > pos(b) && !self.commutes(a, b) {
                    v.push(Violation {
                        code: Code::ReorderHazard,
                        message: format!(
                            "{} and {} are swapped but do not commute: {}",
                            name_of(g, a),
                            name_of(g, b),
                            self.hazard_reason(g, a, b)
                        ),
                    });
                }
            }
        }
    }

    /// Group candidates: every path from the branch must run only member
    /// tables up to a common exit, cover all members between them, and be
    /// cacheable in path order.
    fn check_group(
        &self,
        g: &ProgramGraph,
        spec: &CandidateSpec,
        branch: NodeId,
        v: &mut Vec<Violation>,
    ) {
        let Some(bn) = g.node(branch) else {
            v.push(Violation {
                code: Code::PlanShape,
                message: format!("group branch {branch} does not exist"),
            });
            return;
        };
        if !matches!(bn.kind, NodeKind::Branch(_)) {
            v.push(Violation {
                code: Code::PlanShape,
                message: format!("group node {branch} is not a branch"),
            });
            return;
        }
        let members = &spec.order;
        for &m in members {
            let keyed = g
                .node(m)
                .and_then(|n| n.as_table())
                .map(|t| !t.keys.is_empty())
                .unwrap_or(false);
            if !keyed {
                v.push(Violation {
                    code: Code::CacheUnsafe,
                    message: format!(
                        "{} has no match key; it cannot contribute to the group cache key",
                        name_of(g, m)
                    ),
                });
            }
        }
        // Walk every arm: a path is the maximal run of member tables from
        // a branch target; it must end at the same non-member exit
        // everywhere (otherwise a cache hit would skip non-member work).
        let mut budget = self.path_limit;
        let mut exits: Vec<Option<NodeId>> = Vec::new();
        let mut covered: Vec<NodeId> = Vec::new();
        for target in bn.next.targets() {
            let mut cur = target;
            let mut seq: Vec<NodeId> = Vec::new();
            loop {
                if budget == 0 {
                    v.push(Violation {
                        code: Code::PathBudget,
                        message: format!(
                            "path budget of {} steps exhausted while walking the group \
                             region; candidate rejected conservatively",
                            self.path_limit
                        ),
                    });
                    return;
                }
                budget -= 1;
                match cur {
                    Some(id) if members.contains(&id) => {
                        if seq.contains(&id) {
                            break; // cycle guard; validate() forbids this anyway
                        }
                        seq.push(id);
                        cur = g
                            .node(id)
                            .and_then(|n| n.next.targets().first().copied())
                            .flatten();
                    }
                    other => {
                        if !exits.contains(&other) {
                            exits.push(other);
                        }
                        break;
                    }
                }
            }
            // Path-order cacheability (branch reads are part of the key
            // and the branch writes nothing, so members alone decide).
            let sets: Vec<RwSets> = seq.iter().filter_map(|&id| self.rw(id).cloned()).collect();
            if !DependencyAnalysis::cacheable_segment(&sets) {
                let detail = self.first_cache_hazard(g, &seq);
                v.push(Violation {
                    code: Code::CacheUnsafe,
                    message: format!(
                        "group arm through {} is not cacheable: {}",
                        seq.first()
                            .map(|&n| name_of(g, n))
                            .unwrap_or_else(|| "<empty>".into()),
                        detail
                    ),
                });
            }
            for id in seq {
                if !covered.contains(&id) {
                    covered.push(id);
                }
            }
        }
        if exits.len() > 1 {
            v.push(Violation {
                code: Code::NonContiguous,
                message: format!(
                    "group arms leave the cached region at {} different exits; a cache \
                     hit would skip work that only some arms perform",
                    exits.len()
                ),
            });
        }
        for &m in members {
            if !covered.contains(&m) {
                v.push(Violation {
                    code: Code::NonContiguous,
                    message: format!(
                        "{} is not on any arm of branch {}; it cannot belong to this group",
                        name_of(g, m),
                        branch
                    ),
                });
            }
        }
    }

    /// Cache/merge segment legality over the candidate's (post-reorder)
    /// order.
    fn check_segments(&self, g: &ProgramGraph, spec: &CandidateSpec, v: &mut Vec<Violation>) {
        for s in &spec.segments {
            let tables = &spec.order[s.start..s.end];
            match s.kind {
                RewriteKind::Cache => self.check_cache_segment(g, tables, v),
                RewriteKind::Merge { as_cache } => self.check_merge_segment(g, tables, as_cache, v),
            }
        }
    }

    fn check_cache_segment(&self, g: &ProgramGraph, tables: &[NodeId], v: &mut Vec<Violation>) {
        for &id in tables {
            let keyed = g
                .node(id)
                .and_then(|n| n.as_table())
                .map(|t| !t.keys.is_empty())
                .unwrap_or(false);
            if !keyed {
                v.push(Violation {
                    code: Code::CacheUnsafe,
                    message: format!(
                        "{} has no match key; its outcome cannot be cached by key",
                        name_of(g, id)
                    ),
                });
            }
        }
        let sets: Vec<RwSets> = tables
            .iter()
            .filter_map(|&id| self.rw(id).cloned())
            .collect();
        if !DependencyAnalysis::cacheable_segment(&sets) {
            v.push(Violation {
                code: Code::CacheUnsafe,
                message: format!(
                    "cache segment is not outcome-determined by its entry key: {}",
                    self.first_cache_hazard(g, tables)
                ),
            });
        }
    }

    fn check_merge_segment(
        &self,
        g: &ProgramGraph,
        tables: &[NodeId],
        as_cache: bool,
        v: &mut Vec<Violation>,
    ) {
        for i in 0..tables.len() {
            for j in (i + 1)..tables.len() {
                let (Some(a), Some(b)) = (self.rw(tables[i]), self.rw(tables[j])) else {
                    continue;
                };
                if !DependencyAnalysis::mergeable(a, b) {
                    v.push(Violation {
                        code: Code::MergeUnsafe,
                        message: format!(
                            "{} and {} cannot merge: one writes a field the other \
                             matches on, and the merged table matches all keys first",
                            name_of(g, tables[i]),
                            name_of(g, tables[j])
                        ),
                    });
                }
            }
        }
        for &id in tables {
            let Some(t) = g.node(id).and_then(|n| n.as_table()) else {
                continue;
            };
            if t.keys.is_empty() {
                v.push(Violation {
                    code: Code::MergeUnsafe,
                    message: format!("{} has no match key to merge on", name_of(g, id)),
                });
            }
            if as_cache && t.effective_kind() != MatchKind::Exact {
                v.push(Violation {
                    code: Code::MergeUnsafe,
                    message: format!(
                        "merged caches need all-exact components, but {} matches with \
                         {:?} keys",
                        name_of(g, id),
                        t.effective_kind()
                    ),
                });
            }
            if !as_cache && t.effective_kind() == MatchKind::Range {
                v.push(Violation {
                    code: Code::MergeUnsafe,
                    message: format!(
                        "{} uses range keys, which cannot be encoded in a merged \
                         ternary table",
                        name_of(g, id)
                    ),
                });
            }
        }
    }

    fn commutes(&self, a: NodeId, b: NodeId) -> bool {
        match (self.rw(a), self.rw(b)) {
            (Some(sa), Some(sb)) => DependencyAnalysis::commute(sa, sb),
            _ => false,
        }
    }

    /// Human-readable hazard description for a non-commuting pair.
    fn hazard_reason(&self, g: &ProgramGraph, a: NodeId, b: NodeId) -> String {
        let (Some(sa), Some(sb)) = (self.rw(a), self.rw(b)) else {
            return "unknown nodes".into();
        };
        let fname = |f: pipeleon_ir::FieldRef| {
            g.fields
                .name(f)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("<field {}>", f.index()))
        };
        if let Some(f) = sa.writes.iter().find(|w| sb.reads().any(|r| r == **w)) {
            return format!(
                "field `{}` is written by the first and read by the second",
                fname(*f)
            );
        }
        if let Some(f) = sb.writes.iter().find(|w| sa.reads().any(|r| r == **w)) {
            return format!(
                "field `{}` is written by the second and read by the first",
                fname(*f)
            );
        }
        if let Some(f) = sa.writes.iter().find(|w| sb.writes.contains(w)) {
            return format!("both write field `{}`", fname(*f));
        }
        "no hazard found (report a verifier bug)".into()
    }

    /// The first writer→later-matcher pair that breaks cacheability.
    fn first_cache_hazard(&self, g: &ProgramGraph, tables: &[NodeId]) -> String {
        for i in 0..tables.len() {
            for j in (i + 1)..tables.len() {
                let (Some(a), Some(b)) = (self.rw(tables[i]), self.rw(tables[j])) else {
                    continue;
                };
                if let Some(f) = a.writes.iter().find(|w| b.match_reads.contains(w)) {
                    let fname = g
                        .fields
                        .name(*f)
                        .map(str::to_owned)
                        .unwrap_or_else(|| format!("<field {}>", f.index()));
                    return format!(
                        "{} writes field `{}` which {} matches on",
                        name_of(g, tables[i]),
                        fname,
                        name_of(g, tables[j])
                    );
                }
            }
        }
        "an internal write feeds a later match key".into()
    }
}

/// One-shot convenience wrapper: build a verifier for `g` and check `spec`.
pub fn verify_candidate(g: &ProgramGraph, spec: &CandidateSpec) -> Verdict {
    PlanVerifier::new(g).verify(g, spec)
}

fn name_of(g: &ProgramGraph, id: NodeId) -> String {
    match g.node(id).map(|n| &n.kind) {
        Some(NodeKind::Table(t)) => format!("table `{}` (node {})", t.name, id.index()),
        Some(NodeKind::Branch(b)) => format!("branch `{}` (node {})", b.name, id.index()),
        None => format!("node {}", id.index()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeleon_ir::{Condition, MatchKind, Primitive, ProgramBuilder};

    /// Chain of three tables: t0 matches a / writes w0, t1 matches b,
    /// t2 matches w0 (so t0 -> t2 has a RAW hazard).
    fn chain() -> (ProgramGraph, Vec<NodeId>) {
        let mut b = ProgramBuilder::new();
        let fa = b.field("a");
        let fb = b.field("b");
        let fw = b.field("w0");
        let t0 = b
            .table("t0")
            .key(fa, MatchKind::Exact)
            .action("wr", vec![Primitive::set(fw, 1)])
            .finish();
        let t1 = b.table("t1").key(fb, MatchKind::Exact).finish();
        let t2 = b.table("t2").key(fw, MatchKind::Exact).finish();
        let g = b.seal_sequential().unwrap();
        (g, vec![t0, t1, t2])
    }

    fn spec(order: Vec<NodeId>) -> CandidateSpec {
        CandidateSpec {
            order,
            segments: Vec::new(),
            group_branch: None,
        }
    }

    #[test]
    fn identity_order_is_legal() {
        let (g, ids) = chain();
        let verdict = verify_candidate(&g, &spec(ids));
        assert!(verdict.legal, "{}", verdict.render());
        assert!(verdict.violations.is_empty());
    }

    #[test]
    fn commuting_swap_is_legal() {
        let (g, ids) = chain();
        // t0 and t1 touch disjoint fields.
        let verdict = verify_candidate(&g, &spec(vec![ids[1], ids[0], ids[2]]));
        assert!(verdict.legal, "{}", verdict.render());
    }

    #[test]
    fn raw_hazard_swap_is_rejected() {
        let (g, ids) = chain();
        // t2 matches the field t0 writes; promoting t2 above t0 is unsafe.
        let verdict = verify_candidate(&g, &spec(vec![ids[2], ids[0], ids[1]]));
        assert!(!verdict.legal);
        assert_eq!(verdict.violations[0].code, Code::ReorderHazard);
        assert!(verdict.violations[0].message.contains("w0"));
    }

    #[test]
    fn non_adjacent_inversion_is_still_checked() {
        let (g, ids) = chain();
        // Order t2, t1, t0: the t0/t2 inversion is non-adjacent in the
        // original chain but must still be flagged.
        let verdict = verify_candidate(&g, &spec(vec![ids[2], ids[1], ids[0]]));
        assert!(!verdict.legal);
        assert!(verdict
            .violations
            .iter()
            .any(|v| v.code == Code::ReorderHazard));
    }

    #[test]
    fn unknown_node_is_plan_shape_error() {
        let (g, mut ids) = chain();
        ids.push(NodeId(99));
        let verdict = verify_candidate(&g, &spec(ids));
        assert!(!verdict.legal);
        assert_eq!(verdict.violations[0].code, Code::PlanShape);
    }

    #[test]
    fn duplicate_member_is_plan_shape_error() {
        let (g, ids) = chain();
        let verdict = verify_candidate(&g, &spec(vec![ids[0], ids[0], ids[1]]));
        assert!(!verdict.legal);
        assert!(verdict.violations.iter().any(|v| v.code == Code::PlanShape));
    }

    #[test]
    fn overlapping_segments_are_rejected() {
        let (g, ids) = chain();
        let mut s = spec(ids);
        s.segments = vec![
            SegmentSpec {
                start: 0,
                end: 2,
                kind: RewriteKind::Cache,
            },
            SegmentSpec {
                start: 1,
                end: 3,
                kind: RewriteKind::Cache,
            },
        ];
        let verdict = verify_candidate(&g, &s);
        assert!(!verdict.legal);
        assert_eq!(verdict.violations[0].code, Code::PlanShape);
    }

    #[test]
    fn single_table_merge_is_rejected() {
        let (g, ids) = chain();
        let mut s = spec(ids);
        s.segments = vec![SegmentSpec {
            start: 0,
            end: 1,
            kind: RewriteKind::Merge { as_cache: false },
        }];
        let verdict = verify_candidate(&g, &s);
        assert!(!verdict.legal);
        assert_eq!(verdict.violations[0].code, Code::PlanShape);
    }

    #[test]
    fn cache_over_write_then_match_is_rejected() {
        let (g, ids) = chain();
        // Segment [t0, t1, t2]: t0 writes w0, t2 matches w0.
        let mut s = spec(ids);
        s.segments = vec![SegmentSpec {
            start: 0,
            end: 3,
            kind: RewriteKind::Cache,
        }];
        let verdict = verify_candidate(&g, &s);
        assert!(!verdict.legal);
        assert_eq!(verdict.violations[0].code, Code::CacheUnsafe);
        assert!(verdict.violations[0].message.contains("w0"));
        // The t0..t1 prefix has no internal hazard and is cacheable.
        let mut ok = spec(verdict_order(&g));
        ok.segments = vec![SegmentSpec {
            start: 0,
            end: 2,
            kind: RewriteKind::Cache,
        }];
        assert!(verify_candidate(&g, &ok).legal);
    }

    fn verdict_order(g: &ProgramGraph) -> Vec<NodeId> {
        // The chain's original order by construction.
        let mut ids: Vec<NodeId> = g.iter_nodes().map(|n| n.id).collect();
        ids.sort_by_key(|n| n.index());
        ids
    }

    #[test]
    fn merge_with_match_raw_is_rejected() {
        let (g, ids) = chain();
        // t0 writes w0 which t2 matches: their match keys are entangled.
        let mut s = spec(vec![ids[0], ids[1], ids[2]]);
        s.segments = vec![SegmentSpec {
            start: 0,
            end: 3,
            kind: RewriteKind::Merge { as_cache: false },
        }];
        let verdict = verify_candidate(&g, &s);
        assert!(!verdict.legal);
        assert!(verdict
            .violations
            .iter()
            .any(|v| v.code == Code::MergeUnsafe));
    }

    #[test]
    fn waw_pair_merges_but_does_not_reorder() {
        // Two tables writing the same field: merge keeps primitive order
        // (legal), reorder does not (illegal). Pins the audited hierarchy.
        let mut b = ProgramBuilder::new();
        let fa = b.field("a");
        let fb = b.field("b");
        let fw = b.field("w");
        let t0 = b
            .table("t0")
            .key(fa, MatchKind::Exact)
            .action("w", vec![Primitive::set(fw, 1)])
            .finish();
        let t1 = b
            .table("t1")
            .key(fb, MatchKind::Exact)
            .action("w", vec![Primitive::set(fw, 2)])
            .finish();
        let g = b.seal_sequential().unwrap();
        let mut merge = spec(vec![t0, t1]);
        merge.segments = vec![SegmentSpec {
            start: 0,
            end: 2,
            kind: RewriteKind::Merge { as_cache: true },
        }];
        assert!(verify_candidate(&g, &merge).legal);
        let swap = verify_candidate(&g, &spec(vec![t1, t0]));
        assert!(!swap.legal);
        assert_eq!(swap.violations[0].code, Code::ReorderHazard);
    }

    #[test]
    fn as_cache_merge_needs_exact_keys() {
        let mut b = ProgramBuilder::new();
        let fa = b.field("a");
        let fb = b.field("b");
        let t0 = b.table("t0").key(fa, MatchKind::Ternary).finish();
        let t1 = b.table("t1").key(fb, MatchKind::Exact).finish();
        let g = b.seal_sequential().unwrap();
        let mut s = spec(vec![t0, t1]);
        s.segments = vec![SegmentSpec {
            start: 0,
            end: 2,
            kind: RewriteKind::Merge { as_cache: true },
        }];
        let verdict = verify_candidate(&g, &s);
        assert!(!verdict.legal);
        assert!(verdict.violations[0].message.contains("all-exact"));
        // The plain ternary merge of the same pair is fine.
        s.segments[0].kind = RewriteKind::Merge { as_cache: false };
        assert!(verify_candidate(&g, &s).legal);
    }

    #[test]
    fn members_across_branch_arms_are_non_contiguous() {
        let mut b = ProgramBuilder::new();
        let x = b.field("x");
        let fl = b.field("l");
        let fr = b.field("r");
        let join = b.table("join").key(x, MatchKind::Exact).finish();
        b.set_next(join, None);
        let l = b.table("l").key(fl, MatchKind::Exact).finish();
        b.set_next(l, Some(join));
        let r = b.table("r").key(fr, MatchKind::Exact).finish();
        b.set_next(r, Some(join));
        let br = b.branch("br", Condition::lt(x, 500), Some(l), Some(r));
        let g = b.seal(br).unwrap();
        // l and r sit on different arms: no single chain contains both.
        let verdict = verify_candidate(&g, &spec(vec![l, r]));
        assert!(!verdict.legal);
        assert_eq!(verdict.violations[0].code, Code::NonContiguous);
    }

    fn diamond() -> (ProgramGraph, NodeId, Vec<NodeId>) {
        let mut b = ProgramBuilder::new();
        let x = b.field("x");
        let fl = b.field("l");
        let fr = b.field("r");
        let join = b.table("join").key(x, MatchKind::Exact).finish();
        b.set_next(join, None);
        let l = b.table("l").key(fl, MatchKind::Exact).finish();
        b.set_next(l, Some(join));
        let r = b.table("r").key(fr, MatchKind::Exact).finish();
        b.set_next(r, Some(join));
        let br = b.branch("br", Condition::lt(x, 500), Some(l), Some(r));
        let g = b.seal(br).unwrap();
        (g, br, vec![l, r, join])
    }

    #[test]
    fn group_cache_over_clean_diamond_is_legal() {
        let (g, br, members) = diamond();
        let s = CandidateSpec {
            order: members,
            segments: Vec::new(),
            group_branch: Some(br),
        };
        let verdict = verify_candidate(&g, &s);
        assert!(verdict.legal, "{}", verdict.render());
    }

    #[test]
    fn group_arm_writing_join_match_field_is_rejected() {
        // l writes x, join matches x: the entry key no longer determines
        // the join outcome on the left arm.
        let mut b = ProgramBuilder::new();
        let x = b.field("x");
        let fl = b.field("l");
        let fr = b.field("r");
        let join = b.table("join").key(x, MatchKind::Exact).finish();
        b.set_next(join, None);
        let l = b
            .table("l")
            .key(fl, MatchKind::Exact)
            .action("clobber", vec![Primitive::set(x, 7)])
            .finish();
        b.set_next(l, Some(join));
        let r = b.table("r").key(fr, MatchKind::Exact).finish();
        b.set_next(r, Some(join));
        let br = b.branch("br", Condition::lt(x, 500), Some(l), Some(r));
        let g = b.seal(br).unwrap();
        let s = CandidateSpec {
            order: vec![l, r, join],
            segments: Vec::new(),
            group_branch: Some(br),
        };
        let verdict = verify_candidate(&g, &s);
        assert!(!verdict.legal);
        assert!(verdict
            .violations
            .iter()
            .any(|v| v.code == Code::CacheUnsafe && v.message.contains('x')));
    }

    #[test]
    fn group_with_partial_member_coverage_is_rejected() {
        let (g, br, members) = diamond();
        // Claim only one arm + join: the other arm's table is then a
        // non-member between the branch and the exit on its path.
        let s = CandidateSpec {
            order: vec![members[0], members[2]],
            segments: Vec::new(),
            group_branch: Some(br),
        };
        let verdict = verify_candidate(&g, &s);
        assert!(!verdict.legal, "{}", verdict.render());
        assert!(verdict
            .violations
            .iter()
            .any(|v| v.code == Code::NonContiguous));
    }

    #[test]
    fn tiny_path_budget_fails_closed() {
        let (g, br, members) = diamond();
        let s = CandidateSpec {
            order: members,
            segments: Vec::new(),
            group_branch: Some(br),
        };
        let verifier = PlanVerifier::with_path_limit(&g, 1);
        let verdict = verifier.verify(&g, &s);
        assert!(!verdict.legal);
        assert_eq!(verdict.violations[0].code, Code::PathBudget);
    }

    #[test]
    fn verdicts_are_deterministic() {
        let (g, ids) = chain();
        let bad = spec(vec![ids[2], ids[1], ids[0]]);
        let v1 = verify_candidate(&g, &bad);
        let v2 = verify_candidate(&g, &bad);
        assert_eq!(v1, v2);
        let verifier = PlanVerifier::new(&g);
        assert_eq!(verifier.verify(&g, &bad), v1);
    }

    #[test]
    fn verdict_renders_each_violation() {
        let (g, ids) = chain();
        let verdict = verify_candidate(&g, &spec(vec![ids[2], ids[0], ids[1]]));
        let text = verdict.render();
        assert!(text.contains("error[PV102]"));
        assert!(verify_candidate(&g, &spec(ids))
            .render()
            .contains("no violations"));
    }
}
