//! Profile-guided specialization of the compiled datapath (Morpheus-style
//! "JIT lite").
//!
//! The verbatim `CompiledPipeline` lowering ignores everything the
//! runtime profile knows: skewed match-key distributions, branches never
//! taken, tables with one hot entry, stable entry sets. This module turns
//! a profile window into a `SpecPlan` of three passes and applies it to a
//! compiled arena:
//!
//! 1. **Hot-key inline cache / guarded constant propagation** — when a
//!    window's key sketch shows one composed key dominating a table, bake
//!    that key and its fully pre-resolved `LookupOutcome` into the
//!    table. The guard is a single slice compare against the composed
//!    key; a hit skips every hash way and scan entry, a miss falls
//!    through to the unmodified general lookup. Because the outcome is
//!    produced by running the general path on the hot key at plan-apply
//!    time, a guard hit is bit-identical (entry, action, *and* probe
//!    count — which feeds latency accounting) to the path it replaces.
//! 2. **Direct-index ways** — a small, stable, single-field exact way
//!    whose keys span a dense range is rewritten from an FxHash map to a
//!    base-offset slot array: lookup is a bounds-checked subtract, no
//!    hashing. Any entry-op rebuild of the engine restores the hash form.
//! 3. **Cold out-of-lining** — the most-probable successor chain from
//!    the root is permuted into a contiguous slot prefix so the hot walk
//!    touches adjacent arena slots; cold branches move to the tail. Pure
//!    layout: every successor reference and the id→slot map are remapped
//!    with it.
//!
//! All three passes are *semantics- and accounting-preserving*: the
//! interpreter and the unspecialized compiled engine remain bit-exact
//! oracles for every specialized pipeline, which is what lets specialized
//! generations publish through the live generation-swap path without any
//! new verification machinery. Only host wall-clock changes.
//!
//! De-specialization is cheap by construction: dropping the compiled
//! pipeline and re-lowering yields the verbatim arena (guards and direct
//! ways exist nowhere but in the compiled artifact).

use crate::compiled::{CEntries, CNext, CStep, CTableSpec, CWayMap, CompiledPipeline, NO_SLOT};
use crate::engine::KeyScratch;
use crate::smallkey::SmallKey;
use pipeleon_cost::RuntimeProfile;
use pipeleon_ir::{CacheRole, MatchValue, NextHops, NodeId, NodeKind, ProgramGraph};
use std::collections::HashMap;

/// Tuning knobs for plan construction. Defaults are deliberately
/// conservative: a key must dominate half of a window's samples before a
/// guard is worth its miss cost, and direct-index arrays stay small.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecConfig {
    /// Minimum fraction of a window's sampled lookups the dominant key
    /// must account for before a hot-key guard is installed.
    pub hot_fraction: f64,
    /// Minimum sampled lookups per table before its sketch is trusted.
    pub min_samples: u64,
    /// Maximum key span (`max - min + 1`) for a direct-index way.
    pub direct_span: u64,
    /// Minimum entry count before a direct-index rewrite pays off.
    pub direct_min_entries: usize,
    /// Maximum observed entry-update rate (ops/s) for a table to count
    /// as "stable" enough for a direct-index way.
    pub max_update_rate: f64,
    /// Whether to permute the arena so the hot chain is contiguous.
    pub hot_chain: bool,
}

impl Default for SpecConfig {
    fn default() -> Self {
        Self {
            hot_fraction: 0.5,
            min_samples: 64,
            direct_span: 4096,
            direct_min_entries: 4,
            max_update_rate: 1.0,
            hot_chain: true,
        }
    }
}

/// Host-side specialization counters, aggregated per NIC backend.
///
/// Guard hit/miss counts are *host telemetry*: on a sharded backend they
/// depend on how packets were partitioned and when plans were adopted,
/// so — unlike profiles and packet reports — they are not invariant
/// across worker counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Hot-key guard hits (lookups served by the inline cache).
    pub guard_hits: u64,
    /// Hot-key guard misses (fell through to the general lookup).
    pub guard_misses: u64,
    /// Specialization plans applied.
    pub specializations: u64,
    /// Reverts to the verbatim lowering (explicit, or an entry-op
    /// stripping a specialized table).
    pub despecializations: u64,
    /// Tables currently carrying a guard or a direct-index way.
    pub specialized_tables: u64,
    /// Monotonic epoch, bumped by every (de)specialization; lets
    /// journal writers dedup events exactly like generation swaps.
    pub generation: u64,
}

/// A per-table Boyer–Moore majority sketch over sampled composed keys.
///
/// Constant space, stream-order dependent, and *conservative*: `hits`
/// only counts samples that matched the candidate while it was the
/// candidate, so `hits / samples` under-reports the true frequency of
/// the final majority key. A key passing [`SpecConfig::hot_fraction`]
/// on this estimate is therefore at least that dominant in truth.
#[derive(Debug, Clone)]
pub struct HotKeySketch {
    /// Current majority candidate (composed key values).
    pub candidate: SmallKey,
    /// Boyer–Moore vote balance for the candidate.
    pub votes: u64,
    /// Samples that matched the current candidate.
    pub hits: u64,
    /// Total sampled lookups.
    pub samples: u64,
}

impl Default for HotKeySketch {
    fn default() -> Self {
        Self {
            candidate: SmallKey::from_slice(&[]),
            votes: 0,
            hits: 0,
            samples: 0,
        }
    }
}

impl HotKeySketch {
    /// Feeds one sampled composed key into the sketch.
    #[inline]
    pub fn observe(&mut self, key: &[u64]) {
        self.samples += 1;
        if self.votes > 0 && self.candidate.as_slice() == key {
            self.votes += 1;
            self.hits += 1;
        } else if self.votes == 0 {
            self.candidate = SmallKey::from_slice(key);
            self.votes = 1;
            self.hits = 1;
        } else {
            self.votes -= 1;
        }
    }

    /// Folds a shard's sketch into this one. Same-candidate sketches
    /// add up; disagreeing sketches keep the stronger candidate with
    /// the vote margin reduced by the weaker one, mirroring how the
    /// streaming update cancels votes.
    pub fn merge(&mut self, other: &HotKeySketch) {
        self.samples += other.samples;
        if other.votes == 0 {
            return;
        }
        if self.votes == 0 {
            self.candidate = other.candidate.clone();
            self.votes = other.votes;
            self.hits = other.hits;
        } else if self.candidate == other.candidate {
            self.votes += other.votes;
            self.hits += other.hits;
        } else if other.votes > self.votes {
            let margin = other.votes - self.votes;
            self.candidate = other.candidate.clone();
            self.votes = margin;
            self.hits = other.hits;
        } else {
            self.votes -= other.votes;
        }
    }

    /// Whether the sketch's candidate clears the config's dominance bar.
    fn qualifies(&self, cfg: &SpecConfig) -> bool {
        self.samples >= cfg.min_samples
            && self.votes > 0
            && self.hits as f64 >= cfg.hot_fraction * self.samples as f64
    }
}

/// A specialization plan: which tables get which pass. Built from one
/// profile window, applied to a compiled arena, fingerprinted so
/// identical plans are not re-applied and shards can dedup adoption.
#[derive(Debug, Clone, Default)]
pub(crate) struct SpecPlan {
    /// Tables receiving a hot-key guard, with the key to bake.
    pub(crate) hot_keys: Vec<(NodeId, SmallKey)>,
    /// Tables whose dense exact ways become direct-index arrays.
    pub(crate) direct: Vec<NodeId>,
    /// Most-probable root chain, in visit order (empty = keep layout).
    pub(crate) chain: Vec<NodeId>,
    /// FNV-1a digest of the plan contents (never 0 for a non-empty
    /// plan; 0 is the verbatim-lowering sentinel).
    pub(crate) fingerprint: u64,
}

impl SpecPlan {
    /// A plan that would change nothing.
    pub(crate) fn is_empty(&self) -> bool {
        self.hot_keys.is_empty() && self.direct.is_empty() && self.chain.len() < 2
    }
}

/// Builds a plan from a profile window. `sketches` carries the hot-key
/// majority sketches taken alongside the profile (merged across shards);
/// `profile` supplies visit probabilities for the hot chain and entry
/// update rates for the direct-way stability gate.
pub(crate) fn build_plan(
    graph: &ProgramGraph,
    profile: &RuntimeProfile,
    sketches: &HashMap<NodeId, HotKeySketch>,
    cfg: &SpecConfig,
) -> SpecPlan {
    let mut plan = SpecPlan::default();
    for node in graph.iter_nodes() {
        let NodeKind::Table(t) = &node.kind else {
            continue;
        };
        // Flow-cache switches never run their match engine, and keyless
        // tables have nothing to guard or index.
        if t.cache_role == CacheRole::FlowCache || t.keys.is_empty() {
            continue;
        }
        if let Some(sk) = sketches.get(&node.id) {
            if sk.qualifies(cfg) {
                plan.hot_keys.push((node.id, sk.candidate.clone()));
            }
        }
        if t.keys.len() == 1
            && t.entries.len() >= cfg.direct_min_entries
            && profile.entry_update_rate(node.id) <= cfg.max_update_rate
        {
            let keys: Option<Vec<u64>> = t
                .entries
                .iter()
                .map(|e| match e.matches.as_slice() {
                    [MatchValue::Exact(v)] => Some(*v),
                    _ => None,
                })
                .collect();
            if let Some(keys) = keys {
                let lo = keys.iter().copied().min().unwrap_or(0);
                let hi = keys.iter().copied().max().unwrap_or(0);
                if hi - lo < cfg.direct_span {
                    plan.direct.push(node.id);
                }
            }
        }
    }
    if cfg.hot_chain && !profile.is_empty() {
        plan.chain = hot_chain(graph, profile);
    }
    plan.hot_keys.sort_by_key(|(id, _)| *id);
    plan.direct.sort();
    plan.fingerprint = fingerprint(&plan);
    plan
}

/// Walks the most-probable successor chain from the root. Ties break
/// toward the lower node id, so the chain is deterministic for a given
/// profile.
fn hot_chain(graph: &ProgramGraph, profile: &RuntimeProfile) -> Vec<NodeId> {
    let probs = profile.visit_probabilities(graph);
    let Some(root) = graph.root() else {
        return Vec::new();
    };
    let mut chain = Vec::new();
    let mut seen = vec![false; graph.id_bound()];
    let mut cur = Some(root);
    while let Some(id) = cur {
        if seen.get(id.index()).copied().unwrap_or(true) {
            break;
        }
        seen[id.index()] = true;
        chain.push(id);
        let Some(node) = graph.node(id) else { break };
        let succs: Vec<NodeId> = match &node.next {
            NextHops::Always(t) => t.iter().copied().collect(),
            NextHops::ByAction(v) => v.iter().filter_map(|t| *t).collect(),
            NextHops::Branch { on_true, on_false } => {
                on_true.iter().chain(on_false.iter()).copied().collect()
            }
        };
        cur = succs.into_iter().min_by(|a, b| {
            let pa = probs.get(a.index()).copied().unwrap_or(0.0);
            let pb = probs.get(b.index()).copied().unwrap_or(0.0);
            pb.partial_cmp(&pa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.index().cmp(&b.index()))
        });
    }
    if chain.len() < 2 {
        chain.clear();
    }
    chain
}

/// FNV-1a over the plan contents. Local (the sim crate cannot depend on
/// the runtime crate's fingerprint helper), deterministic, and never 0
/// for a non-empty plan.
fn fingerprint(plan: &SpecPlan) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
    };
    mix(plan.hot_keys.len() as u64);
    for (id, key) in &plan.hot_keys {
        mix(id.index() as u64);
        mix(key.as_slice().len() as u64);
        for &v in key.as_slice() {
            mix(v);
        }
    }
    mix(plan.direct.len() as u64);
    for id in &plan.direct {
        mix(id.index() as u64);
    }
    mix(plan.chain.len() as u64);
    for id in &plan.chain {
        mix(id.index() as u64);
    }
    if h == 0 {
        h = 1;
    }
    h
}

/// Applies a plan to a compiled arena. The caller (the executor) is
/// responsible for starting from a verbatim lowering and for stamping
/// `spec_fingerprint` afterwards.
pub(crate) fn apply_plan(cp: &mut CompiledPipeline, plan: &SpecPlan) {
    if plan.chain.len() >= 2 {
        permute_hot_chain(cp, &plan.chain);
    }
    for id in &plan.direct {
        let slot = cp.slot(*id);
        if slot == NO_SLOT {
            continue;
        }
        if let CStep::Table(ct) = &mut cp.nodes[slot as usize].step {
            if ct.is_flow_cache {
                continue;
            }
            for way in &mut ct.engine.ways {
                directify_way(way);
            }
        }
    }
    for (id, key) in &plan.hot_keys {
        let slot = cp.slot(*id);
        if slot == NO_SLOT {
            continue;
        }
        if let CStep::Table(ct) = &mut cp.nodes[slot as usize].step {
            if ct.is_flow_cache || !ct.engine.has_keys {
                continue;
            }
            // Bake the outcome by running the (possibly direct-indexed)
            // general path on the hot key: a guard hit then returns
            // exactly what a miss-path lookup of the same key would.
            let mut scratch = KeyScratch::new();
            scratch.values.extend_from_slice(key.as_slice());
            let hot_outcome = ct.engine.lookup_composed(&mut scratch);
            ct.spec = Some(Box::new(CTableSpec {
                hot_key: key.clone(),
                hot_outcome,
            }));
        }
    }
}

/// Rewrites one way from an FxHash map to a direct-index array if it is
/// a single-field way whose keys span a dense range. Masked (non-exact)
/// single-field ways still qualify: the lookup masks before indexing,
/// exactly as the hash form masks before hashing.
fn directify_way(way: &mut crate::compiled::CWay) {
    let CWayMap::U64(m) = &way.map else { return };
    if m.is_empty() {
        return;
    }
    let lo = m.keys().copied().min().unwrap_or(0);
    let hi = m.keys().copied().max().unwrap_or(0);
    let span = (hi - lo) as usize + 1;
    let mut slots: Vec<Option<CEntries>> = vec![None; span];
    for (k, v) in m {
        slots[(k - lo) as usize] = Some(v.clone());
    }
    way.map = CWayMap::Direct {
        base: lo,
        slots: slots.into_boxed_slice(),
    };
}

/// Permutes the arena so `chain` occupies the leading slots in order,
/// with every other node following in its old relative order. Remaps
/// `slot_of`, the root, and every successor reference; [`NO_SLOT`]
/// stays [`NO_SLOT`]. Purely a layout change.
fn permute_hot_chain(cp: &mut CompiledPipeline, chain: &[NodeId]) {
    let n = cp.nodes.len();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut taken = vec![false; n];
    for id in chain {
        let slot = cp.slot(*id);
        if slot != NO_SLOT && !taken[slot as usize] {
            order.push(slot);
            taken[slot as usize] = true;
        }
    }
    for slot in 0..n as u32 {
        if !taken[slot as usize] {
            order.push(slot);
        }
    }
    let mut new_of_old = vec![NO_SLOT; n];
    for (new, &old) in order.iter().enumerate() {
        new_of_old[old as usize] = new as u32;
    }
    let remap = |s: u32| {
        if s == NO_SLOT {
            NO_SLOT
        } else {
            new_of_old[s as usize]
        }
    };
    let old_nodes = std::mem::take(&mut cp.nodes);
    let mut new_nodes: Vec<Option<crate::compiled::CNode>> =
        old_nodes.into_iter().map(Some).collect();
    cp.nodes = order
        .iter()
        .map(|&old| {
            let mut node = new_nodes[old as usize].take().expect("slot moved once");
            match &mut node.step {
                CStep::Branch {
                    on_true, on_false, ..
                } => {
                    *on_true = remap(*on_true);
                    *on_false = remap(*on_false);
                }
                CStep::Table(ct) => {
                    ct.hit_slot = remap(ct.hit_slot);
                    ct.miss_slot = remap(ct.miss_slot);
                    match &mut ct.next {
                        CNext::Always(s) => *s = remap(*s),
                        CNext::ByAction(v) => {
                            for s in v.iter_mut() {
                                *s = remap(*s);
                            }
                        }
                    }
                }
            }
            node
        })
        .collect();
    for slot in cp.slot_of.iter_mut() {
        *slot = remap(*slot);
    }
    cp.root = remap(cp.root);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sketch_finds_majority_and_underestimates() {
        let mut sk = HotKeySketch::default();
        // 70% of 1000 samples are [7]; the rest cycle through noise.
        for i in 0..1000u64 {
            if i % 10 < 7 {
                sk.observe(&[7]);
            } else {
                sk.observe(&[100 + i]);
            }
        }
        assert_eq!(sk.candidate.as_slice(), &[7]);
        assert_eq!(sk.samples, 1000);
        assert!(sk.hits <= 700, "hits is a conservative underestimate");
        assert!(sk.qualifies(&SpecConfig::default()));
    }

    #[test]
    fn sketch_merge_agrees_with_plain_sum_on_same_candidate() {
        let (mut a, mut b) = (HotKeySketch::default(), HotKeySketch::default());
        for _ in 0..50 {
            a.observe(&[1, 2]);
            b.observe(&[1, 2]);
        }
        b.observe(&[9, 9]);
        a.merge(&b);
        assert_eq!(a.candidate.as_slice(), &[1, 2]);
        assert_eq!(a.samples, 101);
        assert_eq!(a.hits, 100);
    }

    #[test]
    fn uniform_sketch_never_qualifies() {
        let mut sk = HotKeySketch::default();
        for i in 0..1000u64 {
            sk.observe(&[i % 64]);
        }
        assert!(!sk.qualifies(&SpecConfig::default()));
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let mut plan = SpecPlan {
            hot_keys: vec![(NodeId(3), SmallKey::from_slice(&[42]))],
            direct: vec![NodeId(1)],
            chain: vec![NodeId(0), NodeId(3)],
            fingerprint: 0,
        };
        let f1 = fingerprint(&plan);
        assert_eq!(f1, fingerprint(&plan), "deterministic");
        assert_ne!(f1, 0);
        plan.hot_keys[0].1 = SmallKey::from_slice(&[43]);
        assert_ne!(fingerprint(&plan), f1, "key change changes the plan id");
    }
}
