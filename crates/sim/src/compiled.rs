//! The compiled datapath: a flat, index-addressed lowering of a deployed
//! [`ProgramGraph`].
//!
//! The interpreter walks the graph through `NodeId → Vec<Option<Node>>`
//! hops, clones each action's primitive list per packet, and hashes
//! `Vec<u64>` match keys with SipHash. [`CompiledPipeline`] lowers the
//! program once: nodes live in a contiguous arena addressed by dense
//! `u32` slots, branch comparison counts and placement/tier cost scales
//! are pre-resolved to `f64`, action bodies are pre-boxed slices executed
//! in place, and match keys are [`SmallKey`]s hashed with FxHash and
//! queried through borrowed `&[u64]` scratch — so the steady-state hot
//! path performs zero heap allocations per packet.
//!
//! Lowering preserves the interpreter's semantics *and accounting*
//! bit-for-bit: every latency term is applied with the same operand
//! values in the same multiplication and addition order, and lookup
//! probe/resolution order is inherited from [`MatchEngine`] (the compiled
//! engine is converted from a freshly built interpreter engine rather
//! than re-deriving way layout).

use crate::engine::{KeyScratch, LookupOutcome, MatchEngine, Resolve};
use crate::packet::Packet;
use crate::smallkey::SmallKey;
use fxhash::FxHashMap;
use pipeleon_cost::{CostParams, MatchCostModel, MemoryTier, Placement};
use pipeleon_ir::{
    CacheRole, Condition, FieldRef, MatchValue, NextHops, NodeId, NodeKind, Primitive,
    ProgramGraph, Table,
};

/// Sentinel slot meaning "no node" (the sink, or a tombstoned id).
pub(crate) const NO_SLOT: u32 = u32::MAX;

/// The entry indices stored under one way key. Single-entry lists (the
/// overwhelmingly common case) are inline — no `Box` deref per hit.
#[derive(Debug, Clone)]
pub(crate) enum CEntries {
    One(usize),
    Many(Box<[usize]>),
}

impl CEntries {
    fn from_list(v: &[usize]) -> Self {
        match v {
            [one] => CEntries::One(*one),
            many => CEntries::Many(many.to_vec().into_boxed_slice()),
        }
    }

    #[inline]
    fn as_slice(&self) -> &[usize] {
        match self {
            CEntries::One(i) => std::slice::from_ref(i),
            CEntries::Many(b) => b,
        }
    }
}

/// The key map of one way. Single-field keys hash the raw `u64` (no
/// slice length prefix, no [`SmallKey`] dispatch); wider keys go through
/// the scratch-composed slice. `Direct` is a specialization-pass rewrite
/// of a dense single-field exact way: the masked key indexes a slot
/// array, no hashing at all. Any entry-op rebuild of the engine restores
/// the hash form, so `Direct` only ever describes a stable entry set.
#[derive(Debug, Clone)]
pub(crate) enum CWayMap {
    U64(FxHashMap<u64, CEntries>),
    Multi(FxHashMap<SmallKey, CEntries>),
    Direct {
        base: u64,
        slots: Box<[Option<CEntries>]>,
    },
}

/// One hash-table way of a [`CompiledEngine`]: FxHash-keyed copy of the
/// interpreter way.
#[derive(Debug, Clone)]
pub(crate) struct CWay {
    pub(crate) masks: Box<[u64]>,
    /// All-ones masks (exact ways): the composed key can be hashed
    /// directly, skipping the masked-copy step.
    pub(crate) full_mask: bool,
    pub(crate) map: CWayMap,
}

/// A range entry replicated out of the table for graph-free scanning.
#[derive(Debug, Clone)]
struct CScanEntry {
    idx: usize,
    matches: Box<[MatchValue]>,
}

/// The compiled match engine for one table. Semantically identical to
/// [`MatchEngine::lookup`] (it is converted from one), but needs no
/// `&Table` at lookup time and hashes inline [`SmallKey`]s with FxHash.
#[derive(Debug, Clone)]
pub(crate) struct CompiledEngine {
    key_fields: Box<[FieldRef]>,
    pub(crate) ways: Vec<CWay>,
    scan: Vec<CScanEntry>,
    resolve: Resolve,
    default_action: usize,
    /// Entry index → (action, priority).
    entry_meta: Box<[(usize, i32)]>,
    pub(crate) has_keys: bool,
}

impl CompiledEngine {
    /// Builds the compiled engine by converting a freshly built
    /// interpreter engine — way order, entry-list order and resolution
    /// rules carry over verbatim, so probe counts and resolved entries
    /// are identical by construction.
    pub(crate) fn from_table(table: &Table) -> Self {
        let me = MatchEngine::build(table);
        let ways = me
            .ways
            .iter()
            .map(|w| CWay {
                masks: w.masks.clone().into_boxed_slice(),
                full_mask: w.masks.iter().all(|&m| m == !0u64),
                map: if w.masks.len() == 1 {
                    CWayMap::U64(
                        w.map
                            .iter()
                            .map(|(k, v)| (k[0], CEntries::from_list(v)))
                            .collect(),
                    )
                } else {
                    CWayMap::Multi(
                        w.map
                            .iter()
                            .map(|(k, v)| (SmallKey::from_slice(k), CEntries::from_list(v)))
                            .collect(),
                    )
                },
            })
            .collect();
        let scan = me
            .scan_entries
            .iter()
            .map(|&idx| CScanEntry {
                idx,
                matches: table.entries[idx].matches.clone().into_boxed_slice(),
            })
            .collect();
        Self {
            key_fields: me.key_fields.into_boxed_slice(),
            ways,
            scan,
            resolve: me.resolve,
            default_action: me.default_action,
            entry_meta: me.entry_meta.into_boxed_slice(),
            has_keys: me.has_keys,
        }
    }

    /// Allocation-free lookup; mirrors [`MatchEngine::lookup`] exactly.
    /// After the call `scratch.values()` holds the composed key values.
    pub(crate) fn lookup(&self, packet: &Packet, scratch: &mut KeyScratch) -> LookupOutcome {
        self.compose_key(packet, scratch);
        self.lookup_composed(scratch)
    }

    /// Composes the match key into `scratch.values` (empty for keyless
    /// tables, mirroring the interpreter's early return).
    #[inline]
    pub(crate) fn compose_key(&self, packet: &Packet, scratch: &mut KeyScratch) {
        scratch.values.clear();
        if self.has_keys {
            scratch
                .values
                .extend(self.key_fields.iter().map(|&f| packet.get(f)));
        }
    }

    /// Resolves an already-composed key (`scratch.values`). Split out of
    /// [`Self::lookup`] so the specialization guard can compare the
    /// composed key against the baked hot key first and fall through to
    /// this exact general path on a miss — and so hot outcomes can be
    /// baked from a raw key with no synthetic packet.
    pub(crate) fn lookup_composed(&self, scratch: &mut KeyScratch) -> LookupOutcome {
        if !self.has_keys {
            return LookupOutcome {
                entry: None,
                action: self.default_action,
                probes: 0,
            };
        }
        let mut probes = 0usize;
        let mut best: Option<(usize, i32)> = None; // (entry, priority)
        for way in &self.ways {
            probes += 1;
            // Masking with all-ones is the identity, so exact ways hash
            // the composed key in place; single-field ways hash the raw
            // u64 without going through a slice at all.
            let found: Option<&CEntries> = match &way.map {
                CWayMap::U64(m) => {
                    let k = if way.full_mask {
                        scratch.values[0]
                    } else {
                        scratch.values[0] & way.masks[0]
                    };
                    m.get(&k)
                }
                CWayMap::Multi(m) => {
                    let key: &[u64] = if way.full_mask {
                        scratch.values.as_slice()
                    } else {
                        scratch.masked.clear();
                        scratch.masked.extend(
                            scratch
                                .values
                                .iter()
                                .zip(way.masks.iter())
                                .map(|(v, m)| v & m),
                        );
                        scratch.masked.as_slice()
                    };
                    m.get(key)
                }
                CWayMap::Direct { base, slots } => {
                    let k = if way.full_mask {
                        scratch.values[0]
                    } else {
                        scratch.values[0] & way.masks[0]
                    };
                    k.checked_sub(*base)
                        .and_then(|i| slots.get(i as usize))
                        .and_then(|o| o.as_ref())
                }
            };
            if let Some(entries) = found {
                for &idx in entries.as_slice() {
                    let (_, prio) = self.entry_meta[idx];
                    let better = match best {
                        None => true,
                        Some((best_idx, best_prio)) => match self.resolve {
                            Resolve::Priority => {
                                prio > best_prio || (prio == best_prio && idx < best_idx)
                            }
                            _ => false,
                        },
                    };
                    if better {
                        best = Some((idx, prio));
                    }
                }
                if !matches!(self.resolve, Resolve::Priority) && best.is_some() {
                    break;
                }
            }
        }
        if !self.scan.is_empty() {
            probes += 1;
            for e in &self.scan {
                let hit = e
                    .matches
                    .iter()
                    .zip(scratch.values.iter())
                    .all(|(mv, &v)| mv.matches(v));
                if hit {
                    let idx = e.idx;
                    let (_, prio) = self.entry_meta[idx];
                    let better = match best {
                        None => true,
                        Some((best_idx, best_prio)) => {
                            prio > best_prio || (prio == best_prio && idx < best_idx)
                        }
                    };
                    if better {
                        best = Some((idx, prio));
                    }
                }
            }
        }
        match best {
            Some((idx, _)) => LookupOutcome {
                entry: Some(idx),
                action: self.entry_meta[idx].0,
                probes,
            },
            None => LookupOutcome {
                entry: None,
                action: self.default_action,
                probes: probes.max(1),
            },
        }
    }
}

/// Successor slots of a compiled table node.
#[derive(Debug, Clone)]
pub(crate) enum CNext {
    /// Unconditional successor.
    Always(u32),
    /// Per-action successor (indexed by resolved action).
    ByAction(Box<[u32]>),
}

/// The inline cache of one specialized table: the profile window's
/// dominant composed key with its fully pre-resolved lookup outcome.
/// The outcome is baked by running [`CompiledEngine::lookup_composed`]
/// on the hot key at specialization time, so a guard hit returns — by
/// construction — exactly what the general path would have returned
/// (entry, action, *and* probe count, which feeds latency accounting).
#[derive(Debug, Clone)]
pub(crate) struct CTableSpec {
    /// The composed key values the guard compares against.
    pub(crate) hot_key: SmallKey,
    /// The pre-resolved outcome for `hot_key`.
    pub(crate) hot_outcome: LookupOutcome,
}

/// A compiled table node.
#[derive(Debug, Clone)]
pub(crate) struct CTable {
    /// The FxHash match engine (unused for flow-cache nodes).
    pub(crate) engine: CompiledEngine,
    /// Action index → pre-boxed primitive body.
    pub(crate) actions: Vec<Box<[Primitive]>>,
    /// Pre-resolved charged probes under a `Fixed` match model
    /// (`None` under `PerDistinctPattern`).
    pub(crate) charged_fixed: Option<f64>,
    /// `PerDistinctPattern` probe cap (unused under `Fixed`).
    pub(crate) pattern_cap: usize,
    /// Successor slots.
    pub(crate) next: CNext,
    /// Whether this node is a [`CacheRole::FlowCache`] switch node.
    pub(crate) is_flow_cache: bool,
    /// Key fields (flow-cache key composition).
    pub(crate) key_fields: Box<[FieldRef]>,
    /// The table's default (miss) action.
    pub(crate) default_action: usize,
    /// Flow-cache hit successor slot.
    pub(crate) hit_slot: u32,
    /// Flow-cache miss successor slot.
    pub(crate) miss_slot: u32,
    /// Hot-key inline cache installed by the specialization pass
    /// (`None` in the verbatim lowering). Boxed: the common case pays
    /// one `Option` discriminant, not 5 extra words per table.
    pub(crate) spec: Option<Box<CTableSpec>>,
}

/// A compiled node's executable shape.
#[derive(Debug, Clone)]
pub(crate) enum CStep {
    /// A branch: pre-counted comparisons and both successor slots.
    Branch {
        /// The condition to evaluate against the packet slots.
        condition: Condition,
        /// `num_comparisons().max(1)` pre-converted to `f64`.
        comparisons: f64,
        /// Successor slot when true.
        on_true: u32,
        /// Successor slot when false.
        on_false: u32,
    },
    /// A (possibly flow-cache) table.
    Table(Box<CTable>),
}

/// One node of the compiled program arena.
#[derive(Debug, Clone)]
pub(crate) struct CNode {
    /// The original graph node id (profiles/traces speak `NodeId`).
    pub(crate) id: NodeId,
    /// Pre-resolved placement.
    pub(crate) place: Placement,
    /// Pre-resolved placement cost scale (1.0 or `cpu_scale`).
    pub(crate) scale: f64,
    /// Pre-resolved memory-tier match scale.
    pub(crate) tier_scale: f64,
    /// Executable shape.
    pub(crate) step: CStep,
}

/// A flat, index-addressed lowering of one deployed program.
#[derive(Debug, Clone)]
pub(crate) struct CompiledPipeline {
    /// Node arena in graph iteration order (specialization may permute
    /// slots so the hot chain is a contiguous prefix; `slot_of` and
    /// every successor reference are remapped with it).
    pub(crate) nodes: Vec<CNode>,
    /// `NodeId` index → arena slot ([`NO_SLOT`] for tombstones).
    pub(crate) slot_of: Vec<u32>,
    /// Entry slot ([`NO_SLOT`] for an empty program).
    pub(crate) root: u32,
    /// Fingerprint of the applied specialization plan (`0` = verbatim
    /// lowering). An entry-op patch to a specialized table resets it to
    /// `0`: the rebuilt engine drops that table's passes, and the stale
    /// fingerprint tells the next specialize step to re-plan.
    pub(crate) spec_fingerprint: u64,
}

impl CompiledPipeline {
    /// Lowers a validated graph against the given cost parameters,
    /// placement and memory tiers (all of which are baked into the
    /// compiled arena and invalidate it when they change).
    pub(crate) fn build(
        graph: &ProgramGraph,
        params: &CostParams,
        placement: &[Placement],
        tiers: &[MemoryTier],
    ) -> Self {
        let mut slot_of = vec![NO_SLOT; graph.id_bound()];
        let ids: Vec<NodeId> = graph.iter_nodes().map(|n| n.id).collect();
        for (slot, id) in ids.iter().enumerate() {
            slot_of[id.index()] = slot as u32;
        }
        let nodes = ids
            .iter()
            .map(|&id| compile_node(graph, params, placement, tiers, &slot_of, id))
            .collect();
        let root = graph.root().map_or(NO_SLOT, |r| slot_of[r.index()]);
        Self {
            nodes,
            slot_of,
            root,
            spec_fingerprint: 0,
        }
    }

    /// Recompiles a single node in place (entry insert/remove, table
    /// replacement). Returns `false` if the node has no slot, in which
    /// case the caller must fall back to a full recompile.
    pub(crate) fn recompile_node(
        &mut self,
        graph: &ProgramGraph,
        params: &CostParams,
        placement: &[Placement],
        tiers: &[MemoryTier],
        id: NodeId,
    ) -> bool {
        let slot = self.slot_of.get(id.index()).copied().unwrap_or(NO_SLOT);
        if slot == NO_SLOT || graph.node(id).is_none() {
            return false;
        }
        self.nodes[slot as usize] =
            compile_node(graph, params, placement, tiers, &self.slot_of, id);
        true
    }

    /// The arena slot of a node id ([`NO_SLOT`] if absent).
    #[inline]
    pub(crate) fn slot(&self, id: NodeId) -> u32 {
        self.slot_of.get(id.index()).copied().unwrap_or(NO_SLOT)
    }

    /// Whether the table at `id` carries any per-table specialization
    /// (hot-key guard or direct-index way).
    pub(crate) fn node_is_specialized(&self, id: NodeId) -> bool {
        let slot = self.slot(id);
        if slot == NO_SLOT {
            return false;
        }
        match &self.nodes[slot as usize].step {
            CStep::Table(ct) => {
                ct.spec.is_some()
                    || ct
                        .engine
                        .ways
                        .iter()
                        .any(|w| matches!(w.map, CWayMap::Direct { .. }))
            }
            CStep::Branch { .. } => false,
        }
    }

    /// Number of tables carrying per-table specialization.
    pub(crate) fn specialized_tables(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| self.node_is_specialized(n.id))
            .count() as u64
    }
}

fn compile_node(
    graph: &ProgramGraph,
    params: &CostParams,
    placement: &[Placement],
    tiers: &[MemoryTier],
    slot_of: &[u32],
    id: NodeId,
) -> CNode {
    let node = graph.node(id).expect("live node");
    let place = placement
        .get(id.index())
        .copied()
        .unwrap_or(Placement::Asic);
    let scale = match place {
        Placement::Asic => 1.0,
        Placement::Cpu => params.cpu_scale,
    };
    let tier = tiers.get(id.index()).copied().unwrap_or(MemoryTier::Emem);
    let tier_scale = params.tiers.match_scale(tier);
    let to_slot = |t: Option<NodeId>| {
        t.map_or(NO_SLOT, |n| {
            slot_of.get(n.index()).copied().unwrap_or(NO_SLOT)
        })
    };
    let step = match (&node.kind, &node.next) {
        (NodeKind::Branch(b), NextHops::Branch { on_true, on_false }) => CStep::Branch {
            condition: b.condition.clone(),
            comparisons: b.condition.num_comparisons().max(1) as f64,
            on_true: to_slot(*on_true),
            on_false: to_slot(*on_false),
        },
        (NodeKind::Table(t), next) => {
            let engine = CompiledEngine::from_table(t);
            let actions: Vec<Box<[Primitive]>> = t
                .actions
                .iter()
                .map(|a| a.primitives.clone().into_boxed_slice())
                .collect();
            let (charged_fixed, pattern_cap) = match params.match_model {
                MatchCostModel::Fixed { .. } => (Some(params.memory_accesses(t)), usize::MAX),
                MatchCostModel::PerDistinctPattern { cap } => (None, cap),
            };
            let (hit_slot, miss_slot) = match next {
                NextHops::ByAction(v) => (
                    to_slot(v.first().copied().flatten()),
                    to_slot(v.get(t.default_action).copied().flatten()),
                ),
                NextHops::Always(tn) => (to_slot(*tn), to_slot(*tn)),
                NextHops::Branch { .. } => unreachable!("table with branch hops"),
            };
            let cnext = match next {
                NextHops::Always(tn) => CNext::Always(to_slot(*tn)),
                NextHops::ByAction(v) => CNext::ByAction(v.iter().map(|t| to_slot(*t)).collect()),
                NextHops::Branch { .. } => unreachable!("table with branch hops"),
            };
            CStep::Table(Box::new(CTable {
                engine,
                actions,
                charged_fixed,
                pattern_cap,
                next: cnext,
                is_flow_cache: t.cache_role == CacheRole::FlowCache,
                key_fields: t.keys.iter().map(|k| k.field).collect(),
                default_action: t.default_action,
                hit_slot,
                miss_slot,
                spec: None,
            }))
        }
        _ => unreachable!("validated graph: branch node with non-branch hops"),
    };
    CNode {
        id,
        place,
        scale,
        tier_scale,
        step,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeleon_ir::{Action, MatchKey, MatchKind, TableEntry};

    fn packet(vals: &[u64]) -> Packet {
        Packet::with_slots(vals.to_vec())
    }

    fn table_with(kind: MatchKind, entries: Vec<TableEntry>) -> Table {
        let mut t = Table::new("t");
        t.keys = vec![MatchKey {
            field: FieldRef(0),
            kind,
        }];
        t.actions = vec![Action::nop("miss"), Action::nop("hit")];
        t.entries = entries;
        t
    }

    /// The compiled engine agrees with the interpreter engine on entry,
    /// action, and probe count for mixed ternary entries.
    #[test]
    fn compiled_engine_matches_interpreter_engine() {
        let mut entries = Vec::new();
        let mut x: u64 = 0xDEAD;
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        for i in 0..40 {
            let v = next() % 32;
            let m = next() % 32;
            entries.push(TableEntry::with_priority(
                vec![MatchValue::Ternary { value: v, mask: m }],
                (i % 2) as usize,
                (next() % 8) as i32,
            ));
        }
        let t = table_with(MatchKind::Ternary, entries);
        let me = MatchEngine::build(&t);
        let ce = CompiledEngine::from_table(&t);
        let mut s1 = KeyScratch::new();
        let mut s2 = KeyScratch::new();
        for _ in 0..400 {
            let p = packet(&[next() % 32]);
            assert_eq!(me.lookup(&t, &p, &mut s1), ce.lookup(&p, &mut s2));
            assert_eq!(s1.values(), s2.values());
        }
    }

    /// Lowering assigns dense slots and resolves the root.
    #[test]
    fn build_assigns_dense_slots() {
        use pipeleon_ir::ProgramBuilder;
        let mut b = ProgramBuilder::new();
        let x = b.field("x");
        let t1 = b.table("t1").key(x, MatchKind::Exact).finish();
        b.set_next(t1, None);
        let g = b.seal(t1).unwrap();
        let params = CostParams::bluefield2();
        let cp = CompiledPipeline::build(&g, &params, &[], &[]);
        assert_eq!(cp.nodes.len(), g.num_nodes());
        assert_ne!(cp.root, NO_SLOT);
        assert_eq!(cp.nodes[cp.slot(t1) as usize].id, t1);
    }
}
