//! Abstraction over simulated NIC datapaths.
//!
//! [`NicBackend`] is the surface the runtime layer needs from a datapath:
//! the control-plane entry API, live reconfiguration, profile collection,
//! and batch measurement. [`SmartNic`] (single-threaded) and
//! [`crate::ShardedNic`] (multi-worker) both implement it, so a
//! `SimTarget` can be backed by either interchangeably.

use crate::exec::{EngineMode, ExecReport};
use crate::nic::{BatchStats, ShardMode};
use crate::observe::ExecObservations;
use crate::packet::Packet;
use crate::specialize::{SpecConfig, SpecStats};
use crate::SmartNic;
use pipeleon_cost::{CostParams, RuntimeProfile};
use pipeleon_ir::{IrError, NextHops, NodeId, ProgramGraph, Table, TableEntry};

/// What a live program swap looked like from the datapath's side:
/// recorded by backends at every [`NicBackend::deploy`] that published a
/// new generation while live reconfiguration was enabled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveSwap {
    /// The generation id the deploy published (monotone per backend).
    pub generation: u64,
    /// Packets enqueued but not yet processed at the instant of
    /// publication — they complete under the *old* generation.
    pub in_flight: u64,
    /// Wall-clock latency of the publish step itself (validation +
    /// compile + chain append), in nanoseconds. The datapath never
    /// stalls for this: it is control-plane latency, not downtime.
    pub latency_ns: f64,
}

/// A simulated NIC datapath: program deployment, control-plane entry
/// management, instrumentation, and line-rate batch measurement.
pub trait NicBackend {
    /// The deployed program.
    fn graph(&self) -> &ProgramGraph;

    /// The target parameters.
    fn params(&self) -> &CostParams;

    /// Live-reconfigures the datapath with a new program layout.
    fn deploy(&mut self, graph: ProgramGraph) -> Result<(), IrError>;

    /// Takes the profile collected since the last call.
    fn take_profile(&mut self) -> RuntimeProfile;

    /// Takes the latency histograms recorded for sampled packets since
    /// the last call. Sharded datapaths merge per-shard histograms
    /// deterministically before returning.
    fn take_observations(&mut self) -> ExecObservations;

    /// Inserts a table entry (control-plane API).
    fn insert_entry(&mut self, node: NodeId, entry: TableEntry) -> Result<(), IrError>;

    /// Removes a table entry by index (control-plane API).
    fn remove_entry(&mut self, node: NodeId, index: usize) -> Result<TableEntry, IrError>;

    /// Replaces a table definition in place.
    fn replace_table(
        &mut self,
        node: NodeId,
        table: Table,
        next: Option<NextHops>,
    ) -> Result<(), IrError>;

    /// Flushes one flow cache.
    fn flush_cache(&mut self, node: NodeId);

    /// Sets a flow cache's insertion rate limit.
    fn set_cache_insertion_limit(&mut self, node: NodeId, rate_per_s: f64);

    /// Enables counter instrumentation with `sample_every` packet sampling.
    fn set_instrumentation(&mut self, enabled: bool, sample_every: u64);

    /// Selects the packet-execution engine: the reference interpreter or
    /// the compiled datapath (the default). Both produce bit-identical
    /// results; the compiled engine is the fast path.
    fn set_engine_mode(&mut self, mode: EngineMode);

    /// The currently selected packet-execution engine.
    fn engine_mode(&self) -> EngineMode;

    /// The worker-coordination mode of the datapath. Single-threaded
    /// backends are trivially bit-exact; sharded backends report how
    /// their workers coordinate ([`ShardMode`]).
    fn shard_mode(&self) -> ShardMode {
        ShardMode::BitExact
    }

    /// Processes one packet (no arrival pacing).
    fn process_one(&mut self, packet: &mut Packet) -> ExecReport;

    /// Processes a batch of packets in place (no arrival pacing),
    /// returning one report per packet. The default implementation loops
    /// [`NicBackend::process_one`]; datapaths with a batch-oriented fast
    /// path override it.
    fn process_batch(&mut self, packets: &mut [Packet]) -> Vec<ExecReport> {
        packets.iter_mut().map(|p| self.process_one(p)).collect()
    }

    /// Runs a batch offered at line rate and reports throughput/latency.
    fn measure_batch(&mut self, packets: Vec<Packet>) -> BatchStats;

    /// Current simulation time in seconds.
    fn now_s(&self) -> f64;

    /// Enables or disables live reconfiguration: when on, control-plane
    /// operations publish as generations concurrent with packet flow
    /// instead of pausing the datapath. Backends without a live mode
    /// ignore the call (their control plane already runs between
    /// packets).
    fn set_live_reconfig(&mut self, _on: bool) {}

    /// Whether live reconfiguration is enabled.
    fn live_reconfig(&self) -> bool {
        false
    }

    /// The most recent live program swap, if any. `None` until the first
    /// live deploy (and always `None` on backends without a live mode).
    fn last_swap(&self) -> Option<LiveSwap> {
        None
    }

    /// Opens a streaming measurement window (see
    /// [`NicBackend::measure_feed`]). The default implementation is a
    /// no-op: backends without a streaming path treat each feed as its
    /// own batch.
    fn measure_begin(&mut self) {}

    /// Feeds one chunk of line-rate traffic into the open measurement
    /// window *without waiting for it to drain* — on a live sharded
    /// backend, control-plane generations published between feeds land
    /// genuinely mid-flight. Pacing is continuous across feeds: the
    /// chunks of one begin/feed/end window measure identically to a
    /// single `measure_batch` of their concatenation.
    fn measure_feed(&mut self, packets: Vec<Packet>) {
        let _ = self.measure_batch(packets);
    }

    /// Closes the streaming measurement window: waits for every fed
    /// packet to drain and returns the merged statistics for the whole
    /// window.
    fn measure_end(&mut self) -> BatchStats {
        self.measure_batch(Vec::new())
    }

    /// Sets the thresholds that drive specialization planning. Backends
    /// without a specializing datapath ignore the call.
    fn set_spec_config(&mut self, _cfg: SpecConfig) {}

    /// Builds a specialization plan from the last profile window and
    /// applies it to the compiled datapath (bit-exactly — a specialized
    /// pipeline is the same program, faster on the profiled traffic).
    /// Returns `true` if the pipeline changed; the default (for backends
    /// without a compiled datapath) never specializes.
    fn specialize(&mut self) -> bool {
        false
    }

    /// Reverts the compiled datapath to its verbatim lowering. Returns
    /// `true` if it was specialized.
    fn despecialize(&mut self) -> bool {
        false
    }

    /// Current specialization counters and state.
    fn spec_stats(&self) -> SpecStats {
        SpecStats::default()
    }
}

impl NicBackend for SmartNic {
    fn graph(&self) -> &ProgramGraph {
        SmartNic::graph(self)
    }

    fn params(&self) -> &CostParams {
        SmartNic::params(self)
    }

    fn deploy(&mut self, graph: ProgramGraph) -> Result<(), IrError> {
        SmartNic::deploy(self, graph)
    }

    fn take_profile(&mut self) -> RuntimeProfile {
        SmartNic::take_profile(self)
    }

    fn take_observations(&mut self) -> ExecObservations {
        SmartNic::take_observations(self)
    }

    fn insert_entry(&mut self, node: NodeId, entry: TableEntry) -> Result<(), IrError> {
        SmartNic::insert_entry(self, node, entry)
    }

    fn remove_entry(&mut self, node: NodeId, index: usize) -> Result<TableEntry, IrError> {
        SmartNic::remove_entry(self, node, index)
    }

    fn replace_table(
        &mut self,
        node: NodeId,
        table: Table,
        next: Option<NextHops>,
    ) -> Result<(), IrError> {
        SmartNic::replace_table(self, node, table, next)
    }

    fn flush_cache(&mut self, node: NodeId) {
        SmartNic::flush_cache(self, node)
    }

    fn set_cache_insertion_limit(&mut self, node: NodeId, rate_per_s: f64) {
        SmartNic::set_cache_insertion_limit(self, node, rate_per_s)
    }

    fn set_instrumentation(&mut self, enabled: bool, sample_every: u64) {
        SmartNic::set_instrumentation(self, enabled, sample_every)
    }

    fn set_engine_mode(&mut self, mode: EngineMode) {
        SmartNic::set_engine_mode(self, mode)
    }

    fn engine_mode(&self) -> EngineMode {
        SmartNic::engine_mode(self)
    }

    fn process_one(&mut self, packet: &mut Packet) -> ExecReport {
        SmartNic::process_one(self, packet)
    }

    fn process_batch(&mut self, packets: &mut [Packet]) -> Vec<ExecReport> {
        SmartNic::process_batch(self, packets)
    }

    fn measure_batch(&mut self, packets: Vec<Packet>) -> BatchStats {
        self.measure(packets)
    }

    fn now_s(&self) -> f64 {
        SmartNic::now_s(self)
    }

    fn set_live_reconfig(&mut self, on: bool) {
        SmartNic::set_live_reconfig(self, on)
    }

    fn live_reconfig(&self) -> bool {
        SmartNic::live_reconfig(self)
    }

    fn last_swap(&self) -> Option<LiveSwap> {
        SmartNic::last_swap(self)
    }

    fn measure_begin(&mut self) {
        SmartNic::measure_begin(self)
    }

    fn measure_feed(&mut self, packets: Vec<Packet>) {
        SmartNic::measure_feed(self, packets)
    }

    fn measure_end(&mut self) -> BatchStats {
        SmartNic::measure_end(self)
    }

    fn set_spec_config(&mut self, cfg: SpecConfig) {
        SmartNic::set_spec_config(self, cfg)
    }

    fn specialize(&mut self) -> bool {
        SmartNic::specialize(self)
    }

    fn despecialize(&mut self) -> bool {
        SmartNic::despecialize(self)
    }

    fn spec_stats(&self) -> SpecStats {
        SmartNic::spec_stats(self)
    }
}
