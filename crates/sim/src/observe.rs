//! Latency observations collected by the executor.
//!
//! [`ExecObservations`] is the histogram side of the profiling loop: the
//! end-to-end latency distribution of sampled packets plus a per-table
//! breakdown, all built from [`LatencyHistogram`]s whose `merge` is
//! bit-exact. A [`crate::ShardedNic`] merges per-shard observations with
//! [`ExecObservations::merge`]; because the sampling decision is driven
//! by the *global* packet sequence number and every histogram aggregate
//! is an integer, the merged result is bit-identical to a
//! single-threaded run for any worker count.

use pipeleon_ir::NodeId;
use pipeleon_obs::LatencyHistogram;
use std::collections::BTreeMap;

/// Latency distributions observed since the last take: end-to-end per
/// sampled packet, and the per-table latency contribution of each table
/// the sampled packets executed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecObservations {
    /// End-to-end accounted latency of each sampled packet.
    pub packet_latency: LatencyHistogram,
    /// Latency contributed by each table node (match + actions +
    /// counters) on sampled packets, keyed by node id.
    pub per_table: BTreeMap<NodeId, LatencyHistogram>,
}

impl ExecObservations {
    /// An empty observation set (the identity of
    /// [`ExecObservations::merge`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.packet_latency.is_empty() && self.per_table.is_empty()
    }

    /// Records a sampled packet's end-to-end latency.
    pub fn record_packet(&mut self, ns: f64) {
        self.packet_latency.record(ns);
    }

    /// Records the latency a table contributed to a sampled packet.
    pub fn record_table(&mut self, node: NodeId, ns: f64) {
        self.per_table.entry(node).or_default().record(ns);
    }

    /// Merges another observation set into this one. Inherits the
    /// commutative/associative/identity laws of
    /// [`LatencyHistogram::merge`]: per-key histograms sum bucket-wise,
    /// so any partition of the same samples merges to the same result.
    pub fn merge(&mut self, other: &ExecObservations) {
        self.packet_latency.merge(&other.packet_latency);
        for (node, hist) in &other.per_table {
            self.per_table.entry(*node).or_default().merge(hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_partition_invariant() {
        let mut a = ExecObservations::new();
        let mut b = ExecObservations::new();
        let mut whole = ExecObservations::new();
        for i in 0..500u64 {
            let ns = (i * 13 % 7000) as f64;
            let node = NodeId((i % 3) as u32);
            let part = if i % 2 == 0 { &mut a } else { &mut b };
            part.record_packet(ns);
            part.record_table(node, ns / 2.0);
            whole.record_packet(ns);
            whole.record_table(node, ns / 2.0);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "commutative");
        assert_eq!(ab, whole, "partition-invariant");
        let mut id = a.clone();
        id.merge(&ExecObservations::new());
        assert_eq!(id, a, "identity");
    }
}
