//! The `std`-vs-model synchronization facade (loom's `cfg(loom)` idiom).
//!
//! The lock-free datapath modules ([`crate::ring`], [`crate::generation`
//! when building with `--cfg pipeleon_check`], [`crate::sharded`]) import
//! every synchronization primitive from here instead of `std::sync`:
//!
//! - **Real builds** (`cfg(not(pipeleon_check))`): re-exports of the
//!   plain `std` types plus [`CheckCell`], an `#[inline(always)]`
//!   zero-cost newtype over `UnsafeCell` with loom's closure-based
//!   access API. Codegen is identical to using `std::sync` directly —
//!   the throughput bench must not move when this facade changes.
//! - **Model builds** (`RUSTFLAGS="--cfg pipeleon_check"`): the same
//!   names resolve to `pipeleon-check`'s tracked shims, so the model
//!   tests in `crates/sim/tests/model.rs` explore interleavings of the
//!   *actual datapath sources*, not a parallel copy that could drift.
//!
//! `Ordering` is always `std`'s — the tracked shims take the real
//! orderings and interpret them with vector clocks, which is how a
//! weakened ordering shows up as a detected race rather than a compile
//! error.

#[cfg(pipeleon_check)]
pub(crate) use pipeleon_check::cell::CheckCell;
#[cfg(pipeleon_check)]
pub(crate) use pipeleon_check::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
#[cfg(pipeleon_check)]
pub(crate) use pipeleon_check::sync::Mutex;

#[cfg(not(pipeleon_check))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
#[cfg(not(pipeleon_check))]
pub(crate) use std::sync::Mutex;

pub(crate) use std::sync::atomic::Ordering;

#[cfg(not(pipeleon_check))]
mod plain_cell {
    use std::cell::UnsafeCell;

    /// Zero-cost stand-in for `pipeleon_check::cell::CheckCell`: the
    /// same closure-based access API over a plain `UnsafeCell`, with
    /// every method `#[inline(always)]` so real builds compile to the
    /// exact loads/stores the pre-facade code produced.
    #[derive(Debug)]
    pub(crate) struct CheckCell<T>(UnsafeCell<T>);

    // SAFETY: CheckCell is a transparent wrapper over UnsafeCell; it
    // inherits UnsafeCell's aliasing obligations unchanged, and the
    // cross-thread access discipline is the responsibility of the
    // containing type (e.g. the ring's `Inner`, whose SPSC protocol is
    // verified by the model checker). The bounds mirror the tracked
    // CheckCell so both cfgs accept the same containing types.
    unsafe impl<T: Send> Send for CheckCell<T> {}
    // SAFETY: see above — shared references only hand out raw pointers;
    // dereferencing them is the caller's (checked) obligation.
    unsafe impl<T: Sync> Sync for CheckCell<T> {}

    impl<T> CheckCell<T> {
        /// A cell with an initialized payload. Kept for API parity with
        /// the tracked variant even when the datapath only constructs
        /// uninitialized slots.
        #[allow(dead_code)]
        #[inline(always)]
        pub(crate) fn new(v: T) -> Self {
            Self(UnsafeCell::new(v))
        }

        /// A cell whose payload (typically `MaybeUninit`) starts
        /// uninitialized. Identical to [`CheckCell::new`] here; the
        /// tracked variant diagnoses reads before the first write.
        #[inline(always)]
        pub(crate) fn new_uninit(v: T) -> Self {
            Self(UnsafeCell::new(v))
        }

        /// Immutable (read) access via raw pointer.
        #[inline(always)]
        pub(crate) fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Mutable (write) access via raw pointer.
        #[inline(always)]
        pub(crate) fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }

        /// Exclusive access (no synchronization involved).
        #[inline(always)]
        pub(crate) fn get_mut(&mut self) -> &mut T {
            self.0.get_mut()
        }
    }
}

#[cfg(not(pipeleon_check))]
pub(crate) use plain_cell::CheckCell;
