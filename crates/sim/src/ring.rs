//! Fixed-capacity single-producer/single-consumer ring buffer.
//!
//! The hand-off primitive of the run-loop sharded datapath
//! ([`ShardMode::RunLoop`](crate::ShardMode)): the dispatcher owns one
//! [`Producer`] per worker shard, each worker owns the matching
//! [`Consumer`], and packets flow through without locks — the classic
//! Lamport queue shape used by DPDK-style rx/tx burst rings.
//!
//! Design points:
//!
//! - **Power-of-two capacity, free-running indices.** `head`/`tail` count
//!   monotonically and are reduced modulo capacity with a mask, so
//!   `tail - head` is the length even across wraparound and the
//!   full/empty states never alias.
//! - **Cache-line-padded counters.** `head` (consumer-written) and `tail`
//!   (producer-written) sit on separate 64-byte lines so the two sides
//!   never false-share.
//! - **Cached counterpart indices.** The producer keeps a stale copy of
//!   `head` and only reloads it when the ring looks full (symmetrically
//!   for the consumer and `tail`), so the common case touches one shared
//!   line, not two.
//! - **Burst operations.** [`Producer::push_burst`] and
//!   [`Consumer::pop_burst`] move a run of items with a single
//!   acquire/release pair, which is what makes the per-packet hand-off
//!   cost amortize on the hot path.
//!
//! Memory ordering is the minimal Lamport protocol: each side publishes
//! its own counter with `Release` after writing/consuming slots and reads
//! the other side's with `Acquire` before trusting slot contents. The
//! happens-before graph is documented edge-by-edge on the ordering
//! helpers below and spelled out in DESIGN.md §15; it is verified by the
//! model-checked suite in `crates/sim/tests/model.rs` (build with
//! `RUSTFLAGS="--cfg pipeleon_check"`), which also kills the seeded
//! ordering mutants injectable through `RingOrderings` in model builds.
//! Single-threaded behaviour is property-tested against a `VecDeque`
//! model in `crates/sim/tests/ring_props.rs`.

use crate::sync::{AtomicUsize, CheckCell, Ordering};
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::Arc;

/// Pads a counter to its own cache line so producer and consumer
/// counters never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

/// How many slots ahead of its cursor each side prefetches. One shard's
/// ring is written/read as one sequential stream, but a dispatcher
/// feeding many rings round-robin produces more concurrent streams than
/// the hardware prefetcher tracks — explicit hints keep the per-slot
/// cost flat as the ring count grows.
const PREFETCH_SLOTS: usize = 8;

#[inline]
fn prefetch_slot<T>(inner: &Inner<T>, idx: usize) {
    // Model builds skip the hint: a prefetch is not a data access, and
    // routing it through the tracked cell would register a spurious read
    // of a slot the protocol has not handed to this side yet.
    #[cfg(all(target_arch = "x86_64", not(pipeleon_check)))]
    inner.buf[idx & inner.mask].with(|p| {
        // SAFETY: `_mm_prefetch` only hints the cache with an address;
        // it performs no load the memory model can observe, so it is
        // sound on any pointer, including one to an uninitialized or
        // concurrently-written slot.
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(p as *const i8, _MM_HINT_T0);
        }
    });
    #[cfg(not(all(target_arch = "x86_64", not(pipeleon_check))))]
    let _ = (inner, idx);
}

/// Ordering/bug injection for the model-checked mutant-kill suite: each
/// field weakens one load/store of the Lamport protocol (or reorders a
/// publication against its slot access), and `tests/model.rs` asserts
/// the checker reports a counterexample for every single one. Only
/// exists in `--cfg pipeleon_check` builds; real builds compile the
/// correct orderings as constants.
#[cfg(pipeleon_check)]
#[derive(Clone, Copy, Debug)]
pub struct RingOrderings {
    /// Producer's publication of `tail` (correct: `Release`).
    pub tail_store: Ordering,
    /// Consumer's refresh of `tail` (correct: `Acquire`).
    pub tail_load: Ordering,
    /// Consumer's publication of `head` (correct: `Release`).
    pub head_store: Ordering,
    /// Producer's refresh of `head` (correct: `Acquire`).
    pub head_load: Ordering,
    /// Bug: publish `tail` *before* writing the slot.
    pub publish_before_write: bool,
    /// Bug: publish `head` *before* reading the slot.
    pub advance_before_read: bool,
}

#[cfg(pipeleon_check)]
impl Default for RingOrderings {
    fn default() -> Self {
        // ORDERING: the correct Lamport protocol — each counter is
        // published with Release and refreshed with Acquire; the edge
        // each pair implements is documented on the `Inner` ordering
        // helpers below.
        Self {
            tail_store: Ordering::Release,
            tail_load: Ordering::Acquire,
            head_store: Ordering::Release,
            head_load: Ordering::Acquire,
            publish_before_write: false,
            advance_before_read: false,
        }
    }
}

struct Inner<T> {
    buf: Box<[CheckCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot to pop. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next slot to push. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
    #[cfg(pipeleon_check)]
    ord: RingOrderings,
}

// The four orderings of the Lamport protocol, one helper each so the
// happens-before edge is stated exactly once and the model build can
// substitute a mutant. All compile to constants in real builds.
impl<T> Inner<T> {
    /// ORDERING: Release. Publishes the producer's slot writes in
    /// `[old_tail, new_tail)`: they happen-before any consumer access
    /// that observes the new `tail` through [`Inner::tail_load_ord`].
    #[inline(always)]
    fn tail_store_ord(&self) -> Ordering {
        #[cfg(pipeleon_check)]
        {
            self.ord.tail_store
        }
        #[cfg(not(pipeleon_check))]
        {
            Ordering::Release
        }
    }

    /// ORDERING: Acquire. Synchronizes with the producer's `Release`
    /// store of `tail`: after the load, every slot in `[head, tail)` is
    /// fully written and safe to read.
    #[inline(always)]
    fn tail_load_ord(&self) -> Ordering {
        #[cfg(pipeleon_check)]
        {
            self.ord.tail_load
        }
        #[cfg(not(pipeleon_check))]
        {
            Ordering::Acquire
        }
    }

    /// ORDERING: Release. Publishes the consumer's slot reads in
    /// `[old_head, new_head)`: they happen-before any producer write
    /// that observes the new `head` through [`Inner::head_load_ord`],
    /// so a freed slot is never overwritten mid-read.
    #[inline(always)]
    fn head_store_ord(&self) -> Ordering {
        #[cfg(pipeleon_check)]
        {
            self.ord.head_store
        }
        #[cfg(not(pipeleon_check))]
        {
            Ordering::Release
        }
    }

    /// ORDERING: Acquire. Synchronizes with the consumer's `Release`
    /// store of `head`: after the load, every slot below `head` has
    /// been fully read out and may be rewritten.
    #[inline(always)]
    fn head_load_ord(&self) -> Ordering {
        #[cfg(pipeleon_check)]
        {
            self.ord.head_load
        }
        #[cfg(not(pipeleon_check))]
        {
            Ordering::Acquire
        }
    }
}

// SAFETY: the SPSC protocol partitions slot access — the producer only
// writes slots in `[tail, head + capacity)` and the consumer only reads
// slots in `[head, tail)`, with the Release/Acquire pair on the counters
// ordering the hand-off (verified by the model suite in
// `crates/sim/tests/model.rs`). Items of `T` move across threads, hence
// the `T: Send` bound on both impls.
unsafe impl<T: Send> Send for Inner<T> {}
// SAFETY: see above — `&Inner` only exposes the checked protocol.
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access here: drop whatever was pushed but not popped.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        for i in head..tail {
            // SAFETY: `[head, tail)` is exactly the set of slots that
            // were written by a push and never read out by a pop, so
            // each holds a live `T`; `&mut self` rules out concurrent
            // access.
            unsafe { self.buf[i & self.mask].get_mut().assume_init_drop() };
        }
    }
}

/// The sending half of an SPSC ring; owned by exactly one thread.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Local mirror of `tail` (we are its only writer).
    tail: usize,
    /// Stale cache of the consumer's `head`; refreshed only when the
    /// ring looks full.
    head_cache: usize,
}

/// The receiving half of an SPSC ring; owned by exactly one thread.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Local mirror of `head` (we are its only writer).
    head: usize,
    /// Stale cache of the producer's `tail`; refreshed only when the
    /// ring looks empty.
    tail_cache: usize,
}

/// Creates an SPSC ring holding at least `capacity` items (rounded up to
/// a power of two, minimum 2).
pub fn spsc<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    spsc_inner(
        capacity,
        #[cfg(pipeleon_check)]
        RingOrderings::default(),
    )
}

/// Creates a ring with injected (possibly mutant) orderings — the entry
/// point of the model-checked mutant-kill suite. Model builds only.
#[cfg(pipeleon_check)]
pub fn spsc_with_orderings<T>(capacity: usize, ord: RingOrderings) -> (Producer<T>, Consumer<T>) {
    spsc_inner(capacity, ord)
}

fn spsc_inner<T>(
    capacity: usize,
    #[cfg(pipeleon_check)] ord: RingOrderings,
) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf: Box<[CheckCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| CheckCell::new_uninit(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(Inner {
        buf,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        #[cfg(pipeleon_check)]
        ord,
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            tail: 0,
            head_cache: 0,
        },
        Consumer {
            inner,
            head: 0,
            tail_cache: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Maximum number of items the ring can hold.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// Free slots, refreshing the consumer's position.
    pub fn free(&mut self) -> usize {
        // ORDERING: Acquire (see `head_load_ord`) — the consumer's reads
        // of the slots below the loaded `head` happen-before this load,
        // so those slots are ours to overwrite.
        self.head_cache = self.inner.head.0.load(self.inner.head_load_ord());
        self.capacity() - (self.tail - self.head_cache)
    }

    /// Writes `value` into the current tail slot (no publication).
    #[inline(always)]
    fn write_slot(&mut self, value: T) {
        self.inner.buf[self.tail & self.inner.mask].with_mut(|p| {
            // SAFETY: `tail - head_cache < capacity` was just checked,
            // so this slot is outside the consumer's readable window
            // `[head, tail)`; we are the only producer, hence the only
            // writer of it. Writing `MaybeUninit` needs no drop of the
            // previous (already-read-out or never-written) contents.
            unsafe { (*p).write(value) };
        });
    }

    /// Pushes one item; returns it back if the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        if self.tail - self.head_cache == self.capacity() {
            // ORDERING: Acquire (see `head_load_ord`) — refresh the
            // consumer position; freed slots are safe to rewrite.
            self.head_cache = self.inner.head.0.load(self.inner.head_load_ord());
            if self.tail - self.head_cache == self.capacity() {
                return Err(value);
            }
        }
        #[cfg(pipeleon_check)]
        if self.inner.ord.publish_before_write {
            // MUTANT: publish the slot before writing it — the consumer
            // can observe the new tail and read uninitialized memory.
            self.inner
                .tail
                .0
                .store(self.tail + 1, self.inner.tail_store_ord());
            self.write_slot(value);
            self.tail += 1;
            return Ok(());
        }
        self.write_slot(value);
        prefetch_slot(&self.inner, self.tail + PREFETCH_SLOTS);
        self.tail += 1;
        // ORDERING: Release (see `tail_store_ord`) — publishes the slot
        // write above to the consumer's Acquire load of `tail`.
        self.inner
            .tail
            .0
            .store(self.tail, self.inner.tail_store_ord());
        Ok(())
    }

    /// Pushes items from `items` until the ring fills or the iterator
    /// ends, publishing the whole run with one `Release` store. Returns
    /// the number pushed; unpushed items stay in the iterator.
    pub fn push_burst(&mut self, items: &mut impl Iterator<Item = T>) -> usize {
        let free = self.free();
        let mut n = 0;
        while n < free {
            match items.next() {
                Some(v) => {
                    self.write_slot(v);
                    prefetch_slot(&self.inner, self.tail + PREFETCH_SLOTS);
                    self.tail += 1;
                    n += 1;
                }
                None => break,
            }
        }
        if n > 0 {
            // ORDERING: Release (see `tail_store_ord`) — one publication
            // covers every slot write of the burst: all of them
            // happen-before a consumer access that observes this tail.
            self.inner
                .tail
                .0
                .store(self.tail, self.inner.tail_store_ord());
        }
        n
    }
}

impl<T> Consumer<T> {
    /// Maximum number of items the ring can hold.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// Whether the ring is empty, refreshing the producer's position.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Items currently queued, refreshing the producer's position.
    pub fn len(&mut self) -> usize {
        // ORDERING: Acquire (see `tail_load_ord`) — the producer's slot
        // writes below the loaded `tail` happen-before this load, so
        // every queued slot is fully initialized before we read it.
        self.tail_cache = self.inner.tail.0.load(self.inner.tail_load_ord());
        self.tail_cache - self.head
    }

    /// Reads the current head slot out (no publication).
    #[inline(always)]
    fn read_slot(&self) -> T {
        self.inner.buf[self.head & self.inner.mask].with(|p| {
            // SAFETY: `head < tail_cache` (checked by the caller), and
            // the Acquire load of `tail` ordered the producer's write of
            // this slot before us, so it holds a live `T`; reading it
            // out transfers ownership, and the subsequent `head`
            // publication tells the producer the slot is reusable.
            unsafe { (*p).assume_init_read() }
        })
    }

    /// Pops one item, or `None` if the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.head == self.tail_cache {
            // ORDERING: Acquire (see `tail_load_ord`) — refresh the
            // producer position; queued slots are initialized.
            self.tail_cache = self.inner.tail.0.load(self.inner.tail_load_ord());
            if self.head == self.tail_cache {
                return None;
            }
        }
        #[cfg(pipeleon_check)]
        if self.inner.ord.advance_before_read {
            // MUTANT: free the slot before reading it — the producer can
            // observe the new head and overwrite the slot mid-read.
            self.head += 1;
            self.inner
                .head
                .0
                .store(self.head, self.inner.head_store_ord());
            self.head -= 1;
            let v = self.read_slot();
            self.head += 1;
            return Some(v);
        }
        let v = self.read_slot();
        self.head += 1;
        // ORDERING: Release (see `head_store_ord`) — publishes the slot
        // read above to the producer's Acquire load of `head`, so the
        // producer only rewrites the slot after our read completed.
        self.inner
            .head
            .0
            .store(self.head, self.inner.head_store_ord());
        Some(v)
    }

    /// Pops up to `max` items into `out`, releasing all consumed slots
    /// with one `Release` store. Returns the number popped.
    pub fn pop_burst(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let avail = self.len().min(max);
        for _ in 0..avail {
            prefetch_slot(&self.inner, self.head + PREFETCH_SLOTS);
            let v = self.read_slot();
            self.head += 1;
            out.push(v);
        }
        if avail > 0 {
            // ORDERING: Release (see `head_store_ord`) — one publication
            // covers every slot read of the burst: all of them
            // happen-before a producer write that observes this head.
            self.inner
                .head
                .0
                .store(self.head, self.inner.head_store_ord());
        }
        avail
    }
}

impl<T> fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Producer")
            .field("capacity", &self.capacity())
            .field("tail", &self.tail)
            .finish()
    }
}

impl<T> fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Consumer")
            .field("capacity", &self.capacity())
            .field("head", &self.head)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (p, _c) = spsc::<u32>(3);
        assert_eq!(p.capacity(), 4);
        let (p, _c) = spsc::<u32>(0);
        assert_eq!(p.capacity(), 2);
        let (p, _c) = spsc::<u32>(8);
        assert_eq!(p.capacity(), 8);
    }

    #[test]
    fn fifo_through_wraparound() {
        let (mut p, mut c) = spsc::<u64>(4);
        for round in 0..10u64 {
            for i in 0..4 {
                p.push(round * 4 + i).unwrap();
            }
            assert!(p.push(999).is_err(), "ring must report full");
            for i in 0..4 {
                assert_eq!(c.pop(), Some(round * 4 + i));
            }
            assert_eq!(c.pop(), None);
        }
    }

    #[test]
    fn burst_ops_move_runs() {
        let (mut p, mut c) = spsc::<u32>(8);
        let mut src = (0..20u32).peekable();
        assert_eq!(p.push_burst(&mut src), 8);
        let mut out = Vec::new();
        assert_eq!(c.pop_burst(&mut out, 5), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(p.push_burst(&mut src), 5);
        out.clear();
        assert_eq!(c.pop_burst(&mut out, 64), 8);
        assert_eq!(out, vec![5, 6, 7, 8, 9, 10, 11, 12]);
    }

    #[test]
    fn unpopped_items_are_dropped_with_the_ring() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                // ORDERING: SeqCst — test-only counter, no data guarded.
                DROPS.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            }
        }
        let (mut p, mut c) = spsc::<Counted>(4);
        for _ in 0..3 {
            p.push(Counted).unwrap();
        }
        drop(c.pop());
        // ORDERING: SeqCst — test-only counter, no data guarded.
        let before = DROPS.load(std::sync::atomic::Ordering::SeqCst);
        assert_eq!(before, 1);
        drop(p);
        drop(c);
        // ORDERING: SeqCst — test-only counter, no data guarded.
        assert_eq!(
            DROPS.load(std::sync::atomic::Ordering::SeqCst),
            3,
            "ring must drop leftovers"
        );
    }
}
