//! Fixed-capacity single-producer/single-consumer ring buffer.
//!
//! The hand-off primitive of the run-loop sharded datapath
//! ([`ShardMode::RunLoop`](crate::ShardMode)): the dispatcher owns one
//! [`Producer`] per worker shard, each worker owns the matching
//! [`Consumer`], and packets flow through without locks — the classic
//! Lamport queue shape used by DPDK-style rx/tx burst rings.
//!
//! Design points:
//!
//! - **Power-of-two capacity, free-running indices.** `head`/`tail` count
//!   monotonically and are reduced modulo capacity with a mask, so
//!   `tail - head` is the length even across wraparound and the
//!   full/empty states never alias.
//! - **Cache-line-padded counters.** `head` (consumer-written) and `tail`
//!   (producer-written) sit on separate 64-byte lines so the two sides
//!   never false-share.
//! - **Cached counterpart indices.** The producer keeps a stale copy of
//!   `head` and only reloads it when the ring looks full (symmetrically
//!   for the consumer and `tail`), so the common case touches one shared
//!   line, not two.
//! - **Burst operations.** [`Producer::push_burst`] and
//!   [`Consumer::pop_burst`] move a run of items with a single
//!   acquire/release pair, which is what makes the per-packet hand-off
//!   cost amortize on the hot path.
//!
//! Memory ordering is the minimal Lamport protocol: each side publishes
//! its own counter with `Release` after writing/consuming slots and reads
//! the other side's with `Acquire` before trusting slot contents.
//! Property tests ([`crate::ring`] has inline unit tests; the
//! cross-thread suite lives in `crates/sim/tests/ring_props.rs`) check
//! no-loss/no-duplication/no-reordering against a `VecDeque` model and a
//! two-thread interleaving smoke.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads a counter to its own cache line so producer and consumer
/// counters never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

/// How many slots ahead of its cursor each side prefetches. One shard's
/// ring is written/read as one sequential stream, but a dispatcher
/// feeding many rings round-robin produces more concurrent streams than
/// the hardware prefetcher tracks — explicit hints keep the per-slot
/// cost flat as the ring count grows.
const PREFETCH_SLOTS: usize = 8;

#[inline]
fn prefetch_slot<T>(inner: &Inner<T>, idx: usize) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch(inner.buf[idx & inner.mask].get() as *const i8, _MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (inner, idx);
}

struct Inner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot to pop. Written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next slot to push. Written only by the producer.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the SPSC protocol partitions slot access — the producer only
// writes slots in `[tail, head + capacity)` and the consumer only reads
// slots in `[head, tail)`, with the Release/Acquire pair on the counters
// ordering the hand-off. Items of `T` move across threads, hence `Send`.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Exclusive access here: drop whatever was pushed but not popped.
        let head = *self.head.0.get_mut();
        let tail = *self.tail.0.get_mut();
        for i in head..tail {
            unsafe { (*self.buf[i & self.mask].get()).assume_init_drop() };
        }
    }
}

/// The sending half of an SPSC ring; owned by exactly one thread.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Local mirror of `tail` (we are its only writer).
    tail: usize,
    /// Stale cache of the consumer's `head`; refreshed only when the
    /// ring looks full.
    head_cache: usize,
}

/// The receiving half of an SPSC ring; owned by exactly one thread.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Local mirror of `head` (we are its only writer).
    head: usize,
    /// Stale cache of the producer's `tail`; refreshed only when the
    /// ring looks empty.
    tail_cache: usize,
}

/// Creates an SPSC ring holding at least `capacity` items (rounded up to
/// a power of two, minimum 2).
pub fn spsc<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(Inner {
        buf,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            tail: 0,
            head_cache: 0,
        },
        Consumer {
            inner,
            head: 0,
            tail_cache: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Maximum number of items the ring can hold.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// Free slots, refreshing the consumer's position.
    pub fn free(&mut self) -> usize {
        self.head_cache = self.inner.head.0.load(Ordering::Acquire);
        self.capacity() - (self.tail - self.head_cache)
    }

    /// Pushes one item; returns it back if the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        if self.tail - self.head_cache == self.capacity() {
            self.head_cache = self.inner.head.0.load(Ordering::Acquire);
            if self.tail - self.head_cache == self.capacity() {
                return Err(value);
            }
        }
        unsafe { (*self.inner.buf[self.tail & self.inner.mask].get()).write(value) };
        prefetch_slot(&self.inner, self.tail + PREFETCH_SLOTS);
        self.tail += 1;
        self.inner.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Pushes items from `items` until the ring fills or the iterator
    /// ends, publishing the whole run with one `Release` store. Returns
    /// the number pushed; unpushed items stay in the iterator.
    pub fn push_burst(&mut self, items: &mut impl Iterator<Item = T>) -> usize {
        let free = self.free();
        let mut n = 0;
        while n < free {
            match items.next() {
                Some(v) => {
                    unsafe { (*self.inner.buf[self.tail & self.inner.mask].get()).write(v) };
                    prefetch_slot(&self.inner, self.tail + PREFETCH_SLOTS);
                    self.tail += 1;
                    n += 1;
                }
                None => break,
            }
        }
        if n > 0 {
            self.inner.tail.0.store(self.tail, Ordering::Release);
        }
        n
    }
}

impl<T> Consumer<T> {
    /// Maximum number of items the ring can hold.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// Whether the ring is empty, refreshing the producer's position.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Items currently queued, refreshing the producer's position.
    pub fn len(&mut self) -> usize {
        self.tail_cache = self.inner.tail.0.load(Ordering::Acquire);
        self.tail_cache - self.head
    }

    /// Pops one item, or `None` if the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        if self.head == self.tail_cache {
            self.tail_cache = self.inner.tail.0.load(Ordering::Acquire);
            if self.head == self.tail_cache {
                return None;
            }
        }
        let v = unsafe { (*self.inner.buf[self.head & self.inner.mask].get()).assume_init_read() };
        self.head += 1;
        self.inner.head.0.store(self.head, Ordering::Release);
        Some(v)
    }

    /// Pops up to `max` items into `out`, releasing all consumed slots
    /// with one `Release` store. Returns the number popped.
    pub fn pop_burst(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let avail = self.len().min(max);
        for _ in 0..avail {
            prefetch_slot(&self.inner, self.head + PREFETCH_SLOTS);
            let v =
                unsafe { (*self.inner.buf[self.head & self.inner.mask].get()).assume_init_read() };
            self.head += 1;
            out.push(v);
        }
        if avail > 0 {
            self.inner.head.0.store(self.head, Ordering::Release);
        }
        avail
    }
}

impl<T> fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Producer")
            .field("capacity", &self.capacity())
            .field("tail", &self.tail)
            .finish()
    }
}

impl<T> fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Consumer")
            .field("capacity", &self.capacity())
            .field("head", &self.head)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (p, _c) = spsc::<u32>(3);
        assert_eq!(p.capacity(), 4);
        let (p, _c) = spsc::<u32>(0);
        assert_eq!(p.capacity(), 2);
        let (p, _c) = spsc::<u32>(8);
        assert_eq!(p.capacity(), 8);
    }

    #[test]
    fn fifo_through_wraparound() {
        let (mut p, mut c) = spsc::<u64>(4);
        for round in 0..10u64 {
            for i in 0..4 {
                p.push(round * 4 + i).unwrap();
            }
            assert!(p.push(999).is_err(), "ring must report full");
            for i in 0..4 {
                assert_eq!(c.pop(), Some(round * 4 + i));
            }
            assert_eq!(c.pop(), None);
        }
    }

    #[test]
    fn burst_ops_move_runs() {
        let (mut p, mut c) = spsc::<u32>(8);
        let mut src = (0..20u32).peekable();
        assert_eq!(p.push_burst(&mut src), 8);
        let mut out = Vec::new();
        assert_eq!(c.pop_burst(&mut out, 5), 5);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(p.push_burst(&mut src), 5);
        out.clear();
        assert_eq!(c.pop_burst(&mut out, 64), 8);
        assert_eq!(out, vec![5, 6, 7, 8, 9, 10, 11, 12]);
    }

    #[test]
    fn unpopped_items_are_dropped_with_the_ring() {
        use std::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut p, mut c) = spsc::<Counted>(4);
        for _ in 0..3 {
            p.push(Counted).unwrap();
        }
        drop(c.pop());
        let before = DROPS.load(Ordering::SeqCst);
        assert_eq!(before, 1);
        drop(p);
        drop(c);
        assert_eq!(DROPS.load(Ordering::SeqCst), 3, "ring must drop leftovers");
    }
}
