//! Match engines: the data structures behind key matching.
//!
//! Exact tables are a single hash table (one memory access). LPM and
//! ternary tables are families of hash tables — one per distinct prefix
//! length / mask pattern — exactly the implementation the cost model's `m`
//! parameter abstracts (paper §3.1). Each lookup reports how many hash
//! tables it probed so the executor charges `probes × L_mat`.

use crate::packet::Packet;
use pipeleon_ir::{prefix_mask, MatchKind, MatchValue, Table};
use std::collections::HashMap;

/// The outcome of a key match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupOutcome {
    /// Index of the matched entry in the table, `None` on miss.
    pub entry: Option<usize>,
    /// The action to execute (matched entry's action, or the default).
    pub action: usize,
    /// Number of hash tables probed (the realized `m`).
    pub probes: usize,
}

/// Reusable scratch buffers for [`MatchEngine::lookup`]: the composed key
/// values and the per-way masked key. Caller-owned so the steady-state
/// lookup path performs zero heap allocations (the buffers grow once to
/// the widest key and are reused for every packet thereafter).
#[derive(Debug, Default, Clone)]
pub struct KeyScratch {
    pub(crate) values: Vec<u64>,
    pub(crate) masked: Vec<u64>,
}

impl KeyScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// The key values composed by the most recent lookup (one per match
    /// key, in declaration order). Valid until the next lookup.
    pub fn values(&self) -> &[u64] {
        &self.values
    }
}

/// One hash-table "way": all entries sharing a mask pattern.
#[derive(Debug, Clone)]
pub(crate) struct Way {
    /// Per-key masks applied to the packet value before hashing. Exact
    /// keys use `u64::MAX`; LPM/ternary use their prefix/bit masks; range
    /// keys force a linear scan (`None` signature).
    pub(crate) masks: Vec<u64>,
    /// Specificity used for LPM ordering (total set bits across masks).
    pub(crate) specificity: u32,
    /// Masked key values → entry indices (highest priority kept first).
    /// Boxed keys so lookups can borrow a `&[u64]` scratch buffer.
    pub(crate) map: HashMap<Box<[u64]>, Vec<usize>>,
}

/// How the engine resolves among ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Resolve {
    /// Single way, first match wins (exact tables).
    Exact,
    /// Probe ways most-specific-first, stop at the first hit (LPM).
    LongestPrefix,
    /// Probe all ways, pick the highest-priority hit (ternary).
    Priority,
}

/// A compiled match engine for one table.
#[derive(Debug, Clone)]
pub struct MatchEngine {
    pub(crate) key_fields: Vec<pipeleon_ir::FieldRef>,
    pub(crate) ways: Vec<Way>,
    /// Entries needing a linear scan (ranges).
    pub(crate) scan_entries: Vec<usize>,
    pub(crate) resolve: Resolve,
    pub(crate) default_action: usize,
    /// Entry index → (action, priority) copied from the table.
    pub(crate) entry_meta: Vec<(usize, i32)>,
    pub(crate) has_keys: bool,
}

impl MatchEngine {
    /// Compiles the engine from a table definition. The table should have
    /// passed [`Table::validate`].
    pub fn build(table: &Table) -> Self {
        let key_fields = table.keys.iter().map(|k| k.field).collect::<Vec<_>>();
        let resolve = match table.effective_kind() {
            MatchKind::Exact => Resolve::Exact,
            MatchKind::Lpm => Resolve::LongestPrefix,
            MatchKind::Ternary | MatchKind::Range => Resolve::Priority,
        };
        let mut ways: Vec<Way> = Vec::new();
        let mut scan_entries = Vec::new();
        let entry_meta = table
            .entries
            .iter()
            .map(|e| (e.action, e.priority))
            .collect();
        'entry: for (idx, e) in table.entries.iter().enumerate() {
            let mut masks = Vec::with_capacity(e.matches.len());
            let mut key = Vec::with_capacity(e.matches.len());
            for mv in &e.matches {
                let (mask, value) = match *mv {
                    MatchValue::Exact(v) => (u64::MAX, v),
                    MatchValue::Lpm { value, prefix_len } => (prefix_mask(prefix_len), value),
                    MatchValue::Ternary { value, mask } => (mask, value),
                    MatchValue::Range { .. } => {
                        scan_entries.push(idx);
                        continue 'entry;
                    }
                };
                masks.push(mask);
                key.push(value & mask);
            }
            let way = match ways.iter_mut().find(|w| w.masks == masks) {
                Some(w) => w,
                None => {
                    let specificity = masks.iter().map(|m| m.count_ones()).sum();
                    ways.push(Way {
                        masks,
                        specificity,
                        map: HashMap::new(),
                    });
                    ways.last_mut().expect("just pushed")
                }
            };
            way.map.entry(key.into_boxed_slice()).or_default().push(idx);
        }
        // LPM: most specific way first so the first hit is the longest
        // prefix. Stable by construction order otherwise.
        if resolve == Resolve::LongestPrefix {
            ways.sort_by_key(|w| std::cmp::Reverse(w.specificity));
        }
        Self {
            key_fields,
            ways,
            scan_entries,
            resolve,
            default_action: table.default_action,
            entry_meta,
            has_keys: !table.keys.is_empty(),
        }
    }

    /// The number of hash-table ways (the structural `m`).
    pub fn num_ways(&self) -> usize {
        self.ways.len()
    }

    /// Looks up a packet. `table` must be the same definition the engine
    /// was built from (used for range comparisons). The caller provides
    /// reusable [`KeyScratch`] buffers; after the call `scratch.values()`
    /// holds the composed key values (useful for distinct-key tracking).
    pub fn lookup(
        &self,
        table: &Table,
        packet: &Packet,
        scratch: &mut KeyScratch,
    ) -> LookupOutcome {
        scratch.values.clear();
        if !self.has_keys {
            // Keyless tables always run the default action with no access.
            return LookupOutcome {
                entry: None,
                action: self.default_action,
                probes: 0,
            };
        }
        scratch
            .values
            .extend(self.key_fields.iter().map(|&f| packet.get(f)));
        let mut probes = 0usize;
        let mut best: Option<(usize, i32)> = None; // (entry, priority)
        for way in &self.ways {
            probes += 1;
            scratch.masked.clear();
            scratch
                .masked
                .extend(scratch.values.iter().zip(&way.masks).map(|(v, m)| v & m));
            if let Some(entries) = way.map.get(scratch.masked.as_slice()) {
                for &idx in entries {
                    let (_, prio) = self.entry_meta[idx];
                    let better = match best {
                        None => true,
                        Some((best_idx, best_prio)) => match self.resolve {
                            Resolve::Priority => {
                                prio > best_prio || (prio == best_prio && idx < best_idx)
                            }
                            _ => false,
                        },
                    };
                    if better {
                        best = Some((idx, prio));
                    }
                }
                if !matches!(self.resolve, Resolve::Priority) && best.is_some() {
                    // Exact / LPM: first (most specific) hit wins.
                    break;
                }
            }
        }
        // Linear-scan entries (ranges) act like one extra probe.
        if !self.scan_entries.is_empty() {
            probes += 1;
            for &idx in &self.scan_entries {
                let e = &table.entries[idx];
                let hit = e
                    .matches
                    .iter()
                    .zip(scratch.values.iter())
                    .all(|(mv, &v)| mv.matches(v));
                if hit {
                    let (_, prio) = self.entry_meta[idx];
                    let better = match best {
                        None => true,
                        Some((best_idx, best_prio)) => {
                            prio > best_prio || (prio == best_prio && idx < best_idx)
                        }
                    };
                    if better {
                        best = Some((idx, prio));
                    }
                }
            }
        }
        match best {
            Some((idx, _)) => LookupOutcome {
                entry: Some(idx),
                action: self.entry_meta[idx].0,
                probes,
            },
            None => LookupOutcome {
                entry: None,
                action: self.default_action,
                probes: probes.max(1),
            },
        }
    }
}

/// Reference semantics: linear scan over entries honouring LPM longest-
/// prefix and ternary priority resolution. Used by property tests as an
/// oracle for [`MatchEngine`].
pub fn oracle_lookup(table: &Table, packet: &Packet) -> (Option<usize>, usize) {
    let values: Vec<u64> = table.keys.iter().map(|k| packet.get(k.field)).collect();
    let mut best: Option<(usize, i64)> = None; // (entry, score)
    for (idx, e) in table.entries.iter().enumerate() {
        let hit = e.matches.iter().zip(&values).all(|(mv, &v)| mv.matches(v));
        if !hit {
            continue;
        }
        // Score: LPM tables prefer longer prefixes; ternary/range prefer
        // higher priority; exact tables take the first hit.
        let score = match table.effective_kind() {
            MatchKind::Lpm => e
                .matches
                .iter()
                .map(|m| match *m {
                    MatchValue::Lpm { prefix_len, .. } => prefix_len as i64,
                    MatchValue::Exact(_) => 64,
                    _ => 0,
                })
                .sum(),
            MatchKind::Ternary | MatchKind::Range => e.priority as i64,
            MatchKind::Exact => 0,
        };
        match best {
            None => best = Some((idx, score)),
            Some((_, s)) if score > s => best = Some((idx, score)),
            _ => {}
        }
    }
    match best {
        Some((idx, _)) => (Some(idx), table.entries[idx].action),
        None => (None, table.default_action),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeleon_ir::{Action, FieldRef, MatchKey, TableEntry};

    fn packet(vals: &[u64]) -> Packet {
        Packet::with_slots(vals.to_vec())
    }

    fn lk(e: &MatchEngine, t: &Table, p: &Packet) -> LookupOutcome {
        e.lookup(t, p, &mut KeyScratch::new())
    }

    fn table_with(kind: MatchKind, entries: Vec<TableEntry>) -> Table {
        let mut t = Table::new("t");
        t.keys = vec![MatchKey {
            field: FieldRef(0),
            kind,
        }];
        t.actions = vec![Action::nop("miss"), Action::nop("hit")];
        t.entries = entries;
        t
    }

    #[test]
    fn exact_lookup_one_probe() {
        let t = table_with(
            MatchKind::Exact,
            vec![
                TableEntry::new(vec![MatchValue::Exact(5)], 1),
                TableEntry::new(vec![MatchValue::Exact(9)], 1),
            ],
        );
        let e = MatchEngine::build(&t);
        let r = lk(&e, &t, &packet(&[5]));
        assert_eq!(r.entry, Some(0));
        assert_eq!(r.action, 1);
        assert_eq!(r.probes, 1);
        let r = lk(&e, &t, &packet(&[7]));
        assert_eq!(r.entry, None);
        assert_eq!(r.action, 0);
        assert_eq!(r.probes, 1);
    }

    #[test]
    fn lpm_picks_longest_prefix() {
        let t = table_with(
            MatchKind::Lpm,
            vec![
                TableEntry::new(
                    vec![MatchValue::Lpm {
                        value: 0xAB00_0000_0000_0000,
                        prefix_len: 8,
                    }],
                    0,
                ),
                TableEntry::new(
                    vec![MatchValue::Lpm {
                        value: 0xABCD_0000_0000_0000,
                        prefix_len: 16,
                    }],
                    1,
                ),
            ],
        );
        let e = MatchEngine::build(&t);
        assert_eq!(e.num_ways(), 2);
        // Matches both prefixes; /16 must win, probed first (1 probe).
        let r = lk(&e, &t, &packet(&[0xABCD_1234_0000_0000]));
        assert_eq!(r.entry, Some(1));
        assert_eq!(r.probes, 1);
        // Matches only the /8: probes the /16 way first, then the /8.
        let r = lk(&e, &t, &packet(&[0xAB11_0000_0000_0000]));
        assert_eq!(r.entry, Some(0));
        assert_eq!(r.probes, 2);
    }

    #[test]
    fn ternary_resolves_by_priority_probing_all_ways() {
        let t = table_with(
            MatchKind::Ternary,
            vec![
                TableEntry::with_priority(
                    vec![MatchValue::Ternary {
                        value: 0x10,
                        mask: 0xF0,
                    }],
                    0,
                    1,
                ),
                TableEntry::with_priority(
                    vec![MatchValue::Ternary {
                        value: 0x12,
                        mask: 0xFF,
                    }],
                    1,
                    2,
                ),
                TableEntry::with_priority(vec![MatchValue::ANY], 0, 0),
            ],
        );
        let e = MatchEngine::build(&t);
        assert_eq!(e.num_ways(), 3);
        let r = lk(&e, &t, &packet(&[0x12]));
        assert_eq!(r.entry, Some(1)); // priority 2 wins
        assert_eq!(r.probes, 3);
        let r = lk(&e, &t, &packet(&[0x15]));
        assert_eq!(r.entry, Some(0)); // only 0xF0 mask + wildcard; prio 1 wins
        let r = lk(&e, &t, &packet(&[0xFF]));
        assert_eq!(r.entry, Some(2)); // wildcard
    }

    #[test]
    fn range_entries_linear_scan() {
        let t = table_with(
            MatchKind::Range,
            vec![
                TableEntry::with_priority(vec![MatchValue::Range { lo: 10, hi: 20 }], 1, 1),
                TableEntry::with_priority(vec![MatchValue::Range { lo: 15, hi: 30 }], 1, 2),
            ],
        );
        let e = MatchEngine::build(&t);
        let r = lk(&e, &t, &packet(&[17]));
        assert_eq!(r.entry, Some(1)); // overlap: priority 2 wins
        let r = lk(&e, &t, &packet(&[12]));
        assert_eq!(r.entry, Some(0));
        let r = lk(&e, &t, &packet(&[99]));
        assert_eq!(r.entry, None);
    }

    #[test]
    fn keyless_table_runs_default_with_no_probe() {
        let mut t = Table::new("keyless");
        t.actions = vec![Action::nop("only")];
        let e = MatchEngine::build(&t);
        let r = lk(&e, &t, &packet(&[1, 2, 3]));
        assert_eq!(r.probes, 0);
        assert_eq!(r.action, 0);
    }

    #[test]
    fn multi_key_exact_plus_ternary() {
        let mut t = Table::new("multi");
        t.keys = vec![
            MatchKey {
                field: FieldRef(0),
                kind: MatchKind::Exact,
            },
            MatchKey {
                field: FieldRef(1),
                kind: MatchKind::Ternary,
            },
        ];
        t.actions = vec![Action::nop("miss"), Action::nop("hit")];
        t.entries = vec![TableEntry::with_priority(
            vec![
                MatchValue::Exact(7),
                MatchValue::Ternary { value: 0, mask: 0 },
            ],
            1,
            1,
        )];
        let e = MatchEngine::build(&t);
        assert_eq!(lk(&e, &t, &packet(&[7, 123])).entry, Some(0));
        assert_eq!(lk(&e, &t, &packet(&[8, 123])).entry, None);
    }

    #[test]
    fn engine_agrees_with_oracle_on_mixed_entries() {
        // Deterministic pseudo-random agreement check (full proptest lives
        // in the crate's property tests).
        let mut entries = Vec::new();
        let mut x: u64 = 0x12345;
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        for i in 0..50 {
            let v = next() % 64;
            let m = next() % 64;
            entries.push(TableEntry::with_priority(
                vec![MatchValue::Ternary { value: v, mask: m }],
                (i % 2) as usize,
                (next() % 10) as i32,
            ));
        }
        let t = table_with(MatchKind::Ternary, entries);
        let e = MatchEngine::build(&t);
        for _ in 0..500 {
            let p = packet(&[next() % 64]);
            let (oe, oa) = oracle_lookup(&t, &p);
            let r = lk(&e, &t, &p);
            // Entry indices may differ among equal (priority, tie) pairs —
            // compare the resolved action and hit/miss status. With
            // distinct priorities this is exact.
            assert_eq!(r.entry.is_some(), oe.is_some());
            if let (Some(re), Some(oe)) = (r.entry, oe) {
                assert_eq!(
                    t.entries[re].priority, t.entries[oe].priority,
                    "engine and oracle picked different priorities"
                );
            }
            let _ = oa;
        }
    }
}
