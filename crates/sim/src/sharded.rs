//! The sharded multi-worker datapath.
//!
//! [`ShardedNic`] RSS-hashes packets by flow key onto `N` worker shards,
//! each owning a private [`Executor`] clone with its own runtime-profile
//! shard. Batches execute in parallel under `std::thread::scope`, and the
//! merge back to a single [`RuntimeProfile`] / [`BatchStats`] is
//! deterministic: results are bit-identical to a single-threaded
//! [`SmartNic`](crate::SmartNic) run, regardless of worker count.
//!
//! Three mechanisms make the merge exact:
//!
//! 1. **Global arrival indices.** Before a worker executes a packet it
//!    sets the shard executor's clock to the packet's *global* arrival
//!    time (`batch_start + gidx / line_pps`) and its packet sequence
//!    number to the global index, so the `packet_seq % sample_every`
//!    counter-sampling decision and every rate-limiter check match the
//!    single-threaded schedule.
//! 2. **A shared reducer.** Workers return [`PacketRecord`]s; the parent
//!    sorts them by global index and feeds them through the exact
//!    [`BatchStats::from_records`] reducer `SmartNic::measure` uses, so
//!    float accumulation order is identical.
//! 3. **Mergeable profiles.** `take_profile` folds shard profiles with
//!    [`RuntimeProfile::merge`] (counters sum per key) and then overwrites
//!    the distinct-key estimates with exact cross-shard unions.
//!
//! Control-plane operations (`insert_entry`, `remove_entry`,
//! `replace_table`, `deploy`, cache management) fan out to every shard so
//! all workers always run the same program.
//!
//! Caveat: flow-cache *runtime state* is shard-local. Each shard has its
//! own LRU of the configured capacity and its own insertion rate limiter,
//! so under eviction or rate-limit pressure a sharded run can diverge
//! from a single-threaded one (more aggregate capacity, more aggregate
//! insertion budget). Equivalence holds exactly for programs without flow
//! caches, and for cached programs whose working set and insertion rate
//! stay under the per-shard limits.

use crate::backend::NicBackend;
use crate::exec::{EngineMode, ExecReport, Executor};
use crate::nic::{BatchStats, NicConfig, PacketRecord};
use crate::observe::ExecObservations;
use crate::packet::Packet;
use pipeleon_cost::{CostParams, MemoryTier, Placement, RuntimeProfile};
use pipeleon_ir::{IrError, NextHops, NodeId, ProgramGraph, Table, TableEntry};
use std::collections::HashMap;

/// A software SmartNIC whose datapath is sharded over `N` parallel
/// workers by flow hash (RSS), with deterministic result merging.
#[derive(Debug)]
pub struct ShardedNic {
    execs: Vec<Executor>,
    config: NicConfig,
    /// Global packet sequence number (drives counter sampling).
    seq: u64,
    /// Global simulation clock in seconds.
    now_s: f64,
    /// Clock value at the last `take_profile` (profile window start).
    last_take_s: f64,
}

impl ShardedNic {
    /// Deploys `graph` on a NIC with `workers` parallel shards (clamped
    /// to at least 1), each owning a private executor.
    pub fn new(graph: ProgramGraph, params: CostParams, workers: usize) -> Result<Self, IrError> {
        let workers = workers.max(1);
        let mut execs = Vec::with_capacity(workers);
        for _ in 0..workers {
            execs.push(Executor::new(graph.clone(), params.clone())?);
        }
        Ok(Self {
            execs,
            config: NicConfig::default(),
            seq: 0,
            now_s: 0.0,
            last_take_s: 0.0,
        })
    }

    /// Sets the measurement configuration.
    pub fn with_config(mut self, config: NicConfig) -> Self {
        self.config = config;
        self
    }

    /// Number of worker shards.
    pub fn num_workers(&self) -> usize {
        self.execs.len()
    }

    /// The deployed program (identical on every shard).
    pub fn graph(&self) -> &ProgramGraph {
        self.execs[0].graph()
    }

    /// Every shard's deployed program, in shard order. Control-plane
    /// fan-out keeps these identical; tests assert it.
    pub fn shard_graphs(&self) -> impl Iterator<Item = &ProgramGraph> + '_ {
        self.execs.iter().map(|e| e.graph())
    }

    /// The target parameters.
    pub fn params(&self) -> &CostParams {
        self.execs[0].params()
    }

    /// Current simulation time in seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Live-reconfigures every shard with a new program layout.
    pub fn deploy(&mut self, graph: ProgramGraph) -> Result<(), IrError> {
        let mut out = Ok(());
        for exec in &mut self.execs {
            if let Err(e) = exec.deploy(graph.clone()) {
                out = Err(e);
            }
        }
        out
    }

    /// Inserts a table entry on every shard (control-plane API). All
    /// shards hold identical graphs, so the operation either succeeds or
    /// fails identically everywhere; the last shard's result is returned.
    pub fn insert_entry(&mut self, node: NodeId, entry: TableEntry) -> Result<(), IrError> {
        let mut out = Ok(());
        for exec in &mut self.execs {
            if let Err(e) = exec.insert_entry(node, entry.clone()) {
                out = Err(e);
            }
        }
        out
    }

    /// Removes a table entry by index on every shard (control-plane API).
    pub fn remove_entry(&mut self, node: NodeId, index: usize) -> Result<TableEntry, IrError> {
        let mut out = Err(IrError::UnknownNode(node));
        for exec in &mut self.execs {
            out = exec.remove_entry(node, index);
        }
        out
    }

    /// Replaces a table definition in place on every shard.
    pub fn replace_table(
        &mut self,
        node: NodeId,
        table: Table,
        next: Option<NextHops>,
    ) -> Result<(), IrError> {
        let mut out = Ok(());
        for exec in &mut self.execs {
            if let Err(e) = exec.replace_table(node, table.clone(), next.clone()) {
                out = Err(e);
            }
        }
        out
    }

    /// Flushes one flow cache on every shard.
    pub fn flush_cache(&mut self, node: NodeId) {
        for exec in &mut self.execs {
            exec.flush_cache(node);
        }
    }

    /// Total live entries in a flow cache's runtime state across shards.
    pub fn cache_len(&self, node: NodeId) -> usize {
        self.execs.iter().map(|e| e.cache_len(node)).sum()
    }

    /// Sets a flow cache's insertion rate limit on every shard (each
    /// shard gets the full budget — see the module docs caveat).
    pub fn set_cache_insertion_limit(&mut self, node: NodeId, rate_per_s: f64) {
        for exec in &mut self.execs {
            exec.set_cache_insertion_limit(node, rate_per_s);
        }
    }

    /// Enables counter instrumentation with `sample_every` packet
    /// sampling on every shard.
    pub fn set_instrumentation(&mut self, enabled: bool, sample_every: u64) {
        for exec in &mut self.execs {
            exec.set_instrumentation(enabled, sample_every);
        }
    }

    /// Sets node placements on every shard.
    pub fn set_placement(&mut self, placement: Vec<Placement>) {
        for exec in &mut self.execs {
            exec.set_placement(placement.clone());
        }
    }

    /// Assigns tables to memory tiers on every shard.
    pub fn set_memory_tiers(&mut self, tiers: Vec<MemoryTier>) {
        for exec in &mut self.execs {
            exec.set_memory_tiers(tiers.clone());
        }
    }

    /// Selects the packet-execution engine on every shard.
    pub fn set_engine_mode(&mut self, mode: EngineMode) {
        for exec in &mut self.execs {
            exec.set_engine_mode(mode);
        }
    }

    /// The currently selected packet-execution engine (identical on every
    /// shard; control-plane fan-out keeps them in sync).
    pub fn engine_mode(&self) -> EngineMode {
        self.execs[0].engine_mode()
    }

    /// Processes a batch of packets in place (no arrival pacing),
    /// returning one report per packet in input order. Packets execute
    /// sequentially on the shards their flows hash to, driven by the
    /// global sequence number, so results match a single-threaded run
    /// packet-for-packet.
    pub fn process_batch(&mut self, packets: &mut [Packet]) -> Vec<ExecReport> {
        packets.iter_mut().map(|p| self.process_one(p)).collect()
    }

    /// Processes one packet on the shard its flow hashes to (no arrival
    /// pacing). Uses the global packet sequence number, so sampling
    /// decisions match a single-threaded run packet-for-packet.
    pub fn process_one(&mut self, packet: &mut Packet) -> ExecReport {
        let shard = (packet.flow_hash() % self.execs.len() as u64) as usize;
        let exec = &mut self.execs[shard];
        exec.now_s = self.now_s;
        exec.set_packet_seq(self.seq);
        self.seq += 1;
        exec.process(packet)
    }

    /// Takes the merged profile collected across all shards since the
    /// last call: counters merge via [`RuntimeProfile::merge`], the
    /// window is the global clock delta, and distinct-key counts come
    /// from exact cross-shard unions of the raw key sets.
    pub fn take_profile(&mut self) -> RuntimeProfile {
        let mut merged = RuntimeProfile::empty();
        let mut union: HashMap<NodeId, fxhash::FxHashSet<crate::SmallKey>> = HashMap::new();
        for exec in &mut self.execs {
            let (p, distinct) = exec.take_profile_split();
            merged.merge(&p);
            for (node, set) in distinct {
                union.entry(node).or_default().extend(set);
            }
        }
        for (node, set) in union {
            merged.set_distinct_keys(node, set.len() as u64);
        }
        merged.window_s = (self.now_s - self.last_take_s).max(1e-9);
        self.last_take_s = self.now_s;
        merged
    }

    /// Takes the merged latency observations across all shards since the
    /// last call. Histogram merging is bit-exact (integer bucket sums),
    /// and the counter-sampling decision is driven by global arrival
    /// indices, so the merged histograms are bit-identical to a
    /// single-threaded [`SmartNic`](crate::SmartNic) run on the same
    /// traffic, for any worker count.
    pub fn take_observations(&mut self) -> ExecObservations {
        let mut merged = ExecObservations::new();
        for exec in &mut self.execs {
            merged.merge(&exec.take_observations());
        }
        merged
    }

    /// Runs a batch offered at line rate through the sharded datapath and
    /// reports achieved throughput and latency statistics, bit-identical
    /// to [`SmartNic::measure`](crate::SmartNic::measure) on the same
    /// traffic (modulo the flow-cache caveat in the module docs).
    /// Advances the simulation clock by the batch's arrival time.
    pub fn measure<I>(&mut self, packets: I) -> BatchStats
    where
        I: IntoIterator<Item = Packet>,
    {
        let cores = self.params().num_cores.max(1);
        let line_pps = self.params().line_rate_pps(self.config.packet_bytes);
        let offered_gbps = self.params().line_rate_gbps;
        let default_bytes = self.config.packet_bytes;
        let batch_start_s = self.now_s;
        let base_seq = self.seq;
        let nw = self.execs.len();

        // RSS: partition the batch by flow hash, tagging each packet with
        // its global arrival index.
        let mut shards: Vec<Vec<(u64, Packet)>> = (0..nw).map(|_| Vec::new()).collect();
        let mut n = 0u64;
        for pkt in packets {
            let shard = (pkt.flow_hash() % nw as u64) as usize;
            shards[shard].push((n, pkt));
            n += 1;
        }

        let mut records: Vec<PacketRecord> = Vec::with_capacity(n as usize);
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for (exec, work) in self.execs.iter_mut().zip(shards) {
                if work.is_empty() {
                    continue;
                }
                handles.push(s.spawn(move || {
                    let mut out = Vec::with_capacity(work.len());
                    for (gidx, mut pkt) in work {
                        // Replay the global single-threaded schedule on
                        // this shard: clock and sequence number are the
                        // packet's global arrival position.
                        exec.now_s = batch_start_s + gidx as f64 / line_pps;
                        exec.set_packet_seq(base_seq + gidx);
                        let core = (pkt.flow_hash() % cores as u64) as usize;
                        let bytes = if pkt.bytes > 0 {
                            pkt.bytes
                        } else {
                            default_bytes
                        };
                        let r = exec.process(&mut pkt);
                        out.push(PacketRecord {
                            arrival: gidx,
                            core,
                            latency_ns: r.latency_ns,
                            dropped: r.dropped,
                            migrations: r.migrations as u64,
                            counter_updates: r.counter_updates as u64,
                            bits: (bytes * 8) as f64,
                        });
                    }
                    out
                }));
            }
            for h in handles {
                records.extend(h.join().expect("shard worker panicked"));
            }
        });
        records.sort_unstable_by_key(|r| r.arrival);

        self.seq = base_seq + n;
        if n > 0 {
            let arrival_ns = n as f64 / line_pps * 1e9;
            self.now_s = batch_start_s + arrival_ns / 1e9;
        }
        // Leave every shard's clock and sequence at the batch end so
        // subsequent direct executor access observes a consistent state.
        for exec in &mut self.execs {
            exec.now_s = self.now_s;
            exec.set_packet_seq(self.seq);
        }
        BatchStats::from_records(&records, cores, line_pps, offered_gbps)
    }
}

impl NicBackend for ShardedNic {
    fn graph(&self) -> &ProgramGraph {
        ShardedNic::graph(self)
    }

    fn params(&self) -> &CostParams {
        ShardedNic::params(self)
    }

    fn deploy(&mut self, graph: ProgramGraph) -> Result<(), IrError> {
        ShardedNic::deploy(self, graph)
    }

    fn take_profile(&mut self) -> RuntimeProfile {
        ShardedNic::take_profile(self)
    }

    fn take_observations(&mut self) -> ExecObservations {
        ShardedNic::take_observations(self)
    }

    fn insert_entry(&mut self, node: NodeId, entry: TableEntry) -> Result<(), IrError> {
        ShardedNic::insert_entry(self, node, entry)
    }

    fn remove_entry(&mut self, node: NodeId, index: usize) -> Result<TableEntry, IrError> {
        ShardedNic::remove_entry(self, node, index)
    }

    fn replace_table(
        &mut self,
        node: NodeId,
        table: Table,
        next: Option<NextHops>,
    ) -> Result<(), IrError> {
        ShardedNic::replace_table(self, node, table, next)
    }

    fn flush_cache(&mut self, node: NodeId) {
        ShardedNic::flush_cache(self, node)
    }

    fn set_cache_insertion_limit(&mut self, node: NodeId, rate_per_s: f64) {
        ShardedNic::set_cache_insertion_limit(self, node, rate_per_s)
    }

    fn set_instrumentation(&mut self, enabled: bool, sample_every: u64) {
        ShardedNic::set_instrumentation(self, enabled, sample_every)
    }

    fn set_engine_mode(&mut self, mode: EngineMode) {
        ShardedNic::set_engine_mode(self, mode)
    }

    fn engine_mode(&self) -> EngineMode {
        ShardedNic::engine_mode(self)
    }

    fn process_one(&mut self, packet: &mut Packet) -> ExecReport {
        ShardedNic::process_one(self, packet)
    }

    fn process_batch(&mut self, packets: &mut [Packet]) -> Vec<ExecReport> {
        ShardedNic::process_batch(self, packets)
    }

    fn measure_batch(&mut self, packets: Vec<Packet>) -> BatchStats {
        self.measure(packets)
    }

    fn now_s(&self) -> f64 {
        ShardedNic::now_s(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SmartNic;
    use pipeleon_ir::{MatchKind, Primitive, ProgramBuilder};

    fn linear_program(tables: usize) -> ProgramGraph {
        let mut b = ProgramBuilder::new();
        let f = b.field("x");
        let mut first = None;
        for i in 0..tables {
            let t = b
                .table(format!("t{i}"))
                .key(f, MatchKind::Exact)
                .action("a", vec![Primitive::Nop])
                .finish();
            first.get_or_insert(t);
        }
        b.seal(first.unwrap()).unwrap()
    }

    fn packets(n: usize) -> Vec<Packet> {
        (0..n).map(|i| Packet::with_slots(vec![i as u64])).collect()
    }

    #[test]
    fn matches_single_threaded_batch_stats() {
        let g = linear_program(8);
        let params = CostParams::bluefield2();
        let mut single = SmartNic::new(g.clone(), params.clone()).unwrap();
        let mut sharded = ShardedNic::new(g, params, 4).unwrap();
        single.set_instrumentation(true, 16);
        sharded.set_instrumentation(true, 16);
        let a = single.measure(packets(4000));
        let b = sharded.measure(packets(4000));
        assert_eq!(a, b);
        assert_eq!(single.take_profile(), sharded.take_profile());
        let obs_a = single.take_observations();
        let obs_b = sharded.take_observations();
        assert!(!obs_a.packet_latency.is_empty());
        assert_eq!(obs_a, obs_b, "merged histograms must be bit-identical");
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let nic = ShardedNic::new(linear_program(2), CostParams::bluefield2(), 0).unwrap();
        assert_eq!(nic.num_workers(), 1);
    }

    #[test]
    fn empty_batch_is_harmless() {
        let mut nic = ShardedNic::new(linear_program(2), CostParams::bluefield2(), 4).unwrap();
        let s = nic.measure(Vec::new());
        assert_eq!(s.packets, 0);
        assert_eq!(s.throughput_gbps, 0.0);
        assert_eq!(nic.now_s(), 0.0);
    }

    #[test]
    fn clock_advances_with_batches() {
        let mut nic = ShardedNic::new(linear_program(2), CostParams::bluefield2(), 3).unwrap();
        nic.measure(packets(1000));
        let t1 = nic.now_s();
        assert!(t1 > 0.0);
        nic.measure(packets(1000));
        assert!(nic.now_s() > t1);
    }
}
