//! The sharded multi-worker datapath.
//!
//! [`ShardedNic`] RSS-hashes packets by flow key onto `N` worker shards,
//! each owning a private [`Executor`] with its own runtime-profile shard,
//! and merges per-shard profiles/observations back into one
//! [`RuntimeProfile`] / [`ExecObservations`] at profile-window boundaries
//! (`take_profile` / `take_observations`). Two worker-coordination modes
//! exist ([`ShardMode`]):
//!
//! # `ShardMode::RunLoop` (default)
//!
//! Persistent worker threads, spawned once at construction, each spinning
//! a DPDK-style run loop: burst-dequeue packets from a private SPSC ring
//! ([`crate::ring`]), execute them, accumulate shard-local aggregates,
//! park when idle. The dispatcher hashes packets onto rings and never
//! waits mid-batch: it is *work-conserving* — when a ring fills, or at
//! end-of-batch drain, the dispatcher executes bursts itself through the
//! same shard-locked path the workers use instead of blocking on them.
//! There is no global arrival stamping, no cross-shard record sort, and
//! no per-batch thread spawn — the three serialization points that made
//! the fork-join mode *slower* at higher worker counts — and on a
//! single-CPU host a batch drains with zero context switches.
//!
//! What RunLoop **preserves** exactly (asserted by
//! `tests/runloop_differential.rs` against the `BitExact` oracle):
//!
//! - **Forwarding decisions and packet mutations.** A flow lives on
//!   exactly one shard and rings are FIFO, so the k-th packet of a flow
//!   sees the same table/cache state as in a single-threaded run.
//! - **Per-flow packet order.** Same argument.
//! - **Integer batch statistics** (packet/drop/migration/counter-update
//!   counts) and the **p99 latency** (reduced from the exact merged
//!   latency multiset, which is partition-invariant).
//! - **Sampled counters and histograms, for any worker count.** Sampling
//!   is keyed per flow ([`SampleKeying::FlowKeyed`]): the decision for a
//!   packet depends only on `(flow_hash, per-flow index)`, both
//!   partition-invariant, so profiles and latency histograms merged at a
//!   window boundary are bit-identical across worker counts (the
//!   single-threaded reference is a [`SmartNic`](crate::SmartNic) with
//!   flow-keyed sampling). With `sample_every == 1` every packet is
//!   sampled and profiles also match the classic global-sequence
//!   schedule bit-for-bit.
//!
//! What RunLoop **relaxes**:
//!
//! - **Global arrival interleaving.** Floating-point aggregates whose
//!   value depends on summation order — mean latency, core busy time and
//!   hence throughput — are accumulated per shard and summed in shard
//!   order, so they can differ from the single-threaded result in the
//!   last ULPs (they are still deterministic for a fixed worker count).
//! - **Arrival-clock pacing is shard-local.** A shard paces its
//!   executor clock by its own packet index, so time-dependent runtime
//!   state (cache insertion rate limiters) sees per-shard schedules.
//!
//! # `ShardMode::BitExact`
//!
//! The previous fork-join-per-batch engine, kept as the differential
//! oracle. Every packet is stamped with its *global* arrival index
//! (clock and sampling sequence), per-packet [`PacketRecord`]s are
//! re-sorted into global arrival order, and the exact
//! [`BatchStats::from_records`] reducer replays the single-threaded
//! float-accumulation order — results are bit-identical to
//! [`SmartNic`](crate::SmartNic) for any worker count, at the cost of a
//! full sort + barrier per batch.
//!
//! # Control plane: fan-out vs. live reconfiguration
//!
//! By default, control-plane operations (`insert_entry`, `remove_entry`,
//! `replace_table`, `deploy`, cache management) fan out to every shard
//! under its lock so all workers always run the same program — simple,
//! but the control plane serializes against packet execution at burst
//! granularity.
//!
//! With **live reconfiguration** enabled (`set_live_reconfig(true)`, in
//! `RunLoop` mode), program-changing operations instead *publish* as
//! numbered generations on an epoch/RCU chain (`GenChain` in
//! `generation.rs`) without touching any shard lock:
//! `deploy` publishes a whole-program swap (with a pre-built compiled
//! pipeline the shards adopt by cloning), entry ops publish deltas, and
//! every dispatched packet is tagged with the generation current at
//! dispatch. A shard adopts pending generations lazily when the first
//! packet tagged with a newer one reaches it, so:
//!
//! - **No torn reads**: a packet executes under exactly the generation
//!   it was dispatched with — adoption is monotone and happens *between*
//!   packets, never mid-packet.
//! - **No drops or stalls**: publication never blocks the datapath, and
//!   in-flight packets complete under their old generation.
//! - **Worker-count-invariant attribution**: the generation tag is a
//!   pure function of the packet's position in the arrival stream
//!   relative to the publishes, so per-generation packet counts (and,
//!   with flow-keyed sampling, merged profiles) are identical for any
//!   worker count.
//!
//! Quiescence is detected at `wait_idle` (every public call that drains
//! the rings): drained shards are fast-forwarded to the latest
//! generation and the chain prefix every shard has adopted is reclaimed,
//! so the chain is empty in steady state. In `BitExact` mode live
//! reconfiguration falls back to synchronous fan-out (the oracle runs
//! fork-join batches, so shards are idle whenever control runs).
//!
//! Non-program operations (instrumentation, placement, engine mode,
//! cache flushes/limits) always fan out: they mutate shard-local runtime
//! state, and the shard mutex serializes them at burst granularity
//! without tearing any packet.
//!
//! Caveat (both modes): flow-cache *runtime state* is shard-local. Each
//! shard has its own LRU of the configured capacity and its own insertion
//! rate limiter, so under eviction or rate-limit pressure a sharded run
//! can diverge from a single-threaded one (more aggregate capacity, more
//! aggregate insertion budget). Equivalence holds exactly for programs
//! without flow caches, and for cached programs whose working set and
//! insertion rate stay under the per-shard limits.

use crate::backend::{LiveSwap, NicBackend};
use crate::exec::{EngineMode, ExecReport, Executor, SampleKeying};
use crate::generation::{GenChain, GenKind, PatchOp};
use crate::nic::{BatchStats, NicConfig, PacketRecord, ShardMode};
use crate::observe::ExecObservations;
use crate::packet::Packet;
use crate::ring;
use crate::specialize::{self, HotKeySketch, SpecConfig, SpecStats};
use crate::sync::{AtomicBool, AtomicU64, Mutex, Ordering};
use fxhash::FxHashMap;
use pipeleon_cost::{CostParams, MemoryTier, Placement, RuntimeProfile};
use pipeleon_ir::{IrError, NextHops, NodeId, ProgramGraph, Table, TableEntry};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::thread::{self, JoinHandle, Thread};
use std::time::Instant;

/// Total in-flight ring slots across all shards. Per-shard capacity is
/// this divided by the worker count (clamped to
/// [`RING_CAPACITY_MIN`]..=[`RING_CAPACITY_MAX`]): a dispatcher can keep
/// well ahead of the workers before hitting backpressure, but the
/// aggregate in-flight window stays bounded so staged items are still
/// cache-warm when their worker dequeues them — with per-shard capacity
/// fixed instead, high worker counts would stage entire batches cold.
const RING_TOTAL_SLOTS: usize = 4096;
const RING_CAPACITY_MIN: usize = 512;
const RING_CAPACITY_MAX: usize = 8192;
/// Maximum items a worker dequeues (and processes under one lock
/// acquisition) per run-loop iteration.
const BURST: usize = 512;
/// Idle spins before a worker parks.
const SPIN_BUDGET: u32 = 64;
/// How many packets ahead a drain loop prefetches slot storage.
const PREFETCH_AHEAD: usize = 8;
/// Items the dispatcher stages per shard before bursting them into the
/// shard's ring (the DPDK tx-burst idiom). Staging through a tiny,
/// constantly reused buffer keeps the dispatcher's write target hot and
/// turns ring-slot writes into sequential runs: pushing items one at a
/// time round-robin across many rings makes every slot write a stray
/// access to a different buffer, which defeats the hardware prefetcher
/// once the ring count grows.
const STAGE_BURST: usize = 64;

/// One unit of work travelling through a shard ring.
#[derive(Debug)]
struct WorkItem {
    /// Position in the caller's input slice (`process_batch` scatter);
    /// unused by measurement batches.
    idx: u32,
    /// The generation current when the dispatcher staged this packet.
    /// The shard adopts pending generations up to this id before
    /// executing the packet — so attribution is a pure function of
    /// stream position, independent of worker count and timing.
    gen: u64,
    pkt: Packet,
}

/// What the worker does with each packet of the current batch.
#[derive(Debug, Clone, Copy)]
enum BatchCtx {
    /// `process_batch`: execute with the executor clock as set by the
    /// dispatcher and keep `(idx, packet, report)` for scatter-back.
    Forward,
    /// `measure`: shard-local arrival pacing plus statistic aggregation.
    Measure {
        batch_start_s: f64,
        line_pps: f64,
        cores: usize,
        default_bytes: usize,
    },
}

/// Shard-local batch aggregates, merged deterministically (in shard
/// order) after the batch drains.
#[derive(Debug, Default)]
struct BatchAgg {
    dropped: u64,
    migrations: u64,
    counter_updates: u64,
    bits: f64,
    lat_sum: f64,
    core_busy_ns: Vec<f64>,
    latencies: Vec<f64>,
}

impl BatchAgg {
    fn reset(&mut self) {
        self.dropped = 0;
        self.migrations = 0;
        self.counter_updates = 0;
        self.bits = 0.0;
        self.lat_sum = 0.0;
        self.core_busy_ns.clear();
        self.latencies.clear();
    }
}

/// Everything the consumer side of a shard mutates, behind the shard
/// mutex: the executor state *and* the ring consumer handle. Keeping the
/// consumer inside the mutex makes the datapath *work-conserving*: a
/// burst is dequeued and executed by whoever holds the lock — normally
/// the shard's worker thread, but also the dispatcher when it would
/// otherwise wait (ring-full backpressure, end-of-batch drain). The ring
/// stays single-producer (only the dispatcher pushes) and
/// single-consumer-at-a-time (the mutex serializes the consumer handle,
/// and its lock/unlock edges order the cursor state between alternating
/// drainers).
#[derive(Debug)]
struct ShardState {
    exec: Executor,
    ctx: BatchCtx,
    agg: BatchAgg,
    /// `process_batch` results awaiting scatter-back.
    out: Vec<(u32, Packet, ExecReport)>,
    /// Packet index within the current measurement batch (shard-local
    /// arrival pacing).
    local_idx: u64,
    /// Consumer side of the shard's SPSC ring; `Some` iff run-loop
    /// workers are live.
    rx: Option<ring::Consumer<WorkItem>>,
    /// Generation this shard has adopted (0 = the construction-time
    /// program). Monotone; see [`ShardState::adopt_to`].
    gen: u64,
    /// Whether live reconfiguration is on (mirrors the dispatcher's
    /// flag; gates per-generation accounting off the non-live hot path).
    live: bool,
    /// Packets executed per generation since live reconfiguration was
    /// enabled — the "every packet attributable to exactly one
    /// generation" ledger.
    gen_packets: FxHashMap<u64, u64>,
    /// The shared publication chain (same `Arc` on every shard and the
    /// dispatcher).
    chain: Arc<GenChain>,
}

impl ShardState {
    /// Applies every generation in `(self.gen, target]`, in publication
    /// order, then records the new watermark. Patches older than the
    /// last full deploy in the span are superseded by it (the deploy
    /// carries the whole already-patched program), so adoption starts at
    /// that deploy. Forward-only: a fast-forwarded shard never re-applies
    /// or rolls back.
    fn adopt_to(&mut self, target: u64) {
        if target <= self.gen {
            return;
        }
        let span = self.chain.pending(self.gen, target);
        let start = span
            .iter()
            .rposition(|n| matches!(n.kind, GenKind::Deploy { .. }))
            .unwrap_or(0);
        for node in &span[start..] {
            match &node.kind {
                GenKind::Deploy { graph, compiled } => {
                    self.exec.adopt_graph(graph.clone(), compiled.clone());
                }
                // Control validated each patch on its replica before
                // publishing, and every shard holds the same program, so
                // shard-side application cannot fail.
                GenKind::Patch(PatchOp::Insert { node, entry }) => {
                    let _ = self.exec.insert_entry(*node, entry.clone());
                }
                GenKind::Patch(PatchOp::Remove { node, index }) => {
                    let _ = self.exec.remove_entry(*node, *index);
                }
                GenKind::Patch(PatchOp::Replace { node, table, next }) => {
                    let _ = self.exec.replace_table(*node, table.clone(), next.clone());
                }
            }
        }
        self.gen = target;
    }

    fn run_item(&mut self, item: &mut WorkItem) {
        if item.gen > self.gen {
            self.adopt_to(item.gen);
        }
        if self.live {
            *self.gen_packets.entry(self.gen).or_insert(0) += 1;
        }
        match self.ctx {
            BatchCtx::Forward => {
                let r = self.exec.process(&mut item.pkt);
                let pkt = std::mem::replace(&mut item.pkt, Packet::with_slots(Vec::new()));
                self.out.push((item.idx, pkt, r));
            }
            BatchCtx::Measure {
                batch_start_s,
                line_pps,
                cores,
                default_bytes,
            } => {
                self.exec.now_s = batch_start_s + self.local_idx as f64 / line_pps;
                self.local_idx += 1;
                let core = (item.pkt.flow_hash() % cores as u64) as usize;
                let bytes = if item.pkt.bytes > 0 {
                    item.pkt.bytes
                } else {
                    default_bytes
                };
                let r = self.exec.process(&mut item.pkt);
                let agg = &mut self.agg;
                if agg.core_busy_ns.len() < cores {
                    agg.core_busy_ns.resize(cores, 0.0);
                }
                agg.core_busy_ns[core] += r.latency_ns;
                agg.latencies.push(r.latency_ns);
                agg.lat_sum += r.latency_ns;
                agg.bits += (bytes * 8) as f64;
                if r.dropped {
                    agg.dropped += 1;
                }
                agg.migrations += r.migrations as u64;
                agg.counter_updates += r.counter_updates as u64;
            }
        }
    }
}

/// One shard: state behind a mutex plus the idle-detection counters.
#[derive(Debug)]
struct ShardCell {
    state: Mutex<ShardState>,
    /// Items fully processed by the worker (monotone total). The
    /// dispatcher compares it against its own enqueue count to detect
    /// batch drain.
    processed: AtomicU64,
    /// Mirror of the shard's adopted generation, published after each
    /// drained burst. Never ahead of `ShardState::gen`, so the chain
    /// prefix `≤ min(adopted)` is provably unreachable and safe to
    /// reclaim.
    adopted: AtomicU64,
    stop: AtomicBool,
}

/// Dispatcher-side scratch for the window-boundary merge, reused across
/// measurement batches so the merge path is allocation-free in steady
/// state (see `measure_runloop`).
#[derive(Debug, Default)]
struct MergeScratch {
    core_busy_ns: Vec<f64>,
    latencies: Vec<f64>,
}

/// An open streaming measurement window (between `measure_begin` and
/// `measure_end`). Pacing parameters are snapshotted at `begin` so every
/// fed chunk continues the same arrival schedule — a begin/feed*/end
/// window measures identically to one `measure` call over the
/// concatenated traffic.
#[derive(Debug)]
struct MeasureStream {
    batch_start_s: f64,
    line_pps: f64,
    cores: usize,
    default_bytes: usize,
    offered_gbps: f64,
    /// Packets fed so far.
    n: u64,
    /// `BitExact` only: per-packet records accumulated across feeds.
    records: Vec<PacketRecord>,
    /// `BitExact` only: global sequence base of the window.
    base_seq: u64,
}

/// Live run-loop worker machinery (present iff mode is `RunLoop`).
#[derive(Debug)]
struct RunLoopWorkers {
    producers: Vec<ring::Producer<WorkItem>>,
    /// Unpark handles, index-aligned with `producers`.
    threads: Vec<Thread>,
    joins: Vec<JoinHandle<()>>,
    /// Whether to wake workers mid-dispatch so they overlap with the
    /// arriving batch. Pure scheduler churn on a single-CPU host (the
    /// worker can only run by preempting the dispatcher, and the
    /// work-conserving dispatcher drains every ring itself anyway), so
    /// it is enabled only when real parallelism exists.
    wake_during_dispatch: bool,
}

/// Dequeues and executes everything currently in `cell`'s ring, one
/// [`BURST`] at a time, under a single shard-lock hold, crediting
/// `processed`. Returns how many items ran (0 when the ring is empty or
/// the workers are torn down). Called by the shard's worker thread *and*
/// by the dispatcher when it helps out; `buf` is the caller's reusable
/// burst buffer. Draining to empty per lock acquisition matters at high
/// worker counts: every acquisition switches the executing thread onto a
/// different shard's executor state, so fewer, larger drains keep that
/// state hot longer.
/// Moves every staged item into the shard's ring, helping drain on
/// ring-full backpressure, and returns how many were moved. `stage` is
/// empty on return. (`STAGE_BURST` never exceeds ring capacity, and the
/// help drain empties the ring, so the loop always terminates.)
fn flush_stage(
    producer: &mut ring::Producer<WorkItem>,
    cell: &ShardCell,
    stage: &mut Vec<WorkItem>,
    help: &mut Vec<WorkItem>,
) -> u64 {
    let n = stage.len() as u64;
    let mut it = stage.drain(..);
    while it.len() > 0 {
        if producer.push_burst(&mut it) == 0 {
            drain_burst(cell, help);
        }
    }
    n
}

fn drain_burst(cell: &ShardCell, buf: &mut Vec<WorkItem>) -> usize {
    let mut st = cell.state.lock().expect("shard state poisoned");
    let mut total = 0usize;
    loop {
        let n = match st.rx.as_mut() {
            Some(rx) => rx.pop_burst(buf, BURST),
            None => 0,
        };
        if n == 0 {
            break;
        }
        for i in 0..buf.len() {
            // A shard's burst is every w-th packet of the arrival
            // stream, so the slot storage walk is strided; tell the
            // cache about it a few packets ahead.
            if let Some(ahead) = buf.get(i + PREFETCH_AHEAD) {
                ahead.pkt.prefetch();
            }
            st.run_item(&mut buf[i]);
        }
        buf.clear();
        total += n;
    }
    if total > 0 {
        // ORDERING: Release — publishes the shard-state mutations of
        // this drain (made under the lock above) to the dispatcher's
        // Acquire load in `reclaim_adopted`: a chain node is only
        // reclaimed after the adoption that read it happens-before the
        // reclaim decision.
        cell.adopted.store(st.gen, Ordering::Release);
        // ORDERING: Release — pairs with the dispatcher's Acquire loads
        // in `wait_idle`/`in_flight`/`flush_stage`: when the dispatcher
        // observes `processed == enqueued`, every item's execution (and
        // its profile/stat writes under the shard lock) happens-before
        // whatever the dispatcher does next with the results.
        cell.processed.fetch_add(total as u64, Ordering::Release);
    }
    total
}

fn worker_loop(cell: Arc<ShardCell>) {
    let mut burst: Vec<WorkItem> = Vec::with_capacity(BURST);
    let mut spins: u32 = 0;
    loop {
        if drain_burst(&cell, &mut burst) == 0 {
            // ORDERING: Acquire — pairs with teardown's Release store:
            // observing `stop` also shows every item enqueued before the
            // flag was raised (checked by the fresh drain above).
            if cell.stop.load(Ordering::Acquire) {
                // Fresh look at the ring *after* observing stop: items
                // enqueued before the flag must still drain. (The
                // drain_burst above re-read the cursors under the lock,
                // so an empty result here really means drained.)
                break;
            }
            spins += 1;
            if spins < SPIN_BUDGET {
                std::hint::spin_loop();
            } else {
                // Plain park is safe: every enqueue path unparks after
                // its Release store, and `unpark` tokens make that
                // wakeup stick even if we were not parked yet. The
                // teardown path also unparks after setting `stop`, and
                // the work-conserving dispatcher never depends on this
                // thread making progress.
                thread::park();
                spins = 0;
            }
            continue;
        }
        spins = 0;
    }
}

fn keying_for(mode: ShardMode) -> SampleKeying {
    match mode {
        ShardMode::BitExact => SampleKeying::GlobalSeq,
        ShardMode::RunLoop => SampleKeying::FlowKeyed,
    }
}

/// A software SmartNIC whose datapath is sharded over `N` parallel
/// workers by flow hash (RSS). See the module docs for the two
/// coordination modes and their determinism guarantees.
#[derive(Debug)]
pub struct ShardedNic {
    shards: Vec<Arc<ShardCell>>,
    /// Control replica: receives every control-plane op but no packets,
    /// so `graph()` / `params()` can be served without locking a shard.
    control: Executor,
    run: Option<RunLoopWorkers>,
    /// Items ever enqueued per shard (dispatcher-side totals, compared
    /// against `ShardCell::processed` to detect drain).
    enqueued: Vec<u64>,
    mode: ShardMode,
    config: NicConfig,
    merge_scratch: MergeScratch,
    /// The dispatcher's own burst buffer for helping drain shard rings
    /// (work-conserving dispatch; see [`drain_burst`]).
    help_scratch: Vec<WorkItem>,
    /// Per-shard tx-burst staging buffers (see [`STAGE_BURST`]); always
    /// empty between public calls.
    stage: Vec<Vec<WorkItem>>,
    /// Global packet count; drives counter sampling in `BitExact` mode.
    seq: u64,
    /// Global simulation clock in seconds.
    now_s: f64,
    /// Clock value at the last `take_profile` (profile window start).
    last_take_s: f64,
    /// The generation publication chain (shared with every shard).
    chain: Arc<GenChain>,
    /// Whether live reconfiguration is enabled.
    live: bool,
    /// Cached `chain.latest()` — the dispatcher is the sole publisher,
    /// so its cache is always exact; work items are tagged with it.
    latest_gen: u64,
    /// The most recent live program swap (telemetry).
    last_swap: Option<LiveSwap>,
    /// Open streaming measurement window, if any.
    measuring: Option<MeasureStream>,
    /// Specialization planning thresholds (plans are built centrally on
    /// the dispatcher from merged cross-shard profile state).
    spec_cfg: SpecConfig,
    /// The last taken (merged) profile window, retained so a specialize
    /// step right after a window boundary still sees a full window.
    last_profile: RuntimeProfile,
    /// The last taken window's merged hot-key sketches (same retention).
    last_sketches: HashMap<NodeId, HotKeySketch>,
}

impl ShardedNic {
    /// Deploys `graph` on a NIC with `workers` parallel shards (clamped
    /// to at least 1) in the default [`ShardMode::RunLoop`].
    pub fn new(graph: ProgramGraph, params: CostParams, workers: usize) -> Result<Self, IrError> {
        Self::with_mode(graph, params, workers, ShardMode::default())
    }

    /// Deploys `graph` with an explicit worker-coordination mode.
    pub fn with_mode(
        graph: ProgramGraph,
        params: CostParams,
        workers: usize,
        mode: ShardMode,
    ) -> Result<Self, IrError> {
        let workers = workers.max(1);
        let chain = Arc::new(GenChain::new());
        let mut shards = Vec::with_capacity(workers);
        for _ in 0..workers {
            let mut exec = Executor::new(graph.clone(), params.clone())?;
            exec.set_sample_keying(keying_for(mode));
            shards.push(Arc::new(ShardCell {
                state: Mutex::new(ShardState {
                    exec,
                    ctx: BatchCtx::Forward,
                    agg: BatchAgg::default(),
                    out: Vec::new(),
                    local_idx: 0,
                    rx: None,
                    gen: 0,
                    live: false,
                    gen_packets: FxHashMap::default(),
                    chain: Arc::clone(&chain),
                }),
                processed: AtomicU64::new(0),
                adopted: AtomicU64::new(0),
                stop: AtomicBool::new(false),
            }));
        }
        let control = Executor::new(graph, params)?;
        let enqueued = vec![0; workers];
        let mut nic = Self {
            shards,
            control,
            run: None,
            enqueued,
            mode,
            config: NicConfig {
                shard_mode: mode,
                ..NicConfig::default()
            },
            merge_scratch: MergeScratch::default(),
            help_scratch: Vec::with_capacity(BURST),
            stage: (0..workers)
                .map(|_| Vec::with_capacity(STAGE_BURST))
                .collect(),
            seq: 0,
            now_s: 0.0,
            last_take_s: 0.0,
            chain,
            live: false,
            latest_gen: 0,
            last_swap: None,
            measuring: None,
            spec_cfg: SpecConfig::default(),
            last_profile: RuntimeProfile::empty(),
            last_sketches: HashMap::new(),
        };
        if mode == ShardMode::RunLoop {
            nic.spawn_workers();
        }
        Ok(nic)
    }

    /// Sets the measurement configuration (including the shard mode).
    pub fn with_config(mut self, config: NicConfig) -> Self {
        self.config = config;
        self.set_shard_mode(config.shard_mode);
        self
    }

    /// The active worker-coordination mode.
    pub fn shard_mode(&self) -> ShardMode {
        self.mode
    }

    /// Switches worker coordination, tearing down or spinning up the
    /// persistent run-loop threads as needed. Deployed programs, caches,
    /// and pending profile windows carry over; the sampling keying
    /// follows the mode ([`SampleKeying::GlobalSeq`] for `BitExact`,
    /// [`SampleKeying::FlowKeyed`] for `RunLoop`).
    pub fn set_shard_mode(&mut self, mode: ShardMode) {
        if mode == self.mode {
            return;
        }
        self.teardown_workers();
        self.mode = mode;
        self.config.shard_mode = mode;
        for cell in &self.shards {
            let mut st = cell.state.lock().expect("shard state poisoned");
            st.exec.set_sample_keying(keying_for(mode));
        }
        if mode == ShardMode::RunLoop {
            self.spawn_workers();
        }
    }

    fn spawn_workers(&mut self) {
        debug_assert!(self.run.is_none());
        let mut producers = Vec::with_capacity(self.shards.len());
        let mut threads = Vec::with_capacity(self.shards.len());
        let mut joins = Vec::with_capacity(self.shards.len());
        let capacity =
            (RING_TOTAL_SLOTS / self.shards.len()).clamp(RING_CAPACITY_MIN, RING_CAPACITY_MAX);
        for cell in &self.shards {
            // ORDERING: Release — clears the flag before the worker
            // thread is spawned; `thread::spawn` itself orders this
            // store before everything the worker does, Release keeps
            // the pattern uniform with teardown.
            cell.stop.store(false, Ordering::Release);
            let (tx, rx) = ring::spsc::<WorkItem>(capacity);
            cell.state.lock().expect("shard state poisoned").rx = Some(rx);
            let cell = Arc::clone(cell);
            let handle = thread::Builder::new()
                .name("pipeleon-shard".into())
                .spawn(move || worker_loop(cell))
                .expect("spawn shard worker");
            threads.push(handle.thread().clone());
            joins.push(handle);
            producers.push(tx);
        }
        self.run = Some(RunLoopWorkers {
            producers,
            threads,
            joins,
            wake_during_dispatch: thread::available_parallelism().map_or(1, |n| n.get()) > 1,
        });
    }

    fn teardown_workers(&mut self) {
        if let Some(run) = self.run.take() {
            for cell in &self.shards {
                // ORDERING: Release — everything enqueued before
                // teardown happens-before the flag: a worker that
                // observes `stop` (Acquire) and then finds its ring
                // empty has provably processed all of it.
                cell.stop.store(true, Ordering::Release);
            }
            for t in &run.threads {
                t.unpark();
            }
            for j in run.joins {
                j.join().expect("shard worker panicked");
            }
            for cell in &self.shards {
                cell.state.lock().expect("shard state poisoned").rx = None;
            }
        }
    }

    /// Blocks until every shard has processed everything enqueued for
    /// it — by *helping*: the dispatcher drains pending rings itself
    /// through the same [`drain_burst`] path the workers use, instead of
    /// waking them and waiting. On a single-CPU host the whole batch
    /// tail then runs with zero context switches; on multi-CPU hosts
    /// pending shards are unparked first so their workers race the
    /// dispatcher for bursts and the lock arbitrates. Termination is
    /// structural: a shard with `processed < enqueued` always has its
    /// remaining items either in the ring (the next `drain_burst` takes
    /// them) or mid-execution under the shard lock (the lock acquisition
    /// inside `drain_burst` waits them out).
    fn wait_idle(&mut self) {
        let run = self.run.as_ref().expect("run-loop workers alive");
        if run.wake_during_dispatch {
            for (i, cell) in self.shards.iter().enumerate() {
                // ORDERING: Acquire — pairs with the worker's Release
                // fetch_add in `drain_burst` (see there); an equal count
                // means all processing effects are visible here.
                if cell.processed.load(Ordering::Acquire) != self.enqueued[i] {
                    run.threads[i].unpark();
                }
            }
        }
        loop {
            let mut all_drained = true;
            for (i, cell) in self.shards.iter().enumerate() {
                // ORDERING: Acquire — same edge as above; the batch is
                // only declared drained once every worker's Release
                // publication has been observed.
                if cell.processed.load(Ordering::Acquire) != self.enqueued[i] {
                    all_drained = false;
                    drain_burst(cell, &mut self.help_scratch);
                }
            }
            if all_drained {
                break;
            }
        }
        if self.live {
            // Quiescence: every ring is drained, so fast-forwarding a
            // shard cannot skip a generation an in-flight packet still
            // needs — there are none. This is the RCU grace-period end:
            // all shards reach `latest_gen`, the whole chain prefix
            // becomes unreachable, and reclaiming it bounds memory under
            // swap storms. It also zeroes executor deltas (cache stats
            // reset at adoption) identically on every shard, keeping
            // window merges worker-count-invariant even when some shards
            // saw no post-swap packets.
            let latest = self.latest_gen;
            debug_assert_eq!(
                latest,
                self.chain.latest(),
                "dispatcher is the sole publisher, so its cache is exact"
            );
            for cell in &self.shards {
                let mut st = cell.state.lock().expect("shard state poisoned");
                st.adopt_to(latest);
                // ORDERING: Release — same edge as the `drain_burst`
                // publication: the adoption work under the lock
                // happens-before any reclaim that observes this value.
                cell.adopted.store(st.gen, Ordering::Release);
            }
            self.chain.reclaim(latest);
        }
    }

    /// Packets enqueued to shard rings but not yet processed.
    fn in_flight(&self) -> u64 {
        self.shards
            .iter()
            .enumerate()
            // ORDERING: Acquire — pairs with `drain_burst`'s Release
            // fetch_add; monotone, so a stale read only overstates the
            // in-flight count (never invents completion).
            .map(|(i, c)| self.enqueued[i] - c.processed.load(Ordering::Acquire))
            .sum()
    }

    /// Drops every chain node all shards have provably adopted (called
    /// opportunistically at publish time; `wait_idle` reclaims the rest).
    fn reclaim_adopted(&self) {
        let min = self
            .shards
            .iter()
            // ORDERING: Acquire — pairs with the Release stores of
            // `adopted` in `drain_burst`/`wait_idle`/`process_one`: a
            // node is dropped only after every shard's walk past it is
            // visible, so no shard can still read a reclaimed node
            // (verified by the GenChain reclaim model).
            .map(|c| c.adopted.load(Ordering::Acquire))
            .min()
            .unwrap_or(0);
        self.chain.reclaim(min);
    }

    /// Whether this operation should publish on the generation chain
    /// instead of fanning out under the shard locks.
    fn publishes_live(&self) -> bool {
        self.live && self.mode == ShardMode::RunLoop
    }

    /// Number of worker shards.
    pub fn num_workers(&self) -> usize {
        self.shards.len()
    }

    /// The deployed program (identical on every shard).
    pub fn graph(&self) -> &ProgramGraph {
        self.control.graph()
    }

    /// Every shard's deployed program, in shard order (cloned out of the
    /// shard mutexes). Control-plane fan-out keeps these identical;
    /// tests assert it.
    pub fn shard_graphs(&self) -> Vec<ProgramGraph> {
        self.shards
            .iter()
            .map(|c| {
                c.state
                    .lock()
                    .expect("shard state poisoned")
                    .exec
                    .graph()
                    .clone()
            })
            .collect()
    }

    /// The target parameters.
    pub fn params(&self) -> &CostParams {
        self.control.params()
    }

    /// Current simulation time in seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Enables or disables live reconfiguration (see the module docs).
    /// Drains in-flight work first so the mode flip itself is never
    /// concurrent with packets dispatched under the old regime.
    pub fn set_live_reconfig(&mut self, on: bool) {
        if self.live == on {
            return;
        }
        if self.run.is_some() {
            self.wait_idle();
        }
        self.live = on;
        for cell in &self.shards {
            let mut st = cell.state.lock().expect("shard state poisoned");
            st.live = on;
        }
    }

    /// Whether live reconfiguration is enabled.
    pub fn live_reconfig(&self) -> bool {
        self.live
    }

    /// The most recent live program swap, if any.
    pub fn last_swap(&self) -> Option<LiveSwap> {
        self.last_swap
    }

    /// Packets executed per generation since live reconfiguration was
    /// enabled, merged across shards. Each packet is counted under
    /// exactly one generation — the one it was dispatched with — so the
    /// counts sum to the packets processed and are identical for any
    /// worker count.
    pub fn generation_counts(&self) -> BTreeMap<u64, u64> {
        let mut merged = BTreeMap::new();
        for cell in &self.shards {
            let st = cell.state.lock().expect("shard state poisoned");
            for (&g, &c) in &st.gen_packets {
                *merged.entry(g).or_insert(0) += c;
            }
        }
        merged
    }

    /// Live-reconfigures every shard with a new program layout. With
    /// live reconfiguration on (`RunLoop` mode) this *publishes* a new
    /// generation concurrent with packet flow — no shard lock is taken,
    /// in-flight packets complete under the old program — and records
    /// the swap ([`ShardedNic::last_swap`]). Otherwise it fans out to
    /// every shard synchronously.
    pub fn deploy(&mut self, graph: ProgramGraph) -> Result<(), IrError> {
        if self.publishes_live() {
            let t0 = Instant::now();
            self.control.deploy(graph.clone())?;
            // Build the compiled pipeline once, centrally: adopters
            // clone it instead of each lowering the program mid-burst.
            let compiled = self.control.compiled_clone();
            let id = self.chain.publish(GenKind::Deploy { graph, compiled });
            self.latest_gen = id;
            self.last_swap = Some(LiveSwap {
                generation: id,
                in_flight: self.in_flight(),
                latency_ns: t0.elapsed().as_nanos() as f64,
            });
            self.reclaim_adopted();
            return Ok(());
        }
        let mut out = self.control.deploy(graph.clone());
        for cell in &self.shards {
            let mut st = cell.state.lock().expect("shard state poisoned");
            if let Err(e) = st.exec.deploy(graph.clone()) {
                out = Err(e);
            }
        }
        out
    }

    /// Inserts a table entry on every shard (control-plane API). All
    /// shards hold identical graphs, so the operation either succeeds or
    /// fails identically everywhere; the last shard's result is returned.
    /// With live reconfiguration on, a validated insert publishes as a
    /// delta generation instead of pausing the datapath.
    pub fn insert_entry(&mut self, node: NodeId, entry: TableEntry) -> Result<(), IrError> {
        if self.publishes_live() {
            self.control.insert_entry(node, entry.clone())?;
            self.latest_gen = self
                .chain
                .publish(GenKind::Patch(PatchOp::Insert { node, entry }));
            self.reclaim_adopted();
            return Ok(());
        }
        let mut out = self.control.insert_entry(node, entry.clone());
        for cell in &self.shards {
            let mut st = cell.state.lock().expect("shard state poisoned");
            if let Err(e) = st.exec.insert_entry(node, entry.clone()) {
                out = Err(e);
            }
        }
        out
    }

    /// Removes a table entry by index on every shard (control-plane API).
    /// Publishes as a delta generation under live reconfiguration.
    pub fn remove_entry(&mut self, node: NodeId, index: usize) -> Result<TableEntry, IrError> {
        if self.publishes_live() {
            let removed = self.control.remove_entry(node, index)?;
            self.latest_gen = self
                .chain
                .publish(GenKind::Patch(PatchOp::Remove { node, index }));
            self.reclaim_adopted();
            return Ok(removed);
        }
        let mut out = self.control.remove_entry(node, index);
        for cell in &self.shards {
            let mut st = cell.state.lock().expect("shard state poisoned");
            out = st.exec.remove_entry(node, index);
        }
        out
    }

    /// Replaces a table definition in place on every shard. Publishes as
    /// a delta generation under live reconfiguration.
    pub fn replace_table(
        &mut self,
        node: NodeId,
        table: Table,
        next: Option<NextHops>,
    ) -> Result<(), IrError> {
        if self.publishes_live() {
            self.control
                .replace_table(node, table.clone(), next.clone())?;
            self.latest_gen =
                self.chain
                    .publish(GenKind::Patch(PatchOp::Replace { node, table, next }));
            self.reclaim_adopted();
            return Ok(());
        }
        let mut out = self
            .control
            .replace_table(node, table.clone(), next.clone());
        for cell in &self.shards {
            let mut st = cell.state.lock().expect("shard state poisoned");
            if let Err(e) = st.exec.replace_table(node, table.clone(), next.clone()) {
                out = Err(e);
            }
        }
        out
    }

    /// Flushes one flow cache on every shard.
    pub fn flush_cache(&mut self, node: NodeId) {
        self.control.flush_cache(node);
        for cell in &self.shards {
            let mut st = cell.state.lock().expect("shard state poisoned");
            st.exec.flush_cache(node);
        }
    }

    /// Total live entries in a flow cache's runtime state across shards.
    pub fn cache_len(&self, node: NodeId) -> usize {
        self.shards
            .iter()
            .map(|c| {
                c.state
                    .lock()
                    .expect("shard state poisoned")
                    .exec
                    .cache_len(node)
            })
            .sum()
    }

    /// Sets a flow cache's insertion rate limit on every shard (each
    /// shard gets the full budget — see the module docs caveat).
    pub fn set_cache_insertion_limit(&mut self, node: NodeId, rate_per_s: f64) {
        self.control.set_cache_insertion_limit(node, rate_per_s);
        for cell in &self.shards {
            let mut st = cell.state.lock().expect("shard state poisoned");
            st.exec.set_cache_insertion_limit(node, rate_per_s);
        }
    }

    /// Enables counter instrumentation with `sample_every` packet
    /// sampling on every shard.
    pub fn set_instrumentation(&mut self, enabled: bool, sample_every: u64) {
        self.control.set_instrumentation(enabled, sample_every);
        for cell in &self.shards {
            let mut st = cell.state.lock().expect("shard state poisoned");
            st.exec.set_instrumentation(enabled, sample_every);
        }
    }

    /// Sets node placements on every shard.
    pub fn set_placement(&mut self, placement: Vec<Placement>) {
        self.control.set_placement(placement.clone());
        for cell in &self.shards {
            let mut st = cell.state.lock().expect("shard state poisoned");
            st.exec.set_placement(placement.clone());
        }
    }

    /// Assigns tables to memory tiers on every shard.
    pub fn set_memory_tiers(&mut self, tiers: Vec<MemoryTier>) {
        self.control.set_memory_tiers(tiers.clone());
        for cell in &self.shards {
            let mut st = cell.state.lock().expect("shard state poisoned");
            st.exec.set_memory_tiers(tiers.clone());
        }
    }

    /// Selects the packet-execution engine on every shard.
    pub fn set_engine_mode(&mut self, mode: EngineMode) {
        self.control.set_engine_mode(mode);
        for cell in &self.shards {
            let mut st = cell.state.lock().expect("shard state poisoned");
            st.exec.set_engine_mode(mode);
        }
    }

    /// The currently selected packet-execution engine (identical on every
    /// shard; control-plane fan-out keeps them in sync).
    pub fn engine_mode(&self) -> EngineMode {
        self.control.engine_mode()
    }

    /// Processes a batch of packets in place (no arrival pacing),
    /// returning one report per packet in input order. In `RunLoop` mode
    /// packets stream through the worker rings and results are scattered
    /// back by input position; in `BitExact` mode packets run
    /// sequentially under the global sequence schedule.
    pub fn process_batch(&mut self, packets: &mut [Packet]) -> Vec<ExecReport> {
        match self.mode {
            ShardMode::BitExact => packets.iter_mut().map(|p| self.process_one(p)).collect(),
            ShardMode::RunLoop => self.process_batch_runloop(packets),
        }
    }

    fn process_batch_runloop(&mut self, packets: &mut [Packet]) -> Vec<ExecReport> {
        assert!(
            u32::try_from(packets.len()).is_ok(),
            "process_batch is limited to u32::MAX packets"
        );
        let nw = self.shards.len();
        let gen = self.latest_gen;
        for cell in &self.shards {
            let mut st = cell.state.lock().expect("shard state poisoned");
            st.ctx = BatchCtx::Forward;
            st.exec.now_s = self.now_s;
            st.out.clear();
        }
        self.dispatch(packets.iter_mut().enumerate().map(|(i, slot)| {
            let pkt = std::mem::replace(slot, Packet::with_slots(Vec::new()));
            let shard = (pkt.flow_hash() % nw as u64) as usize;
            (
                shard,
                WorkItem {
                    idx: i as u32,
                    gen,
                    pkt,
                },
            )
        }));
        self.wait_idle();
        self.seq += packets.len() as u64;
        let mut reports: Vec<Option<ExecReport>> = vec![None; packets.len()];
        for cell in &self.shards {
            let mut st = cell.state.lock().expect("shard state poisoned");
            for (idx, pkt, r) in st.out.drain(..) {
                packets[idx as usize] = pkt;
                reports[idx as usize] = Some(r);
            }
        }
        reports
            .into_iter()
            .map(|r| r.expect("every dispatched packet reports back"))
            .collect()
    }

    /// Streams `(shard, item)` pairs onto the worker rings via the
    /// per-shard tx-burst stage: items collect in a tiny hot buffer and
    /// enter the ring [`STAGE_BURST`] at a time as one sequential slot
    /// run. On ring-full backpressure the dispatcher *helps*: it drains
    /// the full ring itself through the same locked path the workers use
    /// rather than yielding the CPU and hoping a worker runs —
    /// work-conserving on a single-CPU host. When real parallelism
    /// exists, a shard is additionally unparked at every flush so its
    /// worker overlaps with the arriving batch.
    fn dispatch(&mut self, items: impl Iterator<Item = (usize, WorkItem)>) {
        let run = self.run.as_mut().expect("run-loop workers alive");
        let shards = &self.shards;
        let help = &mut self.help_scratch;
        let enqueued = &mut self.enqueued;
        let stage = &mut self.stage;
        let nw = enqueued.len();
        for (shard, item) in items {
            stage[shard].push(item);
            if stage[shard].len() >= STAGE_BURST {
                enqueued[shard] += flush_stage(
                    &mut run.producers[shard],
                    &shards[shard],
                    &mut stage[shard],
                    help,
                );
                if run.wake_during_dispatch {
                    run.threads[shard].unpark();
                }
            }
        }
        for shard in 0..nw {
            if !stage[shard].is_empty() {
                enqueued[shard] += flush_stage(
                    &mut run.producers[shard],
                    &shards[shard],
                    &mut stage[shard],
                    help,
                );
            }
            // ORDERING: Acquire — pairs with `drain_burst`'s Release
            // fetch_add; a lagging count means the worker may be parked
            // with work pending, so kick it.
            if run.wake_during_dispatch
                && shards[shard].processed.load(Ordering::Acquire) != enqueued[shard]
            {
                run.threads[shard].unpark();
            }
        }
    }

    /// Processes one packet on the shard its flow hashes to (no arrival
    /// pacing), on the caller's thread. In `BitExact` mode the global
    /// sequence number drives sampling, matching a single-threaded run
    /// packet-for-packet; in `RunLoop` mode sampling is flow-keyed, so
    /// reports match a flow-keyed single-threaded run instead.
    pub fn process_one(&mut self, packet: &mut Packet) -> ExecReport {
        let shard = (packet.flow_hash() % self.shards.len() as u64) as usize;
        let cell = &self.shards[shard];
        let mut st = cell.state.lock().expect("shard state poisoned");
        if self.live {
            if self.latest_gen > st.gen {
                st.adopt_to(self.latest_gen);
                // ORDERING: Release — same edge as the `drain_burst`
                // publication of `adopted` (see there).
                cell.adopted.store(st.gen, Ordering::Release);
            }
            let g = st.gen;
            *st.gen_packets.entry(g).or_insert(0) += 1;
        }
        st.exec.now_s = self.now_s;
        if self.mode == ShardMode::BitExact {
            st.exec.set_packet_seq(self.seq);
        }
        self.seq += 1;
        st.exec.process(packet)
    }

    /// Takes the merged profile collected across all shards since the
    /// last call — the window-boundary merge: counters fold via
    /// [`RuntimeProfile::merge`], the window is the global clock delta,
    /// and distinct-key counts come from exact cross-shard unions of the
    /// raw key sets.
    pub fn take_profile(&mut self) -> RuntimeProfile {
        let mut merged = RuntimeProfile::empty();
        let mut union: HashMap<NodeId, fxhash::FxHashSet<crate::SmallKey>> = HashMap::new();
        let mut sketches: HashMap<NodeId, HotKeySketch> = HashMap::new();
        for cell in &self.shards {
            let mut st = cell.state.lock().expect("shard state poisoned");
            let (p, distinct) = st.exec.take_profile_split();
            merged.merge(&p);
            for (node, set) in distinct {
                union.entry(node).or_default().extend(set);
            }
            for (node, sk) in st.exec.take_hot_sketches() {
                sketches
                    .entry(node)
                    .and_modify(|e| e.merge(&sk))
                    .or_insert(sk);
            }
        }
        for (node, set) in union {
            merged.set_distinct_keys(node, set.len() as u64);
        }
        merged.window_s = (self.now_s - self.last_take_s).max(1e-9);
        self.last_take_s = self.now_s;
        self.last_profile = merged.clone();
        self.last_sketches = sketches;
        merged
    }

    /// Takes the merged latency observations across all shards since the
    /// last call — the window-boundary merge. Histogram merging is
    /// bit-exact (integer bucket sums) and the sampled-packet *set* is
    /// partition-invariant in both modes (global indices in `BitExact`,
    /// flow-keyed decisions in `RunLoop`), so the merged histograms are
    /// identical for any worker count.
    pub fn take_observations(&mut self) -> ExecObservations {
        let mut merged = ExecObservations::new();
        for cell in &self.shards {
            let mut st = cell.state.lock().expect("shard state poisoned");
            merged.merge(&st.exec.take_observations());
        }
        merged
    }

    /// Sets the specialization planning thresholds.
    pub fn set_spec_config(&mut self, cfg: SpecConfig) {
        self.spec_cfg = cfg;
    }

    /// The merged cross-shard specialization planning inputs: the
    /// retained last profile window folded with whatever every shard has
    /// accumulated since, and the hot-key sketches likewise.
    fn spec_inputs(&self) -> (RuntimeProfile, HashMap<NodeId, HotKeySketch>) {
        let mut profile = self.last_profile.clone();
        let mut sketches = self.last_sketches.clone();
        for cell in &self.shards {
            let st = cell.state.lock().expect("shard state poisoned");
            profile.merge(st.exec.sampled_profile());
            st.exec.peek_hot_sketches_into(&mut sketches);
        }
        (profile, sketches)
    }

    /// Builds one specialization plan from the merged cross-shard
    /// profile state and applies it to the compiled datapath everywhere.
    /// Returns `true` if the pipeline changed.
    ///
    /// With live reconfiguration on (`RunLoop` mode) the specialized
    /// pipeline is compiled once on the control replica and *published*
    /// as a deploy generation on the epoch/RCU chain — shards adopt it
    /// concurrent with packet flow, in-flight packets complete under the
    /// verbatim lowering, and the swap is reported via
    /// [`ShardedNic::last_swap`] exactly like a live program deploy
    /// (including deploy semantics for shard-local cache runtime state).
    /// Otherwise the plan fans out to every shard under its lock, which
    /// swaps only the compiled pipeline (burst-granularity, bit-exact,
    /// cache state untouched) — the same effect as
    /// [`SmartNic::specialize`](crate::SmartNic::specialize) per shard.
    pub fn specialize(&mut self) -> bool {
        let (profile, sketches) = self.spec_inputs();
        let plan =
            specialize::build_plan(self.control.graph(), &profile, &sketches, &self.spec_cfg);
        if self.publishes_live() {
            let t0 = Instant::now();
            if self.control.specialize_with(&plan).is_none() {
                return false;
            }
            let graph = self.control.graph().clone();
            let compiled = self.control.compiled_clone();
            let id = self.chain.publish(GenKind::Deploy { graph, compiled });
            self.latest_gen = id;
            self.last_swap = Some(LiveSwap {
                generation: id,
                in_flight: self.in_flight(),
                latency_ns: t0.elapsed().as_nanos() as f64,
            });
            self.reclaim_adopted();
            return true;
        }
        let applied = self.control.specialize_with(&plan).is_some();
        if applied {
            for cell in &self.shards {
                let mut st = cell.state.lock().expect("shard state poisoned");
                st.exec.specialize_with(&plan);
            }
        }
        applied
    }

    /// Reverts the compiled datapath to the verbatim lowering on every
    /// shard. Returns `true` if it was specialized. Under live
    /// reconfiguration this too publishes as a deploy generation.
    pub fn despecialize(&mut self) -> bool {
        if self.publishes_live() {
            let t0 = Instant::now();
            if self.control.despecialize().is_none() {
                return false;
            }
            let graph = self.control.graph().clone();
            let compiled = self.control.compiled_clone();
            let id = self.chain.publish(GenKind::Deploy { graph, compiled });
            self.latest_gen = id;
            self.last_swap = Some(LiveSwap {
                generation: id,
                in_flight: self.in_flight(),
                latency_ns: t0.elapsed().as_nanos() as f64,
            });
            self.reclaim_adopted();
            return true;
        }
        let reverted = self.control.despecialize().is_some();
        if reverted {
            for cell in &self.shards {
                let mut st = cell.state.lock().expect("shard state poisoned");
                st.exec.despecialize();
            }
        }
        reverted
    }

    /// Current specialization counters: plan/epoch state from the
    /// control replica (shards apply the same plans, or adopt them
    /// silently through the generation chain), guard hit/miss telemetry
    /// summed across the shards that actually execute packets.
    pub fn spec_stats(&self) -> SpecStats {
        let mut stats = self.control.spec_stats();
        for cell in &self.shards {
            let st = cell.state.lock().expect("shard state poisoned");
            let s = st.exec.spec_stats();
            stats.guard_hits += s.guard_hits;
            stats.guard_misses += s.guard_misses;
        }
        stats
    }

    /// Runs a batch offered at line rate through the sharded datapath
    /// and reports achieved throughput and latency statistics. Advances
    /// the simulation clock by the batch's arrival time. `BitExact`
    /// results are bit-identical to
    /// [`SmartNic::measure`](crate::SmartNic::measure); `RunLoop`
    /// results preserve every integer statistic and the p99 exactly and
    /// the float aggregates up to summation order (module docs).
    pub fn measure<I>(&mut self, packets: I) -> BatchStats
    where
        I: IntoIterator<Item = Packet>,
    {
        self.measure_begin();
        self.measure_feed(packets);
        self.measure_end()
    }

    /// Opens a streaming measurement window: snapshots the pacing
    /// parameters and resets per-shard aggregates. Chunks fed with
    /// [`ShardedNic::measure_feed`] continue one arrival schedule;
    /// [`ShardedNic::measure_end`] drains and returns the merged stats.
    pub fn measure_begin(&mut self) {
        debug_assert!(self.measuring.is_none(), "measurement window already open");
        let cores = self.params().num_cores.max(1);
        let line_pps = self.params().line_rate_pps(self.config.packet_bytes);
        let offered_gbps = self.params().line_rate_gbps;
        let default_bytes = self.config.packet_bytes;
        let batch_start_s = self.now_s;
        if self.mode == ShardMode::RunLoop {
            for cell in &self.shards {
                let mut st = cell.state.lock().expect("shard state poisoned");
                st.ctx = BatchCtx::Measure {
                    batch_start_s,
                    line_pps,
                    cores,
                    default_bytes,
                };
                st.local_idx = 0;
                st.agg.reset();
            }
        }
        self.measuring = Some(MeasureStream {
            batch_start_s,
            line_pps,
            cores,
            default_bytes,
            offered_gbps,
            n: 0,
            records: Vec::new(),
            base_seq: self.seq,
        });
    }

    /// Feeds one chunk into the open measurement window. In `RunLoop`
    /// mode this only *dispatches* — it does not wait for the chunk to
    /// drain, so control-plane generations published between feeds land
    /// genuinely mid-flight. In `BitExact` mode the chunk runs to
    /// completion (the oracle is fork-join), with global arrival indices
    /// continuing from the previous feed.
    pub fn measure_feed<I>(&mut self, packets: I)
    where
        I: IntoIterator<Item = Packet>,
    {
        match self.mode {
            ShardMode::RunLoop => {
                let nw = self.shards.len();
                let gen = self.latest_gen;
                let mut n = 0u64;
                self.dispatch(packets.into_iter().map(|pkt| {
                    n += 1;
                    let shard = (pkt.flow_hash() % nw as u64) as usize;
                    (shard, WorkItem { idx: 0, gen, pkt })
                }));
                self.measuring.as_mut().expect("measure_begin first").n += n;
            }
            ShardMode::BitExact => self.measure_feed_bitexact(packets),
        }
    }

    /// Closes the measurement window: waits for every fed packet to
    /// drain (quiescing the generation chain in live mode) and returns
    /// the merged statistics for the whole window.
    pub fn measure_end(&mut self) -> BatchStats {
        match self.mode {
            ShardMode::RunLoop => self.measure_end_runloop(),
            ShardMode::BitExact => self.measure_end_bitexact(),
        }
    }

    fn measure_end_runloop(&mut self) -> BatchStats {
        self.wait_idle();
        let stream = self.measuring.take().expect("measure_begin first");
        let MeasureStream {
            batch_start_s,
            line_pps,
            cores,
            offered_gbps,
            n,
            ..
        } = stream;

        self.seq += n;
        if n > 0 {
            self.now_s = batch_start_s + n as f64 / line_pps;
        }
        // Deterministic window-boundary merge, in shard order, into the
        // persistent scratch (allocation-free in steady state: a fresh
        // multi-hundred-KB allocation here pays for consolidating the
        // small-chunk debris the workers' packet processing left in the
        // allocator, which grows with worker count and would be charged
        // straight to the batch's wall clock).
        let scratch = &mut self.merge_scratch;
        scratch.core_busy_ns.clear();
        scratch.core_busy_ns.resize(cores, 0.0);
        scratch.latencies.clear();
        scratch.latencies.reserve(n as usize);
        let mut dropped = 0u64;
        let mut migrations = 0u64;
        let mut counter_updates = 0u64;
        let mut total_bits = 0.0f64;
        let mut lat_sum = 0.0f64;
        for cell in &self.shards {
            let mut st = cell.state.lock().expect("shard state poisoned");
            // Align every shard clock to the batch end so subsequent
            // direct access observes a consistent global time.
            st.exec.now_s = self.now_s;
            st.ctx = BatchCtx::Forward;
            let agg = &mut st.agg;
            for (i, v) in agg.core_busy_ns.iter().enumerate() {
                scratch.core_busy_ns[i] += v;
            }
            scratch.latencies.extend_from_slice(&agg.latencies);
            dropped += agg.dropped;
            migrations += agg.migrations;
            counter_updates += agg.counter_updates;
            total_bits += agg.bits;
            lat_sum += agg.lat_sum;
            agg.reset();
        }
        if n == 0 {
            return BatchStats {
                packets: 0,
                dropped: 0,
                mean_latency_ns: 0.0,
                p99_latency_ns: 0.0,
                throughput_gbps: 0.0,
                offered_gbps,
                migrations: 0,
                counter_updates: 0,
            };
        }
        let arrival_ns = n as f64 / line_pps * 1e9;
        let busiest_ns = scratch.core_busy_ns.iter().cloned().fold(0.0f64, f64::max);
        let duration_ns = arrival_ns.max(busiest_ns);
        // Same nearest-rank reduction as `BatchStats::from_records`; the
        // sorted latency multiset is partition-invariant, so the p99 is
        // exact.
        scratch
            .latencies
            .sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
        let rank = ((n as f64 * 0.99).ceil() as usize).clamp(1, scratch.latencies.len());
        BatchStats {
            packets: n,
            dropped,
            mean_latency_ns: lat_sum / n as f64,
            p99_latency_ns: scratch.latencies[rank - 1],
            throughput_gbps: (total_bits / duration_ns).min(offered_gbps),
            offered_gbps,
            migrations,
            counter_updates,
        }
    }

    fn measure_feed_bitexact<I>(&mut self, packets: I)
    where
        I: IntoIterator<Item = Packet>,
    {
        let mut stream = self.measuring.take().expect("measure_begin first");
        let nw = self.shards.len();

        // RSS: partition the chunk by flow hash, tagging each packet
        // with its global arrival index — continuing from earlier feeds,
        // so a multi-feed window replays the same global schedule as one
        // concatenated batch.
        let mut work: Vec<Vec<(u64, Packet)>> = (0..nw).map(|_| Vec::new()).collect();
        let mut n = stream.n;
        for pkt in packets {
            let shard = (pkt.flow_hash() % nw as u64) as usize;
            work[shard].push((n, pkt));
            n += 1;
        }

        let batch_start_s = stream.batch_start_s;
        let line_pps = stream.line_pps;
        let cores = stream.cores;
        let default_bytes = stream.default_bytes;
        let base_seq = stream.base_seq;
        let records = &mut stream.records;
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for (cell, work) in self.shards.iter().zip(work) {
                if work.is_empty() {
                    continue;
                }
                handles.push(s.spawn(move || {
                    let mut st = cell.state.lock().expect("shard state poisoned");
                    let exec = &mut st.exec;
                    let mut out = Vec::with_capacity(work.len());
                    for (gidx, mut pkt) in work {
                        // Replay the global single-threaded schedule on
                        // this shard: clock and sequence number are the
                        // packet's global arrival position.
                        exec.now_s = batch_start_s + gidx as f64 / line_pps;
                        exec.set_packet_seq(base_seq + gidx);
                        let core = (pkt.flow_hash() % cores as u64) as usize;
                        let bytes = if pkt.bytes > 0 {
                            pkt.bytes
                        } else {
                            default_bytes
                        };
                        let r = exec.process(&mut pkt);
                        out.push(PacketRecord {
                            arrival: gidx,
                            core,
                            latency_ns: r.latency_ns,
                            dropped: r.dropped,
                            migrations: r.migrations as u64,
                            counter_updates: r.counter_updates as u64,
                            bits: (bytes * 8) as f64,
                        });
                    }
                    out
                }));
            }
            for h in handles {
                records.extend(h.join().expect("shard worker panicked"));
            }
        });
        stream.n = n;
        self.measuring = Some(stream);
    }

    fn measure_end_bitexact(&mut self) -> BatchStats {
        let stream = self.measuring.take().expect("measure_begin first");
        let MeasureStream {
            batch_start_s,
            line_pps,
            cores,
            offered_gbps,
            n,
            mut records,
            base_seq,
            ..
        } = stream;
        records.sort_unstable_by_key(|r| r.arrival);

        self.seq = base_seq + n;
        if n > 0 {
            let arrival_ns = n as f64 / line_pps * 1e9;
            self.now_s = batch_start_s + arrival_ns / 1e9;
        }
        // Leave every shard's clock and sequence at the batch end so
        // subsequent direct executor access observes a consistent state.
        for cell in &self.shards {
            let mut st = cell.state.lock().expect("shard state poisoned");
            st.exec.now_s = self.now_s;
            st.exec.set_packet_seq(self.seq);
        }
        BatchStats::from_records(&records, cores, line_pps, offered_gbps)
    }
}

impl Drop for ShardedNic {
    fn drop(&mut self) {
        self.teardown_workers();
    }
}

impl NicBackend for ShardedNic {
    fn graph(&self) -> &ProgramGraph {
        ShardedNic::graph(self)
    }

    fn params(&self) -> &CostParams {
        ShardedNic::params(self)
    }

    fn deploy(&mut self, graph: ProgramGraph) -> Result<(), IrError> {
        ShardedNic::deploy(self, graph)
    }

    fn take_profile(&mut self) -> RuntimeProfile {
        ShardedNic::take_profile(self)
    }

    fn take_observations(&mut self) -> ExecObservations {
        ShardedNic::take_observations(self)
    }

    fn insert_entry(&mut self, node: NodeId, entry: TableEntry) -> Result<(), IrError> {
        ShardedNic::insert_entry(self, node, entry)
    }

    fn remove_entry(&mut self, node: NodeId, index: usize) -> Result<TableEntry, IrError> {
        ShardedNic::remove_entry(self, node, index)
    }

    fn replace_table(
        &mut self,
        node: NodeId,
        table: Table,
        next: Option<NextHops>,
    ) -> Result<(), IrError> {
        ShardedNic::replace_table(self, node, table, next)
    }

    fn flush_cache(&mut self, node: NodeId) {
        ShardedNic::flush_cache(self, node)
    }

    fn set_cache_insertion_limit(&mut self, node: NodeId, rate_per_s: f64) {
        ShardedNic::set_cache_insertion_limit(self, node, rate_per_s)
    }

    fn set_instrumentation(&mut self, enabled: bool, sample_every: u64) {
        ShardedNic::set_instrumentation(self, enabled, sample_every)
    }

    fn set_engine_mode(&mut self, mode: EngineMode) {
        ShardedNic::set_engine_mode(self, mode)
    }

    fn engine_mode(&self) -> EngineMode {
        ShardedNic::engine_mode(self)
    }

    fn shard_mode(&self) -> ShardMode {
        ShardedNic::shard_mode(self)
    }

    fn process_one(&mut self, packet: &mut Packet) -> ExecReport {
        ShardedNic::process_one(self, packet)
    }

    fn process_batch(&mut self, packets: &mut [Packet]) -> Vec<ExecReport> {
        ShardedNic::process_batch(self, packets)
    }

    fn measure_batch(&mut self, packets: Vec<Packet>) -> BatchStats {
        self.measure(packets)
    }

    fn now_s(&self) -> f64 {
        ShardedNic::now_s(self)
    }

    fn set_live_reconfig(&mut self, on: bool) {
        ShardedNic::set_live_reconfig(self, on)
    }

    fn live_reconfig(&self) -> bool {
        ShardedNic::live_reconfig(self)
    }

    fn last_swap(&self) -> Option<LiveSwap> {
        ShardedNic::last_swap(self)
    }

    fn measure_begin(&mut self) {
        ShardedNic::measure_begin(self)
    }

    fn measure_feed(&mut self, packets: Vec<Packet>) {
        ShardedNic::measure_feed(self, packets)
    }

    fn measure_end(&mut self) -> BatchStats {
        ShardedNic::measure_end(self)
    }

    fn set_spec_config(&mut self, cfg: SpecConfig) {
        ShardedNic::set_spec_config(self, cfg)
    }

    fn specialize(&mut self) -> bool {
        ShardedNic::specialize(self)
    }

    fn despecialize(&mut self) -> bool {
        ShardedNic::despecialize(self)
    }

    fn spec_stats(&self) -> SpecStats {
        ShardedNic::spec_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SmartNic;
    use pipeleon_ir::{MatchKind, Primitive, ProgramBuilder};

    fn linear_program(tables: usize) -> ProgramGraph {
        let mut b = ProgramBuilder::new();
        let f = b.field("x");
        let mut first = None;
        for i in 0..tables {
            let t = b
                .table(format!("t{i}"))
                .key(f, MatchKind::Exact)
                .action("a", vec![Primitive::Nop])
                .finish();
            first.get_or_insert(t);
        }
        b.seal(first.unwrap()).unwrap()
    }

    fn packets(n: usize) -> Vec<Packet> {
        (0..n).map(|i| Packet::with_slots(vec![i as u64])).collect()
    }

    #[test]
    fn bitexact_matches_single_threaded_batch_stats() {
        let g = linear_program(8);
        let params = CostParams::bluefield2();
        let mut single = SmartNic::new(g.clone(), params.clone()).unwrap();
        let mut sharded = ShardedNic::with_mode(g, params, 4, ShardMode::BitExact).unwrap();
        single.set_instrumentation(true, 16);
        sharded.set_instrumentation(true, 16);
        let a = single.measure(packets(4000));
        let b = sharded.measure(packets(4000));
        assert_eq!(a, b);
        assert_eq!(single.take_profile(), sharded.take_profile());
        let obs_a = single.take_observations();
        let obs_b = sharded.take_observations();
        assert!(!obs_a.packet_latency.is_empty());
        assert_eq!(obs_a, obs_b, "merged histograms must be bit-identical");
    }

    #[test]
    fn runloop_matches_bitexact_integer_stats_and_decisions() {
        let g = linear_program(8);
        let params = CostParams::bluefield2();
        let mut oracle =
            ShardedNic::with_mode(g.clone(), params.clone(), 4, ShardMode::BitExact).unwrap();
        let mut runloop = ShardedNic::with_mode(g, params, 4, ShardMode::RunLoop).unwrap();
        assert_eq!(runloop.shard_mode(), ShardMode::RunLoop);
        let a = oracle.measure(packets(4000));
        let b = runloop.measure(packets(4000));
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.counter_updates, b.counter_updates);
        assert_eq!(a.p99_latency_ns.to_bits(), b.p99_latency_ns.to_bits());
        assert!((a.mean_latency_ns - b.mean_latency_ns).abs() < 1e-6);
        assert!((a.throughput_gbps - b.throughput_gbps).abs() < 1e-6);
        assert_eq!(oracle.now_s(), runloop.now_s());
    }

    #[test]
    fn runloop_sampled_profiles_are_worker_count_invariant() {
        // The satellite-3 regression: per-shard sequence stamping must
        // not skew sampling. Flow-keyed sampling makes the sampled
        // *set* identical for every worker count, so window-merged
        // profiles and histograms are bit-identical across 1/2/8
        // workers even at sample_every > 1.
        let g = linear_program(6);
        let params = CostParams::bluefield2();
        let batch = packets(6000);
        let mut reference: Option<(RuntimeProfile, ExecObservations)> = None;
        for workers in [1usize, 2, 8] {
            let mut nic =
                ShardedNic::with_mode(g.clone(), params.clone(), workers, ShardMode::RunLoop)
                    .unwrap();
            nic.set_instrumentation(true, 8);
            nic.measure(batch.clone());
            let got = (nic.take_profile(), nic.take_observations());
            assert!(got.0.total_packets > 0, "sampling must pick packets");
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    assert_eq!(want.0, got.0, "profile changed at workers={workers}");
                    assert_eq!(want.1, got.1, "histograms changed at workers={workers}");
                }
            }
        }
    }

    #[test]
    fn runloop_process_batch_preserves_input_order() {
        let g = linear_program(4);
        let params = CostParams::bluefield2();
        let mut single = SmartNic::new(g.clone(), params.clone()).unwrap();
        let mut sharded = ShardedNic::new(g, params, 4).unwrap();
        let mut a = packets(1000);
        let mut b = a.clone();
        let ra = single.process_batch(&mut a);
        let rb = sharded.process_batch(&mut b);
        assert_eq!(ra, rb, "uninstrumented reports match packet-for-packet");
        assert_eq!(a, b, "packet mutations match in input order");
    }

    #[test]
    fn mode_switch_preserves_program_and_keeps_working() {
        let g = linear_program(4);
        let mut nic = ShardedNic::new(g.clone(), CostParams::bluefield2(), 3).unwrap();
        let s1 = nic.measure(packets(500));
        nic.set_shard_mode(ShardMode::BitExact);
        assert_eq!(nic.shard_mode(), ShardMode::BitExact);
        assert_eq!(*nic.graph(), g);
        let s2 = nic.measure(packets(500));
        assert_eq!(s1.packets, s2.packets);
        nic.set_shard_mode(ShardMode::RunLoop);
        let s3 = nic.measure(packets(500));
        assert_eq!(s3.packets, 500);
        assert!(nic.now_s() > 0.0);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let nic = ShardedNic::new(linear_program(2), CostParams::bluefield2(), 0).unwrap();
        assert_eq!(nic.num_workers(), 1);
    }

    #[test]
    fn empty_batch_is_harmless() {
        for mode in [ShardMode::RunLoop, ShardMode::BitExact] {
            let mut nic =
                ShardedNic::with_mode(linear_program(2), CostParams::bluefield2(), 4, mode)
                    .unwrap();
            let s = nic.measure(Vec::new());
            assert_eq!(s.packets, 0);
            assert_eq!(s.throughput_gbps, 0.0);
            assert_eq!(nic.now_s(), 0.0);
        }
    }

    #[test]
    fn clock_advances_with_batches() {
        let mut nic = ShardedNic::new(linear_program(2), CostParams::bluefield2(), 3).unwrap();
        nic.measure(packets(1000));
        let t1 = nic.now_s();
        assert!(t1 > 0.0);
        nic.measure(packets(1000));
        assert!(nic.now_s() > t1);
    }
}
