//! Flow-cache runtime state: an O(1) LRU map plus a token-bucket insertion
//! rate limiter (paper §3.2.2: "Pipeleon reserves a fixed budget for each
//! cache and adopts LRU eviction when the cache is full. … Pipeleon sets an
//! insertion rate limit for each cache; insertions beyond the limit will be
//! dropped.").

use std::borrow::Borrow;
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};

/// Slab-backed doubly-linked LRU cache from key `K` to value `V`.
///
/// `get` refreshes recency; `insert` evicts the least-recently-used entry
/// when at capacity. All operations are O(1) expected.
///
/// The hasher is pluggable (`S`, default SipHash): the compiled datapath
/// keys flow caches by [`crate::SmallKey`] under
/// [`fxhash::FxBuildHasher`], and looks them up by borrowed `&[u64]`
/// scratch slices — no key allocation or clone per lookup.
#[derive(Debug, Clone)]
pub struct LruCache<K, V, S: BuildHasher = RandomState> {
    capacity: usize,
    map: HashMap<K, usize, S>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    head: Option<usize>, // most recently used
    tail: Option<usize>, // least recently used
}

#[derive(Debug, Clone)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: Option<usize>,
    next: Option<usize>,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        Self::with_default_hasher(capacity)
    }
}

impl<K: Hash + Eq + Clone, V, S: BuildHasher + Default> LruCache<K, V, S> {
    /// Like [`LruCache::new`], but with an explicit hasher type `S`
    /// (constructed via `Default`).
    pub fn with_default_hasher(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            map: HashMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            head: None,
            tail: None,
        }
    }
}

impl<K: Hash + Eq + Clone, V, S: BuildHasher> LruCache<K, V, S> {
    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        match prev {
            Some(p) => self.slots[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.slots[n].prev = prev,
            None => self.tail = prev,
        }
        self.slots[idx].prev = None;
        self.slots[idx].next = None;
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = None;
        self.slots[idx].next = self.head;
        if let Some(h) = self.head {
            self.slots[h].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
    }

    /// Looks up `key`, refreshing its recency on hit. Accepts any
    /// borrowed form of the key (e.g. a `&[u64]` scratch slice for
    /// [`crate::SmallKey`] keys) so the hot path never materializes one.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let idx = *self.map.get(key)?;
        if self.head != Some(idx) {
            self.detach(idx);
            self.push_front(idx);
        }
        Some(&self.slots[idx].value)
    }

    /// Checks for `key` without touching recency.
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.get(key).map(|&i| &self.slots[i].value)
    }

    /// Inserts (or replaces) `key`, evicting the LRU entry if full.
    /// Returns the evicted `(key, value)` pair, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            if self.head != Some(idx) {
                self.detach(idx);
                self.push_front(idx);
            }
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            if let Some(lru) = self.tail {
                self.detach(lru);
                let slot = &mut self.slots[lru];
                let old_key = slot.key.clone();
                self.map.remove(&old_key);
                // Move the value out by swapping in the new entry directly.
                let old_value = std::mem::replace(&mut slot.value, value);
                slot.key = key.clone();
                self.map.insert(key, lru);
                self.push_front(lru);
                evicted = Some((old_key, old_value));
                return evicted;
            }
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    key: key.clone(),
                    value,
                    prev: None,
                    next: None,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: None,
                    next: None,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Drops every entry (cache invalidation, §3.2.2).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = None;
        self.tail = None;
    }

    /// Iterates entries from most- to least-recently used.
    pub fn iter_mru(&self) -> impl Iterator<Item = (&K, &V)> {
        let mut order = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while let Some(i) = cur {
            order.push((&self.slots[i].key, &self.slots[i].value));
            cur = self.slots[i].next;
        }
        order.into_iter()
    }
}

impl<K: Hash + Eq + Clone, V: Clone, S: BuildHasher> LruCache<K, V, S> {
    /// Removes `key`, returning a clone of its value. The slot is recycled
    /// through the free list; the stale value is overwritten on reuse.
    pub fn remove_cloned(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        self.free.push(idx);
        Some(self.slots[idx].value.clone())
    }
}

/// Token-bucket rate limiter for cache insertions.
#[derive(Debug, Clone)]
pub struct RateLimiter {
    rate_per_s: f64,
    burst: f64,
    tokens: f64,
    last_s: f64,
}

impl RateLimiter {
    /// A limiter refilling `rate_per_s` tokens per second with a burst
    /// budget of `burst` tokens (starts full).
    pub fn new(rate_per_s: f64, burst: f64) -> Self {
        Self {
            rate_per_s: rate_per_s.max(0.0),
            burst: burst.max(1.0),
            tokens: burst.max(1.0),
            last_s: 0.0,
        }
    }

    /// An effectively unlimited limiter.
    pub fn unlimited() -> Self {
        Self::new(f64::INFINITY, f64::MAX)
    }

    /// Attempts to take one token at simulation time `now_s`. A zero rate
    /// always denies (insertions disabled).
    pub fn allow(&mut self, now_s: f64) -> bool {
        if self.rate_per_s.is_infinite() {
            return true;
        }
        if self.rate_per_s <= 0.0 {
            return false;
        }
        if now_s > self.last_s {
            self.tokens = (self.tokens + (now_s - self.last_s) * self.rate_per_s).min(self.burst);
            self.last_s = now_s;
        }
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(2);
        assert!(c.insert(1, "a").is_none());
        assert!(c.insert(2, "b").is_none());
        // Touch 1 so 2 becomes LRU.
        assert_eq!(c.get(&1), Some(&"a"));
        let evicted = c.insert(3, "c");
        assert_eq!(evicted, Some((2, "b")));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.get(&3), Some(&"c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn insert_existing_replaces_and_refreshes() {
        let mut c = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11); // refresh 1
        let evicted = c.insert(3, 30);
        assert_eq!(evicted, Some((2, 20)));
        assert_eq!(c.get(&1), Some(&11));
    }

    #[test]
    fn mru_iteration_order() {
        let mut c = LruCache::new(3);
        c.insert(1, ());
        c.insert(2, ());
        c.insert(3, ());
        c.get(&1);
        let keys: Vec<i32> = c.iter_mru().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 3, 2]);
    }

    #[test]
    fn clear_empties_cache() {
        let mut c = LruCache::new(4);
        c.insert("x", 1);
        c.insert("y", 2);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&"x"), None);
        c.insert("z", 3);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_cloned_detaches_entry() {
        let mut c = LruCache::new(3);
        c.insert(1, vec![1, 2]);
        c.insert(2, vec![3]);
        assert_eq!(c.remove_cloned(&1), Some(vec![1, 2]));
        assert_eq!(c.get(&1), None);
        assert_eq!(c.len(), 1);
        // Freed slot is reused.
        c.insert(3, vec![9]);
        c.insert(4, vec![10]);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn capacity_one_cache_works() {
        let mut c = LruCache::new(1);
        c.insert(1, 'a');
        let e = c.insert(2, 'b');
        assert_eq!(e, Some((1, 'a')));
        assert_eq!(c.get(&2), Some(&'b'));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let c: LruCache<u8, u8> = LruCache::new(0);
        assert_eq!(c.capacity(), 1);
    }

    #[test]
    fn lru_stress_against_reference_model() {
        // Compare against a naive Vec-based LRU on a random workload.
        let mut fast = LruCache::new(8);
        let mut slow: Vec<(u64, u64)> = Vec::new(); // front = MRU
        let mut x: u64 = 99;
        let mut rng = move || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x >> 33
        };
        for _ in 0..2000 {
            let k = rng() % 16;
            if rng() % 2 == 0 {
                let v = rng();
                fast.insert(k, v);
                if let Some(pos) = slow.iter().position(|(sk, _)| *sk == k) {
                    slow.remove(pos);
                }
                slow.insert(0, (k, v));
                if slow.len() > 8 {
                    slow.pop();
                }
            } else {
                let f = fast.get(&k).copied();
                let s = slow.iter().position(|(sk, _)| *sk == k).map(|p| {
                    let e = slow.remove(p);
                    slow.insert(0, e);
                    slow[0].1
                });
                assert_eq!(f, s);
            }
            assert_eq!(fast.len(), slow.len());
        }
    }

    #[test]
    fn rate_limiter_enforces_rate() {
        let mut rl = RateLimiter::new(10.0, 2.0);
        // Burst of 2 at t=0.
        assert!(rl.allow(0.0));
        assert!(rl.allow(0.0));
        assert!(!rl.allow(0.0));
        // 0.1 s later: one token refilled.
        assert!(rl.allow(0.1));
        assert!(!rl.allow(0.1));
        // Long idle refills to burst only.
        assert!(rl.allow(100.0));
        assert!(rl.allow(100.0));
        assert!(!rl.allow(100.0));
    }

    #[test]
    fn unlimited_limiter_always_allows() {
        let mut rl = RateLimiter::unlimited();
        for i in 0..1000 {
            assert!(rl.allow(i as f64 * 1e-9));
        }
    }
}
