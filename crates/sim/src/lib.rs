#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

//! # pipeleon-sim — deterministic software SmartNIC emulator
//!
//! The measurement substrate of this reproduction, standing in for the
//! paper's Nvidia BlueField2, Netronome Agilio CX, and BMv2-based emulator
//! (§5.1). It executes Pipeleon IR programs packet-by-packet in a
//! run-to-completion model and accounts latency with the same mechanisms
//! the paper's cost model abstracts: per-hash-table memory accesses for
//! key matches, per-primitive action costs, branch evaluation, counter
//! updates, cache insertions, and ASIC↔CPU packet migrations.
//!
//! * [`packet`] — flat-slot packets over a program's field space.
//! * [`engine`] — exact / LPM / ternary / range match engines implemented
//!   as (multiple) hash tables, reporting how many they probed.
//! * [`cache`] — an LRU flow-cache with a token-bucket insertion limiter
//!   (paper §3.2.2 "optimization considerations").
//! * [`exec`] — the run-to-completion [`Executor`]: walks the program DAG,
//!   executes actions for real, maintains cache state, honours placements
//!   (ASIC vs. CPU) with migration costs, and updates P4 counters with
//!   optional sampling. Runs either a reference interpreter or a compiled
//!   datapath ([`EngineMode`]) — a flat slot-addressed lowering of the
//!   program with FxHash match engines and reusable scratch buffers that
//!   executes packets with zero steady-state heap allocations, producing
//!   bit-identical reports, profiles and traces.
//! * [`smallkey`] — [`SmallKey`]: fixed-width inline match/cache keys
//!   (stack-resident up to 4×`u64`) queryable by borrowed `&[u64]`.
//! * [`nic`] — [`SmartNic`]: multicore dispatch (RSS by flow hash),
//!   throughput/latency measurement, and the control-plane entry API
//!   (insert/delete/modify, cache flush).
//! * [`observe`] — [`ExecObservations`]: mergeable latency histograms
//!   (end-to-end and per-table) recorded for sampled packets, built on
//!   `pipeleon-obs`.
//! * [`ring`] — fixed-capacity SPSC rings (cache-line-padded Lamport
//!   queues with burst enqueue/dequeue), the dispatcher→worker hand-off
//!   of the run-loop sharded datapath.
//! * [`sharded`] — [`ShardedNic`]: the same datapath sharded over `N`
//!   parallel worker threads by flow hash, with deterministic merging of
//!   per-shard profiles and batch statistics deferred to profile-window
//!   boundaries.
//! * [`specialize`] — profile-guided specialization of the compiled
//!   datapath: hot-key inline caches behind guards, direct-index ways
//!   for small stable exact tables, and hot-chain slot layout — all
//!   bit-exact against the interpreter oracle, applied and reverted
//!   live through the generation chain.
//! * [`backend`] — [`NicBackend`], the datapath trait both NICs
//!   implement, so runtime targets can be backed by either.
//!
//! Everything is seeded and deterministic — results are bit-reproducible.
//! A [`ShardedNic`] runs in one of two [`ShardMode`]s: `BitExact`
//! replays the global arrival schedule (barrier + sort per batch), so
//! its output is bit-identical to a single-threaded [`SmartNic`] run on
//! the same traffic for any worker count; `RunLoop` (the default) feeds
//! persistent workers through SPSC rings and preserves forwarding
//! decisions, per-flow order, integer statistics, the exact p99, and —
//! via flow-keyed sampling ([`SampleKeying`]) — worker-count-invariant
//! window-merged profiles and histograms, relaxing only the float
//! summation order of mean latency and throughput.
//!
//! With **live reconfiguration** enabled
//! ([`NicBackend::set_live_reconfig`]), control-plane operations publish
//! as numbered generations on an epoch/RCU chain instead of pausing the
//! datapath: packets in flight keep executing under the generation they
//! were dispatched with, newly dispatched packets pick up the new one,
//! and old generations are reclaimed once every shard has quiesced past
//! them. Each swap is reported through [`LiveSwap`] (generation id,
//! packets in flight at publication, publish latency).

pub mod backend;
pub mod cache;
mod compiled;
pub mod engine;
pub mod exec;
/// The epoch/RCU generation chain. Private in real builds (an internal
/// detail of [`sharded`]); public under `--cfg pipeleon_check` so the
/// model tests in `crates/sim/tests/model.rs` can drive it directly.
#[cfg(pipeleon_check)]
pub mod generation;
#[cfg(not(pipeleon_check))]
mod generation;
pub mod nic;
pub mod observe;
pub mod packet;
pub mod ring;
pub mod sharded;
pub mod smallkey;
pub mod specialize;
pub(crate) mod sync;

pub use backend::{LiveSwap, NicBackend};
pub use cache::{LruCache, RateLimiter};
pub use engine::{KeyScratch, LookupOutcome, MatchEngine};
pub use exec::{EngineMode, ExecReport, Executor, PacketTrace, SampleKeying};
pub use nic::{BatchStats, NicConfig, PacketRecord, ShardMode, SmartNic};
pub use observe::ExecObservations;
pub use packet::Packet;
pub use sharded::ShardedNic;
pub use smallkey::SmallKey;
pub use specialize::{HotKeySketch, SpecConfig, SpecStats};
