//! The run-to-completion executor.
//!
//! Walks a program DAG for one packet at a time, executing branch
//! conditions and action primitives for real, and accounting latency from
//! the same mechanisms the cost model abstracts: hash-table probes for key
//! matches (`probes × L_mat`), primitives (`n_a × L_act`), branch
//! comparisons, counter updates (with optional packet sampling, §5.4.1),
//! flow-cache lookups/insertions (§3.2.2), and ASIC↔CPU migrations
//! (§3.2.4 / Appendix A.2).
//!
//! Flow caches need no side metadata: a [`CacheRole::FlowCache`] table is a
//! switch-case node whose action 0 ("hit") jumps past the covered segment
//! and whose default action ("miss") falls through to the segment head. On
//! a miss the executor records every `(table, action)` executed until
//! control reaches the hit target, then installs that result — so the
//! covered segment is discovered structurally.

use crate::cache::{LruCache, RateLimiter};
use crate::compiled::{CNext, CStep, CTable, CompiledPipeline, NO_SLOT};
use crate::engine::{KeyScratch, LookupOutcome, MatchEngine};
use crate::observe::ExecObservations;
use crate::packet::Packet;
use crate::smallkey::SmallKey;
use crate::specialize::{self, HotKeySketch, SpecPlan, SpecStats};
use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
use pipeleon_cost::{CostParams, MatchCostModel, MemoryTier, Placement, RuntimeProfile};
use pipeleon_ir::{
    CacheRole, EdgeRef, IrError, NextHops, NodeId, NodeKind, Primitive, ProgramGraph, TableEntry,
};
use pipeleon_obs::{Event, EventKind};
use std::collections::HashMap;

/// Per-packet execution report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecReport {
    /// Total accounted latency in ns.
    pub latency_ns: f64,
    /// Whether the packet was dropped.
    pub dropped: bool,
    /// ASIC↔CPU migrations performed.
    pub migrations: usize,
    /// Hash-table probes across all key matches.
    pub probes: usize,
    /// Counter updates actually performed (after sampling).
    pub counter_updates: usize,
}

/// Optional per-packet trace for semantic-equivalence testing.
///
/// Backed by the shared observability [`Event`] type, so per-packet
/// traces and the controller's journal speak one event schema: a trace
/// is a sequence of [`EventKind::Visit`] / [`EventKind::Action`] events
/// (node ids stored raw as `u32`), renderable with the same JSONL
/// machinery as any other event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PacketTrace {
    /// Visit/action events in execution order. `seq` is the position
    /// within this packet's trace; `t_s` is the simulated arrival time.
    pub events: Vec<Event>,
}

impl PacketTrace {
    /// Discards all recorded events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    fn push(&mut self, t_s: f64, kind: EventKind) {
        self.events.push(Event {
            seq: self.events.len() as u64,
            t_s,
            kind,
        });
    }

    /// Nodes visited, in order.
    pub fn visited(&self) -> Vec<NodeId> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Visit { node } => Some(NodeId(node)),
                _ => None,
            })
            .collect()
    }

    /// `(table, action)` pairs executed (including cache replays).
    pub fn actions(&self) -> Vec<(NodeId, usize)> {
        self.events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Action { node, action } => Some((NodeId(node), action as usize)),
                _ => None,
            })
            .collect()
    }

    /// Renders the trace as JSONL, one event per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

/// The result cached for a flow: the `(table, action)` pairs to replay.
type CachedResult = Vec<(NodeId, usize)>;

/// Which datapath executes packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// The reference graph-walking interpreter, kept as the oracle the
    /// differential suite checks the compiled path against.
    Interpreter,
    /// The flat, allocation-free compiled pipeline (the default). Its
    /// reports, profiles, observations and traces are bit-identical to
    /// the interpreter's.
    #[default]
    Compiled,
}

/// How the 1-in-`sample_every` counter-sampling decision is keyed.
///
/// Sampling picks which packets update P4 counters and latency
/// histograms (§5.4.1). The *keying* decides whether that choice depends
/// on global arrival order or only on per-flow order:
///
/// - [`GlobalSeq`](SampleKeying::GlobalSeq) reproduces the classic
///   single-threaded schedule (`packet_seq % sample_every`), which is
///   only partition-invariant if every shard is fed the packet's global
///   arrival index — the barrier the run-loop datapath removes.
/// - [`FlowKeyed`](SampleKeying::FlowKeyed) hashes `(flow_hash,
///   per-flow packet count)` through a splitmix64-style mixer. Since RSS
///   pins a flow to one shard and rings preserve per-flow order, the
///   k-th packet of a flow is the same packet on any worker count, so
///   the *set* of sampled packets — and therefore every sampled counter
///   and histogram — is identical for 1, 2, or N workers without any
///   shared arrival index. Costs one `FxHashMap` entry per live flow
///   while instrumentation is on with `sample_every > 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SampleKeying {
    /// Global packet-sequence sampling (single-threaded schedule).
    #[default]
    GlobalSeq,
    /// Per-flow deterministic sampling (partition-invariant).
    FlowKeyed,
}

/// splitmix64-style finalizer over a flow hash and that flow's packet
/// count; uniform enough that `mix(..) % sample_every == 0` samples one
/// in `sample_every` packets of every flow.
#[inline]
fn mix_flow_seq(flow_hash: u64, count: u64) -> u64 {
    let mut z = flow_hash ^ count.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug)]
struct FlowCacheState {
    /// Keyed by inline [`SmallKey`]s hashed with FxHash, queried with a
    /// borrowed `&[u64]` — no per-lookup key allocation or clone.
    lru: LruCache<SmallKey, CachedResult, FxBuildHasher>,
    limiter: RateLimiter,
    hits: u64,
    misses: u64,
    insertions: u64,
}

#[derive(Debug)]
struct PendingInsert {
    cache: NodeId,
    key: SmallKey,
    exit: Option<NodeId>,
    recorded: CachedResult,
}

/// Compiled-path pending cache insert: exits are pre-resolved slots.
#[derive(Debug)]
struct CPending {
    cache: NodeId,
    key: SmallKey,
    exit_slot: u32,
    recorded: CachedResult,
}

/// Default flow-cache capacity when a cache table has no `max_entries`.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Default cache insertion rate limit (insertions/s) when unspecified.
pub const DEFAULT_INSERTION_RATE: f64 = 100_000.0;

/// Executes a deployed program packet-by-packet.
#[derive(Debug)]
pub struct Executor {
    graph: ProgramGraph,
    params: CostParams,
    engines: Vec<Option<MatchEngine>>,
    /// Flow-cache runtime state, dense by node index. Shared by both
    /// engine modes, so cache contents survive an engine switch.
    caches: Vec<Option<FlowCacheState>>,
    placement: Vec<Placement>,
    memory_tiers: Vec<MemoryTier>,
    /// Counters collected since the last [`Executor::take_profile`]
    /// (raw, i.e. sampled counts — see [`Executor::sampled_profile`]).
    profile: RuntimeProfile,
    instrumented: bool,
    sample_every: u64,
    packet_seq: u64,
    /// How sampling decisions are keyed (global sequence vs per-flow).
    keying: SampleKeying,
    /// Per-flow packet counts for [`SampleKeying::FlowKeyed`]; touched
    /// only when instrumented with `sample_every > 1`.
    flow_seq: FxHashMap<u64, u64>,
    /// Distinct match keys seen per table, dense by node index. Shared
    /// by both engine modes.
    distinct: Vec<Option<FxHashSet<SmallKey>>>,
    last_profile_take_s: f64,
    /// Latency histograms recorded for sampled packets since the last
    /// [`Executor::take_observations`].
    observed: ExecObservations,
    /// Reusable key-composition buffers (zero allocations per lookup).
    scratch: KeyScratch,
    /// Which datapath runs packets.
    mode: EngineMode,
    /// Lazily built compiled program. Invalidated by deploys, placement
    /// and memory-tier changes; entry ops recompile just the touched
    /// node in place.
    compiled: Option<CompiledPipeline>,
    /// Full pipeline compiles performed (telemetry for tests/benches).
    full_compiles: u64,
    /// Single-node recompiles performed (telemetry for tests/benches).
    table_recompiles: u64,
    /// Hot-key guard hits on specialized tables. Host telemetry: on a
    /// sharded backend these depend on packet partitioning, so they are
    /// not worker-count invariant (profiles and reports remain so).
    spec_guard_hits: u64,
    /// Hot-key guard misses (fell through to the general lookup).
    spec_guard_misses: u64,
    /// Specialization plans applied to this executor's pipeline.
    specializations: u64,
    /// Reverts to the verbatim lowering (explicit or entry-op strips).
    despecializations: u64,
    /// Monotonic (de)specialization epoch for event dedup.
    spec_epoch: u64,
    /// Per-table hot-key majority sketches, dense by node index; fed by
    /// sampled lookups in both engine modes, taken at window boundaries
    /// alongside the profile.
    hot_sketch: Vec<Option<HotKeySketch>>,
    /// Simulation clock in seconds, advanced by the NIC harness.
    pub now_s: f64,
}

/// Cap on tracked distinct keys per table (the estimate saturates here).
const DISTINCT_TRACK_CAP: usize = 65_536;

/// Fraction of a counter update's cost paid by non-sampled packets when
/// sampling is active: the per-packet sample decision (hash + compare)
/// still sits on the data path (§5.4.1).
pub const SAMPLE_CHECK_FRACTION: f64 = 0.12;

impl Executor {
    /// Deploys `graph` on a target described by `params`. Fails if the
    /// program does not validate.
    pub fn new(graph: ProgramGraph, params: CostParams) -> Result<Self, IrError> {
        graph.validate()?;
        let mut ex = Self {
            engines: Vec::new(),
            caches: Vec::new(),
            placement: Vec::new(),
            memory_tiers: Vec::new(),
            profile: RuntimeProfile::empty(),
            instrumented: false,
            sample_every: 1,
            packet_seq: 0,
            keying: SampleKeying::default(),
            flow_seq: FxHashMap::default(),
            distinct: Vec::new(),
            last_profile_take_s: 0.0,
            observed: ExecObservations::new(),
            scratch: KeyScratch::new(),
            mode: EngineMode::default(),
            compiled: None,
            full_compiles: 0,
            table_recompiles: 0,
            spec_guard_hits: 0,
            spec_guard_misses: 0,
            specializations: 0,
            despecializations: 0,
            spec_epoch: 0,
            hot_sketch: Vec::new(),
            now_s: 0.0,
            graph,
            params,
        };
        ex.rebuild_all();
        Ok(ex)
    }

    /// The deployed program.
    pub fn graph(&self) -> &ProgramGraph {
        &self.graph
    }

    /// The target parameters.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Replaces the deployed program (live reconfiguration). Cache state
    /// and counters are reset; the clock is preserved.
    pub fn deploy(&mut self, graph: ProgramGraph) -> Result<(), IrError> {
        graph.validate()?;
        self.graph = graph;
        self.profile = RuntimeProfile::empty();
        self.compiled = None;
        self.rebuild_all();
        Ok(())
    }

    /// Adopts an already-validated program as a live generation swap.
    /// Unlike [`Executor::deploy`], the pending profile window, sampled
    /// observations, distinct-key sets, flow sequence counts, packet
    /// sequence, placements, memory tiers, engine mode, and
    /// instrumentation all carry across the swap — the profile window
    /// spans generations, keyed by the (stable) node ids both layouts
    /// share. Match engines and flow-cache runtime state are rebuilt
    /// (the new layout's tables define them); `compiled` installs the
    /// caller's pre-built pipeline so every shard adopting the same
    /// generation shares one lowering instead of re-compiling.
    ///
    /// The caller (a generation chain publisher) has already validated
    /// `graph` on its control replica, so this never fails.
    pub(crate) fn adopt_graph(&mut self, graph: ProgramGraph, compiled: Option<CompiledPipeline>) {
        self.graph = graph;
        self.rebuild_all();
        self.compiled = compiled;
    }

    /// A clone of the compiled pipeline for the current graph, built on
    /// demand — what a generation publisher attaches to a `Deploy` node
    /// when the compiled engine is active (`None` under the interpreter:
    /// adopters then lower lazily like any fresh executor).
    pub(crate) fn compiled_clone(&mut self) -> Option<CompiledPipeline> {
        match self.mode {
            EngineMode::Compiled => {
                self.ensure_compiled();
                self.compiled.clone()
            }
            EngineMode::Interpreter => None,
        }
    }

    /// Enables P4-counter instrumentation, updating counters for one in
    /// `sample_every` packets (1 = every packet; §5.4.1 uses 1/1024).
    pub fn set_instrumentation(&mut self, enabled: bool, sample_every: u64) {
        self.instrumented = enabled;
        self.sample_every = sample_every.max(1);
    }

    /// Overrides the packet sequence number that drives counter sampling.
    /// A sharded NIC assigns each packet its *global* arrival index before
    /// execution so the `packet_seq % sample_every` sampling decision is
    /// identical to a single-threaded run, regardless of worker count.
    pub fn set_packet_seq(&mut self, seq: u64) {
        self.packet_seq = seq;
    }

    /// Selects how counter-sampling decisions are keyed (see
    /// [`SampleKeying`]). Switching resets the per-flow counts so both
    /// keyings start from a clean schedule.
    pub fn set_sample_keying(&mut self, keying: SampleKeying) {
        if self.keying != keying {
            self.keying = keying;
            self.flow_seq.clear();
        }
    }

    /// The active sampling keying.
    pub fn sample_keying(&self) -> SampleKeying {
        self.keying
    }

    /// The per-packet sampling decision: advances the packet sequence
    /// (and, when flow-keyed, the packet's flow count) and reports
    /// whether this packet updates counters and histograms.
    #[inline]
    fn sample_decision(&mut self, packet: &Packet) -> bool {
        self.packet_seq += 1;
        if !self.instrumented {
            return false;
        }
        if self.sample_every <= 1 {
            return true;
        }
        match self.keying {
            SampleKeying::GlobalSeq => self.packet_seq.is_multiple_of(self.sample_every),
            SampleKeying::FlowKeyed => {
                let hash = packet.flow_hash();
                let count = self.flow_seq.entry(hash).or_insert(0);
                *count += 1;
                mix_flow_seq(hash, *count).is_multiple_of(self.sample_every)
            }
        }
    }

    /// Assigns nodes to ASIC/CPU cores (dense by node id; missing =
    /// ASIC). Costs on CPU nodes scale by `cpu_scale`; placement-crossing
    /// hops pay `l_migration`.
    pub fn set_placement(&mut self, placement: Vec<Placement>) {
        self.placement = placement;
        self.compiled = None;
    }

    /// Assigns tables to memory tiers (dense by node id; missing = EMEM).
    /// Key matches of SRAM-resident tables run `sram_speedup`× faster
    /// (§6 hierarchical-memory extension).
    pub fn set_memory_tiers(&mut self, tiers: Vec<MemoryTier>) {
        self.memory_tiers = tiers;
        self.compiled = None;
    }

    fn tier_scale(&self, id: NodeId) -> f64 {
        let tier = self
            .memory_tiers
            .get(id.index())
            .copied()
            .unwrap_or(MemoryTier::Emem);
        self.params.tiers.match_scale(tier)
    }

    /// Inserts an entry into a table and recompiles its engine.
    pub fn insert_entry(&mut self, node: NodeId, entry: TableEntry) -> Result<(), IrError> {
        let n = self
            .graph
            .node_mut(node)
            .ok_or(IrError::UnknownNode(node))?;
        let t = n.as_table_mut().ok_or(IrError::BadTable {
            table: node,
            reason: "not a table".into(),
        })?;
        t.entries.push(entry);
        t.validate().map_err(|reason| IrError::BadEntry {
            table: node,
            reason,
        })?;
        self.rebuild_engine(node);
        self.recompile_table(node);
        Ok(())
    }

    /// Removes the entry at `index` from a table and recompiles.
    pub fn remove_entry(&mut self, node: NodeId, index: usize) -> Result<TableEntry, IrError> {
        let n = self
            .graph
            .node_mut(node)
            .ok_or(IrError::UnknownNode(node))?;
        let t = n.as_table_mut().ok_or(IrError::BadTable {
            table: node,
            reason: "not a table".into(),
        })?;
        if index >= t.entries.len() {
            return Err(IrError::BadEntry {
                table: node,
                reason: format!("no entry at index {index}"),
            });
        }
        let e = t.entries.remove(index);
        self.rebuild_engine(node);
        self.recompile_table(node);
        Ok(e)
    }

    /// Replaces a table node's definition (and optionally its next-hops)
    /// in place — used when a merged table is re-materialized after a
    /// control-plane update. The engine is recompiled; the node id stays
    /// stable.
    pub fn replace_table(
        &mut self,
        node: NodeId,
        table: pipeleon_ir::Table,
        next: Option<NextHops>,
    ) -> Result<(), IrError> {
        {
            let n = self
                .graph
                .node_mut(node)
                .ok_or(IrError::UnknownNode(node))?;
            if n.as_table().is_none() {
                return Err(IrError::BadTable {
                    table: node,
                    reason: "not a table".into(),
                });
            }
            n.kind = pipeleon_ir::NodeKind::Table(table);
            if let Some(next) = next {
                n.next = next;
            }
        }
        self.graph.validate()?;
        self.rebuild_engine(node);
        self.recompile_table(node);
        Ok(())
    }

    /// Flushes the runtime state of one flow cache (invalidation).
    pub fn flush_cache(&mut self, node: NodeId) {
        if let Some(Some(c)) = self.caches.get_mut(node.index()) {
            c.lru.clear();
        }
    }

    /// Number of live entries in a flow cache's runtime state.
    pub fn cache_len(&self, node: NodeId) -> usize {
        self.caches
            .get(node.index())
            .and_then(|c| c.as_ref())
            .map_or(0, |c| c.lru.len())
    }

    /// Takes the collected (sampled) profile, resetting counters. Cache
    /// hit/miss statistics are merged in (they are maintained unsampled).
    pub fn take_profile(&mut self) -> RuntimeProfile {
        let (mut p, distinct) = self.take_profile_split();
        for (node, set) in distinct {
            p.set_distinct_keys(node, set.len() as u64);
        }
        p
    }

    /// Like [`Executor::take_profile`], but hands back the raw distinct-key
    /// sets instead of folding them into the profile. A sharded NIC unions
    /// the sets across workers before counting — summing per-shard counts
    /// would double-count flows whose packets land on several shards.
    pub(crate) fn take_profile_split(
        &mut self,
    ) -> (RuntimeProfile, HashMap<NodeId, FxHashSet<SmallKey>>) {
        let mut p = std::mem::take(&mut self.profile);
        if self.instrumented && self.sample_every > 1 {
            p.scale_counts(self.sample_every);
        }
        p.window_s = (self.now_s - self.last_profile_take_s).max(1e-9);
        self.last_profile_take_s = self.now_s;
        let mut distinct = HashMap::new();
        for (idx, set) in std::mem::take(&mut self.distinct).into_iter().enumerate() {
            if let Some(set) = set {
                if !set.is_empty() {
                    distinct.insert(NodeId(idx as u32), set);
                }
            }
        }
        for (idx, state) in self.caches.iter_mut().enumerate() {
            let Some(c) = state else { continue };
            p.cache_stats.insert(
                NodeId(idx as u32),
                pipeleon_cost::CacheStats {
                    hits: c.hits,
                    misses: c.misses,
                    insertions: c.insertions,
                },
            );
            c.hits = 0;
            c.misses = 0;
            c.insertions = 0;
        }
        (p, distinct)
    }

    /// Peeks at the profile without resetting (counts not rescaled).
    pub fn sampled_profile(&self) -> &RuntimeProfile {
        &self.profile
    }

    /// Takes the latency histograms recorded for sampled packets since
    /// the last call, resetting them. Sampling is driven by the global
    /// packet sequence number, so a sharded NIC's per-shard observations
    /// merge bit-identically to a single-threaded run's.
    pub fn take_observations(&mut self) -> ExecObservations {
        std::mem::take(&mut self.observed)
    }

    /// Peeks at the recorded observations without resetting.
    pub fn observations(&self) -> &ExecObservations {
        &self.observed
    }

    fn rebuild_all(&mut self) {
        self.engines = vec![None; self.graph.id_bound()];
        self.caches.clear();
        self.caches.resize_with(self.graph.id_bound(), || None);
        let ids: Vec<NodeId> = self.graph.iter_nodes().map(|n| n.id).collect();
        for id in ids {
            self.rebuild_engine(id);
        }
    }

    fn rebuild_engine(&mut self, id: NodeId) {
        if self.engines.len() < self.graph.id_bound() {
            self.engines.resize(self.graph.id_bound(), None);
        }
        if self.caches.len() < self.graph.id_bound() {
            self.caches.resize_with(self.graph.id_bound(), || None);
        }
        let Some(n) = self.graph.node(id) else { return };
        if let Some(t) = n.as_table() {
            self.engines[id.index()] = Some(MatchEngine::build(t));
            if t.cache_role == CacheRole::FlowCache && self.caches[id.index()].is_none() {
                self.caches[id.index()] = Some(FlowCacheState {
                    lru: LruCache::with_default_hasher(
                        t.max_entries.unwrap_or(DEFAULT_CACHE_CAPACITY),
                    ),
                    limiter: RateLimiter::new(
                        DEFAULT_INSERTION_RATE,
                        DEFAULT_INSERTION_RATE / 100.0,
                    ),
                    hits: 0,
                    misses: 0,
                    insertions: 0,
                });
            }
        }
    }

    /// Sets a flow cache's insertion rate limit (insertions per second).
    pub fn set_cache_insertion_limit(&mut self, node: NodeId, rate_per_s: f64) {
        if let Some(Some(c)) = self.caches.get_mut(node.index()) {
            c.limiter = RateLimiter::new(rate_per_s, (rate_per_s / 100.0).max(8.0));
        }
    }

    /// Selects which datapath executes packets. Both modes share flow
    /// cache, profile and distinct-key state, so switching mid-stream is
    /// seamless and invisible in the collected statistics.
    pub fn set_engine_mode(&mut self, mode: EngineMode) {
        self.mode = mode;
    }

    /// The active datapath.
    pub fn engine_mode(&self) -> EngineMode {
        self.mode
    }

    /// `(full pipeline compiles, single-node recompiles)` performed so
    /// far — lets tests assert that entry churn patches the compiled
    /// program in place instead of recompiling from scratch.
    pub fn compile_stats(&self) -> (u64, u64) {
        (self.full_compiles, self.table_recompiles)
    }

    fn ensure_compiled(&mut self) {
        if self.compiled.is_none() {
            self.compiled = Some(CompiledPipeline::build(
                &self.graph,
                &self.params,
                &self.placement,
                &self.memory_tiers,
            ));
            self.full_compiles += 1;
        }
    }

    /// Patches one node of the compiled pipeline after an entry op,
    /// falling back to full invalidation only if the node has no slot.
    ///
    /// If the entry op touches a *specialized* table (hot-key guard or
    /// direct-index way), the whole pipeline de-specializes to the
    /// verbatim lowering instead: the baked outcome and dense key range
    /// may no longer describe the table, and a stale guard is exactly
    /// the divergence specialization promises never to introduce. The
    /// next specialize step re-plans from fresh profile state.
    fn recompile_table(&mut self, id: NodeId) {
        let strip = self
            .compiled
            .as_ref()
            .is_some_and(|cp| cp.spec_fingerprint != 0 && cp.node_is_specialized(id));
        if strip {
            self.compiled = None;
            if self.mode == EngineMode::Compiled {
                self.ensure_compiled();
            }
            self.despecializations += 1;
            self.spec_epoch += 1;
            return;
        }
        if let Some(cp) = self.compiled.as_mut() {
            if cp.recompile_node(
                &self.graph,
                &self.params,
                &self.placement,
                &self.memory_tiers,
                id,
            ) {
                self.table_recompiles += 1;
            } else {
                self.compiled = None;
            }
        }
    }

    /// Applies a specialization plan over the verbatim lowering. Returns
    /// the new spec epoch if the pipeline changed; `None` under the
    /// interpreter (which needs no specializing — it *is* the oracle),
    /// for an empty plan, or when the identical plan is already applied.
    pub(crate) fn specialize_with(&mut self, plan: &SpecPlan) -> Option<u64> {
        if self.mode != EngineMode::Compiled || plan.is_empty() {
            return None;
        }
        self.ensure_compiled();
        let current = self.spec_fingerprint();
        if current == plan.fingerprint {
            return None;
        }
        if current != 0 {
            // Plans always apply over the verbatim lowering, never over
            // a previous plan's arena.
            self.compiled = None;
            self.ensure_compiled();
        }
        let cp = self.compiled.as_mut().expect("just compiled");
        specialize::apply_plan(cp, plan);
        cp.spec_fingerprint = plan.fingerprint;
        self.specializations += 1;
        self.spec_epoch += 1;
        Some(self.spec_epoch)
    }

    /// Reverts to the verbatim lowering. Returns the new spec epoch if
    /// the pipeline was specialized, `None` if it already was verbatim.
    pub(crate) fn despecialize(&mut self) -> Option<u64> {
        if self.spec_fingerprint() == 0 {
            return None;
        }
        self.compiled = None;
        if self.mode == EngineMode::Compiled {
            self.ensure_compiled();
        }
        self.despecializations += 1;
        self.spec_epoch += 1;
        Some(self.spec_epoch)
    }

    /// Current specialization counters and state.
    pub fn spec_stats(&self) -> SpecStats {
        SpecStats {
            guard_hits: self.spec_guard_hits,
            guard_misses: self.spec_guard_misses,
            specializations: self.specializations,
            despecializations: self.despecializations,
            specialized_tables: self
                .compiled
                .as_ref()
                .map_or(0, |cp| cp.specialized_tables()),
            generation: self.spec_epoch,
        }
    }

    /// The applied plan fingerprint (`0` = verbatim lowering).
    pub(crate) fn spec_fingerprint(&self) -> u64 {
        self.compiled.as_ref().map_or(0, |cp| cp.spec_fingerprint)
    }

    /// Takes the per-table hot-key sketches collected since the last
    /// call, resetting them — the sketch window rides the profile window.
    pub(crate) fn take_hot_sketches(&mut self) -> HashMap<NodeId, HotKeySketch> {
        let mut out = HashMap::new();
        for (idx, sk) in std::mem::take(&mut self.hot_sketch).into_iter().enumerate() {
            if let Some(sk) = sk {
                if sk.samples > 0 {
                    out.insert(NodeId(idx as u32), sk);
                }
            }
        }
        out
    }

    /// Folds the live (not-yet-taken) sketches into `out` without
    /// resetting them — lets a specialize step planned mid-window see
    /// the traffic since the last boundary.
    pub(crate) fn peek_hot_sketches_into(&self, out: &mut HashMap<NodeId, HotKeySketch>) {
        for (idx, sk) in self.hot_sketch.iter().enumerate() {
            if let Some(sk) = sk {
                if sk.samples > 0 {
                    out.entry(NodeId(idx as u32))
                        .and_modify(|e| e.merge(sk))
                        .or_insert_with(|| sk.clone());
                }
            }
        }
    }

    /// Feeds the composed key in scratch into the table's hot-key
    /// sketch. Called only for sampled packets, so the sketch cost rides
    /// the same budget as counter updates; no modeled latency attaches
    /// (like distinct-key tracking, it is control-plane analytics).
    #[inline]
    fn note_hot_key(&mut self, id: NodeId) {
        if self.scratch.values.is_empty() {
            return;
        }
        if self.hot_sketch.len() <= id.index() {
            self.hot_sketch.resize_with(id.index() + 1, || None);
        }
        let sk = self.hot_sketch[id.index()].get_or_insert_with(HotKeySketch::default);
        sk.observe(&self.scratch.values);
    }

    /// Processes one packet; see [`Executor::process_traced`] for traces.
    pub fn process(&mut self, packet: &mut Packet) -> ExecReport {
        self.run(packet, None)
    }

    /// Processes one packet and records the visited nodes / executed
    /// actions into `trace`.
    pub fn process_traced(&mut self, packet: &mut Packet, trace: &mut PacketTrace) -> ExecReport {
        trace.clear();
        self.run(packet, Some(trace))
    }

    /// Processes a batch of packets, amortizing engine dispatch: the
    /// compiled program is checked out once per batch instead of once
    /// per packet. Reports are returned in input order and are identical
    /// to processing each packet with [`Executor::process`].
    pub fn process_batch(&mut self, packets: &mut [Packet]) -> Vec<ExecReport> {
        let mut out = Vec::with_capacity(packets.len());
        match self.mode {
            EngineMode::Interpreter => {
                for p in packets.iter_mut() {
                    out.push(self.run_interp(p, None));
                }
            }
            EngineMode::Compiled => {
                self.ensure_compiled();
                let cp = self.compiled.take().expect("just compiled");
                for p in packets.iter_mut() {
                    out.push(self.run_compiled(&cp, p, None));
                }
                self.compiled = Some(cp);
            }
        }
        out
    }

    fn place(&self, id: NodeId) -> Placement {
        self.placement
            .get(id.index())
            .copied()
            .unwrap_or(Placement::Asic)
    }

    fn run(&mut self, packet: &mut Packet, trace: Option<&mut PacketTrace>) -> ExecReport {
        match self.mode {
            EngineMode::Interpreter => self.run_interp(packet, trace),
            EngineMode::Compiled => {
                // Check the compiled program out of `self` for the walk
                // (it is immutable while the executor's counters and
                // caches mutate), then put it back.
                self.ensure_compiled();
                let cp = self.compiled.take().expect("just compiled");
                let r = self.run_compiled(&cp, packet, trace);
                self.compiled = Some(cp);
                r
            }
        }
    }

    fn run_interp(
        &mut self,
        packet: &mut Packet,
        mut trace: Option<&mut PacketTrace>,
    ) -> ExecReport {
        let sampled = self.sample_decision(packet);
        if sampled {
            self.profile.total_packets += 1;
        }
        let mut report = ExecReport {
            latency_ns: self.params.l_base,
            dropped: false,
            migrations: 0,
            probes: 0,
            counter_updates: 0,
        };
        let mut pending: Vec<PendingInsert> = Vec::new();
        let mut cur = self.graph.root();
        let mut prev_place: Option<Placement> = None;

        while let Some(id) = cur {
            // Finalize any cache miss whose covered segment ends here.
            self.finalize_pending(&mut pending, Some(id), &mut report);

            let place = self.place(id);
            if let Some(p) = prev_place {
                if p != place {
                    report.latency_ns += self.params.l_migration;
                    report.migrations += 1;
                }
            }
            prev_place = Some(place);
            let scale = match place {
                Placement::Asic => 1.0,
                Placement::Cpu => self.params.cpu_scale,
            };
            if let Some(t) = trace.as_deref_mut() {
                t.push(self.now_s, EventKind::Visit { node: id.0 });
            }

            // Pull the node's shape out in a narrow scope.
            enum Step {
                Branch { slot: u16, target: Option<NodeId> },
                Table,
            }
            let step = {
                let node = self.graph.node(id).expect("validated graph");
                match (&node.kind, &node.next) {
                    (NodeKind::Branch(b), NextHops::Branch { on_true, on_false }) => {
                        let cond = b.condition.eval(packet.slots());
                        report.latency_ns += self.params.l_branch
                            * b.condition.num_comparisons().max(1) as f64
                            * scale;
                        let (slot, target) = if cond { (0, *on_true) } else { (1, *on_false) };
                        Step::Branch { slot, target }
                    }
                    _ => Step::Table,
                }
            };
            match step {
                Step::Branch { slot, target } => {
                    if sampled {
                        self.profile.record_edge(EdgeRef::new(id, slot), 1);
                        report.counter_updates += 1;
                        report.latency_ns += self.params.l_counter * scale;
                    } else if self.instrumented {
                        report.latency_ns += self.params.l_counter * SAMPLE_CHECK_FRACTION * scale;
                    }
                    cur = target;
                    continue;
                }
                Step::Table => {}
            }

            let is_flow_cache = self
                .graph
                .node(id)
                .and_then(|n| n.as_table())
                .map(|t| t.cache_role == CacheRole::FlowCache)
                .unwrap_or(false);

            let before_ns = report.latency_ns;
            if is_flow_cache {
                cur = self.exec_flow_cache(
                    id,
                    packet,
                    scale,
                    sampled,
                    &mut pending,
                    &mut report,
                    &mut trace,
                );
            } else {
                cur = self.exec_table(
                    id,
                    packet,
                    scale,
                    sampled,
                    &mut pending,
                    &mut report,
                    &mut trace,
                );
            }
            if sampled {
                // Host-side histogram bookkeeping: the modeled counter
                // cost is already charged above, so this adds no
                // simulated latency.
                self.observed
                    .record_table(id, report.latency_ns - before_ns);
            }
            if packet.dropped {
                report.dropped = true;
                break;
            }
        }
        // Segment results that run to the sink (exit == None) or were cut
        // short by a drop still finalize.
        self.finalize_pending(&mut pending, cur, &mut report);
        if packet.dropped {
            // A drop anywhere finalizes all pendings (the cached result
            // replays the drop).
            let mut all = std::mem::take(&mut pending);
            for p in all.drain(..) {
                self.install_pending(p, &mut report);
            }
        }
        if sampled {
            self.observed.record_packet(report.latency_ns);
        }
        report
    }

    /// Executes a regular (or merged-cache) table node; returns the next
    /// node.
    #[allow(clippy::too_many_arguments)]
    fn exec_table(
        &mut self,
        id: NodeId,
        packet: &mut Packet,
        scale: f64,
        sampled: bool,
        pending: &mut [PendingInsert],
        report: &mut ExecReport,
        trace: &mut Option<&mut PacketTrace>,
    ) -> Option<NodeId> {
        // Look up and copy out what we need before mutating self.
        let (outcome, charged_probes, prims, next): (
            LookupOutcome,
            f64,
            Vec<Primitive>,
            Option<NodeId>,
        ) = {
            let node = self.graph.node(id).expect("validated graph");
            let table = node.as_table().expect("table node");
            let engine = self.engines[id.index()].as_ref().expect("engine built");
            let outcome = engine.lookup(table, packet, &mut self.scratch);
            // Under a Fixed match model the charged probes follow the
            // model's multiplier, not the realized way count.
            let charged = match self.params.match_model {
                MatchCostModel::Fixed { .. } => self.params.memory_accesses(table),
                MatchCostModel::PerDistinctPattern { cap } => (outcome.probes.min(cap)) as f64,
            };
            let prims = table.actions[outcome.action].primitives.clone();
            let next = match &node.next {
                NextHops::Always(t) => *t,
                NextHops::ByAction(v) => v[outcome.action],
                NextHops::Branch { .. } => unreachable!("table with branch hops"),
            };
            (outcome, charged, prims, next)
        };
        report.probes += outcome.probes;
        report.latency_ns += charged_probes * self.params.l_mat * scale * self.tier_scale(id);
        report.latency_ns += prims.len() as f64 * self.params.l_act * scale;

        if self.instrumented {
            // Distinct-key tracking (pre-action packet state) feeds the
            // optimizer's cross-product estimate; it models control-plane
            // analytics, not a P4 counter, so it adds no data-path latency.
            // The key values were composed into the scratch buffer by the
            // lookup above; `contains` runs first so repeat flows never
            // allocate a key.
            let vals = &self.scratch.values;
            if !vals.is_empty() {
                if self.distinct.len() <= id.index() {
                    self.distinct.resize_with(id.index() + 1, || None);
                }
                let set = self.distinct[id.index()].get_or_insert_with(FxHashSet::default);
                if set.len() < DISTINCT_TRACK_CAP && !set.contains(vals.as_slice()) {
                    set.insert(SmallKey::from_slice(vals));
                }
            }
        }
        Self::apply_primitives(packet, &prims);

        for p in pending.iter_mut() {
            p.recorded.push((id, outcome.action));
        }
        if let Some(t) = trace.as_deref_mut() {
            t.push(
                self.now_s,
                EventKind::Action {
                    node: id.0,
                    action: outcome.action as u32,
                },
            );
        }
        if sampled {
            self.note_hot_key(id);
            self.profile.record_action(id, outcome.action, 1);
            report.counter_updates += 1;
            report.latency_ns += self.params.l_counter * scale;
        } else if self.instrumented {
            report.latency_ns += self.params.l_counter * SAMPLE_CHECK_FRACTION * scale;
        }
        next
    }

    /// Executes a flow-cache node; returns the next node.
    #[allow(clippy::too_many_arguments)]
    fn exec_flow_cache(
        &mut self,
        id: NodeId,
        packet: &mut Packet,
        scale: f64,
        sampled: bool,
        pending: &mut Vec<PendingInsert>,
        report: &mut ExecReport,
        trace: &mut Option<&mut PacketTrace>,
    ) -> Option<NodeId> {
        let (key, hit_target, miss_target, default_action) = {
            let node = self.graph.node(id).expect("validated graph");
            let table = node.as_table().expect("cache is a table");
            let key: Vec<u64> = table.keys.iter().map(|k| packet.get(k.field)).collect();
            let (hit_t, miss_t) = match &node.next {
                NextHops::ByAction(v) => (
                    v.first().copied().flatten(),
                    v.get(table.default_action).copied().flatten(),
                ),
                NextHops::Always(t) => (*t, *t),
                NextHops::Branch { .. } => unreachable!("cache with branch hops"),
            };
            (key, hit_t, miss_t, table.default_action)
        };
        // One exact lookup either way.
        report.probes += 1;
        report.latency_ns += self.params.l_mat * scale;

        let cached: Option<CachedResult> = self
            .caches
            .get_mut(id.index())
            .and_then(|c| c.as_mut())
            .and_then(|c| c.lru.get(key.as_slice()).cloned());
        match cached {
            Some(result) => {
                if let Some(Some(c)) = self.caches.get_mut(id.index()) {
                    c.hits += 1;
                }
                if sampled {
                    self.profile.record_action(id, 0, 1);
                    report.counter_updates += 1;
                    report.latency_ns += self.params.l_counter * scale;
                }
                // Replay the recorded actions: execute their primitives and
                // maintain the counter map back to original tables. Outer
                // pending recordings (a cache covering this cache's region)
                // observe the replayed actions too.
                for p in pending.iter_mut() {
                    p.recorded.extend(result.iter().copied());
                }
                for (nid, aidx) in &result {
                    let prims: Vec<Primitive> = self
                        .graph
                        .node(*nid)
                        .and_then(|n| n.as_table())
                        .map(|t| t.actions[*aidx].primitives.clone())
                        .unwrap_or_default();
                    report.latency_ns += prims.len() as f64 * self.params.l_act * scale;
                    Self::apply_primitives(packet, &prims);
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(
                            self.now_s,
                            EventKind::Action {
                                node: nid.0,
                                action: *aidx as u32,
                            },
                        );
                    }
                    if sampled {
                        self.profile.record_action(*nid, *aidx, 1);
                        report.counter_updates += 1;
                        report.latency_ns += self.params.l_counter * scale;
                    }
                }
                hit_target
            }
            None => {
                if let Some(Some(c)) = self.caches.get_mut(id.index()) {
                    c.misses += 1;
                }
                if sampled {
                    self.profile.record_action(id, default_action, 1);
                    report.counter_updates += 1;
                    report.latency_ns += self.params.l_counter * scale;
                }
                pending.push(PendingInsert {
                    cache: id,
                    key: SmallKey::from_slice(&key),
                    exit: hit_target,
                    recorded: Vec::new(),
                });
                miss_target
            }
        }
    }

    fn finalize_pending(
        &mut self,
        pending: &mut Vec<PendingInsert>,
        at: Option<NodeId>,
        report: &mut ExecReport,
    ) {
        let mut i = 0;
        while i < pending.len() {
            if pending[i].exit == at {
                let p = pending.remove(i);
                self.install_pending(p, report);
            } else {
                i += 1;
            }
        }
    }

    fn install_pending(&mut self, p: PendingInsert, report: &mut ExecReport) {
        self.install(p.cache, p.key, p.recorded, report);
    }

    /// Installs a finalized cache result, engine-mode agnostic.
    fn install(
        &mut self,
        cache: NodeId,
        key: SmallKey,
        recorded: CachedResult,
        report: &mut ExecReport,
    ) {
        let now = self.now_s;
        if let Some(Some(c)) = self.caches.get_mut(cache.index()) {
            if c.limiter.allow(now) {
                c.lru.insert(key, recorded);
                c.insertions += 1;
                report.latency_ns += self.params.l_cache_insert;
            }
        }
    }

    // ------------------------------------------------------------------
    // Compiled datapath. Mirrors `run_interp` step for step: every
    // latency term is added in the same order with the same operand
    // values, so reports, profiles, observations and traces are
    // bit-identical across engine modes. The differences are purely
    // mechanical: slot-addressed arena walk instead of `NodeId` map
    // hops, FxHash/SmallKey lookups through reused scratch buffers, and
    // pre-boxed action bodies executed in place — zero steady-state
    // heap allocations per packet.
    // ------------------------------------------------------------------

    fn run_compiled(
        &mut self,
        cp: &CompiledPipeline,
        packet: &mut Packet,
        mut trace: Option<&mut PacketTrace>,
    ) -> ExecReport {
        let sampled = self.sample_decision(packet);
        if sampled {
            self.profile.total_packets += 1;
        }
        let mut report = ExecReport {
            latency_ns: self.params.l_base,
            dropped: false,
            migrations: 0,
            probes: 0,
            counter_updates: 0,
        };
        let mut pending: Vec<CPending> = Vec::new();
        let mut cur: u32 = cp.root;
        let mut prev_place: Option<Placement> = None;

        while cur != NO_SLOT {
            let slot = cur;
            // Finalize any cache miss whose covered segment ends here
            // (cheap emptiness gate: the common case carries no pendings).
            if !pending.is_empty() {
                self.finalize_pending_compiled(&mut pending, slot, &mut report);
            }

            let node = &cp.nodes[slot as usize];
            if let Some(p) = prev_place {
                if p != node.place {
                    report.latency_ns += self.params.l_migration;
                    report.migrations += 1;
                }
            }
            prev_place = Some(node.place);
            let scale = node.scale;
            if let Some(t) = trace.as_deref_mut() {
                t.push(self.now_s, EventKind::Visit { node: node.id.0 });
            }

            match &node.step {
                CStep::Branch {
                    condition,
                    comparisons,
                    on_true,
                    on_false,
                } => {
                    let cond = condition.eval(packet.slots());
                    report.latency_ns += self.params.l_branch * *comparisons * scale;
                    let (edge, target) = if cond {
                        (0u16, *on_true)
                    } else {
                        (1u16, *on_false)
                    };
                    if sampled {
                        self.profile.record_edge(EdgeRef::new(node.id, edge), 1);
                        report.counter_updates += 1;
                        report.latency_ns += self.params.l_counter * scale;
                    } else if self.instrumented {
                        report.latency_ns += self.params.l_counter * SAMPLE_CHECK_FRACTION * scale;
                    }
                    cur = target;
                }
                CStep::Table(ct) => {
                    let before_ns = report.latency_ns;
                    cur = if ct.is_flow_cache {
                        self.exec_flow_cache_compiled(
                            cp,
                            node.id,
                            ct,
                            packet,
                            scale,
                            sampled,
                            &mut pending,
                            &mut report,
                            &mut trace,
                        )
                    } else {
                        self.exec_table_compiled(
                            node.id,
                            ct,
                            packet,
                            scale,
                            node.tier_scale,
                            sampled,
                            &mut pending,
                            &mut report,
                            &mut trace,
                        )
                    };
                    if sampled {
                        self.observed
                            .record_table(node.id, report.latency_ns - before_ns);
                    }
                    if packet.dropped {
                        report.dropped = true;
                        break;
                    }
                }
            }
        }
        // Segment results that run to the sink (exit == NO_SLOT) or were
        // cut short by a drop still finalize.
        if !pending.is_empty() {
            self.finalize_pending_compiled(&mut pending, cur, &mut report);
        }
        if packet.dropped {
            let mut all = std::mem::take(&mut pending);
            for p in all.drain(..) {
                self.install(p.cache, p.key, p.recorded, &mut report);
            }
        }
        if sampled {
            self.observed.record_packet(report.latency_ns);
        }
        report
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_table_compiled(
        &mut self,
        id: NodeId,
        ct: &CTable,
        packet: &mut Packet,
        scale: f64,
        tier_scale: f64,
        sampled: bool,
        pending: &mut [CPending],
        report: &mut ExecReport,
        trace: &mut Option<&mut PacketTrace>,
    ) -> u32 {
        // Hot-key guard: compare the composed key against the baked hot
        // key; a hit returns the pre-resolved outcome (identical — entry,
        // action, probes — to what the general path computes for that
        // key), a miss falls through to the unmodified general lookup.
        let outcome = if let Some(sp) = &ct.spec {
            ct.engine.compose_key(packet, &mut self.scratch);
            if self.scratch.values.as_slice() == sp.hot_key.as_slice() {
                self.spec_guard_hits += 1;
                sp.hot_outcome
            } else {
                self.spec_guard_misses += 1;
                ct.engine.lookup_composed(&mut self.scratch)
            }
        } else {
            ct.engine.lookup(packet, &mut self.scratch)
        };
        // Under a Fixed match model the charged probes follow the
        // model's multiplier (pre-resolved), not the realized way count.
        let charged = match ct.charged_fixed {
            Some(f) => f,
            None => (outcome.probes.min(ct.pattern_cap)) as f64,
        };
        report.probes += outcome.probes;
        report.latency_ns += charged * self.params.l_mat * scale * tier_scale;
        let prims: &[Primitive] = &ct.actions[outcome.action];
        report.latency_ns += prims.len() as f64 * self.params.l_act * scale;

        if self.instrumented {
            // Same distinct-key tracking as the interpreter path; the key
            // values sit in the scratch buffer from the lookup above.
            let vals = &self.scratch.values;
            if !vals.is_empty() {
                if self.distinct.len() <= id.index() {
                    self.distinct.resize_with(id.index() + 1, || None);
                }
                let set = self.distinct[id.index()].get_or_insert_with(FxHashSet::default);
                if set.len() < DISTINCT_TRACK_CAP && !set.contains(vals.as_slice()) {
                    set.insert(SmallKey::from_slice(vals));
                }
            }
        }
        Self::apply_primitives(packet, prims);

        for p in pending.iter_mut() {
            p.recorded.push((id, outcome.action));
        }
        if let Some(t) = trace.as_deref_mut() {
            t.push(
                self.now_s,
                EventKind::Action {
                    node: id.0,
                    action: outcome.action as u32,
                },
            );
        }
        if sampled {
            self.note_hot_key(id);
            self.profile.record_action(id, outcome.action, 1);
            report.counter_updates += 1;
            report.latency_ns += self.params.l_counter * scale;
        } else if self.instrumented {
            report.latency_ns += self.params.l_counter * SAMPLE_CHECK_FRACTION * scale;
        }
        match &ct.next {
            CNext::Always(s) => *s,
            CNext::ByAction(v) => v[outcome.action],
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_flow_cache_compiled(
        &mut self,
        cp: &CompiledPipeline,
        id: NodeId,
        ct: &CTable,
        packet: &mut Packet,
        scale: f64,
        sampled: bool,
        pending: &mut Vec<CPending>,
        report: &mut ExecReport,
        trace: &mut Option<&mut PacketTrace>,
    ) -> u32 {
        // Compose the flow key into the reusable scratch buffer.
        self.scratch.values.clear();
        self.scratch
            .values
            .extend(ct.key_fields.iter().map(|&f| packet.get(f)));
        // One exact lookup either way.
        report.probes += 1;
        report.latency_ns += self.params.l_mat * scale;

        // Replay happens against the borrowed cached result — unlike the
        // interpreter there is no defensive clone (the result only needs
        // disjoint executor fields while it is alive).
        let mut was_hit = false;
        if let Some(Some(c)) = self.caches.get_mut(id.index()) {
            if let Some(result) = c.lru.get(self.scratch.values.as_slice()) {
                was_hit = true;
                if sampled {
                    self.profile.record_action(id, 0, 1);
                    report.counter_updates += 1;
                    report.latency_ns += self.params.l_counter * scale;
                }
                for p in pending.iter_mut() {
                    p.recorded.extend(result.iter().copied());
                }
                for &(nid, aidx) in result.iter() {
                    let rslot = cp.slot(nid);
                    let prims: &[Primitive] = if rslot == NO_SLOT {
                        &[]
                    } else if let CStep::Table(t) = &cp.nodes[rslot as usize].step {
                        &t.actions[aidx]
                    } else {
                        &[]
                    };
                    report.latency_ns += prims.len() as f64 * self.params.l_act * scale;
                    Self::apply_primitives(packet, prims);
                    if let Some(t) = trace.as_deref_mut() {
                        t.push(
                            self.now_s,
                            EventKind::Action {
                                node: nid.0,
                                action: aidx as u32,
                            },
                        );
                    }
                    if sampled {
                        self.profile.record_action(nid, aidx, 1);
                        report.counter_updates += 1;
                        report.latency_ns += self.params.l_counter * scale;
                    }
                }
            }
        }
        if was_hit {
            if let Some(Some(c)) = self.caches.get_mut(id.index()) {
                c.hits += 1;
            }
            return ct.hit_slot;
        }
        if let Some(Some(c)) = self.caches.get_mut(id.index()) {
            c.misses += 1;
        }
        if sampled {
            self.profile.record_action(id, ct.default_action, 1);
            report.counter_updates += 1;
            report.latency_ns += self.params.l_counter * scale;
        }
        pending.push(CPending {
            cache: id,
            key: SmallKey::from_slice(&self.scratch.values),
            exit_slot: ct.hit_slot,
            recorded: Vec::new(),
        });
        ct.miss_slot
    }

    fn finalize_pending_compiled(
        &mut self,
        pending: &mut Vec<CPending>,
        at: u32,
        report: &mut ExecReport,
    ) {
        let mut i = 0;
        while i < pending.len() {
            if pending[i].exit_slot == at {
                let p = pending.remove(i);
                self.install(p.cache, p.key, p.recorded, report);
            } else {
                i += 1;
            }
        }
    }

    fn apply_primitives(packet: &mut Packet, prims: &[Primitive]) {
        for p in prims {
            match *p {
                Primitive::Set { field, value } => packet.set(field, value),
                Primitive::Add { field, delta } => {
                    let v = packet.get(field).wrapping_add(delta);
                    packet.set(field, v);
                }
                Primitive::Sub { field, delta } => {
                    let v = packet.get(field).wrapping_sub(delta);
                    packet.set(field, v);
                }
                Primitive::Copy { dst, src } => {
                    let v = packet.get(src);
                    packet.set(dst, v);
                }
                Primitive::Drop => packet.dropped = true,
                Primitive::Forward { port } => packet.egress_port = Some(port),
                Primitive::Nop => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeleon_ir::{Condition, MatchKind, MatchValue, Primitive, ProgramBuilder, TableEntry};

    fn params() -> CostParams {
        let mut p = CostParams::bluefield2();
        p.l_mat = 10.0;
        p.l_act = 2.0;
        p.l_branch = 1.0;
        p.l_base = 0.0;
        p.l_counter = 0.5;
        p.l_cache_insert = 20.0;
        p.l_migration = 100.0;
        p.cpu_scale = 3.0;
        p
    }

    /// acl(drop if x==13) -> rewrite(y=7) -> sink
    fn simple_program() -> (pipeleon_ir::ProgramGraph, NodeId, NodeId) {
        let mut b = ProgramBuilder::new();
        let x = b.field("x");
        let y = b.field("y");
        let acl = b
            .table("acl")
            .key(x, MatchKind::Exact)
            .action_nop("permit")
            .action_drop("deny")
            .entry(TableEntry::new(vec![MatchValue::Exact(13)], 1))
            .finish();
        let rw = b
            .table("rewrite")
            .key(x, MatchKind::Exact)
            .action("set_y", vec![Primitive::set(y, 7)])
            .default_action(0)
            .finish();
        let _ = rw;
        (b.seal(acl).unwrap(), acl, rw)
    }

    #[test]
    fn specialize_stamps_and_clears_the_plan_fingerprint() {
        use crate::smallkey::SmallKey;
        use crate::specialize::SpecPlan;
        let (g, acl, _) = simple_program();
        let mut ex = Executor::new(g, params()).unwrap();
        ex.set_engine_mode(EngineMode::Compiled);
        assert_eq!(ex.spec_fingerprint(), 0, "verbatim lowering sentinel");
        let plan = SpecPlan {
            hot_keys: vec![(acl, SmallKey::from_slice(&[1]))],
            direct: vec![],
            chain: vec![],
            fingerprint: 0xABCD,
        };
        assert_eq!(ex.specialize_with(&plan), Some(1), "first spec epoch");
        assert_eq!(ex.spec_fingerprint(), 0xABCD);
        // Re-applying the same plan is a no-op (dedup by fingerprint).
        assert_eq!(ex.specialize_with(&plan), None);
        // Guard hit on the baked key stays bit-exact with the oracle.
        let mut p = Packet::with_slots(vec![1, 0]);
        let r = ex.process(&mut p);
        assert!(!r.dropped);
        assert!((r.latency_ns - 22.0).abs() < 1e-9, "got {}", r.latency_ns);
        assert!(ex.spec_stats().guard_hits > 0);
        assert_eq!(ex.despecialize(), Some(2), "second spec epoch");
        assert_eq!(ex.spec_fingerprint(), 0, "despecialize restores verbatim");
    }

    #[test]
    fn executes_actions_and_accounts_latency() {
        let (g, _, _) = simple_program();
        let y = g.fields.get("y").unwrap();
        let mut ex = Executor::new(g, params()).unwrap();
        let mut p = Packet::with_slots(vec![1, 0]);
        let r = ex.process(&mut p);
        assert!(!r.dropped);
        assert_eq!(p.get(y), 7);
        // acl: 1 probe * 10 + 0 prims; rewrite: 1 probe * 10 + 1 prim * 2.
        assert!((r.latency_ns - 22.0).abs() < 1e-9, "got {}", r.latency_ns);
        assert_eq!(r.probes, 2);
    }

    #[test]
    fn drop_halts_execution() {
        let (g, _, _) = simple_program();
        let y = g.fields.get("y").unwrap();
        let mut ex = Executor::new(g, params()).unwrap();
        let mut p = Packet::with_slots(vec![13, 0]);
        let r = ex.process(&mut p);
        assert!(r.dropped);
        assert_eq!(p.get(y), 0, "rewrite must not run after a drop");
        // acl only: 10 + 1 prim (Drop) * 2 = 12.
        assert!((r.latency_ns - 12.0).abs() < 1e-9, "got {}", r.latency_ns);
    }

    #[test]
    fn branch_routing_and_tracing() {
        let mut b = ProgramBuilder::new();
        let x = b.field("x");
        let t1 = b.table("t1").key(x, MatchKind::Exact).finish();
        b.set_next(t1, None);
        let t2 = b.table("t2").key(x, MatchKind::Exact).finish();
        b.set_next(t2, None);
        let br = b.branch("br", Condition::lt(x, 10), Some(t1), Some(t2));
        let g = b.seal(br).unwrap();
        let mut ex = Executor::new(g, params()).unwrap();
        let mut trace = PacketTrace::default();
        let mut p = Packet::with_slots(vec![5]);
        ex.process_traced(&mut p, &mut trace);
        assert_eq!(trace.visited(), vec![br, t1]);
        let mut p = Packet::with_slots(vec![50]);
        ex.process_traced(&mut p, &mut trace);
        assert_eq!(trace.visited(), vec![br, t2]);
        // The trace shares the journal's event schema and renders as
        // JSONL through the same machinery.
        let jsonl = trace.to_jsonl();
        assert_eq!(jsonl.lines().count(), trace.events.len());
        assert!(jsonl.contains("\"type\":\"visit\""));
    }

    #[test]
    fn instrumentation_collects_counters_and_costs_latency() {
        let (g, acl, _) = simple_program();
        let mut ex = Executor::new(g, params()).unwrap();
        ex.set_instrumentation(true, 1);
        let mut lat_sum = 0.0;
        for i in 0..10 {
            let mut p = Packet::with_slots(vec![i, 0]);
            lat_sum += ex.process(&mut p).latency_ns;
        }
        let prof = ex.take_profile();
        assert_eq!(prof.action_count(acl, 0), 10);
        // Uninstrumented latency for the same packets is 22 each; with 2
        // counter updates each (+0.5) it is 23.
        assert!((lat_sum - 230.0).abs() < 1e-6, "got {lat_sum}");
        // take_profile resets.
        assert_eq!(ex.sampled_profile().action_count(acl, 0), 0);
    }

    #[test]
    fn sampling_reduces_overhead_and_scales_counts() {
        let (g, acl, _) = simple_program();
        let mut ex = Executor::new(g, params()).unwrap();
        ex.set_instrumentation(true, 4);
        for i in 0..100 {
            let mut p = Packet::with_slots(vec![100 + i, 0]);
            ex.process(&mut p);
        }
        let prof = ex.take_profile();
        // 25 sampled packets, scaled by 4 back to 100.
        assert_eq!(prof.action_count(acl, 0), 100);
    }

    #[test]
    fn observations_record_sampled_packets_only() {
        let (g, acl, _) = simple_program();
        let mut ex = Executor::new(g, params()).unwrap();
        // Uninstrumented: no histogram work at all.
        for i in 0..10 {
            ex.process(&mut Packet::with_slots(vec![100 + i, 0]));
        }
        assert!(ex.observations().is_empty());
        ex.set_instrumentation(true, 4);
        for i in 0..100 {
            ex.process(&mut Packet::with_slots(vec![100 + i, 0]));
        }
        let obs = ex.take_observations();
        assert_eq!(obs.packet_latency.count(), 25, "1-in-4 sampling");
        assert_eq!(obs.per_table[&acl].count(), 25);
        assert!(ex.observations().is_empty(), "take must reset");
    }

    #[test]
    fn entry_api_rebuilds_engine() {
        let (g, acl, _) = simple_program();
        let mut ex = Executor::new(g, params()).unwrap();
        let mut p = Packet::with_slots(vec![99, 0]);
        assert!(!ex.process(&mut p.clone()).dropped);
        ex.insert_entry(acl, TableEntry::new(vec![MatchValue::Exact(99)], 1))
            .unwrap();
        assert!(ex.process(&mut p).dropped);
        let removed = ex.remove_entry(acl, 1).unwrap();
        assert_eq!(removed.matches, vec![MatchValue::Exact(99)]);
        let mut p = Packet::with_slots(vec![99, 0]);
        assert!(!ex.process(&mut p).dropped);
    }

    #[test]
    fn placement_charges_migration_and_scales() {
        let (g, acl, rw) = simple_program();
        let mut ex = Executor::new(g, params()).unwrap();
        let mut placement = vec![Placement::Asic; 8];
        placement[rw.index()] = Placement::Cpu;
        let _ = acl;
        ex.set_placement(placement);
        let mut p = Packet::with_slots(vec![1, 0]);
        let r = ex.process(&mut p);
        assert_eq!(r.migrations, 1);
        // acl 10 + migration 100 + rewrite (10 + 2) * 3 = 146.
        assert!((r.latency_ns - 146.0).abs() < 1e-9, "got {}", r.latency_ns);
    }

    /// Builds: cache(keys=[x]) -ByAction-> [hit -> sink, miss -> heavy -> sink]
    fn cached_program() -> (pipeleon_ir::ProgramGraph, NodeId, NodeId) {
        let mut b = ProgramBuilder::new();
        let x = b.field("x");
        let y = b.field("y");
        let heavy = b
            .table("heavy")
            .key(x, MatchKind::Ternary)
            .action("mark", vec![Primitive::set(y, 1)])
            .default_action(0)
            .entry(TableEntry::with_priority(
                vec![MatchValue::Ternary {
                    value: 0,
                    mask: 0xF,
                }],
                0,
                1,
            ))
            .finish();
        b.set_next(heavy, None);
        let cache = b
            .table("cache")
            .key(x, MatchKind::Exact)
            .action_nop("hit")
            .action_nop("miss")
            .default_action(1)
            .cache_role(CacheRole::FlowCache)
            .max_entries(64)
            .by_action(vec![None, Some(heavy)])
            .finish();
        (b.seal(cache).unwrap(), cache, heavy)
    }

    #[test]
    fn flow_cache_miss_then_hit() {
        let (g, cache, _) = cached_program();
        let y = g.fields.get("y").unwrap();
        let mut ex = Executor::new(g, params()).unwrap();
        // First packet: miss -> heavy path (+ insertion).
        let mut p1 = Packet::with_slots(vec![16, 0]);
        let r1 = ex.process(&mut p1);
        assert_eq!(ex.cache_len(cache), 1);
        // Cache 10 + heavy (1 way ternary -> charged per-pattern 1*10 + 1 prim*2) + insert 20.
        assert!((r1.latency_ns - 42.0).abs() < 1e-9, "got {}", r1.latency_ns);
        assert_eq!(p1.get(y), 1);
        // Second packet, same flow: hit, replays the action.
        let mut p2 = Packet::with_slots(vec![16, 0]);
        let r2 = ex.process(&mut p2);
        assert!((r2.latency_ns - 12.0).abs() < 1e-9, "got {}", r2.latency_ns);
        assert_eq!(p2.get(y), 1, "replayed action must apply");
        let prof = ex.take_profile();
        let stats = prof.cache_stats[&cache];
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    }

    #[test]
    fn flow_cache_caches_drops() {
        let mut b = ProgramBuilder::new();
        let x = b.field("x");
        let acl = b
            .table("acl")
            .key(x, MatchKind::Exact)
            .action_nop("permit")
            .action_drop("deny")
            .entry(TableEntry::new(vec![MatchValue::Exact(5)], 1))
            .finish();
        b.set_next(acl, None);
        let cache = b
            .table("cache")
            .key(x, MatchKind::Exact)
            .action_nop("hit")
            .action_nop("miss")
            .default_action(1)
            .cache_role(CacheRole::FlowCache)
            .by_action(vec![None, Some(acl)])
            .finish();
        let g = b.seal(cache).unwrap();
        let mut ex = Executor::new(g, params()).unwrap();
        let mut p = Packet::with_slots(vec![5]);
        assert!(ex.process(&mut p).dropped);
        assert_eq!(ex.cache_len(cache), 1, "drop result must be cached");
        let mut p = Packet::with_slots(vec![5]);
        let r = ex.process(&mut p);
        assert!(r.dropped, "cached drop must replay");
        // Hit: cache 10 + replayed deny (1 prim) 2 = 12.
        assert!((r.latency_ns - 12.0).abs() < 1e-9);
    }

    #[test]
    fn flush_cache_forces_misses() {
        let (g, cache, _) = cached_program();
        let mut ex = Executor::new(g, params()).unwrap();
        let mut p = Packet::with_slots(vec![3, 0]);
        ex.process(&mut p.clone());
        assert_eq!(ex.cache_len(cache), 1);
        ex.flush_cache(cache);
        assert_eq!(ex.cache_len(cache), 0);
        let r = ex.process(&mut p);
        assert!(r.latency_ns > 12.0, "must take the miss path again");
    }

    #[test]
    fn insertion_rate_limit_drops_insertions() {
        let (g, cache, _) = cached_program();
        let mut ex = Executor::new(g, params()).unwrap();
        ex.set_cache_insertion_limit(cache, 0.0); // no insertions allowed
        for i in 0..10 {
            let mut p = Packet::with_slots(vec![i, 0]);
            ex.process(&mut p);
        }
        assert_eq!(ex.cache_len(cache), 0);
        let prof = ex.take_profile();
        assert_eq!(prof.cache_stats[&cache].misses, 10);
        assert_eq!(prof.cache_stats[&cache].insertions, 0);
    }

    #[test]
    fn memory_tiers_scale_match_cost_only() {
        use pipeleon_cost::MemoryTier;
        let (g, acl, rw) = simple_program();
        let mut p = params();
        p.tiers.sram_speedup = 2.0;
        let mut ex = Executor::new(g.clone(), p).unwrap();
        let base = ex.process(&mut Packet::with_slots(vec![1, 0])).latency_ns;
        // Promote the rewrite table to SRAM: its match (10) halves to 5.
        let mut tiers = vec![MemoryTier::Emem; g.id_bound()];
        tiers[rw.index()] = MemoryTier::Sram;
        let _ = acl;
        ex.set_memory_tiers(tiers);
        let fast = ex.process(&mut Packet::with_slots(vec![1, 0])).latency_ns;
        assert!((base - fast - 5.0).abs() < 1e-9, "base={base} fast={fast}");
    }

    #[test]
    fn deploy_resets_cache_state() {
        let (g, cache, _) = cached_program();
        let g2 = g.clone();
        let mut ex = Executor::new(g, params()).unwrap();
        let mut p = Packet::with_slots(vec![1, 0]);
        ex.process(&mut p);
        assert_eq!(ex.cache_len(cache), 1);
        ex.deploy(g2).unwrap();
        assert_eq!(ex.cache_len(cache), 0);
    }
}
