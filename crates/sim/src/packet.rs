//! Packets: flat field-slot arrays over a program's field space.

use pipeleon_ir::{FieldRef, FieldSpace};

/// A packet as the emulator sees it: one `u64` slot per interned header
/// field, plus wire size and disposition metadata.
///
/// All experiments in the paper use 512-byte packets (§5.1), the default
/// here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    slots: Vec<u64>,
    /// Wire size in bytes (payload included).
    pub bytes: usize,
    /// Set once a `Drop` primitive executes.
    pub dropped: bool,
    /// Set by the `Forward` primitive.
    pub egress_port: Option<u32>,
}

impl Packet {
    /// The paper's packet size (§5.1).
    pub const DEFAULT_BYTES: usize = 512;

    /// A zeroed packet sized for `fields`.
    pub fn new(fields: &FieldSpace) -> Self {
        Self::with_slots(vec![0; fields.len()])
    }

    /// A packet with explicit slot values.
    pub fn with_slots(slots: Vec<u64>) -> Self {
        Self {
            slots,
            bytes: Self::DEFAULT_BYTES,
            dropped: false,
            egress_port: None,
        }
    }

    /// Reads a field slot (0 if out of range — packets built for a
    /// narrower field space read unset fields as zero).
    pub fn get(&self, field: FieldRef) -> u64 {
        self.slots.get(field.index()).copied().unwrap_or(0)
    }

    /// Writes a field slot, growing the slot array if needed.
    pub fn set(&mut self, field: FieldRef, value: u64) {
        let idx = field.index();
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, 0);
        }
        self.slots[idx] = value;
    }

    /// The raw slot array.
    pub fn slots(&self) -> &[u64] {
        &self.slots
    }

    /// Hints the CPU to pull this packet's header slots into cache.
    /// Burst consumers use it to hide the heap dereference: packets
    /// staged in a ring arrive as structs, but their slot storage is
    /// wherever the producer allocated it, which is a strided walk (and
    /// so invisible to the hardware prefetcher) once traffic is
    /// RSS-split across shards.
    #[inline]
    pub fn prefetch(&self) {
        // SAFETY: `_mm_prefetch` only hints the cache with an address —
        // it performs no observable load — so it is sound on any valid
        // pointer, and `self.slots.as_ptr()` always is one.
        #[cfg(target_arch = "x86_64")]
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(self.slots.as_ptr() as *const i8, _MM_HINT_T0);
        }
    }

    /// A stable flow hash over all slots (FNV-1a), used for RSS dispatch
    /// across cores.
    pub fn flow_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &s in &self.slots {
            for b in s.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip_and_growth() {
        let mut p = Packet::with_slots(vec![1, 2]);
        assert_eq!(p.get(FieldRef(0)), 1);
        assert_eq!(p.get(FieldRef(9)), 0);
        p.set(FieldRef(9), 42);
        assert_eq!(p.get(FieldRef(9)), 42);
        assert_eq!(p.slots().len(), 10);
    }

    #[test]
    fn new_sizes_to_field_space() {
        let mut fs = FieldSpace::new();
        fs.intern("a");
        fs.intern("b");
        let p = Packet::new(&fs);
        assert_eq!(p.slots().len(), 2);
        assert_eq!(p.bytes, 512);
        assert!(!p.dropped);
    }

    #[test]
    fn flow_hash_is_stable_and_discriminates() {
        let a = Packet::with_slots(vec![1, 2, 3]);
        let b = Packet::with_slots(vec![1, 2, 3]);
        let c = Packet::with_slots(vec![1, 2, 4]);
        assert_eq!(a.flow_hash(), b.flow_hash());
        assert_ne!(a.flow_hash(), c.flow_hash());
    }
}
