//! Fixed-width inline match keys for the per-packet hot path.
//!
//! Match keys, flow-cache keys and distinct-key tracking all hash short
//! `u64` tuples on every packet. A `Vec<u64>` key heap-allocates per
//! lookup; [`SmallKey`] stores up to [`SmallKey::INLINE_CAP`] components
//! inline on the stack and only boxes wider keys. Because it implements
//! `Borrow<[u64]>` (with a slice-consistent `Hash`/`Eq`), maps keyed by
//! `SmallKey` can be queried with a borrowed `&[u64]` scratch buffer —
//! zero allocations per lookup for any key width.

use std::borrow::Borrow;
use std::hash::{Hash, Hasher};

/// A match/cache key: inline up to 4×`u64`, boxed beyond.
#[derive(Debug, Clone)]
pub enum SmallKey {
    /// Stack-resident key of at most [`SmallKey::INLINE_CAP`] components.
    /// Components beyond `len` are zero and ignored.
    Inline {
        /// Number of live components.
        len: u8,
        /// Component storage (first `len` are live).
        vals: [u64; SmallKey::INLINE_CAP],
    },
    /// Heap-resident key, used only when wider than the inline capacity —
    /// the representation is canonical: `Heap` always holds > 4 values.
    Heap(Box<[u64]>),
}

impl SmallKey {
    /// Maximum number of components stored without heap allocation.
    pub const INLINE_CAP: usize = 4;

    /// Builds a key from a slice (allocates only beyond the inline cap).
    pub fn from_slice(v: &[u64]) -> Self {
        if v.len() <= Self::INLINE_CAP {
            let mut vals = [0u64; Self::INLINE_CAP];
            vals[..v.len()].copy_from_slice(v);
            SmallKey::Inline {
                len: v.len() as u8,
                vals,
            }
        } else {
            SmallKey::Heap(v.into())
        }
    }

    /// The key's components.
    pub fn as_slice(&self) -> &[u64] {
        match self {
            SmallKey::Inline { len, vals } => &vals[..*len as usize],
            SmallKey::Heap(b) => b,
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether the key has no components.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PartialEq for SmallKey {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for SmallKey {}

impl Hash for SmallKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must match `<[u64] as Hash>::hash` exactly so `Borrow<[u64]>`
        // lookups agree with stored keys.
        self.as_slice().hash(state);
    }
}

impl Borrow<[u64]> for SmallKey {
    fn borrow(&self) -> &[u64] {
        self.as_slice()
    }
}

impl From<&[u64]> for SmallKey {
    fn from(v: &[u64]) -> Self {
        Self::from_slice(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fxhash::FxHashMap;

    #[test]
    fn inline_and_heap_roundtrip() {
        for n in 0..=8usize {
            let v: Vec<u64> = (0..n as u64).map(|i| i * 7 + 1).collect();
            let k = SmallKey::from_slice(&v);
            assert_eq!(k.as_slice(), &v[..]);
            assert_eq!(k.len(), n);
            match &k {
                SmallKey::Inline { .. } => assert!(n <= SmallKey::INLINE_CAP),
                SmallKey::Heap(_) => assert!(n > SmallKey::INLINE_CAP),
            }
        }
    }

    #[test]
    fn slice_borrow_lookup_agrees_with_owned_key() {
        let mut m: FxHashMap<SmallKey, u32> = FxHashMap::default();
        let narrow = [1u64, 2, 3];
        let wide = [9u64, 8, 7, 6, 5, 4];
        m.insert(SmallKey::from_slice(&narrow), 1);
        m.insert(SmallKey::from_slice(&wide), 2);
        assert_eq!(m.get(&narrow[..]), Some(&1));
        assert_eq!(m.get(&wide[..]), Some(&2));
        assert_eq!(m.get(&[1u64, 2][..]), None);
    }

    #[test]
    fn eq_ignores_dead_inline_slots() {
        let a = SmallKey::from_slice(&[5, 6]);
        let b = SmallKey::Inline {
            len: 2,
            vals: [5, 6, 0, 0],
        };
        assert_eq!(a, b);
        assert_ne!(a, SmallKey::from_slice(&[5, 6, 0]));
    }
}
