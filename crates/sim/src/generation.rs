//! The epoch/RCU generation chain behind live reconfiguration.
//!
//! When a [`crate::ShardedNic`] runs with live reconfiguration enabled,
//! control-plane operations no longer fan out to every shard under its
//! lock (which would serialize the control plane against packet
//! execution). Instead the dispatcher *publishes* each operation as a
//! numbered generation onto a shared [`GenChain`]; every work item it
//! subsequently dispatches is tagged with the latest generation id, and
//! a shard *adopts* pending generations lazily — the first packet of a
//! burst tagged with a newer generation walks the chain and applies
//! every publication it has not seen yet, in publication order, before
//! any packet of that burst executes.
//!
//! This gives the RCU structure its grace-period shape without a single
//! stop-the-world point:
//!
//! * **Publish**: the dispatcher appends a [`GenNode`] (a full program
//!   deploy or an entry-op delta) and bumps `latest`. Publication
//!   happens-before dispatch on the dispatcher thread, and the SPSC
//!   ring's release/acquire hand-off carries that edge to the workers —
//!   a worker that dequeues an item tagged `g` is guaranteed to see
//!   every chain node with id ≤ `g`.
//! * **Adopt**: shards move forward only (`adopt_to` is monotone), so a
//!   packet is executed by exactly the generation it was dispatched
//!   under — never a torn half-applied state, never an older one.
//! * **Reclaim**: once every shard's *adopted* watermark has passed a
//!   node it can never be read again and is popped from the chain. The
//!   dispatcher reclaims opportunistically at publish time and
//!   exhaustively at quiescence (`wait_idle`), so the chain is empty in
//!   steady state and memory stays bounded under swap storms.

use crate::compiled::CompiledPipeline;
use crate::sync::{AtomicU64, Mutex, Ordering};
use pipeleon_ir::{NextHops, NodeId, ProgramGraph, Table, TableEntry};
use std::collections::VecDeque;
use std::sync::Arc;

/// An entry-op delta applied to the live generation. Control has already
/// validated the operation against its replica before publishing, so
/// shard-side application is infallible by construction.
#[derive(Debug, Clone)]
pub enum PatchOp {
    /// `insert_entry(node, entry)`.
    Insert {
        /// Target table node.
        node: NodeId,
        /// Entry to append.
        entry: TableEntry,
    },
    /// `remove_entry(node, index)`.
    Remove {
        /// Target table node.
        node: NodeId,
        /// Entry index within the node's table.
        index: usize,
    },
    /// `replace_table(node, table, next)`.
    Replace {
        /// Target table node.
        node: NodeId,
        /// Replacement table contents.
        table: Table,
        /// Replacement next-hop wiring, if it changes.
        next: Option<NextHops>,
    },
}

/// What a generation publishes: a whole-program swap or a delta.
// Under `--cfg pipeleon_check` this enum is exported for the model tests
// (which only construct `Patch`); `Deploy` still carries the private
// `CompiledPipeline`, which is fine — tests never name that variant.
#[cfg_attr(pipeleon_check, allow(private_interfaces))]
#[derive(Debug)]
pub enum GenKind {
    /// A full program swap. Carries the pre-built compiled pipeline (when
    /// the compiled engine is active) so shards adopt by cloning instead
    /// of each re-lowering the program on the datapath.
    Deploy {
        /// The new program graph.
        graph: ProgramGraph,
        /// Pre-lowered compiled pipeline, when the compiled engine is on.
        compiled: Option<CompiledPipeline>,
    },
    /// An entry-op delta against the previous generation's program.
    Patch(PatchOp),
}

/// One published generation.
#[derive(Debug)]
pub struct GenNode {
    /// Monotone generation id; ids are dense (latest id = chain length +
    /// reclaimed prefix).
    pub id: u64,
    /// The published payload.
    pub kind: GenKind,
}

/// The shared publication chain. The dispatcher is the only publisher;
/// shards read pending spans under the mutex when they adopt.
#[derive(Debug)]
pub struct GenChain {
    nodes: Mutex<VecDeque<Arc<GenNode>>>,
    /// Highest published generation id (0 = the construction-time
    /// program, which is never on the chain).
    latest: AtomicU64,
}

impl Default for GenChain {
    fn default() -> Self {
        Self::new()
    }
}

impl GenChain {
    /// An empty chain at generation 0.
    pub fn new() -> Self {
        Self {
            nodes: Mutex::new(VecDeque::new()),
            latest: AtomicU64::new(0),
        }
    }

    /// Highest published generation id.
    pub fn latest(&self) -> u64 {
        // ORDERING: Acquire — pairs with the Release store in
        // `publish`: a reader that observes generation id `g` also
        // sees the chain node for `g` (the push_back under the mutex
        // happens-before the Release store of `latest`). On the
        // datapath this edge is belt-and-braces: the dispatcher reads
        // `latest` on its own thread and the ring hand-off carries it
        // to workers; `Acquire` keeps the standalone API safe too.
        self.latest.load(Ordering::Acquire)
    }

    /// Appends a new generation and returns its id.
    pub fn publish(&self, kind: GenKind) -> u64 {
        let mut nodes = self.nodes.lock().expect("generation chain poisoned");
        // ORDERING: Acquire — same edge as `latest()`; also the mutex
        // guarantees we are the only publisher in flight, so `id` is
        // unique and dense.
        let id = self.latest.load(Ordering::Acquire) + 1;
        nodes.push_back(Arc::new(GenNode { id, kind }));
        // ORDERING: Release — publishes the push_back above: any thread
        // whose Acquire load of `latest` returns `id` finds the node on
        // the chain (forward-only adoption relies on this; verified by
        // the GenChain models in crates/sim/tests/model.rs).
        self.latest.store(id, Ordering::Release);
        id
    }

    /// The pending span `(from, to]` in publication order — everything a
    /// shard at generation `from` must apply to reach `to`.
    pub fn pending(&self, from: u64, to: u64) -> Vec<Arc<GenNode>> {
        let nodes = self.nodes.lock().expect("generation chain poisoned");
        nodes
            .iter()
            .filter(|n| n.id > from && n.id <= to)
            .cloned()
            .collect()
    }

    /// Drops every node with id ≤ `min_adopted` (no shard can ever read
    /// them again).
    pub fn reclaim(&self, min_adopted: u64) {
        let mut nodes = self.nodes.lock().expect("generation chain poisoned");
        while nodes.front().is_some_and(|n| n.id <= min_adopted) {
            nodes.pop_front();
        }
    }

    /// Unreclaimed chain length (test/debug visibility).
    #[cfg(any(test, pipeleon_check))]
    pub fn len(&self) -> usize {
        self.nodes.lock().expect("generation chain poisoned").len()
    }

    /// Whether the chain is fully reclaimed (test/debug visibility).
    #[cfg(any(test, pipeleon_check))]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeleon_ir::MatchValue;

    fn patch(v: u64) -> GenKind {
        GenKind::Patch(PatchOp::Insert {
            node: NodeId(0),
            entry: TableEntry::new(vec![MatchValue::Exact(v)], 0),
        })
    }

    #[test]
    fn publish_numbers_generations_densely() {
        let c = GenChain::new();
        assert_eq!(c.latest(), 0);
        assert_eq!(c.publish(patch(1)), 1);
        assert_eq!(c.publish(patch(2)), 2);
        assert_eq!(c.latest(), 2);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn pending_returns_the_half_open_span_in_order() {
        let c = GenChain::new();
        for v in 0..5 {
            c.publish(patch(v));
        }
        let span = c.pending(1, 4);
        assert_eq!(span.iter().map(|n| n.id).collect::<Vec<_>>(), [2, 3, 4]);
        assert!(c.pending(4, 4).is_empty());
    }

    #[test]
    fn reclaim_drops_only_the_adopted_prefix() {
        let c = GenChain::new();
        for v in 0..4 {
            c.publish(patch(v));
        }
        c.reclaim(2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.pending(0, 4).first().unwrap().id, 3);
        c.reclaim(4);
        assert_eq!(c.len(), 0);
        // Ids keep counting after a full reclaim.
        assert_eq!(c.publish(patch(9)), 5);
    }
}
