//! The multicore SmartNIC model: RSS dispatch, line-rate arrival, and
//! throughput/latency measurement.
//!
//! Packets are dispatched to `num_cores` run-to-completion cores by flow
//! hash (RSS). A batch of `n` packets arrives paced at line rate; the
//! achieved throughput is `total_bits / max(arrival_time, busiest core's
//! busy time)`, capping at line rate exactly when the cores keep up — the
//! same observable the paper's TRex measurements produce.

use crate::backend::LiveSwap;
use crate::exec::{EngineMode, ExecReport, Executor, PacketTrace, SampleKeying};
use crate::packet::Packet;
use crate::specialize::{self, HotKeySketch, SpecConfig, SpecStats};
use pipeleon_cost::{CostParams, Placement, RuntimeProfile};
use pipeleon_ir::{IrError, NodeId, ProgramGraph, TableEntry};
use std::collections::HashMap;
use std::time::Instant;

/// How the sharded datapath ([`ShardedNic`](crate::ShardedNic))
/// coordinates its workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardMode {
    /// Fork-join per batch with a global arrival-order barrier: every
    /// packet is stamped with its global arrival index, and per-packet
    /// records are re-sorted into arrival order before reduction, so
    /// results are bit-identical to a single-threaded
    /// [`SmartNic`] for any worker count. Kept as the
    /// differential oracle for [`ShardMode::RunLoop`].
    BitExact,
    /// Persistent per-worker run loops fed by SPSC rings (the default):
    /// no global arrival stamping, no cross-shard sort, merge deferred
    /// to window boundaries. Forwarding decisions, per-flow order, and
    /// every integer statistic match `BitExact` exactly; float
    /// aggregates may differ in the last bits because summation order is
    /// per-shard. See the `sharded` module docs for the full invariant
    /// set.
    #[default]
    RunLoop,
}

impl ShardMode {
    /// CLI-facing name (`--shard-mode` value).
    pub fn as_str(&self) -> &'static str {
        match self {
            ShardMode::BitExact => "bit-exact",
            ShardMode::RunLoop => "run-loop",
        }
    }

    /// Parses a CLI `--shard-mode` value.
    pub fn parse(s: &str) -> Option<ShardMode> {
        match s {
            "bit-exact" | "bitexact" | "barrier" => Some(ShardMode::BitExact),
            "run-loop" | "runloop" => Some(ShardMode::RunLoop),
            _ => None,
        }
    }
}

/// Measurement configuration.
#[derive(Debug, Clone, Copy)]
pub struct NicConfig {
    /// Wire size used for throughput conversion when a packet does not
    /// carry its own (§5.1: 512 B everywhere).
    pub packet_bytes: usize,
    /// Internal chunk granularity for batch-oriented execution
    /// ([`SmartNic::process_batch`] and the CLI `--batch` flag). Purely a
    /// processing granularity: results are bit-identical for any value.
    pub batch: usize,
    /// Worker coordination for the sharded datapath; ignored by the
    /// single-threaded [`SmartNic`].
    pub shard_mode: ShardMode,
}

impl Default for NicConfig {
    fn default() -> Self {
        Self {
            packet_bytes: Packet::DEFAULT_BYTES,
            batch: 32,
            shard_mode: ShardMode::default(),
        }
    }
}

/// Aggregate statistics over one measured batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchStats {
    /// Packets processed.
    pub packets: u64,
    /// Packets dropped by the program.
    pub dropped: u64,
    /// Mean per-packet latency (ns).
    pub mean_latency_ns: f64,
    /// 99th-percentile latency (ns).
    pub p99_latency_ns: f64,
    /// Achieved throughput (Gbit/s), capped at line rate.
    pub throughput_gbps: f64,
    /// Offered load (Gbit/s) — the line rate.
    pub offered_gbps: f64,
    /// Total ASIC↔CPU migrations.
    pub migrations: u64,
    /// Total counter updates performed.
    pub counter_updates: u64,
}

/// What one packet contributed to a measured batch. [`SmartNic::measure`]
/// and the sharded datapath both reduce these through
/// [`BatchStats::from_records`], so N-worker results are bit-identical to
/// single-threaded ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketRecord {
    /// Global arrival index within the batch (0-based).
    pub arrival: u64,
    /// RSS core the packet was dispatched to (must be `< num_cores`).
    pub core: usize,
    /// Accounted latency (ns).
    pub latency_ns: f64,
    /// Whether the program dropped the packet.
    pub dropped: bool,
    /// ASIC↔CPU migrations performed.
    pub migrations: u64,
    /// Counter updates performed (after sampling).
    pub counter_updates: u64,
    /// Wire size in bits, for throughput conversion.
    pub bits: f64,
}

impl BatchStats {
    /// Reduces per-packet records into batch statistics. `records` must be
    /// in arrival order: float accumulation order (core busy-time, total
    /// bits, mean) is fixed by it, which is what makes merged shard
    /// results bit-reproducible regardless of worker count.
    pub fn from_records(
        records: &[PacketRecord],
        num_cores: usize,
        line_pps: f64,
        offered_gbps: f64,
    ) -> BatchStats {
        let cores = num_cores.max(1);
        let n = records.len() as u64;
        if n == 0 {
            return BatchStats {
                packets: 0,
                dropped: 0,
                mean_latency_ns: 0.0,
                p99_latency_ns: 0.0,
                throughput_gbps: 0.0,
                offered_gbps,
                migrations: 0,
                counter_updates: 0,
            };
        }
        let mut core_busy_ns = vec![0.0f64; cores];
        let mut latencies: Vec<f64> = Vec::with_capacity(records.len());
        let mut dropped = 0u64;
        let mut migrations = 0u64;
        let mut counter_updates = 0u64;
        let mut total_bits = 0.0f64;
        for r in records {
            core_busy_ns[r.core] += r.latency_ns;
            latencies.push(r.latency_ns);
            migrations += r.migrations;
            counter_updates += r.counter_updates;
            if r.dropped {
                dropped += 1;
            }
            total_bits += r.bits;
        }
        let arrival_ns = n as f64 / line_pps * 1e9;
        let busiest_ns = core_busy_ns.iter().cloned().fold(0.0f64, f64::max);
        let duration_ns = arrival_ns.max(busiest_ns);
        let throughput_gbps = (total_bits / duration_ns).min(offered_gbps);
        let mean = latencies.iter().sum::<f64>() / n as f64;
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
        // Nearest-rank percentile: the smallest value with at least
        // ceil(0.99·n) samples at or below it. The previous
        // `(n·0.99) as usize` truncation over-indexed (n=100 picked the
        // max instead of the 99th of 100).
        let rank = ((n as f64 * 0.99).ceil() as usize).clamp(1, latencies.len());
        let p99 = latencies[rank - 1];
        BatchStats {
            packets: n,
            dropped,
            mean_latency_ns: mean,
            p99_latency_ns: p99,
            throughput_gbps,
            offered_gbps,
            migrations,
            counter_updates,
        }
    }
}

/// A software SmartNIC: an [`Executor`] behind multicore RSS dispatch.
///
/// ```
/// use pipeleon_cost::CostParams;
/// use pipeleon_ir::{MatchKind, MatchValue, ProgramBuilder, TableEntry};
/// use pipeleon_sim::{Packet, SmartNic};
///
/// let mut b = ProgramBuilder::new();
/// let f = b.field("x");
/// let acl = b
///     .table("acl")
///     .key(f, MatchKind::Exact)
///     .action_nop("permit")
///     .action_drop("deny")
///     .entry(TableEntry::new(vec![MatchValue::Exact(13)], 1))
///     .finish();
/// let program = b.seal(acl).unwrap();
///
/// let mut nic = SmartNic::new(program.clone(), CostParams::bluefield2()).unwrap();
/// let mut pkt = Packet::new(&program.fields);
/// pkt.set(f, 13);
/// assert!(nic.process_one(&mut pkt).dropped);
///
/// // Batch measurement at line-rate arrival.
/// let batch: Vec<Packet> = (0..1000)
///     .map(|i| {
///         let mut p = Packet::new(&program.fields);
///         p.set(f, i);
///         p
///     })
///     .collect();
/// let stats = nic.measure(batch);
/// assert_eq!(stats.packets, 1000);
/// assert!(stats.throughput_gbps > 0.0);
/// ```
#[derive(Debug)]
pub struct SmartNic {
    exec: Executor,
    config: NicConfig,
    /// Whether live reconfiguration is enabled (deploys adopt the new
    /// program in place, preserving the pending profile window — the
    /// single-threaded reference for the sharded live datapath).
    live: bool,
    /// Monotone live-deploy counter (the single-threaded analogue of the
    /// sharded generation chain's ids, counting deploys only).
    generation: u64,
    /// The most recent live swap (telemetry).
    last_swap: Option<LiveSwap>,
    /// Open streaming measurement window, if any.
    measuring: Option<SmartMeasure>,
    /// Specialization planning thresholds.
    spec_cfg: SpecConfig,
    /// The last taken profile window, retained for specialize steps that
    /// run right after a window boundary (the controller's tick has
    /// already consumed the live counters by then).
    last_profile: RuntimeProfile,
    /// Hot-key sketches taken with the last profile window.
    last_sketches: HashMap<NodeId, HotKeySketch>,
}

/// An open streaming measurement window on a [`SmartNic`] (between
/// `measure_begin` and `measure_end`). Pacing continues across feeds, so
/// a begin/feed*/end window is bit-identical to one `measure` call over
/// the concatenated traffic.
#[derive(Debug)]
struct SmartMeasure {
    batch_start_s: f64,
    line_pps: f64,
    cores: usize,
    offered_gbps: f64,
    records: Vec<PacketRecord>,
    n: u64,
}

impl SmartNic {
    /// Deploys `graph` on a NIC with the given target parameters.
    pub fn new(graph: ProgramGraph, params: CostParams) -> Result<Self, IrError> {
        Ok(Self {
            exec: Executor::new(graph, params)?,
            config: NicConfig::default(),
            live: false,
            generation: 0,
            last_swap: None,
            measuring: None,
            spec_cfg: SpecConfig::default(),
            last_profile: RuntimeProfile::empty(),
            last_sketches: HashMap::new(),
        })
    }

    /// Sets the measurement configuration.
    pub fn with_config(mut self, config: NicConfig) -> Self {
        self.config = config;
        self
    }

    /// The deployed program.
    pub fn graph(&self) -> &ProgramGraph {
        self.exec.graph()
    }

    /// The target parameters.
    pub fn params(&self) -> &CostParams {
        self.exec.params()
    }

    /// Direct access to the executor (placement, instrumentation, caches).
    pub fn executor_mut(&mut self) -> &mut Executor {
        &mut self.exec
    }

    /// Live-reconfigures the NIC with a new program layout. With live
    /// reconfiguration enabled ([`SmartNic::set_live_reconfig`]), the
    /// swap *adopts* the new program in place: the pending profile
    /// window, sampled observations, flow sequence counts, placements,
    /// and instrumentation carry across — exactly the semantics each
    /// shard of a live [`crate::ShardedNic`] applies when it adopts a
    /// published generation, making this NIC the single-threaded
    /// reference for live-reconfiguration differentials. Without live
    /// mode, the classic deploy resets the profile window.
    pub fn deploy(&mut self, graph: ProgramGraph) -> Result<(), IrError> {
        if self.live {
            let t0 = Instant::now();
            graph.validate()?;
            self.exec.adopt_graph(graph, None);
            self.generation += 1;
            self.last_swap = Some(LiveSwap {
                generation: self.generation,
                // Single-threaded: nothing is ever in flight at a swap.
                in_flight: 0,
                latency_ns: t0.elapsed().as_nanos() as f64,
            });
            return Ok(());
        }
        self.exec.deploy(graph)
    }

    /// Enables or disables live reconfiguration (swap-in-place deploys).
    pub fn set_live_reconfig(&mut self, on: bool) {
        self.live = on;
    }

    /// Whether live reconfiguration is enabled.
    pub fn live_reconfig(&self) -> bool {
        self.live
    }

    /// The most recent live program swap, if any.
    pub fn last_swap(&self) -> Option<LiveSwap> {
        self.last_swap
    }

    /// Inserts a table entry (control-plane API).
    pub fn insert_entry(&mut self, node: NodeId, entry: TableEntry) -> Result<(), IrError> {
        self.exec.insert_entry(node, entry)
    }

    /// Removes a table entry by index (control-plane API).
    pub fn remove_entry(&mut self, node: NodeId, index: usize) -> Result<TableEntry, IrError> {
        self.exec.remove_entry(node, index)
    }

    /// Flushes one flow cache.
    pub fn flush_cache(&mut self, node: NodeId) {
        self.exec.flush_cache(node)
    }

    /// Replaces a table definition in place (see
    /// [`Executor::replace_table`]).
    pub fn replace_table(
        &mut self,
        node: NodeId,
        table: pipeleon_ir::Table,
        next: Option<pipeleon_ir::NextHops>,
    ) -> Result<(), IrError> {
        self.exec.replace_table(node, table, next)
    }

    /// Sets a flow cache's insertion rate limit.
    pub fn set_cache_insertion_limit(&mut self, node: NodeId, rate_per_s: f64) {
        self.exec.set_cache_insertion_limit(node, rate_per_s)
    }

    /// Enables counter instrumentation with `sample_every` packet sampling.
    pub fn set_instrumentation(&mut self, enabled: bool, sample_every: u64) {
        self.exec.set_instrumentation(enabled, sample_every)
    }

    /// Selects how sampling decisions are keyed (see [`SampleKeying`]).
    /// [`SampleKeying::FlowKeyed`] makes this NIC the single-threaded
    /// reference for the run-loop sharded datapath's sampled counters
    /// and histograms.
    pub fn set_sample_keying(&mut self, keying: SampleKeying) {
        self.exec.set_sample_keying(keying)
    }

    /// Sets node placements for heterogeneous execution.
    pub fn set_placement(&mut self, placement: Vec<Placement>) {
        self.exec.set_placement(placement)
    }

    /// Assigns tables to memory tiers (§6 hierarchical-memory extension).
    pub fn set_memory_tiers(&mut self, tiers: Vec<pipeleon_cost::MemoryTier>) {
        self.exec.set_memory_tiers(tiers)
    }

    /// Takes the profile collected since the last call. The window (and
    /// its hot-key sketches) is retained for the next specialize step.
    pub fn take_profile(&mut self) -> RuntimeProfile {
        let p = self.exec.take_profile();
        self.last_profile = p.clone();
        self.last_sketches = self.exec.take_hot_sketches();
        p
    }

    /// Sets the specialization planning thresholds.
    pub fn set_spec_config(&mut self, cfg: SpecConfig) {
        self.spec_cfg = cfg;
    }

    /// Builds a specialization plan from the last profile window (merged
    /// with whatever has accumulated since) and applies it to the
    /// compiled pipeline. Returns `true` if the pipeline changed.
    ///
    /// Deliberately *generation-silent*: the specialized pipeline is the
    /// same program, bit-exactly — it is not a reconfiguration, and it
    /// neither bumps the deploy generation nor reports a live swap.
    pub fn specialize(&mut self) -> bool {
        let mut profile = self.last_profile.clone();
        profile.merge(self.exec.sampled_profile());
        let mut sketches = self.last_sketches.clone();
        self.exec.peek_hot_sketches_into(&mut sketches);
        let plan = specialize::build_plan(self.exec.graph(), &profile, &sketches, &self.spec_cfg);
        self.exec.specialize_with(&plan).is_some()
    }

    /// Reverts the compiled pipeline to the verbatim lowering. Returns
    /// `true` if it was specialized.
    pub fn despecialize(&mut self) -> bool {
        self.exec.despecialize().is_some()
    }

    /// Current specialization counters and state.
    pub fn spec_stats(&self) -> SpecStats {
        self.exec.spec_stats()
    }

    /// Takes the latency histograms recorded for sampled packets since
    /// the last call.
    pub fn take_observations(&mut self) -> crate::observe::ExecObservations {
        self.exec.take_observations()
    }

    /// Current simulation time in seconds.
    pub fn now_s(&self) -> f64 {
        self.exec.now_s
    }

    /// Selects the packet-execution engine ([`EngineMode`]): the
    /// reference interpreter or the compiled datapath (the default).
    pub fn set_engine_mode(&mut self, mode: EngineMode) {
        self.exec.set_engine_mode(mode)
    }

    /// The currently selected packet-execution engine.
    pub fn engine_mode(&self) -> EngineMode {
        self.exec.engine_mode()
    }

    /// Processes one packet (single-core semantics; no arrival pacing).
    pub fn process_one(&mut self, packet: &mut Packet) -> ExecReport {
        self.exec.process(packet)
    }

    /// Processes a batch of packets in place (single-core semantics; no
    /// arrival pacing), returning one report per packet. On the compiled
    /// engine the pipeline is compiled once and reused across the whole
    /// batch with zero steady-state heap allocations per packet.
    pub fn process_batch(&mut self, packets: &mut [Packet]) -> Vec<ExecReport> {
        self.exec.process_batch(packets)
    }

    /// Processes one packet with a trace.
    pub fn process_one_traced(
        &mut self,
        packet: &mut Packet,
        trace: &mut PacketTrace,
    ) -> ExecReport {
        self.exec.process_traced(packet, trace)
    }

    /// Runs a batch offered at line rate through the multicore NIC and
    /// reports achieved throughput and latency statistics. Advances the
    /// simulation clock by the batch's arrival time.
    pub fn measure<I>(&mut self, packets: I) -> BatchStats
    where
        I: IntoIterator<Item = Packet>,
    {
        self.measure_begin();
        self.measure_feed(packets);
        self.measure_end()
    }

    /// Opens a streaming measurement window (snapshotting the pacing
    /// parameters and the window's start time).
    pub fn measure_begin(&mut self) {
        debug_assert!(self.measuring.is_none(), "measurement window already open");
        self.measuring = Some(SmartMeasure {
            batch_start_s: self.exec.now_s,
            line_pps: self.exec.params().line_rate_pps(self.config.packet_bytes),
            cores: self.exec.params().num_cores.max(1),
            offered_gbps: self.exec.params().line_rate_gbps,
            records: Vec::new(),
            n: 0,
        });
    }

    /// Feeds one chunk into the open measurement window; pacing
    /// continues from the previous feed, so control-plane operations
    /// between feeds land at chunk boundaries of one continuous
    /// arrival schedule.
    pub fn measure_feed<I>(&mut self, packets: I)
    where
        I: IntoIterator<Item = Packet>,
    {
        let stream = self.measuring.as_mut().expect("measure_begin first");
        for mut pkt in packets {
            // Arrival pacing drives the simulation clock (rate limiters,
            // phase timing).
            self.exec.now_s = stream.batch_start_s + stream.n as f64 / stream.line_pps;
            let core = (pkt.flow_hash() % stream.cores as u64) as usize;
            let bytes = if pkt.bytes > 0 {
                pkt.bytes
            } else {
                self.config.packet_bytes
            };
            let r = self.exec.process(&mut pkt);
            stream.records.push(PacketRecord {
                arrival: stream.n,
                core,
                latency_ns: r.latency_ns,
                dropped: r.dropped,
                migrations: r.migrations as u64,
                counter_updates: r.counter_updates as u64,
                bits: (bytes * 8) as f64,
            });
            stream.n += 1;
        }
    }

    /// Closes the measurement window, advancing the clock to the
    /// window's end and returning the merged statistics.
    pub fn measure_end(&mut self) -> BatchStats {
        let stream = self.measuring.take().expect("measure_begin first");
        if stream.n > 0 {
            let arrival_ns = stream.n as f64 / stream.line_pps * 1e9;
            self.exec.now_s = stream.batch_start_s + arrival_ns / 1e9;
        }
        BatchStats::from_records(
            &stream.records,
            stream.cores,
            stream.line_pps,
            stream.offered_gbps,
        )
    }

    /// Convenience: measures the mean per-packet latency of a batch
    /// without arrival pacing (used for cost-model calibration).
    pub fn mean_latency<I>(&mut self, packets: I) -> f64
    where
        I: IntoIterator<Item = Packet>,
    {
        let mut sum = 0.0;
        let mut n = 0u64;
        for mut pkt in packets {
            sum += self.exec.process(&mut pkt).latency_ns;
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeleon_ir::{MatchKind, Primitive, ProgramBuilder};

    fn linear_program(tables: usize) -> ProgramGraph {
        let mut b = ProgramBuilder::new();
        let f = b.field("x");
        let mut first = None;
        for i in 0..tables {
            let t = b
                .table(format!("t{i}"))
                .key(f, MatchKind::Exact)
                .action("a", vec![Primitive::Nop])
                .finish();
            first.get_or_insert(t);
        }
        b.seal(first.unwrap()).unwrap()
    }

    fn packets(n: usize) -> Vec<Packet> {
        (0..n).map(|i| Packet::with_slots(vec![i as u64])).collect()
    }

    /// Nearest-rank p99 over latencies 1..=n ns is exactly ceil(0.99·n).
    /// The pre-fix truncating index `(n·0.99) as usize` returned the max
    /// for n=100 (rank 100) instead of the nearest-rank value (rank 99).
    #[test]
    fn p99_is_nearest_rank() {
        for (n, expected) in [(1u64, 1.0), (99, 99.0), (100, 99.0), (101, 100.0)] {
            let records: Vec<PacketRecord> = (0..n)
                .map(|i| PacketRecord {
                    arrival: i,
                    core: 0,
                    latency_ns: (i + 1) as f64,
                    dropped: false,
                    migrations: 0,
                    counter_updates: 0,
                    bits: 4096.0,
                })
                .collect();
            let s = BatchStats::from_records(&records, 1, 1e6, 100.0);
            assert_eq!(
                s.p99_latency_ns, expected,
                "n={n}: expected nearest-rank p99 {expected}, got {}",
                s.p99_latency_ns
            );
        }
    }

    #[test]
    fn small_program_hits_line_rate() {
        let mut nic = SmartNic::new(linear_program(2), CostParams::bluefield2()).unwrap();
        let s = nic.measure(packets(5000));
        assert_eq!(s.packets, 5000);
        assert!(
            (s.throughput_gbps - s.offered_gbps).abs() < 1e-6,
            "got {} vs offered {}",
            s.throughput_gbps,
            s.offered_gbps
        );
    }

    #[test]
    fn large_program_falls_below_line_rate() {
        let mut nic = SmartNic::new(linear_program(40), CostParams::bluefield2()).unwrap();
        let s = nic.measure(packets(5000));
        assert!(
            s.throughput_gbps < s.offered_gbps * 0.95,
            "got {} vs offered {}",
            s.throughput_gbps,
            s.offered_gbps
        );
        assert!(s.mean_latency_ns > 0.0);
        assert!(s.p99_latency_ns >= s.mean_latency_ns * 0.5);
    }

    #[test]
    fn throughput_monotonically_decreases_with_program_size() {
        let mut prev = f64::INFINITY;
        for n in [5, 15, 30, 45] {
            let mut nic = SmartNic::new(linear_program(n), CostParams::bluefield2()).unwrap();
            let s = nic.measure(packets(3000));
            assert!(
                s.throughput_gbps <= prev + 1e-9,
                "throughput increased with more tables"
            );
            prev = s.throughput_gbps;
        }
    }

    #[test]
    fn clock_advances_with_batches() {
        let mut nic = SmartNic::new(linear_program(2), CostParams::bluefield2()).unwrap();
        assert_eq!(nic.now_s(), 0.0);
        nic.measure(packets(1000));
        let t1 = nic.now_s();
        assert!(t1 > 0.0);
        nic.measure(packets(1000));
        assert!(nic.now_s() > t1);
    }

    #[test]
    fn empty_batch_is_harmless() {
        let mut nic = SmartNic::new(linear_program(2), CostParams::bluefield2()).unwrap();
        let s = nic.measure(Vec::new());
        assert_eq!(s.packets, 0);
        assert_eq!(s.throughput_gbps, 0.0);
    }

    #[test]
    fn mean_latency_matches_process_one() {
        let mut nic = SmartNic::new(linear_program(3), CostParams::bluefield2()).unwrap();
        let single = nic.process_one(&mut Packet::with_slots(vec![7])).latency_ns;
        let mean = nic.mean_latency(packets(100));
        assert!((single - mean).abs() < 1e-9);
    }
}
