//! Model-checked verification of the lock-free datapath.
//!
//! Build with `RUSTFLAGS="--cfg pipeleon_check"`; in ordinary builds
//! this file compiles to nothing. Under the cfg, [`pipeleon_sim::ring`]
//! and the generation chain import their atomics/cells through the
//! `crate::sync` facade, which resolves to `pipeleon-check`'s tracked
//! shims — so these tests explore interleavings of the *actual datapath
//! sources*, not a parallel model that could drift.
//!
//! Two suites:
//!
//! 1. **Protocol proofs** — the DESIGN.md §15 prose claims, checked over
//!    every schedule within the preemption bound: the SPSC ring loses,
//!    duplicates and reorders nothing, never reads an uninitialized or
//!    in-flight slot (including across wraparound and under burst ops),
//!    and drops exactly the unpopped items; the generation chain adopts
//!    forward-only, never reclaims a reachable node, and every adopter
//!    sees the full pending span its `latest` read promised.
//! 2. **Mutant kills** — every seeded weakening of the ring's memory
//!    orderings ([`ring::RingOrderings`]) must produce a counterexample.
//!    If the checker cannot kill a mutant, the protocol proofs above are
//!    vacuous; this suite is what makes them falsifiable.

#![cfg(pipeleon_check)]

use pipeleon_check as check;
use pipeleon_sim::generation::{GenChain, GenKind, PatchOp};
use pipeleon_sim::ring::{self, RingOrderings};

use check::sync::atomic::{AtomicU64, Ordering};
use check::{model, model_expect_failure, Config};
use pipeleon_ir::{MatchValue, NodeId, TableEntry};
use std::sync::atomic::AtomicUsize as StdAtomicUsize;
use std::sync::atomic::Ordering as StdOrdering;
use std::sync::Arc;

/// The interleaving floor the acceptance criteria demand from each
/// headline ring/GenChain proof: the configuration must drive the
/// checker through at least this many *distinct* schedules.
const MIN_INTERLEAVINGS: u64 = 10_000;

fn patch(v: u64) -> GenKind {
    GenKind::Patch(PatchOp::Insert {
        node: NodeId(0),
        entry: TableEntry::new(vec![MatchValue::Exact(v)], 0),
    })
}

// ---------------------------------------------------------------------
// Suite 1: protocol proofs.
// ---------------------------------------------------------------------

/// The headline SPSC proof: capacity-2 ring, eight items pushed through
/// it (so the buffer wraps four times and both retry paths trigger), a real
/// producer thread against the root-thread consumer. Every schedule must
/// deliver all items exactly once, in order, with no race / uninit /
/// use-after-free diagnostics from the tracked cells.
#[test]
fn ring_delivers_every_item_exactly_once_in_order() {
    let report = model!(Config::exhaustive(3), || {
        const ITEMS: u64 = 8;
        let (mut p, mut c) = ring::spsc::<u64>(2);
        let t = check::thread::spawn(move || {
            let mut next = 0u64;
            while next < ITEMS {
                match p.push(next) {
                    Ok(()) => next += 1,
                    Err(_) => check::thread::yield_now(),
                }
            }
        });
        let mut expect = 0u64;
        while expect < ITEMS {
            match c.pop() {
                Some(v) => {
                    assert_eq!(v, expect, "lost/duplicated/reordered item");
                    expect += 1;
                }
                None => check::thread::yield_now(),
            }
        }
        t.join().unwrap();
        assert_eq!(c.pop(), None, "extra item materialized");
    });
    assert!(report.complete, "exploration must exhaust the bound");
    assert!(
        report.executions >= MIN_INTERLEAVINGS,
        "expected >= {MIN_INTERLEAVINGS} distinct interleavings, got {}",
        report.executions
    );
}

/// Burst variant of the same proof: the producer publishes runs with a
/// single Release store and the consumer drains with `pop_burst`. The
/// one-publication-covers-the-run claim is exactly what a torn burst
/// would violate.
#[test]
fn ring_burst_ops_preserve_fifo_under_all_schedules() {
    let report = model!(Config::exhaustive(4), || {
        const ITEMS: u64 = 8;
        let (mut p, mut c) = ring::spsc::<u64>(2);
        let t = check::thread::spawn(move || {
            let mut src = (0..ITEMS).peekable();
            while src.peek().is_some() {
                if p.push_burst(&mut src) == 0 {
                    check::thread::yield_now();
                }
            }
        });
        let mut got = Vec::new();
        let mut burst = Vec::with_capacity(4);
        while (got.len() as u64) < ITEMS {
            if c.pop_burst(&mut burst, 4) == 0 {
                check::thread::yield_now();
                continue;
            }
            got.append(&mut burst);
        }
        assert_eq!(got, (0..ITEMS).collect::<Vec<_>>(), "burst tore the FIFO");
        t.join().unwrap();
    });
    assert!(report.complete);
    assert!(
        report.executions >= MIN_INTERLEAVINGS,
        "expected >= {MIN_INTERLEAVINGS} distinct interleavings, got {}",
        report.executions
    );
}

/// Drop correctness across wraparound: push five payloads through a
/// capacity-2 ring, pop only three, then drop both endpoints. Exactly
/// the two unpopped payloads must be dropped by the ring (each exactly
/// once — a double drop would double-count), and the three popped ones
/// by the consumer, under every schedule.
#[test]
fn ring_drops_exactly_the_unpopped_items_across_wraparound() {
    struct Counted(&'static StdAtomicUsize);
    impl Drop for Counted {
        fn drop(&mut self) {
            // Untracked std atomic on purpose: drop bookkeeping is test
            // instrumentation, not protocol state under check.
            self.0.fetch_add(1, StdOrdering::SeqCst);
        }
    }
    static DROPS: StdAtomicUsize = StdAtomicUsize::new(0);

    let report = model!(Config::exhaustive(2), || {
        DROPS.store(0, StdOrdering::SeqCst);
        const ITEMS: usize = 5;
        const POPPED: usize = 3;
        let (mut p, mut c) = ring::spsc::<Counted>(2);
        let t = check::thread::spawn(move || {
            let mut next = 0;
            while next < ITEMS {
                match p.push(Counted(&DROPS)) {
                    Ok(()) => next += 1,
                    Err(v) => {
                        // Returned item must not be dropped by the ring;
                        // forget it so the count stays attributable.
                        std::mem::forget(v);
                        check::thread::yield_now();
                    }
                }
            }
        });
        let mut got = 0;
        while got < POPPED {
            match c.pop() {
                Some(v) => {
                    drop(v);
                    got += 1;
                }
                None => check::thread::yield_now(),
            }
        }
        t.join().unwrap();
        // The producer half (and its two leftover in-flight items'
        // ownership) transferred into the ring; the producer thread has
        // exited, so only the popped payloads are dropped so far.
        assert_eq!(DROPS.load(StdOrdering::SeqCst), POPPED);
        drop(c);
        assert_eq!(
            DROPS.load(StdOrdering::SeqCst),
            ITEMS,
            "ring dropped the wrong number of leftovers"
        );
    });
    assert!(report.complete);
}

/// GenChain publisher/adopter visibility: whatever `latest` id the
/// adopter observes, the chain must already hold the *entire* pending
/// span up to it — dense ids, publication order, correct payloads. This
/// is the §15 claim that the Release store of `latest` publishes the
/// `push_back` behind it.
#[test]
fn genchain_adopter_sees_the_full_span_its_latest_read_promised() {
    let report = model!(Config::exhaustive(5), || {
        const GENS: u64 = 4;
        let chain = Arc::new(GenChain::new());
        let c2 = Arc::clone(&chain);
        let t = check::thread::spawn(move || {
            for v in 1..=GENS {
                assert_eq!(c2.publish(patch(v)), v, "ids must be dense");
            }
        });
        // Forward-only adoption loop racing the publisher.
        let mut seen = 0u64;
        while seen < GENS {
            let latest = chain.latest();
            assert!(latest >= seen, "latest went backwards");
            if latest == seen {
                check::thread::yield_now();
                continue;
            }
            let span = chain.pending(seen, latest);
            assert_eq!(
                span.len() as u64,
                latest - seen,
                "pending span is missing publications the latest read promised"
            );
            for (i, node) in span.iter().enumerate() {
                assert_eq!(node.id, seen + 1 + i as u64, "span out of order");
                match &node.kind {
                    GenKind::Patch(PatchOp::Insert { entry, .. }) => {
                        assert_eq!(entry.matches[0], MatchValue::Exact(node.id));
                    }
                    _ => panic!("unexpected publication payload"),
                }
            }
            seen = latest;
        }
        t.join().unwrap();
    });
    assert!(report.complete);
    assert!(
        report.executions >= MIN_INTERLEAVINGS,
        "expected >= {MIN_INTERLEAVINGS} distinct interleavings, got {}",
        report.executions
    );
}

/// GenChain reclaim safety — the dispatcher-side protocol from
/// `sharded.rs`: the publisher reclaims up to the minimum adopted
/// watermark (Acquire) that the adopter publishes with Release after
/// walking its span. Under no schedule may a node disappear between an
/// adopter's `latest` read and its `pending` walk, and adoption must
/// stay monotone.
#[test]
fn genchain_never_reclaims_a_reachable_node() {
    let report = model!(Config::exhaustive(4), || {
        const GENS: u64 = 3;
        let chain = Arc::new(GenChain::new());
        let adopted = Arc::new(AtomicU64::new(0));
        let (c2, a2) = (Arc::clone(&chain), Arc::clone(&adopted));
        let t = check::thread::spawn(move || {
            let mut seen = 0u64;
            while seen < GENS {
                let latest = c2.latest();
                if latest == seen {
                    check::thread::yield_now();
                    continue;
                }
                let span = c2.pending(seen, latest);
                // Reclaim must never have outrun our published
                // watermark: every node in (seen, latest] is reachable.
                assert_eq!(
                    span.len() as u64,
                    latest - seen,
                    "a reachable node was reclaimed"
                );
                seen = latest;
                // ORDERING: Release — publishes the span walk above to
                // the publisher's Acquire min-scan (same edge as the
                // `adopted` watermark in sharded.rs).
                a2.store(seen, Ordering::Release);
            }
        });
        for v in 1..=GENS {
            chain.publish(patch(v));
            // Dispatcher-side opportunistic reclaim, as in `publish` +
            // `reclaim_adopted`: drop everything at or below the
            // minimum adopted watermark.
            // ORDERING: Acquire — pairs with the adopter's Release.
            let min = adopted.load(Ordering::Acquire);
            chain.reclaim(min);
        }
        t.join().unwrap();
        // Quiescent: adopter is done, so a final reclaim empties the
        // chain completely.
        chain.reclaim(adopted.load(Ordering::Acquire));
        assert_eq!(chain.len(), 0, "fully adopted chain must drain");
    });
    assert!(report.complete);
    assert!(
        report.executions >= MIN_INTERLEAVINGS,
        "expected >= {MIN_INTERLEAVINGS} distinct interleavings, got {}",
        report.executions
    );
}

/// The dispatcher→worker completion hand-off from `sharded.rs`, in
/// miniature: the worker drains the ring, bumps `processed` with a
/// Release fetch_add after finishing the batch, and the dispatcher's
/// Acquire load of `processed == enqueued` must make every item's
/// side-effects visible (here: the sum the worker accumulated into a
/// tracked cell).
#[test]
fn sharded_completion_handoff_publishes_worker_effects() {
    use check::cell::CheckCell;
    let report = model!(Config::exhaustive(2), || {
        const ITEMS: u64 = 3;
        let (mut p, mut c) = ring::spsc::<u64>(2);
        let processed = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(CheckCell::new(0u64));
        let (pr2, s2) = (Arc::clone(&processed), Arc::clone(&sum));
        let worker = check::thread::spawn(move || {
            let mut done = 0u64;
            while done < ITEMS {
                match c.pop() {
                    Some(v) => {
                        s2.with_mut(|p| unsafe { *p += v });
                        done += 1;
                        // ORDERING: Release — publishes the slot work
                        // above, exactly like drain_burst's fetch_add.
                        pr2.fetch_add(1, Ordering::Release);
                    }
                    None => check::thread::yield_now(),
                }
            }
        });
        let mut src = (1..=ITEMS).peekable();
        while src.peek().is_some() {
            if p.push_burst(&mut src) == 0 {
                check::thread::yield_now();
            }
        }
        // wait_idle: spin on the Acquire-loaded completion count.
        // ORDERING: Acquire — pairs with the worker's Release fetch_add.
        while processed.load(Ordering::Acquire) != ITEMS {
            check::thread::yield_now();
        }
        // The Acquire edge makes the worker's cell writes visible; a
        // missing edge would be flagged as a data race right here.
        let total = sum.with(|p| unsafe { *p });
        assert_eq!(total, (1..=ITEMS).sum::<u64>());
        worker.join().unwrap();
    });
    assert!(report.complete);
}

// ---------------------------------------------------------------------
// Suite 2: mutant kills. Each seeded weakening of the ring's protocol
// must be caught — same workload shape as the proofs above, so a pass
// here means the proofs actually exercise every edge they claim.
// ---------------------------------------------------------------------

/// Drives `items` values through a capacity-2 mutant ring; the workload
/// every ordering mutant is expected to fail under.
fn mutant_workload(ord: RingOrderings, items: u64) -> impl Fn() + Send + Sync + 'static {
    move || {
        let (mut p, mut c) = ring::spsc_with_orderings::<u64>(2, ord);
        let t = check::thread::spawn(move || {
            let mut next = 0u64;
            while next < items {
                match p.push(next) {
                    Ok(()) => next += 1,
                    Err(_) => check::thread::yield_now(),
                }
            }
        });
        let mut expect = 0u64;
        while expect < items {
            match c.pop() {
                Some(v) => {
                    assert_eq!(v, expect);
                    expect += 1;
                }
                None => check::thread::yield_now(),
            }
        }
        t.join().unwrap();
    }
}

/// Mutant 1: the producer publishes `tail` with `Relaxed` — the slot
/// write is no longer ordered before the consumer's read.
#[test]
fn mutant_tail_store_relaxed_is_killed() {
    let ord = RingOrderings {
        tail_store: Ordering::Relaxed,
        ..RingOrderings::default()
    };
    model_expect_failure!(Config::exhaustive(2), mutant_workload(ord, 4), "data race");
}

/// Mutant 2: the consumer refreshes `tail` with `Relaxed` — it may act
/// on a tail value without acquiring the writes behind it.
#[test]
fn mutant_tail_load_relaxed_is_killed() {
    let ord = RingOrderings {
        tail_load: Ordering::Relaxed,
        ..RingOrderings::default()
    };
    model_expect_failure!(Config::exhaustive(2), mutant_workload(ord, 4), "data race");
}

/// Mutant 3: the consumer publishes `head` with `Relaxed` — the slot
/// read is no longer ordered before the producer's overwrite, which
/// needs wraparound to bite (hence 4 items through capacity 2).
#[test]
fn mutant_head_store_relaxed_is_killed() {
    let ord = RingOrderings {
        head_store: Ordering::Relaxed,
        ..RingOrderings::default()
    };
    model_expect_failure!(Config::exhaustive(2), mutant_workload(ord, 4), "data race");
}

/// Mutant 4: the producer refreshes `head` with `Relaxed` — it may
/// reuse a slot without acquiring the consumer's read of it.
#[test]
fn mutant_head_load_relaxed_is_killed() {
    let ord = RingOrderings {
        head_load: Ordering::Relaxed,
        ..RingOrderings::default()
    };
    model_expect_failure!(Config::exhaustive(2), mutant_workload(ord, 4), "data race");
}

/// Mutant 5: publish-before-write — the consumer can observe the bumped
/// tail and read a slot the producer has not written yet. Depending on
/// where the schedule interleaves, this surfaces as an uninitialized
/// read (first lap) or a cell race; both carry the word "cell".
#[test]
fn mutant_publish_before_write_is_killed() {
    let ord = RingOrderings {
        publish_before_write: true,
        ..RingOrderings::default()
    };
    model_expect_failure!(Config::exhaustive(2), mutant_workload(ord, 4), "cell");
}

/// Mutant 6: advance-before-read — the consumer frees the slot before
/// reading it, so the producer can overwrite it mid-read on wraparound.
#[test]
fn mutant_advance_before_read_is_killed() {
    let ord = RingOrderings {
        advance_before_read: true,
        ..RingOrderings::default()
    };
    model_expect_failure!(Config::exhaustive(2), mutant_workload(ord, 4), "data race");
}

/// Mutant 7 (logic, not ordering): a reclaim watermark read with the
/// adopter's publication *skipped* — reclaiming at `latest` while an
/// adopter is still walking — must break the reachable-span invariant.
#[test]
fn mutant_eager_reclaim_is_killed() {
    model_expect_failure!(
        Config::exhaustive(2),
        || {
            const GENS: u64 = 2;
            let chain = Arc::new(GenChain::new());
            let c2 = Arc::clone(&chain);
            let t = check::thread::spawn(move || {
                let mut seen = 0u64;
                while seen < GENS {
                    let latest = c2.latest();
                    if latest == seen {
                        check::thread::yield_now();
                        continue;
                    }
                    let span = c2.pending(seen, latest);
                    assert_eq!(
                        span.len() as u64,
                        latest - seen,
                        "a reachable node was reclaimed"
                    );
                    seen = latest;
                }
            });
            for v in 1..=GENS {
                let id = chain.publish(patch(v));
                // BUG under test: reclaim at the just-published id
                // instead of the minimum adopted watermark.
                chain.reclaim(id);
            }
            t.join().unwrap();
        },
        "a reachable node was reclaimed"
    );
}

/// Sanity anchor for the mutant suite: the very same workload with the
/// *correct* orderings passes, so the kills above are attributable to
/// the seeded weakening and nothing else.
#[test]
fn mutant_workload_with_correct_orderings_passes() {
    let report = model!(
        Config::exhaustive(2),
        mutant_workload(RingOrderings::default(), 4)
    );
    assert!(report.complete);
}
