//! Property tests for the SPSC ring ([`pipeleon_sim::ring`]) against a
//! `VecDeque` reference model. Cross-thread behaviour is no longer
//! smoke-tested here: the deterministic model-checked suite in
//! `tests/model.rs` (build with `RUSTFLAGS="--cfg pipeleon_check"`)
//! explores the head/tail Release/Acquire protocol exhaustively, which
//! strictly subsumes the old two-thread race-and-hope smoke.
//!
//! The model check drives an arbitrary interleaved sequence of
//! single-item and burst enqueue/dequeue operations (from the one
//! producer and one consumer side the type system enforces) and asserts
//! the ring agrees with the deque on every observable: popped values in
//! order (no loss, no duplication, no reordering), reported occupancy,
//! and full/empty refusals — including across many wraparounds at the
//! capacity boundary.

use pipeleon_sim::ring;
use proptest::prelude::*;
use std::collections::VecDeque;

/// One scripted operation against both the ring and the model.
#[derive(Debug, Clone)]
enum Op {
    Push,
    PushBurst(usize),
    Pop,
    PopBurst(usize),
    Len,
}

/// (The vendored proptest stand-in has no `prop_oneof`, so a selector
/// integer picks the variant.)
fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..11, 1usize..24).prop_map(|(sel, n)| match sel {
        0..=2 => Op::Push,
        3..=4 => Op::PushBurst(n),
        5..=7 => Op::Pop,
        8..=9 => Op::PopBurst(n),
        _ => Op::Len,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The ring is observationally a bounded FIFO: every op sequence
    /// produces exactly the deque's behaviour.
    #[test]
    fn ring_matches_vecdeque_model(
        capacity in 0usize..20,
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let (mut p, mut c) = ring::spsc::<u64>(capacity);
        let cap = p.capacity();
        prop_assert!(cap >= capacity.max(2));
        prop_assert!(cap.is_power_of_two());
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64; // monotone payloads make dup/reorder visible
        for op in ops {
            match op {
                Op::Push => {
                    let r = p.push(next);
                    if model.len() < cap {
                        prop_assert!(r.is_ok(), "push refused below capacity");
                        model.push_back(next);
                        next += 1;
                    } else {
                        prop_assert_eq!(r, Err(next), "push accepted at capacity");
                    }
                }
                Op::PushBurst(n) => {
                    let want = n.min(cap - model.len());
                    let mut src = next..next + n as u64;
                    let pushed = p.push_burst(&mut src);
                    prop_assert_eq!(pushed, want, "burst pushed a different run");
                    for v in next..next + pushed as u64 {
                        model.push_back(v);
                    }
                    // Unpushed items stay in the iterator.
                    prop_assert_eq!(src.next(), (next + pushed as u64..).next().filter(|_| pushed < n));
                    next += pushed as u64;
                }
                Op::Pop => {
                    prop_assert_eq!(c.pop(), model.pop_front(), "pop order diverged");
                }
                Op::PopBurst(n) => {
                    let mut out = Vec::new();
                    let got = c.pop_burst(&mut out, n);
                    prop_assert_eq!(got, out.len());
                    prop_assert_eq!(got, n.min(model.len()), "burst popped a different run");
                    for v in out {
                        prop_assert_eq!(Some(v), model.pop_front(), "burst order diverged");
                    }
                }
                Op::Len => {
                    prop_assert_eq!(c.len(), model.len(), "occupancy diverged");
                    prop_assert_eq!(c.is_empty(), model.is_empty());
                    prop_assert_eq!(p.free(), cap - model.len(), "free slots diverged");
                }
            }
        }
        // Drain: everything pushed and not yet popped comes out in order.
        let mut out = Vec::new();
        c.pop_burst(&mut out, usize::MAX);
        prop_assert_eq!(out, model.into_iter().collect::<Vec<_>>(), "drain diverged");
    }

    /// Wraparound at the capacity boundary specifically: fill to
    /// capacity, drain a prefix, refill — many times over, far past the
    /// index wrapping the mask.
    #[test]
    fn wraparound_at_capacity_boundary(
        capacity in 0usize..10,
        rounds in 1usize..40,
        drain in 1usize..8,
    ) {
        let (mut p, mut c) = ring::spsc::<u64>(capacity);
        let cap = p.capacity();
        let drain = drain.min(cap);
        let mut next = 0u64;
        let mut expect = 0u64;
        for _ in 0..rounds {
            while p.push(next).is_ok() {
                next += 1;
            }
            prop_assert_eq!(c.len(), cap, "full ring must hold exactly capacity");
            for _ in 0..drain {
                prop_assert_eq!(c.pop(), Some(expect), "wraparound reordered items");
                expect += 1;
            }
        }
        let mut out = Vec::new();
        c.pop_burst(&mut out, usize::MAX);
        prop_assert_eq!(out, (expect..next).collect::<Vec<_>>());
        prop_assert_eq!(c.pop(), None);
    }
}
