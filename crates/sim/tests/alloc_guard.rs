//! Allocation-regression guard for the compiled datapath.
//!
//! The compiled engine's contract is *zero steady-state heap allocations
//! per packet*: after the pipeline is compiled and caches/scratch are
//! warm, processing a packet must not touch the allocator — not for match
//! keys, not for masked-key scratch, not for flow-cache hits. This test
//! installs a counting global allocator and pins that contract; any
//! future per-packet `Vec`/`Box`/`String` sneaking into the hot path
//! fails here with an exact allocation count.
//!
//! Deliberately a single `#[test]` in its own integration-test binary:
//! the allocation counter is process-global, so concurrently running
//! tests would pollute the measurement.

use pipeleon_cost::CostParams;
use pipeleon_ir::{
    CacheRole, MatchKind, MatchValue, Primitive, ProgramBuilder, ProgramGraph, TableEntry,
};
use pipeleon_sim::{EngineMode, Executor, Packet};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed by `f`.
fn count_allocs(mut f: impl FnMut()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

/// Exact + LPM + multi-way ternary chain: every lookup shape the compiled
/// engine supports. (The sim crate cannot depend on the workloads
/// synthesizer — that would be a dependency cycle — so the program is
/// built inline.)
fn mixed_program() -> ProgramGraph {
    let mut b = ProgramBuilder::new();
    let a = b.field("a");
    let c = b.field("c");
    let d = b.field("d");
    let out = b.field("out");
    let mut exact = b
        .table("exact")
        .key(a, MatchKind::Exact)
        .action("mark", vec![Primitive::set(out, 1)])
        .action_nop("pass")
        .default_action(1);
    for k in 0..16u64 {
        exact = exact.entry(TableEntry::new(vec![MatchValue::Exact(k)], 0));
    }
    let exact = exact.finish();
    let mut lpm = b
        .table("lpm")
        .key(c, MatchKind::Lpm)
        .action("mark", vec![Primitive::set(out, 2)])
        .action_nop("pass")
        .default_action(1);
    for p in [8u8, 4, 0] {
        lpm = lpm.entry(TableEntry::new(
            vec![MatchValue::Lpm {
                value: 0,
                prefix_len: p,
            }],
            0,
        ));
    }
    let lpm = lpm.finish();
    let tern = b
        .table("ternary")
        .key(d, MatchKind::Ternary)
        .action("mark", vec![Primitive::set(out, 3)])
        .action_nop("pass")
        .default_action(1)
        .entry(TableEntry::with_priority(
            vec![MatchValue::Ternary {
                value: 0,
                mask: 0x7,
            }],
            0,
            2,
        ))
        .entry(TableEntry::with_priority(
            vec![MatchValue::Ternary {
                value: 1,
                mask: 0x1,
            }],
            0,
            1,
        ))
        .finish();
    let _ = (lpm, tern);
    b.seal(exact).unwrap()
}

/// Flow-cache program: cache -> [hit: sink, miss: heavy -> sink].
fn cached_program() -> ProgramGraph {
    let mut b = ProgramBuilder::new();
    let x = b.field("x");
    let y = b.field("y");
    let heavy = b
        .table("heavy")
        .key(x, MatchKind::Ternary)
        .action("mark", vec![Primitive::set(y, 1)])
        .default_action(0)
        .entry(TableEntry::with_priority(
            vec![MatchValue::Ternary {
                value: 0,
                mask: 0xF,
            }],
            0,
            1,
        ))
        .finish();
    b.set_next(heavy, None);
    let cache = b
        .table("cache")
        .key(x, MatchKind::Exact)
        .action_nop("hit")
        .action_nop("miss")
        .default_action(1)
        .cache_role(CacheRole::FlowCache)
        .max_entries(64)
        .by_action(vec![None, Some(heavy)])
        .finish();
    b.seal(cache).unwrap()
}

#[test]
fn compiled_steady_state_is_allocation_free() {
    let params = CostParams::bluefield2();

    // --- Mixed match-kind chain -------------------------------------
    let mut ex = Executor::new(mixed_program(), params.clone()).unwrap();
    ex.set_engine_mode(EngineMode::Compiled);
    let mut packets: Vec<Packet> = (0..256u64)
        .map(|i| Packet::with_slots(vec![i % 32, i % 11, (i * 3) % 8, 0]))
        .collect();
    // Warm-up: first packet compiles the pipeline and grows scratch.
    for p in packets.iter_mut() {
        ex.process(p);
    }
    let compiled_allocs = count_allocs(|| {
        for p in packets.iter_mut() {
            ex.process(p);
        }
    });
    assert_eq!(
        compiled_allocs,
        0,
        "compiled engine allocated {compiled_allocs} times over {} steady-state packets",
        packets.len()
    );

    // --- Flow-cache hits (probe + LRU bump + action replay) ----------
    let mut ex = Executor::new(cached_program(), params.clone()).unwrap();
    ex.set_engine_mode(EngineMode::Compiled);
    let mut packets: Vec<Packet> = (0..256u64)
        .map(|i| Packet::with_slots(vec![i % 48, 0]))
        .collect();
    // Warm-up installs all 48 flows (capacity 64), so the measured pass
    // is pure hit-path: probe, replay, recency update.
    for p in packets.iter_mut() {
        ex.process(p);
    }
    let hit_allocs = count_allocs(|| {
        for p in packets.iter_mut() {
            ex.process(p);
        }
    });
    assert_eq!(
        hit_allocs,
        0,
        "flow-cache hit path allocated {hit_allocs} times over {} packets",
        packets.len()
    );

    // Informational contrast: the interpreter on the same warmed state.
    // (Not asserted — the guard is about the compiled engine.)
    let mut ex = Executor::new(mixed_program(), params).unwrap();
    ex.set_engine_mode(EngineMode::Interpreter);
    let mut packets: Vec<Packet> = (0..256u64)
        .map(|i| Packet::with_slots(vec![i % 32, i % 11, (i * 3) % 8, 0]))
        .collect();
    for p in packets.iter_mut() {
        ex.process(p);
    }
    let interp_allocs = count_allocs(|| {
        for p in packets.iter_mut() {
            ex.process(p);
        }
    });
    eprintln!("interpreter steady-state allocations over 256 packets: {interp_allocs}");
}
