//! Malformed-input hardening for the wire codec.
//!
//! The ingest server feeds `decode` raw bytes straight off a public UDP
//! socket, so the codec must be a *total* function over arbitrary input:
//! every malformed frame maps to a typed [`DecodeError`] (which the
//! server turns into a drop counter), and no input may panic. These
//! properties fuzz that contract, and the structured cases pin the
//! specific error variant each corruption class must produce.

use pipeleon_ir::ProgramGraph;
use pipeleon_net::{decode, encode, DecodeError, FieldMap};
use pipeleon_sim::Packet;
use proptest::prelude::*;

fn graph(names: &[&str]) -> ProgramGraph {
    let mut g = ProgramGraph::new("hardening");
    for n in names {
        g.fields.intern(n);
    }
    g
}

/// A map with two header-bound slots and two residue slots.
fn mixed_map() -> (ProgramGraph, FieldMap) {
    let g = graph(&["ipv4.src", "ipv4.dst", "meta.state", "meta.cookie"]);
    let m = FieldMap::from_graph(&g).expect("map");
    (g, m)
}

/// A map with residue only (nothing inferable into headers).
fn residue_only_map() -> (ProgramGraph, FieldMap) {
    let g = graph(&["flow.f0", "flow.f1", "flow.f2"]);
    let m = FieldMap::from_graph(&g).expect("map");
    (g, m)
}

proptest! {
    /// Arbitrary byte soup never panics the decoder, under maps with
    /// and without header bindings.
    #[test]
    fn decode_is_total_over_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let (_, m1) = mixed_map();
        let (_, m2) = residue_only_map();
        // Outcome unconstrained (random bytes are overwhelmingly
        // malformed); the property is "returns, never panics".
        let _ = decode(&bytes, &m1);
        let _ = decode(&bytes, &m2);
    }

    /// Single-byte corruption of a well-formed frame never panics, and
    /// whenever it still decodes, the sequence/slot payload is sane
    /// (same slot count — the map, not the attacker, sizes the packet).
    #[test]
    fn bit_flips_never_panic(
        src in any::<u64>(),
        cookie in any::<u64>(),
        pos_raw in any::<u16>(),
        val in any::<u8>(),
    ) {
        let (g, m) = mixed_map();
        let mut p = Packet::new(&g.fields);
        p.set(g.fields.get("ipv4.src").unwrap(), src & 0xFFFF_FFFF);
        p.set(g.fields.get("meta.cookie").unwrap(), cookie);
        let mut buf = encode(&p, &m, 9, false).expect("encode");
        let pos = usize::from(pos_raw) % buf.len();
        buf[pos] = val;
        if let Ok(d) = decode(&buf, &m) {
            prop_assert_eq!(d.packet.slots().len(), m.slot_count());
        }
    }

    /// Losslessness: encode → decode is the identity over any packet of
    /// the program's field space (header-bound values clamped to their
    /// field width; residue values unconstrained u64).
    #[test]
    fn encode_decode_round_trips(
        src in any::<u64>(),
        dst in any::<u64>(),
        state in any::<u64>(),
        cookie in any::<u64>(),
        seq in any::<u64>(),
        bytes in 0u64..65_536,
        dropped in any::<u8>(),
        egress in any::<u8>(),
    ) {
        let (g, m) = mixed_map();
        let mut p = Packet::new(&g.fields);
        p.set(g.fields.get("ipv4.src").unwrap(), src & 0xFFFF_FFFF);
        p.set(g.fields.get("ipv4.dst").unwrap(), dst & 0xFFFF_FFFF);
        p.set(g.fields.get("meta.state").unwrap(), state);
        p.set(g.fields.get("meta.cookie").unwrap(), cookie);
        p.bytes = bytes as usize;
        p.dropped = dropped & 1 == 1;
        p.egress_port = if egress & 1 == 1 { Some(u32::from(egress)) } else { None };
        let buf = encode(&p, &m, seq, true).expect("encode");
        let d = decode(&buf, &m).expect("decode");
        prop_assert_eq!(&d.packet, &p);
        prop_assert_eq!(d.seq, seq);
        prop_assert!(d.response);
    }

    /// Every truncation point of a valid frame yields a typed error.
    #[test]
    fn truncation_always_errors(cut_raw in any::<u16>()) {
        let (g, m) = mixed_map();
        let p = Packet::new(&g.fields);
        let buf = encode(&p, &m, 0, false).expect("encode");
        let cut = usize::from(cut_raw) % buf.len();
        prop_assert!(decode(&buf[..cut], &m).is_err());
    }
}

#[test]
fn corruption_classes_map_to_their_error_variants() {
    let (g, m) = mixed_map();
    let p = Packet::new(&g.fields);
    let good = encode(&p, &m, 1, false).expect("encode");

    // Truncated below the fixed header.
    assert!(matches!(
        decode(&good[..20], &m),
        Err(DecodeError::Truncated { .. })
    ));

    // Wrong ethertype (ARP).
    let mut b = good.clone();
    b[12] = 0x08;
    b[13] = 0x06;
    assert!(matches!(
        decode(&b, &m),
        Err(DecodeError::BadEthertype(0x0806))
    ));

    // Bad IHL (options present — unsupported).
    let mut b = good.clone();
    b[14] = 0x46;
    assert_eq!(decode(&b, &m), Err(DecodeError::BadIhl(0x46)));

    // Non-UDP transport.
    let mut b = good.clone();
    b[14 + 9] = 6;
    assert_eq!(decode(&b, &m), Err(DecodeError::BadProto(6)));

    // Foreign payload (not a pipeleon frame).
    let mut b = good.clone();
    b[42] = b'H';
    assert!(matches!(decode(&b, &m), Err(DecodeError::BadMagic(_))));

    // Future payload version.
    let mut b = good.clone();
    b[42 + 4] = 2;
    assert_eq!(decode(&b, &m), Err(DecodeError::BadVersion(2)));

    // Frame built for a different program (wrong residue count).
    let (g2, m2) = residue_only_map();
    let other = encode(&Packet::new(&g2.fields), &m2, 0, false).expect("encode");
    assert!(matches!(
        decode(&other, &m),
        Err(DecodeError::ResidueMismatch { have: 3, need: 2 })
    ));
}
