//! # pipeleon-net — the socket-facing ingest subsystem
//!
//! Serves live UDP traffic through the emulated datapath, closing the
//! loop between the wire and the optimizer: real peers send real
//! Ethernet/IPv4/UDP frames, the server decodes them into emulator
//! packets, runs them through a [`NicBackend`](pipeleon_sim::NicBackend)
//! (`SmartNic` or the sharded run-loop), and echoes each verdict back.
//!
//! Module map:
//!
//! * [`fieldmap`] — the declarative wire contract: which packet slots
//!   travel in real header fields ([`FieldMap`], [`WireField`]), built
//!   from a program's serialized [`WireBinding`](pipeleon_ir::WireBinding)
//!   list or by conservative name inference.
//! * [`wire`] — the frame codec: symmetric [`encode`]/[`decode`] over
//!   Eth/IPv4/UDP plus a slot-residue payload section; total over
//!   arbitrary bytes (typed [`DecodeError`], never a panic).
//! * [`ingest`] — the serving loop: [`IngestServer`] recv-bursts
//!   datagrams, decodes in batches, feeds `process_batch`, tx-bursts
//!   responses, and accounts every drop; end-to-end latency lands in a
//!   `pipeleon_e2e_latency_ns` histogram.
//! * [`client`] — the loopback traffic driver: [`NetClient`] replays
//!   workload batches over a real socket with per-request RTT capture.
//!
//! No external dependencies and no unsafe code: the crate is plain std
//! `UdpSocket` over the workspace's own IR/sim/obs crates.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod fieldmap;
pub mod ingest;
pub mod wire;

pub use client::{ClientError, Echo, NetClient, ReplayReport};
pub use fieldmap::{FieldMap, MapError, WireField};
pub use ingest::{IngestConfig, IngestServer, IngestStats};
pub use wire::{decode, encode, encode_into, DecodeError, DecodedFrame, EncodeError};

#[cfg(test)]
mod tests {
    use super::*;
    use pipeleon_sim::{Packet, SmartNic};
    use pipeleon_workloads::scenarios::LoadBalancer;

    /// End-to-end in one process: bind a server on an OS port, replay a
    /// small scenario batch through it, and check verdicts match a
    /// direct `process_batch` oracle.
    #[test]
    fn loopback_echo_matches_in_process_oracle() {
        let lb = LoadBalancer::build();
        let map = FieldMap::from_graph(&lb.graph).unwrap();
        let mut traffic = lb.traffic(&[0.0, 0.5], 32, 7);
        let packets: Vec<Packet> = (0..64).map(|_| traffic.next_packet()).collect();

        // Oracle: the same packets straight through a SmartNic.
        let params = pipeleon_cost::CostParams::bluefield2();
        let mut oracle_nic = SmartNic::new(lb.graph.clone(), params.clone()).expect("nic");
        let mut oracle = packets.clone();
        oracle_nic.process_batch(&mut oracle);

        let mut server_nic = SmartNic::new(lb.graph.clone(), params).expect("nic");
        let mut server = IngestServer::bind("127.0.0.1:0", IngestConfig::default()).expect("bind");
        let addr = server.local_addr().expect("addr");

        let client = NetClient::connect(addr).expect("connect").with_window(8);
        // Single-threaded poll interleave: replay in a thread, serve here.
        let handle = {
            let packets = packets.clone();
            let map2 = map.clone();
            std::thread::spawn(move || client.replay(&packets, &map2))
        };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let mut served = 0u64;
        while served < packets.len() as u64 && std::time::Instant::now() < deadline {
            served = server
                .poll_once(&mut server_nic, &map)
                .map(|_| server.stats().responses)
                .expect("poll");
            if server.stats().frames == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        let report = handle.join().expect("join").expect("replay");

        assert_eq!(report.echoes.len(), packets.len());
        assert_eq!(report.decode_errors, 0);
        assert_eq!(server.stats().decode_errors, 0);
        assert_eq!(server.e2e().count(), packets.len() as u64);
        for (echo, expect) in report.echoes.iter().zip(oracle.iter()) {
            assert_eq!(&echo.packet, expect, "seq {}", echo.seq);
        }
    }
}
