//! The loopback traffic driver.
//!
//! [`NetClient`] replays a pre-built packet batch (e.g. a
//! `crates/workloads` scenario's traffic) against a live
//! [`IngestServer`](crate::IngestServer) over a real UDP socket,
//! capturing the per-request round-trip time and the server's verdict
//! for every packet.
//!
//! Replay is **windowed**: at most `window` requests are outstanding at
//! any moment, which keeps kernel socket buffers from overflowing on
//! loopback and makes the replay lossless in practice. A request whose
//! response does not arrive within the read timeout is a hard
//! [`ClientError::Timeout`] — tests use this to assert zero loss.

use crate::fieldmap::FieldMap;
use crate::wire::{self, EncodeError};
use pipeleon_sim::Packet;
use std::fmt;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::{Duration, Instant};

/// One echoed verdict from the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Echo {
    /// The request's sequence number (its index in the replayed batch).
    pub seq: u64,
    /// The post-datapath packet: mutated slots, drop flag, egress port.
    pub packet: Packet,
    /// Round-trip time from send to response receipt.
    pub rtt_ns: u64,
}

/// The outcome of a full replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Verdicts in sequence order, one per replayed packet.
    pub echoes: Vec<Echo>,
    /// Response datagrams that failed to decode or carried an unknown
    /// or duplicate sequence number.
    pub decode_errors: u64,
}

impl ReplayReport {
    /// Mean round-trip time over the replay, in nanoseconds.
    pub fn mean_rtt_ns(&self) -> f64 {
        if self.echoes.is_empty() {
            return 0.0;
        }
        let sum: u128 = self.echoes.iter().map(|e| u128::from(e.rtt_ns)).sum();
        sum as f64 / self.echoes.len() as f64
    }
}

/// Why a replay failed.
#[derive(Debug)]
pub enum ClientError {
    /// A socket operation failed.
    Io(io::Error),
    /// A request packet did not fit the program's wire contract.
    Encode(EncodeError),
    /// The read timeout expired with responses still outstanding.
    Timeout {
        /// Responses received before the timeout.
        received: usize,
        /// Responses expected in total.
        expected: usize,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Encode(e) => write!(f, "encode error: {e}"),
            ClientError::Timeout { received, expected } => {
                write!(f, "timed out with {received}/{expected} responses received")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<EncodeError> for ClientError {
    fn from(e: EncodeError) -> Self {
        ClientError::Encode(e)
    }
}

/// A UDP client that replays packet batches against an ingest server.
pub struct NetClient {
    socket: UdpSocket,
    window: usize,
    timeout: Duration,
}

impl NetClient {
    /// Connects a fresh OS-assigned UDP socket to `server`.
    pub fn connect<A: ToSocketAddrs>(server: A) -> io::Result<NetClient> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.connect(server)?;
        Ok(NetClient {
            socket,
            window: 128,
            timeout: Duration::from_secs(5),
        })
    }

    /// Caps outstanding (sent, unanswered) requests. Clamped to ≥ 1.
    pub fn with_window(mut self, window: usize) -> NetClient {
        self.window = window.max(1);
        self
    }

    /// Per-response read timeout; expiry makes the replay fail hard.
    pub fn with_timeout(mut self, timeout: Duration) -> NetClient {
        self.timeout = timeout;
        self
    }

    /// The client socket's local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Replays `packets` in order (seq = index), windowed, collecting
    /// every verdict. Returns only when **all** responses have arrived
    /// or a timeout/socket error ends the replay.
    pub fn replay(&self, packets: &[Packet], map: &FieldMap) -> Result<ReplayReport, ClientError> {
        self.socket.set_read_timeout(Some(self.timeout))?;
        let n = packets.len();
        let mut echoes: Vec<Option<Echo>> = vec![None; n];
        let mut sent_at: Vec<Option<Instant>> = vec![None; n];
        let mut decode_errors = 0u64;
        let mut received = 0usize;
        let mut frame = vec![0u8; map.frame_len()];
        let mut rx = vec![0u8; map.frame_len() + 64];

        let mut next = 0usize;
        while received < n {
            // Fill the window.
            while next < n && next - received < self.window {
                let len = wire::encode_into(&mut frame, &packets[next], map, next as u64, false)?;
                sent_at[next] = Some(Instant::now());
                self.socket.send(&frame[..len])?;
                next += 1;
            }
            // Await one response.
            let got = match self.socket.recv(&mut rx) {
                Ok(got) => got,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Err(ClientError::Timeout {
                        received,
                        expected: n,
                    });
                }
                Err(e) => return Err(ClientError::Io(e)),
            };
            match wire::decode(&rx[..got], map) {
                Ok(d) => {
                    let seq = d.seq as usize;
                    match sent_at.get(seq).copied().flatten() {
                        Some(t0) if echoes[seq].is_none() => {
                            let rtt = t0.elapsed();
                            echoes[seq] = Some(Echo {
                                seq: d.seq,
                                packet: d.packet,
                                rtt_ns: u64::try_from(rtt.as_nanos()).unwrap_or(u64::MAX),
                            });
                            received += 1;
                        }
                        // Unknown or duplicate seq: count, keep going.
                        _ => decode_errors += 1,
                    }
                }
                Err(_) => decode_errors += 1,
            }
        }
        Ok(ReplayReport {
            echoes: echoes
                .into_iter()
                .map(|e| e.expect("all received"))
                .collect(),
            decode_errors,
        })
    }
}
