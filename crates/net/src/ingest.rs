//! The socket-facing ingest run-loop.
//!
//! An [`IngestServer`] owns a non-blocking UDP socket and reusable frame
//! buffers. Each [`IngestServer::poll_once`] call performs one cycle:
//!
//! 1. **recv-burst** — drain up to `burst` datagrams into the reusable
//!    buffers, stamping an ingest [`Instant`] per frame;
//! 2. **decode** — run the wire codec over each frame; malformed frames
//!    are dropped with per-reason accounting, never served;
//! 3. **process** — feed the whole burst to the backend's
//!    `process_batch` (one datapath call per burst, matching the
//!    emulator's run-loop batching);
//! 4. **tx-burst** — encode each verdict into a response frame and send
//!    it back to the requesting peer, recording end-to-end latency
//!    (ingest timestamp → response handed to the kernel) into a
//!    [`LatencyHistogram`].
//!
//! Overload policy: in-flight buffering is bounded by the burst size;
//! anything the kernel socket buffer cannot hold is dropped by the OS
//! before we see it, and anything we cannot decode, encode, or send is
//! dropped *with an explicit counter* — the server never blocks on a
//! slow peer and never buffers unboundedly.

use crate::fieldmap::FieldMap;
use crate::wire::{self, DecodeError};
use pipeleon_obs::{LatencyHistogram, MetricsRegistry};
use pipeleon_sim::{NicBackend, Packet};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Instant;

/// Tuning knobs for an [`IngestServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestConfig {
    /// Maximum datagrams pulled per poll cycle (bounds in-flight work).
    pub burst: usize,
    /// Receive buffer size per frame; larger datagrams are truncated by
    /// the kernel and counted as oversize drops.
    pub max_frame: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            burst: 64,
            max_frame: 2048,
        }
    }
}

/// Cumulative ingest/egress accounting for one server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Well-formed frames decoded and served.
    pub frames: u64,
    /// Frames rejected by the codec.
    pub decode_errors: u64,
    /// Datagrams that filled the receive buffer (likely truncated).
    pub oversize: u64,
    /// Responses that failed width validation at encode time.
    pub encode_errors: u64,
    /// Responses the kernel refused to send.
    pub tx_dropped: u64,
    /// Response frames handed to the kernel.
    pub responses: u64,
}

impl IngestStats {
    /// Total frames dropped for any reason.
    pub fn dropped(&self) -> u64 {
        self.decode_errors + self.oversize + self.encode_errors + self.tx_dropped
    }
}

struct Slot {
    buf: Vec<u8>,
    len: usize,
    peer: SocketAddr,
    at: Instant,
}

/// A UDP server that serves live traffic through a [`NicBackend`].
///
/// The server owns the socket and codec state but *borrows* the backend
/// per poll call, so callers can interleave control-plane work (e.g.
/// controller ticks and live reconfiguration) between poll cycles on
/// the very same backend the socket traffic flows through.
pub struct IngestServer {
    socket: UdpSocket,
    config: IngestConfig,
    slots: Vec<Slot>,
    out: Vec<u8>,
    stats: IngestStats,
    e2e: LatencyHistogram,
    last_decode_error: Option<DecodeError>,
}

impl IngestServer {
    /// Binds a non-blocking UDP socket on `addr` (use port 0 to let the
    /// OS pick; read it back with [`IngestServer::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: IngestConfig) -> io::Result<IngestServer> {
        let socket = UdpSocket::bind(addr)?;
        socket.set_nonblocking(true)?;
        let placeholder: SocketAddr = ([0, 0, 0, 0], 0).into();
        let slots = (0..config.burst.max(1))
            .map(|_| Slot {
                buf: vec![0u8; config.max_frame.max(wire::HDR_LEN + wire::PAYLOAD_FIXED)],
                len: 0,
                peer: placeholder,
                at: Instant::now(),
            })
            .collect();
        Ok(IngestServer {
            socket,
            config,
            slots,
            out: Vec::new(),
            stats: IngestStats::default(),
            e2e: LatencyHistogram::new(),
            last_decode_error: None,
        })
    }

    /// The bound socket address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// The configuration this server was bound with.
    pub fn config(&self) -> IngestConfig {
        self.config
    }

    /// One recv-burst / decode / process / tx-burst cycle against `nic`.
    ///
    /// Returns the number of datagrams received (0 when the socket was
    /// idle — callers typically sleep briefly before polling again).
    /// Real socket errors other than `WouldBlock` surface as `Err`.
    pub fn poll_once<N: NicBackend>(&mut self, nic: &mut N, map: &FieldMap) -> io::Result<usize> {
        // 1. recv-burst into the reusable slots.
        let mut received = 0usize;
        while received < self.slots.len() {
            let slot = &mut self.slots[received];
            match self.socket.recv_from(&mut slot.buf) {
                Ok((n, peer)) => {
                    slot.len = n;
                    slot.peer = peer;
                    slot.at = Instant::now();
                    received += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // Loopback peers that closed their socket surface async
                // ICMP errors here; treat as an empty slot, not a crash.
                Err(e) if e.kind() == io::ErrorKind::ConnectionReset => continue,
                Err(e) => return Err(e),
            }
        }
        if received == 0 {
            return Ok(0);
        }

        // 2. decode the burst.
        let mut packets: Vec<Packet> = Vec::with_capacity(received);
        let mut origin: Vec<usize> = Vec::with_capacity(received);
        let mut seqs: Vec<u64> = Vec::with_capacity(received);
        for (i, slot) in self.slots[..received].iter().enumerate() {
            if slot.len == slot.buf.len() {
                // recv filled the buffer exactly: the datagram may have
                // been truncated by the kernel, so we cannot trust it.
                self.stats.oversize += 1;
                continue;
            }
            match wire::decode(&slot.buf[..slot.len], map) {
                Ok(frame) => {
                    packets.push(frame.packet);
                    origin.push(i);
                    seqs.push(frame.seq);
                }
                Err(e) => {
                    self.stats.decode_errors += 1;
                    self.last_decode_error = Some(e);
                }
            }
        }
        self.stats.frames += packets.len() as u64;

        // 3. one datapath call for the whole burst.
        if !packets.is_empty() {
            let _reports = nic.process_batch(&mut packets);
        }

        // 4. tx-burst the verdicts back to their peers.
        for (k, packet) in packets.iter().enumerate() {
            let slot = &self.slots[origin[k]];
            self.out.resize(map.frame_len(), 0);
            match wire::encode_into(&mut self.out, packet, map, seqs[k], true) {
                Ok(n) => match self.socket.send_to(&self.out[..n], slot.peer) {
                    Ok(_) => {
                        self.stats.responses += 1;
                        self.e2e.record_duration(slot.at.elapsed());
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        self.stats.tx_dropped += 1;
                    }
                    Err(e) if e.kind() == io::ErrorKind::ConnectionReset => {
                        self.stats.tx_dropped += 1;
                    }
                    Err(e) => return Err(e),
                },
                Err(_) => self.stats.encode_errors += 1,
            }
        }
        Ok(received)
    }

    /// Cumulative counters since bind.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// The end-to-end latency histogram (ingest → response sent).
    pub fn e2e(&self) -> &LatencyHistogram {
        &self.e2e
    }

    /// The most recent codec rejection, for diagnostics.
    pub fn last_decode_error(&self) -> Option<DecodeError> {
        self.last_decode_error
    }

    /// Exports ingest counters and the e2e histogram into `m` under the
    /// `pipeleon_ingest_*` / `pipeleon_e2e_latency_ns` names. Counters
    /// use absolute sets so zero-valued series still render.
    pub fn metrics_into(&self, m: &mut MetricsRegistry) {
        m.help(
            "pipeleon_ingest_frames_total",
            "Well-formed frames decoded and served through the datapath",
        );
        m.counter_set("pipeleon_ingest_frames_total", &[], self.stats.frames);
        m.help(
            "pipeleon_ingest_responses_total",
            "Response frames handed to the kernel",
        );
        m.counter_set("pipeleon_ingest_responses_total", &[], self.stats.responses);
        m.help(
            "pipeleon_ingest_dropped_total",
            "Frames dropped by the ingest path, by reason",
        );
        for (reason, v) in [
            ("decode_error", self.stats.decode_errors),
            ("oversize", self.stats.oversize),
            ("encode_error", self.stats.encode_errors),
            ("tx", self.stats.tx_dropped),
        ] {
            m.counter_set("pipeleon_ingest_dropped_total", &[("reason", reason)], v);
        }
        m.help(
            "pipeleon_e2e_latency_ns",
            "End-to-end latency from socket ingest to response handed to the kernel",
        );
        m.merge_histogram("pipeleon_e2e_latency_ns", &[], &self.e2e);
    }
}
