//! The Ethernet/IPv4/UDP frame codec.
//!
//! Every pipeleon frame is a real Ethernet II frame carrying IPv4 and
//! UDP headers followed by a fixed payload trailer:
//!
//! ```text
//! 0        14           34       42
//! | Eth II | IPv4 (IHL=5) | UDP  | payload ...
//!
//! payload := "PLN1"            magic        (4 bytes)
//!            version   u8      == 1
//!            flags     u8      bit0 RESPONSE, bit1 DROPPED, bit2 EGRESS
//!            egress    u32 BE  egress port (valid iff EGRESS flag)
//!            bytes     u16 BE  declared emulator packet length
//!            seq       u64 BE  caller-chosen sequence number
//!            residue_n u16 BE  number of residue slots that follow
//!            residue   residue_n × u64 BE, ascending slot order
//! ```
//!
//! Slots bound by the program's [`FieldMap`] travel in the real header
//! fields; every *unbound* slot travels in the residue section, so the
//! codec is lossless: `decode(encode(p)) == p` for any packet of the
//! program's field space. Header fields that are not bound keep fixed
//! defaults (TTL 64, ports 0, zero MACs).
//!
//! Decoding never panics on arbitrary bytes: every malformed input maps
//! to a typed [`DecodeError`].

use crate::fieldmap::{FieldMap, WireField};
use pipeleon_sim::Packet;
use std::fmt;

/// Ethernet II header length.
pub const ETH_LEN: usize = 14;
/// IPv4 header length (IHL = 5, no options).
pub const IPV4_LEN: usize = 20;
/// UDP header length.
pub const UDP_LEN: usize = 8;
/// Total Eth + IPv4 + UDP header length.
pub const HDR_LEN: usize = ETH_LEN + IPV4_LEN + UDP_LEN;
/// Fixed payload trailer length (magic..residue_n, excluding residue).
pub const PAYLOAD_FIXED: usize = 4 + 1 + 1 + 4 + 2 + 8 + 2;
/// Payload magic marking a pipeleon frame.
pub const MAGIC: [u8; 4] = *b"PLN1";
/// Payload format version emitted by this codec.
pub const VERSION: u8 = 1;

/// flags bit: frame is a response (server → client).
pub const FLAG_RESPONSE: u8 = 1 << 0;
/// flags bit: the datapath dropped this packet.
pub const FLAG_DROPPED: u8 = 1 << 1;
/// flags bit: the egress field is meaningful.
pub const FLAG_EGRESS: u8 = 1 << 2;

const ETHERTYPE_IPV4: u16 = 0x0800;
const PROTO_UDP: u8 = 17;

/// Why a byte buffer failed to decode as a pipeleon frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Frame shorter than Eth + IPv4 + UDP + fixed payload trailer.
    Truncated {
        /// Bytes present.
        have: usize,
        /// Bytes required.
        need: usize,
    },
    /// Ethertype is not IPv4.
    BadEthertype(u16),
    /// IPv4 version/IHL byte is not 0x45 (we accept only option-free
    /// IHL=5 headers).
    BadIhl(u8),
    /// IPv4 protocol is not UDP.
    BadProto(u8),
    /// Payload does not start with the `PLN1` magic.
    BadMagic([u8; 4]),
    /// Payload format version is not [`VERSION`].
    BadVersion(u8),
    /// Residue count disagrees with the program's field map.
    ResidueMismatch {
        /// Count in the frame.
        have: u16,
        /// Count the map requires.
        need: u16,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { have, need } => {
                write!(f, "truncated frame: {have} bytes, need {need}")
            }
            DecodeError::BadEthertype(t) => write!(f, "ethertype {t:#06x} is not IPv4"),
            DecodeError::BadIhl(b) => write!(f, "IPv4 version/IHL byte {b:#04x} is not 0x45"),
            DecodeError::BadProto(p) => write!(f, "IPv4 protocol {p} is not UDP"),
            DecodeError::BadMagic(m) => write!(f, "payload magic {m:?} is not PLN1"),
            DecodeError::BadVersion(v) => write!(f, "payload version {v} unsupported"),
            DecodeError::ResidueMismatch { have, need } => {
                write!(
                    f,
                    "residue count {have} does not match program map ({need})"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Why a packet could not be encoded into a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A slot value does not fit the bound header field's width.
    ValueTooWide {
        /// Contract name of the header field.
        wire: &'static str,
        /// The offending slot value.
        value: u64,
        /// The field width in bits.
        bits: u32,
    },
    /// The output buffer is smaller than the frame.
    BufferTooSmall {
        /// Bytes available.
        have: usize,
        /// Bytes required.
        need: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ValueTooWide { wire, value, bits } => {
                write!(
                    f,
                    "slot value {value:#x} exceeds {bits}-bit header field {wire}"
                )
            }
            EncodeError::BufferTooSmall { have, need } => {
                write!(f, "encode buffer too small: {have} bytes, need {need}")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// A successfully decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedFrame {
    /// The reconstructed emulator packet.
    pub packet: Packet,
    /// Caller-chosen sequence number echoed verbatim in responses.
    pub seq: u64,
    /// True when the RESPONSE flag was set (server → client verdict).
    pub response: bool,
}

fn be16(b: &[u8], at: usize) -> u16 {
    u16::from_be_bytes([b[at], b[at + 1]])
}

fn be32(b: &[u8], at: usize) -> u32 {
    u32::from_be_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

fn be64(b: &[u8], at: usize) -> u64 {
    let mut v = [0u8; 8];
    v.copy_from_slice(&b[at..at + 8]);
    u64::from_be_bytes(v)
}

fn put16(b: &mut [u8], at: usize, v: u16) {
    b[at..at + 2].copy_from_slice(&v.to_be_bytes());
}

fn put32(b: &mut [u8], at: usize, v: u32) {
    b[at..at + 4].copy_from_slice(&v.to_be_bytes());
}

fn put64(b: &mut [u8], at: usize, v: u64) {
    b[at..at + 8].copy_from_slice(&v.to_be_bytes());
}

fn ipv4_checksum(hdr: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut i = 0;
    while i + 1 < hdr.len() {
        if i != 10 {
            sum += u32::from(be16(hdr, i));
        }
        i += 2;
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Encodes `packet` into `out`, returning the frame length.
///
/// `seq` travels in the payload trailer and is echoed by the server;
/// `response` sets the RESPONSE flag (the server's verdict direction).
/// The packet's `dropped` and `egress_port` verdicts are carried in the
/// payload flags so the codec is symmetric for requests and responses.
pub fn encode_into(
    out: &mut [u8],
    packet: &Packet,
    map: &FieldMap,
    seq: u64,
    response: bool,
) -> Result<usize, EncodeError> {
    let need = map.frame_len();
    if out.len() < need {
        return Err(EncodeError::BufferTooSmall {
            have: out.len(),
            need,
        });
    }
    for (w, fref) in map.bound() {
        let v = packet.get(*fref);
        if v > w.max_value() {
            return Err(EncodeError::ValueTooWide {
                wire: w.name(),
                value: v,
                bits: w.bits(),
            });
        }
    }
    let frame = &mut out[..need];
    frame.fill(0);

    // Ethernet II.
    if let Some(f) = map.slot_of(WireField::EthDst) {
        frame[0..6].copy_from_slice(&packet.get(f).to_be_bytes()[2..8]);
    }
    if let Some(f) = map.slot_of(WireField::EthSrc) {
        frame[6..12].copy_from_slice(&packet.get(f).to_be_bytes()[2..8]);
    }
    put16(frame, 12, ETHERTYPE_IPV4);

    // IPv4 (IHL = 5, DF clear, no fragmentation).
    let ip = ETH_LEN;
    frame[ip] = 0x45;
    let total_len = (need - ETH_LEN).min(usize::from(u16::MAX)) as u16;
    put16(frame, ip + 2, total_len);
    frame[ip + 8] = match map.slot_of(WireField::Ipv4Ttl) {
        Some(f) => packet.get(f) as u8,
        None => 64,
    };
    frame[ip + 9] = PROTO_UDP;
    if let Some(f) = map.slot_of(WireField::Ipv4Src) {
        put32(frame, ip + 12, packet.get(f) as u32);
    }
    if let Some(f) = map.slot_of(WireField::Ipv4Dst) {
        put32(frame, ip + 16, packet.get(f) as u32);
    }
    let csum = ipv4_checksum(&frame[ip..ip + IPV4_LEN]);
    put16(frame, ip + 10, csum);

    // UDP (checksum 0 = unused, legal for IPv4).
    let udp = ETH_LEN + IPV4_LEN;
    if let Some(f) = map.slot_of(WireField::UdpSport) {
        put16(frame, udp, packet.get(f) as u16);
    }
    if let Some(f) = map.slot_of(WireField::UdpDport) {
        put16(frame, udp + 2, packet.get(f) as u16);
    }
    put16(frame, udp + 4, (need - ETH_LEN - IPV4_LEN) as u16);

    // Payload trailer.
    let p = HDR_LEN;
    frame[p..p + 4].copy_from_slice(&MAGIC);
    frame[p + 4] = VERSION;
    let mut flags = 0u8;
    if response {
        flags |= FLAG_RESPONSE;
    }
    if packet.dropped {
        flags |= FLAG_DROPPED;
    }
    if let Some(e) = packet.egress_port {
        flags |= FLAG_EGRESS;
        put32(frame, p + 6, e);
    }
    frame[p + 5] = flags;
    put16(
        frame,
        p + 10,
        packet.bytes.min(usize::from(u16::MAX)) as u16,
    );
    put64(frame, p + 12, seq);
    put16(frame, p + 20, map.residue().len() as u16);
    let mut at = p + PAYLOAD_FIXED;
    for fref in map.residue() {
        put64(frame, at, packet.get(*fref));
        at += 8;
    }
    Ok(need)
}

/// Encodes `packet` into a fresh buffer. See [`encode_into`].
pub fn encode(
    packet: &Packet,
    map: &FieldMap,
    seq: u64,
    response: bool,
) -> Result<Vec<u8>, EncodeError> {
    let mut out = vec![0u8; map.frame_len()];
    let n = encode_into(&mut out, packet, map, seq, response)?;
    out.truncate(n);
    Ok(out)
}

/// Decodes `buf` under the program's field map.
///
/// Total function over arbitrary bytes: every malformed input returns a
/// typed [`DecodeError`], never a panic.
pub fn decode(buf: &[u8], map: &FieldMap) -> Result<DecodedFrame, DecodeError> {
    let fixed = HDR_LEN + PAYLOAD_FIXED;
    if buf.len() < fixed {
        return Err(DecodeError::Truncated {
            have: buf.len(),
            need: fixed,
        });
    }
    let ethertype = be16(buf, 12);
    if ethertype != ETHERTYPE_IPV4 {
        return Err(DecodeError::BadEthertype(ethertype));
    }
    if buf[ETH_LEN] != 0x45 {
        return Err(DecodeError::BadIhl(buf[ETH_LEN]));
    }
    if buf[ETH_LEN + 9] != PROTO_UDP {
        return Err(DecodeError::BadProto(buf[ETH_LEN + 9]));
    }
    let p = HDR_LEN;
    if buf[p..p + 4] != MAGIC {
        let mut m = [0u8; 4];
        m.copy_from_slice(&buf[p..p + 4]);
        return Err(DecodeError::BadMagic(m));
    }
    if buf[p + 4] != VERSION {
        return Err(DecodeError::BadVersion(buf[p + 4]));
    }
    let residue_n = be16(buf, p + 20);
    let need_residue = map.residue().len() as u16;
    if residue_n != need_residue {
        return Err(DecodeError::ResidueMismatch {
            have: residue_n,
            need: need_residue,
        });
    }
    let need = fixed + 8 * usize::from(residue_n);
    if buf.len() < need {
        return Err(DecodeError::Truncated {
            have: buf.len(),
            need,
        });
    }

    let mut packet = Packet::with_slots(vec![0u64; map.slot_count()]);
    for (w, fref) in map.bound() {
        let v = match w {
            WireField::EthDst => be64(buf, 0) >> 16,
            WireField::EthSrc => (u64::from(be32(buf, 6)) << 16) | u64::from(be16(buf, 10)),
            WireField::Ipv4Src => u64::from(be32(buf, ETH_LEN + 12)),
            WireField::Ipv4Dst => u64::from(be32(buf, ETH_LEN + 16)),
            WireField::Ipv4Ttl => u64::from(buf[ETH_LEN + 8]),
            WireField::UdpSport => u64::from(be16(buf, ETH_LEN + IPV4_LEN)),
            WireField::UdpDport => u64::from(be16(buf, ETH_LEN + IPV4_LEN + 2)),
        };
        packet.set(*fref, v);
    }
    let mut at = p + PAYLOAD_FIXED;
    for fref in map.residue() {
        packet.set(*fref, be64(buf, at));
        at += 8;
    }

    let flags = buf[p + 5];
    packet.bytes = usize::from(be16(buf, p + 10));
    packet.dropped = flags & FLAG_DROPPED != 0;
    packet.egress_port = if flags & FLAG_EGRESS != 0 {
        Some(be32(buf, p + 6))
    } else {
        None
    };
    Ok(DecodedFrame {
        packet,
        seq: be64(buf, p + 12),
        response: flags & FLAG_RESPONSE != 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeleon_ir::ProgramGraph;

    fn map_for(names: &[&str]) -> (ProgramGraph, FieldMap) {
        let mut g = ProgramGraph::new("t");
        for n in names {
            g.fields.intern(n);
        }
        let m = FieldMap::from_graph(&g).unwrap();
        (g, m)
    }

    #[test]
    fn encode_decode_round_trips_bound_and_residue() {
        let (g, m) = map_for(&["ipv4.src", "ipv4.dst", "meta.a", "meta.b"]);
        let mut p = Packet::new(&g.fields);
        p.set(g.fields.get("ipv4.src").unwrap(), 0xC0A8_0001);
        p.set(g.fields.get("ipv4.dst").unwrap(), 0x0A00_0002);
        p.set(g.fields.get("meta.a").unwrap(), u64::MAX);
        p.set(g.fields.get("meta.b").unwrap(), 7);
        p.bytes = 1400;
        p.egress_port = Some(9);
        let buf = encode(&p, &m, 42, true).unwrap();
        assert_eq!(buf.len(), m.frame_len());
        let d = decode(&buf, &m).unwrap();
        assert_eq!(d.packet, p);
        assert_eq!(d.seq, 42);
        assert!(d.response);
    }

    #[test]
    fn dropped_verdict_round_trips() {
        let (g, m) = map_for(&["x"]);
        let mut p = Packet::new(&g.fields);
        p.set(g.fields.get("x").unwrap(), 0xDEAD);
        p.dropped = true;
        let buf = encode(&p, &m, 1, true).unwrap();
        let d = decode(&buf, &m).unwrap();
        assert!(d.packet.dropped);
        assert_eq!(d.packet.egress_port, None);
    }

    #[test]
    fn value_too_wide_is_rejected_at_encode() {
        let (g, m) = map_for(&["ipv4.src"]);
        let mut p = Packet::new(&g.fields);
        p.set(g.fields.get("ipv4.src").unwrap(), 1 << 33);
        let err = encode(&p, &m, 0, false).unwrap_err();
        assert!(matches!(err, EncodeError::ValueTooWide { bits: 32, .. }));
    }

    #[test]
    fn malformed_frames_yield_typed_errors() {
        let (_, m) = map_for(&["ipv4.src", "meta.a"]);
        assert!(matches!(
            decode(&[0u8; 10], &m),
            Err(DecodeError::Truncated { .. })
        ));
        let p = Packet::with_slots(vec![1, 2]);
        let mut buf = encode(&p, &m, 0, false).unwrap();
        let good = buf.clone();

        buf[12] = 0x86; // ethertype → not IPv4
        assert!(matches!(
            decode(&buf, &m),
            Err(DecodeError::BadEthertype(_))
        ));
        buf = good.clone();

        buf[ETH_LEN] = 0x46; // IHL = 6
        assert_eq!(decode(&buf, &m), Err(DecodeError::BadIhl(0x46)));
        buf = good.clone();

        buf[ETH_LEN + 9] = 6; // TCP
        assert_eq!(decode(&buf, &m), Err(DecodeError::BadProto(6)));
        buf = good.clone();

        buf[HDR_LEN] = b'X';
        assert!(matches!(decode(&buf, &m), Err(DecodeError::BadMagic(_))));
        buf = good.clone();

        buf[HDR_LEN + 4] = 9;
        assert_eq!(decode(&buf, &m), Err(DecodeError::BadVersion(9)));
        buf = good.clone();

        buf[HDR_LEN + 21] = 7; // residue count
        assert!(matches!(
            decode(&buf, &m),
            Err(DecodeError::ResidueMismatch { .. })
        ));
        buf = good.clone();

        buf.truncate(buf.len() - 1); // chop the residue section
        assert!(matches!(
            decode(&buf, &m),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn ipv4_checksum_is_valid() {
        let (g, m) = map_for(&["ipv4.src", "ipv4.dst"]);
        let mut p = Packet::new(&g.fields);
        p.set(g.fields.get("ipv4.src").unwrap(), 0x0101_0101);
        p.set(g.fields.get("ipv4.dst").unwrap(), 0x0202_0202);
        let buf = encode(&p, &m, 0, false).unwrap();
        // Recomputing over the header with its checksum in place folds to 0.
        let mut sum = 0u32;
        let hdr = &buf[ETH_LEN..ETH_LEN + IPV4_LEN];
        for i in (0..IPV4_LEN).step_by(2) {
            sum += u32::from(be16(hdr, i));
        }
        while sum > 0xFFFF {
            sum = (sum & 0xFFFF) + (sum >> 16);
        }
        assert_eq!(sum, 0xFFFF);
    }
}
