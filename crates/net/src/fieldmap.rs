//! Declarative header-field → packet-slot bindings.
//!
//! A [`FieldMap`] is the wire contract of one program: which packet
//! slots travel in real Ethernet/IPv4/UDP header fields, and which ride
//! in the frame's slot-residue payload section (see [`crate::wire`] for
//! the frame layout). It is built from a [`ProgramGraph`] — either from
//! the graph's explicit [`pipeleon_ir::WireBinding`] contract (serialized in the
//! program JSON, preserved by optimizer rewrites) or, when the program
//! declares none, by conservative name inference.
//!
//! # Inference rule
//!
//! A program field is inferred into a header binding only when its name
//! exactly matches a wire field name **and** that wire field is at least
//! 32 bits wide (`eth.src`, `eth.dst`, `ipv4.src`, `ipv4.dst`). Narrow
//! header fields (ports, TTL) are never inferred, because emulator slot
//! values routinely exceed their width — a program that wants them must
//! say so in its contract and accept [`crate::EncodeError::ValueTooWide`]
//! when a value does not fit.

use pipeleon_ir::{FieldRef, ProgramGraph};
use std::fmt;

/// A physical frame header field the codec knows how to carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WireField {
    /// Ethernet destination MAC (48 bits).
    EthDst,
    /// Ethernet source MAC (48 bits).
    EthSrc,
    /// IPv4 source address (32 bits).
    Ipv4Src,
    /// IPv4 destination address (32 bits).
    Ipv4Dst,
    /// IPv4 time-to-live (8 bits).
    Ipv4Ttl,
    /// UDP source port (16 bits).
    UdpSport,
    /// UDP destination port (16 bits).
    UdpDport,
}

impl WireField {
    /// All wire fields, in canonical (frame) order.
    pub const ALL: [WireField; 7] = [
        WireField::EthDst,
        WireField::EthSrc,
        WireField::Ipv4Src,
        WireField::Ipv4Dst,
        WireField::Ipv4Ttl,
        WireField::UdpSport,
        WireField::UdpDport,
    ];

    /// The contract vocabulary name (what program JSON writes).
    pub fn name(self) -> &'static str {
        match self {
            WireField::EthDst => "eth.dst",
            WireField::EthSrc => "eth.src",
            WireField::Ipv4Src => "ipv4.src",
            WireField::Ipv4Dst => "ipv4.dst",
            WireField::Ipv4Ttl => "ipv4.ttl",
            WireField::UdpSport => "udp.sport",
            WireField::UdpDport => "udp.dport",
        }
    }

    /// Parses a contract vocabulary name.
    pub fn parse(name: &str) -> Option<WireField> {
        WireField::ALL.into_iter().find(|w| w.name() == name)
    }

    /// Width of the header field in bits.
    pub fn bits(self) -> u32 {
        match self {
            WireField::EthDst | WireField::EthSrc => 48,
            WireField::Ipv4Src | WireField::Ipv4Dst => 32,
            WireField::Ipv4Ttl => 8,
            WireField::UdpSport | WireField::UdpDport => 16,
        }
    }

    /// The largest slot value the header field can carry.
    pub fn max_value(self) -> u64 {
        if self.bits() >= 64 {
            u64::MAX
        } else {
            (1u64 << self.bits()) - 1
        }
    }
}

/// Why a [`FieldMap`] could not be built from a program's contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The contract names a wire field the codec does not know.
    UnknownWireField(String),
    /// The contract names a program field that is not interned.
    UnknownField(String),
    /// The same wire field is bound twice.
    DuplicateWireField(String),
    /// The same program field is bound to two wire fields.
    DuplicateField(String),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::UnknownWireField(w) => write!(
                f,
                "wire contract names unknown header field {w:?} \
                 (known: eth.dst eth.src ipv4.src ipv4.dst ipv4.ttl udp.sport udp.dport)"
            ),
            MapError::UnknownField(n) => {
                write!(f, "wire contract names unknown program field {n:?}")
            }
            MapError::DuplicateWireField(w) => write!(f, "wire header field {w:?} bound twice"),
            MapError::DuplicateField(n) => {
                write!(f, "program field {n:?} bound to two wire fields")
            }
        }
    }
}

impl std::error::Error for MapError {}

/// The compiled wire contract of one program: header bindings plus the
/// residue slots, in ascending slot order. Decode and encode are exact
/// inverses over this map (see [`crate::wire`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldMap {
    bound: Vec<(WireField, FieldRef)>,
    residue: Vec<FieldRef>,
    slot_count: usize,
}

impl FieldMap {
    /// Builds the map for `g`: from its explicit wire contract when one
    /// is declared, otherwise by the conservative inference rule in the
    /// module docs.
    pub fn from_graph(g: &ProgramGraph) -> Result<FieldMap, MapError> {
        let mut bound: Vec<(WireField, FieldRef)> = Vec::new();
        if g.wire.is_empty() {
            for (fref, name) in g.fields.iter() {
                if let Some(w) = WireField::parse(name) {
                    if w.bits() >= 32 {
                        bound.push((w, fref));
                    }
                }
            }
        } else {
            for b in &g.wire {
                let w = WireField::parse(&b.wire)
                    .ok_or_else(|| MapError::UnknownWireField(b.wire.clone()))?;
                let fref = g
                    .fields
                    .get(&b.field)
                    .ok_or_else(|| MapError::UnknownField(b.field.clone()))?;
                if bound.iter().any(|(bw, _)| *bw == w) {
                    return Err(MapError::DuplicateWireField(b.wire.clone()));
                }
                if bound.iter().any(|(_, bf)| *bf == fref) {
                    return Err(MapError::DuplicateField(b.field.clone()));
                }
                bound.push((w, fref));
            }
        }
        // Canonical frame order keeps encode/decode layout deterministic
        // regardless of contract declaration order.
        bound.sort_by_key(|(w, _)| *w);
        let residue: Vec<FieldRef> = g
            .fields
            .iter()
            .map(|(fref, _)| fref)
            .filter(|fref| !bound.iter().any(|(_, bf)| bf == fref))
            .collect();
        Ok(FieldMap {
            bound,
            residue,
            slot_count: g.fields.len(),
        })
    }

    /// Header bindings in canonical frame order.
    pub fn bound(&self) -> &[(WireField, FieldRef)] {
        &self.bound
    }

    /// Slots carried in the residue section, ascending.
    pub fn residue(&self) -> &[FieldRef] {
        &self.residue
    }

    /// Number of slots in the program's field space.
    pub fn slot_count(&self) -> usize {
        self.slot_count
    }

    /// The slot bound to `w`, if any.
    pub fn slot_of(&self, w: WireField) -> Option<FieldRef> {
        self.bound.iter().find(|(bw, _)| *bw == w).map(|&(_, f)| f)
    }

    /// Total frame length in bytes for packets under this map.
    pub fn frame_len(&self) -> usize {
        crate::wire::HDR_LEN + crate::wire::PAYLOAD_FIXED + 8 * self.residue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeleon_ir::WireBinding;

    fn graph_with_fields(names: &[&str]) -> ProgramGraph {
        let mut g = ProgramGraph::new("t");
        for n in names {
            g.fields.intern(n);
        }
        g
    }

    #[test]
    fn inference_binds_only_wide_header_names() {
        let g = graph_with_fields(&["ipv4.src", "ipv4.dst", "udp.sport", "ipv4.ttl", "meta.x"]);
        let m = FieldMap::from_graph(&g).unwrap();
        let bound: Vec<&str> = m.bound().iter().map(|(w, _)| w.name()).collect();
        assert_eq!(bound, vec!["ipv4.src", "ipv4.dst"]);
        // Narrow names and metadata ride in the residue, slot order.
        assert_eq!(m.residue().len(), 3);
        assert_eq!(m.slot_count(), 5);
    }

    #[test]
    fn explicit_contract_overrides_inference() {
        let mut g = graph_with_fields(&["sport", "ipv4.src"]);
        g.wire = vec![WireBinding {
            wire: "udp.sport".into(),
            field: "sport".into(),
        }];
        let m = FieldMap::from_graph(&g).unwrap();
        assert_eq!(m.bound().len(), 1);
        assert_eq!(m.slot_of(WireField::UdpSport), g.fields.get("sport"));
        // `ipv4.src` was NOT inferred: the explicit contract is total.
        assert!(m.slot_of(WireField::Ipv4Src).is_none());
    }

    #[test]
    fn contract_errors_are_typed() {
        let mut g = graph_with_fields(&["a", "b"]);
        g.wire = vec![WireBinding {
            wire: "vlan.id".into(),
            field: "a".into(),
        }];
        assert_eq!(
            FieldMap::from_graph(&g),
            Err(MapError::UnknownWireField("vlan.id".into()))
        );
        g.wire = vec![WireBinding {
            wire: "ipv4.src".into(),
            field: "zzz".into(),
        }];
        assert_eq!(
            FieldMap::from_graph(&g),
            Err(MapError::UnknownField("zzz".into()))
        );
        g.wire = vec![
            WireBinding {
                wire: "ipv4.src".into(),
                field: "a".into(),
            },
            WireBinding {
                wire: "ipv4.src".into(),
                field: "b".into(),
            },
        ];
        assert_eq!(
            FieldMap::from_graph(&g),
            Err(MapError::DuplicateWireField("ipv4.src".into()))
        );
        g.wire = vec![
            WireBinding {
                wire: "ipv4.src".into(),
                field: "a".into(),
            },
            WireBinding {
                wire: "ipv4.dst".into(),
                field: "a".into(),
            },
        ];
        assert_eq!(
            FieldMap::from_graph(&g),
            Err(MapError::DuplicateField("a".into()))
        );
    }

    #[test]
    fn wire_field_names_round_trip() {
        for w in WireField::ALL {
            assert_eq!(WireField::parse(w.name()), Some(w));
            assert!(w.max_value() >= 255);
        }
        assert_eq!(WireField::parse("nope"), None);
        assert_eq!(WireField::Ipv4Ttl.max_value(), 255);
        assert_eq!(WireField::UdpSport.max_value(), 65_535);
    }
}
