//! Random P4 program synthesis with controllable structure.
//!
//! The paper evaluates on synthesized programs grouped by pipelet count
//! (PN) and pipelet length (PL) (§5.4.2 "we synthesized 300 P4 programs and
//! divided them into three groups based on their PN and PL values"). This
//! synthesizer builds a binary tree of pipelets separated by conditional
//! branches: every pipelet is a straight-line chain of MA tables; branches
//! split traffic toward child pipelets, so the pipelet partition of the
//! result has exactly the requested pipelet count.

use pipeleon_ir::{
    Condition, MatchKind, MatchValue, Primitive, ProgramBuilder, ProgramGraph, TableEntry,
};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Relative weights of match kinds for synthesized tables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchMix {
    /// Weight of exact tables.
    pub exact: f64,
    /// Weight of LPM tables.
    pub lpm: f64,
    /// Weight of ternary tables.
    pub ternary: f64,
}

impl MatchMix {
    /// Only exact tables.
    pub fn all_exact() -> Self {
        Self {
            exact: 1.0,
            lpm: 0.0,
            ternary: 0.0,
        }
    }

    /// The default mix: mostly exact with some LPM/ternary.
    pub fn default_mix() -> Self {
        Self {
            exact: 0.6,
            lpm: 0.2,
            ternary: 0.2,
        }
    }

    fn sample(&self, rng: &mut ChaCha8Rng) -> MatchKind {
        let total = self.exact + self.lpm + self.ternary;
        let x = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        if x < self.exact {
            MatchKind::Exact
        } else if x < self.exact + self.lpm {
            MatchKind::Lpm
        } else {
            MatchKind::Ternary
        }
    }
}

/// Synthesizer configuration.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of pipelets (PN). Must be ≥ 1.
    pub pipelets: usize,
    /// Tables per pipelet (PL); actual lengths vary by ±1 around this.
    pub pipelet_len: usize,
    /// Match-kind mix.
    pub match_mix: MatchMix,
    /// Actions per table (≥ 1; one extra default no-op is always added).
    pub actions_per_table: usize,
    /// Primitives per action.
    pub prims_per_action: usize,
    /// Entries installed per table.
    pub entries_per_table: usize,
    /// Fraction of tables that get a drop action.
    pub drop_fraction: f64,
    /// Fraction of tables whose actions write a shared field (creating
    /// reorder-blocking dependencies).
    pub write_fraction: f64,
    /// Number of header fields tables draw their keys from.
    pub field_pool: usize,
    /// RNG seed — everything is deterministic given the config.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            pipelets: 8,
            pipelet_len: 3,
            match_mix: MatchMix::default_mix(),
            actions_per_table: 2,
            prims_per_action: 2,
            entries_per_table: 8,
            drop_fraction: 0.25,
            write_fraction: 0.15,
            field_pool: 12,
            seed: 1,
        }
    }
}

/// Synthesizes a program per the configuration. The result always
/// validates and has exactly `cfg.pipelets` branch-free table chains.
pub fn synthesize(cfg: &SynthConfig) -> ProgramGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut b = ProgramBuilder::named(format!(
        "synth_pn{}_pl{}_s{}",
        cfg.pipelets, cfg.pipelet_len, cfg.seed
    ));
    let fields: Vec<_> = (0..cfg.field_pool.max(2))
        .map(|i| b.field(&format!("h.f{i}")))
        .collect();
    let mut table_seq = 0usize;

    // Recursive descent: emit a subtree consuming `budget` pipelets and
    // return its entry node.
    fn subtree(
        b: &mut ProgramBuilder,
        cfg: &SynthConfig,
        rng: &mut ChaCha8Rng,
        fields: &[pipeleon_ir::FieldRef],
        table_seq: &mut usize,
        budget: usize,
    ) -> pipeleon_ir::NodeId {
        assert!(budget >= 1);
        // This pipelet's chain of tables.
        let len = if cfg.pipelet_len <= 1 {
            1
        } else {
            let lo = cfg.pipelet_len - 1;
            rng.gen_range(lo..=cfg.pipelet_len + 1)
        };
        let mut chain = Vec::with_capacity(len);
        for _ in 0..len {
            chain.push(make_table(b, cfg, rng, fields, table_seq));
        }
        // Remaining budget splits across a branch into two subtrees.
        let tail: Option<pipeleon_ir::NodeId> = if budget > 1 {
            let remaining = budget - 1;
            let left = remaining.div_ceil(2);
            let right = remaining - left;
            let lnode = subtree(b, cfg, rng, fields, table_seq, left.max(1));
            let rnode = if right >= 1 {
                Some(subtree(b, cfg, rng, fields, table_seq, right))
            } else {
                None
            };
            let cond_field = fields[rng.gen_range(0..fields.len())];
            let split = rng.gen_range(1..1000u64);
            let branch_id = *table_seq;
            *table_seq += 1;
            Some(b.branch(
                format!("br{branch_id}"),
                Condition::lt(cond_field, split),
                Some(lnode),
                rnode,
            ))
        } else {
            None
        };
        // Wire the chain: t0 -> t1 -> … -> tail.
        for w in chain.windows(2) {
            b.set_next(w[0], Some(w[1]));
        }
        b.set_next(*chain.last().expect("len >= 1"), tail);
        chain[0]
    }

    fn make_table(
        b: &mut ProgramBuilder,
        cfg: &SynthConfig,
        rng: &mut ChaCha8Rng,
        fields: &[pipeleon_ir::FieldRef],
        table_seq: &mut usize,
    ) -> pipeleon_ir::NodeId {
        let idx = *table_seq;
        *table_seq += 1;
        let kind = cfg.match_mix.sample(rng);
        let key_field = fields[rng.gen_range(0..fields.len())];
        let mut tb = b.table(format!("t{idx}")).key(key_field, kind);
        let writes = rng.gen_bool(cfg.write_fraction);
        for a in 0..cfg.actions_per_table.max(1) {
            let mut prims = Vec::with_capacity(cfg.prims_per_action);
            for p in 0..cfg.prims_per_action {
                if writes && p == 0 {
                    let dst = fields[rng.gen_range(0..fields.len())];
                    prims.push(Primitive::set(dst, rng.gen_range(0..1 << 16)));
                } else {
                    prims.push(Primitive::Nop);
                }
            }
            tb = tb.action(format!("a{a}"), prims);
        }
        let mut n_table_actions = cfg.actions_per_table.max(1);
        if rng.gen_bool(cfg.drop_fraction) {
            tb = tb.action_drop("deny");
            n_table_actions += 1;
        }
        // The default (miss) action is the trailing no-op, so action
        // counters distinguish hits from misses.
        tb = tb.action_nop("default_nop").default_action(n_table_actions);
        // Entries, matching the key kind.
        let n_actions = cfg.actions_per_table.max(1);
        for e in 0..cfg.entries_per_table {
            let action = rng.gen_range(0..n_actions);
            let mv = match kind {
                MatchKind::Exact => MatchValue::Exact(e as u64),
                MatchKind::Lpm => MatchValue::Lpm {
                    value: (e as u64) << 48,
                    prefix_len: 8 + ((e % 3) as u8) * 8,
                },
                MatchKind::Ternary => MatchValue::Ternary {
                    value: e as u64,
                    mask: 0xFF << (8 * (e % 5)),
                },
                MatchKind::Range => MatchValue::Range {
                    lo: (e * 10) as u64,
                    hi: (e * 10 + 9) as u64,
                },
            };
            tb = tb.entry(TableEntry::with_priority(vec![mv], action, e as i32));
        }
        tb.finish()
    }

    let root = subtree(
        &mut b,
        cfg,
        &mut rng,
        &fields,
        &mut table_seq,
        cfg.pipelets.max(1),
    );
    b.seal(root).expect("synthesized program must validate")
}

/// Synthesizes a chain of reconverging if/else diamonds (the paper's
/// Figure 8 shape): `branch → {arm | arm} → join → branch → …`. Each arm
/// and join is a pipelet of `cfg.pipelet_len` tables, so the program is
/// dominated by short pipelets under common branch nodes — the structure
/// pipelet-group optimization (§4.1.1, Figure 15) targets. `cfg.pipelets`
/// is consumed three per diamond (two arms + join).
pub fn synthesize_diamonds(cfg: &SynthConfig) -> ProgramGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut b = ProgramBuilder::named(format!(
        "diamonds_pn{}_pl{}_s{}",
        cfg.pipelets, cfg.pipelet_len, cfg.seed
    ));
    let fields: Vec<_> = (0..cfg.field_pool.max(2))
        .map(|i| b.field(&format!("h.f{i}")))
        .collect();
    let mut table_seq = 0usize;
    let diamonds = (cfg.pipelets / 3).max(1);

    // Build back-to-front so each diamond knows its continuation.
    let chain = |b: &mut ProgramBuilder,
                 rng: &mut ChaCha8Rng,
                 table_seq: &mut usize,
                 next: Option<pipeleon_ir::NodeId>|
     -> pipeleon_ir::NodeId {
        let len = cfg.pipelet_len.max(1);
        let mut ids = Vec::with_capacity(len);
        for _ in 0..len {
            ids.push(make_table_like(b, cfg, rng, &fields, table_seq));
        }
        for w in ids.windows(2) {
            b.set_next(w[0], Some(w[1]));
        }
        b.set_next(*ids.last().expect("len >= 1"), next);
        ids[0]
    };

    let mut next: Option<pipeleon_ir::NodeId> = None;
    for d in (0..diamonds).rev() {
        let join = chain(&mut b, &mut rng, &mut table_seq, next);
        let left = chain(&mut b, &mut rng, &mut table_seq, Some(join));
        let right = chain(&mut b, &mut rng, &mut table_seq, Some(join));
        let cond_field = fields[rng.gen_range(0..fields.len())];
        let split = rng.gen_range(1..1000u64);
        next = Some(b.branch(
            format!("diamond{d}"),
            Condition::lt(cond_field, split),
            Some(left),
            Some(right),
        ));
    }
    b.seal(next.expect("at least one diamond"))
        .expect("diamond program must validate")
}

/// Shared table generator for both synthesizer shapes.
fn make_table_like(
    b: &mut ProgramBuilder,
    cfg: &SynthConfig,
    rng: &mut ChaCha8Rng,
    fields: &[pipeleon_ir::FieldRef],
    table_seq: &mut usize,
) -> pipeleon_ir::NodeId {
    let idx = *table_seq;
    *table_seq += 1;
    let kind = cfg.match_mix.sample(rng);
    let key_field = fields[rng.gen_range(0..fields.len())];
    let mut tb = b.table(format!("t{idx}")).key(key_field, kind);
    for a in 0..cfg.actions_per_table.max(1) {
        let prims = vec![Primitive::Nop; cfg.prims_per_action];
        tb = tb.action(format!("a{a}"), prims);
    }
    let mut n_actions = cfg.actions_per_table.max(1);
    if rng.gen_bool(cfg.drop_fraction) {
        tb = tb.action_drop("deny");
        n_actions += 1;
    }
    tb = tb.action_nop("default_nop").default_action(n_actions);
    for e in 0..cfg.entries_per_table {
        let action = rng.gen_range(0..cfg.actions_per_table.max(1));
        let mv = match kind {
            MatchKind::Exact => MatchValue::Exact(e as u64),
            MatchKind::Lpm => MatchValue::Lpm {
                value: (e as u64) << 48,
                prefix_len: 8 + ((e % 3) as u8) * 8,
            },
            MatchKind::Ternary => MatchValue::Ternary {
                value: e as u64,
                mask: 0xFF << (8 * (e % 5)),
            },
            MatchKind::Range => MatchValue::Range {
                lo: (e * 10) as u64,
                hi: (e * 10 + 9) as u64,
            },
        };
        tb = tb.entry(TableEntry::with_priority(vec![mv], action, e as i32));
    }
    tb.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeleon_ir::NodeKind;

    #[test]
    fn synthesized_program_validates() {
        let g = synthesize(&SynthConfig::default());
        g.validate().unwrap();
        assert!(g.num_nodes() > 8);
    }

    #[test]
    fn same_seed_same_program() {
        let cfg = SynthConfig::default();
        let a = synthesize(&cfg);
        let b = synthesize(&cfg);
        assert_eq!(
            pipeleon_ir::json::to_json_string(&a).unwrap(),
            pipeleon_ir::json::to_json_string(&b).unwrap()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = SynthConfig::default();
        let a = synthesize(&cfg);
        cfg.seed = 99;
        let b = synthesize(&cfg);
        assert_ne!(
            pipeleon_ir::json::to_json_string(&a).unwrap(),
            pipeleon_ir::json::to_json_string(&b).unwrap()
        );
    }

    #[test]
    fn chain_count_matches_pipelet_budget() {
        // Every pipelet is a table chain whose head is entered from the
        // root or a branch, so chain-head count == requested pipelets.
        for n in [1, 2, 5, 12] {
            let cfg = SynthConfig {
                pipelets: n,
                ..SynthConfig::default()
            };
            let g = synthesize(&cfg);
            let preds = g.predecessors();
            let heads = g
                .tables()
                .filter(|(node, _)| {
                    let p = &preds[node.id.index()];
                    p.is_empty()
                        || p.iter()
                            .all(|&pid| matches!(g.node(pid).unwrap().kind, NodeKind::Branch(_)))
                })
                .count();
            assert_eq!(heads, n, "pipelets={n}");
            let branches = g
                .iter_nodes()
                .filter(|nd| matches!(nd.kind, NodeKind::Branch(_)))
                .count();
            assert!(branches < n || n == 1, "branches={branches} pipelets={n}");
        }
    }

    #[test]
    fn table_count_tracks_pl() {
        let cfg = SynthConfig {
            pipelets: 10,
            pipelet_len: 4,
            ..SynthConfig::default()
        };
        let g = synthesize(&cfg);
        let tables = g.tables().count();
        // 10 pipelets × (4 ± 1) tables.
        assert!((30..=50).contains(&tables), "tables = {tables}");
    }

    #[test]
    fn all_exact_mix_yields_only_exact_tables() {
        let cfg = SynthConfig {
            match_mix: MatchMix::all_exact(),
            ..SynthConfig::default()
        };
        let g = synthesize(&cfg);
        for (_, t) in g.tables() {
            assert_eq!(t.effective_kind(), MatchKind::Exact);
        }
    }

    #[test]
    fn zero_drop_fraction_has_no_drop_tables() {
        let cfg = SynthConfig {
            drop_fraction: 0.0,
            ..SynthConfig::default()
        };
        let g = synthesize(&cfg);
        assert!(g.tables().all(|(_, t)| !t.can_drop()));
    }

    #[test]
    fn diamond_programs_validate_and_reconverge() {
        let cfg = SynthConfig {
            pipelets: 9,
            pipelet_len: 1,
            ..SynthConfig::default()
        };
        let g = synthesize_diamonds(&cfg);
        g.validate().unwrap();
        // 3 diamonds × (2 arms + join) = 9 single-table chains + 3 branches.
        assert_eq!(g.tables().count(), 9);
        let branches = g
            .iter_nodes()
            .filter(|n| matches!(n.kind, NodeKind::Branch(_)))
            .count();
        assert_eq!(branches, 3);
        // Every join is entered from both arms (two predecessors).
        let preds = g.predecessors();
        let joins = g
            .tables()
            .filter(|(n, _)| preds[n.id.index()].len() == 2)
            .count();
        assert_eq!(joins, 3);
    }

    #[test]
    fn diamond_program_is_deterministic() {
        let cfg = SynthConfig {
            pipelets: 6,
            ..SynthConfig::default()
        };
        let a = synthesize_diamonds(&cfg);
        let b = synthesize_diamonds(&cfg);
        assert_eq!(
            pipeleon_ir::json::to_json_string(&a).unwrap(),
            pipeleon_ir::json::to_json_string(&b).unwrap()
        );
    }

    #[test]
    fn single_pipelet_program_is_branch_free() {
        let cfg = SynthConfig {
            pipelets: 1,
            pipelet_len: 5,
            ..SynthConfig::default()
        };
        let g = synthesize(&cfg);
        assert!(g
            .iter_nodes()
            .all(|n| !matches!(n.kind, NodeKind::Branch(_))));
    }
}
