//! Runtime-profile synthesis and entropy metrics (§5.4.3, Appendix A.3).
//!
//! The paper randomly synthesizes 2000 runtime profiles per program, ranks
//! them by the entropy of the pipelet traffic distribution, and evaluates
//! the top-k optimizer at the 10th/50th/90th entropy percentiles.

use pipeleon_cost::RuntimeProfile;
use pipeleon_ir::{EdgeRef, NodeKind, ProgramGraph};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Configuration for random profile synthesis.
#[derive(Debug, Clone)]
pub struct ProfileSynthConfig {
    /// Total packets the profile represents.
    pub total_packets: u64,
    /// Skew of branch splits: 0 = always 50/50, 1 = arbitrary in `[0,1]`.
    pub branch_skew: f64,
    /// Maximum per-table entry update rate (ops/s); rates are sampled
    /// uniformly in `[0, max)` for a random subset of tables.
    pub max_update_rate: f64,
    /// Fraction of tables given a nonzero update rate.
    pub updating_fraction: f64,
}

impl Default for ProfileSynthConfig {
    fn default() -> Self {
        Self {
            total_packets: 1_000_000,
            branch_skew: 1.0,
            max_update_rate: 100.0,
            updating_fraction: 0.3,
        }
    }
}

/// Synthesizes a random runtime profile for `g`: every branch gets a random
/// split, every table a random action distribution, and a random subset of
/// tables gets entry-update rates.
pub fn random_profile(g: &ProgramGraph, cfg: &ProfileSynthConfig, seed: u64) -> RuntimeProfile {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut p = RuntimeProfile::empty();
    p.total_packets = cfg.total_packets;
    // Node entry counts propagate root->leaves so counters are consistent
    // with a real packet flow.
    let mut inflow = vec![0.0f64; g.id_bound()];
    if let (Some(root), Ok(order)) = (g.root(), g.topo_order()) {
        inflow[root.index()] = cfg.total_packets as f64;
        for id in order {
            let Some(node) = g.node(id) else { continue };
            let flow = inflow[id.index()];
            match &node.kind {
                NodeKind::Branch(_) => {
                    let split = 0.5 + (rng.gen_range(-0.5..0.5) * cfg.branch_skew);
                    let (t, f) = (flow * split, flow * (1.0 - split));
                    p.record_edge(EdgeRef::new(id, 0), t as u64);
                    p.record_edge(EdgeRef::new(id, 1), f as u64);
                    let targets = node.next.targets();
                    if let Some(Some(n)) = targets.first() {
                        inflow[n.index()] += t;
                    }
                    if let Some(Some(n)) = targets.get(1) {
                        inflow[n.index()] += f;
                    }
                }
                NodeKind::Table(t) => {
                    // Random action distribution via exponential weights.
                    let weights: Vec<f64> = (0..t.actions.len())
                        .map(|_| rng.gen_range(0.01..1.0))
                        .collect();
                    let wsum: f64 = weights.iter().sum();
                    let mut survive = 0.0;
                    let targets = node.next.targets();
                    for (i, a) in t.actions.iter().enumerate() {
                        let share = weights[i] / wsum;
                        p.record_action(id, i, (flow * share) as u64);
                        if !a.drops() {
                            match node.next {
                                pipeleon_ir::NextHops::ByAction(_) => {
                                    if let Some(Some(n)) = targets.get(i) {
                                        inflow[n.index()] += flow * share;
                                    }
                                }
                                _ => survive += share,
                            }
                        }
                    }
                    if let pipeleon_ir::NextHops::Always(Some(n)) = node.next {
                        inflow[n.index()] += flow * survive;
                    }
                    if rng.gen_bool(cfg.updating_fraction) {
                        p.set_entry_update_rate(id, rng.gen_range(0.0..cfg.max_update_rate));
                    }
                }
            }
        }
    }
    p
}

/// Shannon entropy (bits) of a traffic-share distribution. Shares are
/// normalized first; zero shares contribute nothing.
pub fn entropy(shares: &[f64]) -> f64 {
    let total: f64 = shares.iter().filter(|s| **s > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    shares
        .iter()
        .filter(|s| **s > 0.0)
        .map(|s| {
            let p = s / total;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize, SynthConfig};

    #[test]
    fn entropy_extremes() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[1.0]), 0.0);
        assert!((entropy(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
        assert!((entropy(&[0.25; 4]) - 2.0).abs() < 1e-12);
        // Skewed distribution has lower entropy than uniform.
        assert!(entropy(&[0.9, 0.05, 0.05]) < entropy(&[1.0 / 3.0; 3]));
        // Unnormalized input is normalized.
        assert!((entropy(&[2.0, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_profile_is_deterministic_per_seed() {
        let g = synthesize(&SynthConfig::default());
        let cfg = ProfileSynthConfig::default();
        let a = random_profile(&g, &cfg, 7);
        let b = random_profile(&g, &cfg, 7);
        assert_eq!(a, b);
        let c = random_profile(&g, &cfg, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn random_profile_probabilities_are_consistent() {
        let g = synthesize(&SynthConfig::default());
        let p = random_profile(&g, &ProfileSynthConfig::default(), 3);
        let visits = p.visit_probabilities(&g);
        let root = g.root().unwrap();
        assert!((visits[root.index()] - 1.0).abs() < 1e-9);
        // All probabilities are valid.
        for v in visits {
            assert!((0.0..=1.0 + 1e-9).contains(&v), "bad visit prob {v}");
        }
    }

    #[test]
    fn update_rates_follow_fraction() {
        let g = synthesize(&SynthConfig {
            pipelets: 10,
            pipelet_len: 4,
            ..SynthConfig::default()
        });
        let all = ProfileSynthConfig {
            updating_fraction: 1.0,
            ..ProfileSynthConfig::default()
        };
        let none = ProfileSynthConfig {
            updating_fraction: 0.0,
            ..ProfileSynthConfig::default()
        };
        let p_all = random_profile(&g, &all, 1);
        let p_none = random_profile(&g, &none, 1);
        assert!(p_all.total_entry_update_rate() > 0.0);
        assert_eq!(p_none.total_entry_update_rate(), 0.0);
    }

    #[test]
    fn branch_skew_zero_gives_even_splits() {
        let g = synthesize(&SynthConfig {
            pipelets: 6,
            ..SynthConfig::default()
        });
        let cfg = ProfileSynthConfig {
            branch_skew: 0.0,
            ..ProfileSynthConfig::default()
        };
        let p = random_profile(&g, &cfg, 5);
        for n in g.iter_nodes() {
            if matches!(n.kind, NodeKind::Branch(_)) {
                let t = p.edge_count(EdgeRef::new(n.id, 0)) as f64;
                let f = p.edge_count(EdgeRef::new(n.id, 1)) as f64;
                if t + f > 0.0 {
                    assert!((t / (t + f) - 0.5).abs() < 0.01);
                }
            }
        }
    }
}
