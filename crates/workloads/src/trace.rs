//! Trace-driven traffic replay.
//!
//! The paper replays generated traffic with TRex; real deployments replay
//! captured traces. This module defines a minimal text trace format — one
//! packet per line, `field=value` pairs — and a replayer that resolves
//! field names against a program's field space. It substitutes for pcap
//! replay: the optimizer only observes header fields the program matches
//! on, which is exactly what the format carries.
//!
//! ```text
//! # comment; 'bytes' sets the wire size (default 512)
//! ipv4.src=0xC0A80001 ipv4.dst=10 bytes=128
//! ipv4.src=0xC0A80002 ipv4.dst=10
//! ```

use pipeleon_ir::ProgramGraph;
use pipeleon_sim::Packet;

/// A parsed trace: resolved slot writes per packet.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    packets: Vec<TraceRecord>,
}

#[derive(Debug, Clone, PartialEq)]
struct TraceRecord {
    writes: Vec<(pipeleon_ir::FieldRef, u64)>,
    bytes: usize,
}

impl Trace {
    /// Parses trace text against `g`'s field space. Unknown fields and
    /// malformed pairs are errors (with line numbers).
    pub fn parse(text: &str, g: &ProgramGraph) -> Result<Self, String> {
        let mut packets = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut rec = TraceRecord {
                writes: Vec::new(),
                bytes: Packet::DEFAULT_BYTES,
            };
            for pair in line.split_whitespace() {
                let (name, value) = pair.split_once('=').ok_or_else(|| {
                    format!("line {}: expected field=value, found {pair:?}", lineno + 1)
                })?;
                let value = parse_u64(value)
                    .ok_or_else(|| format!("line {}: bad value {value:?}", lineno + 1))?;
                if name == "bytes" {
                    rec.bytes = value as usize;
                    continue;
                }
                let field = g.fields.get(name).ok_or_else(|| {
                    format!(
                        "line {}: field {name:?} is not used by program {:?}",
                        lineno + 1,
                        g.name
                    )
                })?;
                rec.writes.push((field, value));
            }
            packets.push(rec);
        }
        Ok(Self { packets })
    }

    /// Number of packets in the trace.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Materializes the trace as packets for `g` (repeating the trace
    /// `repeat` times, as replay tools loop captures).
    pub fn replay(&self, g: &ProgramGraph, repeat: usize) -> Vec<Packet> {
        let mut out = Vec::with_capacity(self.packets.len() * repeat.max(1));
        for _ in 0..repeat.max(1) {
            for rec in &self.packets {
                let mut p = Packet::new(&g.fields);
                p.bytes = rec.bytes;
                for &(f, v) in &rec.writes {
                    p.set(f, v);
                }
                out.push(p);
            }
        }
        out
    }

    /// Serializes packets back into the trace text format (the inverse of
    /// [`Trace::parse`], for recording simulator workloads).
    pub fn record(packets: &[Packet], g: &ProgramGraph) -> String {
        let mut out = String::new();
        for p in packets {
            let mut first = true;
            for (fref, name) in g.fields.iter() {
                let v = p.get(fref);
                if v != 0 {
                    if !first {
                        out.push(' ');
                    }
                    out.push_str(&format!("{name}={v}"));
                    first = false;
                }
            }
            if p.bytes != Packet::DEFAULT_BYTES {
                if !first {
                    out.push(' ');
                }
                out.push_str(&format!("bytes={}", p.bytes));
                first = false;
            }
            if first {
                out.push_str("# empty packet");
            }
            out.push('\n');
        }
        out
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeleon_ir::{MatchKind, ProgramBuilder};

    fn program() -> ProgramGraph {
        let mut b = ProgramBuilder::new();
        let src = b.field("ipv4.src");
        let dst = b.field("ipv4.dst");
        let t = b
            .table("t")
            .key(src, MatchKind::Exact)
            .key(dst, MatchKind::Exact)
            .finish();
        b.seal(t).unwrap()
    }

    #[test]
    fn parses_and_replays() {
        let g = program();
        let trace = Trace::parse(
            "# header\nipv4.src=0x0A000001 ipv4.dst=7 bytes=128\nipv4.src=5\n\n",
            &g,
        )
        .unwrap();
        assert_eq!(trace.len(), 2);
        let pkts = trace.replay(&g, 2);
        assert_eq!(pkts.len(), 4);
        assert_eq!(pkts[0].get(g.fields.get("ipv4.src").unwrap()), 0x0A000001);
        assert_eq!(pkts[0].get(g.fields.get("ipv4.dst").unwrap()), 7);
        assert_eq!(pkts[0].bytes, 128);
        assert_eq!(pkts[1].get(g.fields.get("ipv4.dst").unwrap()), 0);
        assert_eq!(pkts[1].bytes, 512);
    }

    #[test]
    fn rejects_unknown_fields_and_garbage() {
        let g = program();
        assert!(Trace::parse("tcp.flags=1", &g)
            .unwrap_err()
            .contains("tcp.flags"));
        assert!(Trace::parse("ipv4.src", &g)
            .unwrap_err()
            .contains("field=value"));
        assert!(Trace::parse("ipv4.src=zz", &g)
            .unwrap_err()
            .contains("bad value"));
    }

    #[test]
    fn record_round_trips() {
        let g = program();
        let text = "ipv4.src=3 ipv4.dst=9\nipv4.dst=1 bytes=64\n";
        let t1 = Trace::parse(text, &g).unwrap();
        let recorded = Trace::record(&t1.replay(&g, 1), &g);
        let t2 = Trace::parse(&recorded, &g).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn empty_trace_is_fine() {
        let g = program();
        let t = Trace::parse("# nothing\n", &g).unwrap();
        assert!(t.is_empty());
        assert!(t.replay(&g, 3).is_empty());
    }
}
