//! The paper's concrete evaluation programs.
//!
//! * [`linear_tables`] — parametric straight-line programs (the Fig. 5 / 9
//!   microbenchmark skeleton: pipelets of four tables replicated by a
//!   scale factor).
//! * [`AclPipeline`] — regular tables followed by reorderable ACL tables
//!   and a routing table (Fig. 2 motivation, Fig. 9a–b reordering).
//! * [`LoadBalancer`] — §5.3.1: eight regular tables, two load-balancing
//!   tables with high entry churn, two ACLs.
//! * [`DashRouting`] — §5.3.2: direction lookup, metadata setup
//!   (appliance/ENI/VNI), connection tracking, three ACL levels, routing.
//! * [`L2L3Acl`] — the PISCES-style L2/L3/ACL pipeline used in §5.3.3.
//! * [`NfComposition`] — §5.3.3: the three NFs composed behind selector
//!   branches, yielding nine pipelets.
//!
//! Every scenario exposes its node and field handles so experiments can
//! steer traffic into specific entries (drop rates, flow churn) and so the
//! runtime controller can exercise the entry-management API.

use crate::traffic::{FieldBias, FlowGen};
use pipeleon_ir::{
    Condition, FieldRef, MatchKind, MatchValue, NodeId, Primitive, ProgramBuilder, ProgramGraph,
    TableEntry, WireBinding,
};

/// The exact-match value ACL entries deny. Traffic generators bias ACL key
/// fields to this value to realize a configured drop rate.
pub const ACL_DROP_VALUE: u64 = 0xDEAD;

/// Builds a straight-line program of `n` tables. Table `i` is keyed on
/// field `f{i % distinct_fields}` with the given match kind and has one
/// action of `prims` primitives (plus a default no-op). Returns the graph
/// and the table ids in order.
pub fn linear_tables(
    n: usize,
    kind: MatchKind,
    prims: usize,
    distinct_fields: usize,
) -> (ProgramGraph, Vec<NodeId>) {
    let mut b = ProgramBuilder::named(format!("linear_{n}"));
    let fields: Vec<FieldRef> = (0..distinct_fields.max(1))
        .map(|i| b.field(&format!("f{i}")))
        .collect();
    let mut ids = Vec::with_capacity(n);
    for i in 0..n {
        let field = fields[i % fields.len()];
        let mut tb = b.table(format!("t{i}")).key(field, kind).action(
            "proc",
            (0..prims).map(|_| Primitive::Nop).collect::<Vec<_>>(),
        );
        // Entries give LPM/ternary tables realistic m values (paper §3.1:
        // 3 prefixes for LPM, 5 masks for ternary).
        match kind {
            MatchKind::Exact => {
                for e in 0..4u64 {
                    tb = tb.entry(TableEntry::new(vec![MatchValue::Exact(e)], 0));
                }
            }
            MatchKind::Lpm => {
                for p in 0..3u8 {
                    tb = tb.entry(TableEntry::new(
                        vec![MatchValue::Lpm {
                            value: ((p as u64) + 1) << 40,
                            prefix_len: 8 + 8 * p,
                        }],
                        0,
                    ));
                }
            }
            MatchKind::Ternary | MatchKind::Range => {
                for m in 0..5u64 {
                    tb = tb.entry(TableEntry::with_priority(
                        vec![MatchValue::Ternary {
                            value: m,
                            mask: 0xFF << (8 * m),
                        }],
                        0,
                        m as i32,
                    ));
                }
            }
        }
        ids.push(tb.action_nop("nop").finish());
    }
    (b.seal(ids[0]).expect("valid program"), ids)
}

/// Adds an ACL table keyed on `field`: entry `ACL_DROP_VALUE -> deny`,
/// default permit.
fn acl_table(b: &mut ProgramBuilder, name: &str, field: FieldRef) -> NodeId {
    b.table(name)
        .key(field, MatchKind::Exact)
        .action_nop("permit")
        .action_drop("deny")
        .entry(TableEntry::new(vec![MatchValue::Exact(ACL_DROP_VALUE)], 1))
        .finish()
}

/// Fig. 2 / Fig. 9a–b: `regular` processing tables, then `acls` ACL
/// tables, then a routing table. ACLs are keyed on independent fields so
/// they commute freely.
#[derive(Debug, Clone)]
pub struct AclPipeline {
    /// The program.
    pub graph: ProgramGraph,
    /// Regular (non-reorderable anchor) tables, in order.
    pub regular: Vec<NodeId>,
    /// ACL tables, in order.
    pub acls: Vec<NodeId>,
    /// The final routing table.
    pub routing: NodeId,
    /// Flow fields (keys of the regular tables).
    pub flow_fields: Vec<FieldRef>,
    /// Key field of each ACL.
    pub acl_fields: Vec<FieldRef>,
}

impl AclPipeline {
    /// Builds the pipeline with `num_regular` regular tables and
    /// `num_acls` ACLs.
    pub fn build(num_regular: usize, num_acls: usize) -> Self {
        let mut b = ProgramBuilder::named("acl_pipeline");
        let flow_fields: Vec<FieldRef> = (0..4).map(|i| b.field(&format!("flow.f{i}"))).collect();
        let acl_fields: Vec<FieldRef> = (0..num_acls)
            .map(|i| b.field(&format!("acl.k{i}")))
            .collect();
        let mut regular = Vec::new();
        for i in 0..num_regular {
            regular.push(
                b.table(format!("proc{i}"))
                    .key(flow_fields[i % flow_fields.len()], MatchKind::Exact)
                    .action("proc", vec![Primitive::Nop])
                    .action_nop("nop")
                    .finish(),
            );
        }
        let mut acls = Vec::new();
        for (i, &f) in acl_fields.iter().enumerate() {
            acls.push(acl_table(&mut b, &format!("acl{i}"), f));
        }
        let route_field = flow_fields[0];
        let routing = b
            .table("routing")
            .key(route_field, MatchKind::Lpm)
            .action("fwd", vec![Primitive::Forward { port: 1 }])
            .entry(TableEntry::new(
                vec![MatchValue::Lpm {
                    value: 0,
                    prefix_len: 0,
                }],
                0,
            ))
            .finish();
        let _ = routing;
        let root = *regular.first().or(acls.first()).unwrap_or(&routing);
        Self {
            graph: b.seal(root).expect("valid program"),
            regular,
            acls,
            routing,
            flow_fields,
            acl_fields,
        }
    }

    /// A traffic generator where ACL `i` drops `drop_rates[i]` of packets
    /// (biases its key field to [`ACL_DROP_VALUE`]).
    ///
    /// Bias probabilities are conditional so that the *observed* drop rate
    /// at ACL `i` (given survival through earlier ACLs in the listed
    /// order) matches the requested value when ACLs execute in list order.
    pub fn traffic(&self, drop_rates: &[f64], num_flows: usize, seed: u64) -> FlowGen {
        let mut gen = FlowGen::new(
            self.graph.fields.len(),
            self.flow_fields.clone(),
            num_flows,
            seed,
        );
        for (i, &rate) in drop_rates.iter().enumerate() {
            if i < self.acl_fields.len() && rate > 0.0 {
                gen = gen.with_bias(FieldBias {
                    field: self.acl_fields[i],
                    value: ACL_DROP_VALUE,
                    probability: rate,
                });
            }
        }
        gen
    }
}

/// §5.3.1 service load balancer: eight regular tables, two LB tables
/// (exact on the flow tuple, high entry churn), two ACLs.
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    /// The program.
    pub graph: ProgramGraph,
    /// The eight regular packet-processing tables.
    pub regular: Vec<NodeId>,
    /// The two load-balancing tables.
    pub lb: Vec<NodeId>,
    /// The two ACL tables.
    pub acls: Vec<NodeId>,
    /// Flow fields.
    pub flow_fields: Vec<FieldRef>,
    /// ACL key fields.
    pub acl_fields: Vec<FieldRef>,
}

impl LoadBalancer {
    /// Builds the load-balancer pipeline.
    pub fn build() -> Self {
        let mut b = ProgramBuilder::named("load_balancer");
        let flow_fields: Vec<FieldRef> = ["ipv4.src", "ipv4.dst", "tcp.sport", "tcp.dport"]
            .iter()
            .map(|n| b.field(n))
            .collect();
        let vip = b.field("lb.vip");
        let backend = b.field("lb.backend");
        let acl_fields = vec![b.field("acl.k0"), b.field("acl.k1")];
        let mut regular = Vec::new();
        for i in 0..8 {
            regular.push(
                b.table(format!("proc{i}"))
                    .key(flow_fields[i % flow_fields.len()], MatchKind::Exact)
                    .action("proc", vec![Primitive::Nop])
                    .action_nop("nop")
                    .finish(),
            );
        }
        let lb1 = b
            .table("lb_vip")
            .key(flow_fields[1], MatchKind::Exact)
            .action("set_vip", vec![Primitive::set(vip, 1)])
            .action_nop("nop")
            .finish();
        let lb2 = b
            .table("lb_backend")
            .key(flow_fields[0], MatchKind::Exact)
            .action("set_backend", vec![Primitive::set(backend, 1)])
            .action_nop("nop")
            .finish();
        let a0 = acl_table(&mut b, "acl0", acl_fields[0]);
        let a1 = acl_table(&mut b, "acl1", acl_fields[1]);
        let mut graph = b.seal(regular[0]).expect("valid program");
        // Wire contract for socket-facing serving: the IPv4 addresses
        // travel in real IPv4 header fields (32-bit, wide enough for any
        // generated flow value); the port-shaped and metadata fields ride
        // in the frame's slot-residue section, because generated flow
        // values exceed a real 16-bit port.
        graph.wire = vec![
            WireBinding {
                wire: "ipv4.src".into(),
                field: "ipv4.src".into(),
            },
            WireBinding {
                wire: "ipv4.dst".into(),
                field: "ipv4.dst".into(),
            },
        ];
        Self {
            graph,
            regular,
            lb: vec![lb1, lb2],
            acls: vec![a0, a1],
            flow_fields,
            acl_fields,
        }
    }

    /// Traffic with per-ACL drop rates (see [`AclPipeline::traffic`]).
    pub fn traffic(&self, drop_rates: &[f64], num_flows: usize, seed: u64) -> FlowGen {
        let mut gen = FlowGen::new(
            self.graph.fields.len(),
            self.flow_fields.clone(),
            num_flows,
            seed,
        );
        for (i, &rate) in drop_rates.iter().enumerate() {
            if i < self.acl_fields.len() && rate > 0.0 {
                gen = gen.with_bias(FieldBias {
                    field: self.acl_fields[i],
                    value: ACL_DROP_VALUE,
                    probability: rate,
                });
            }
        }
        gen
    }
}

/// §5.3.2 DASH-style packet routing: direction lookup, metadata setup
/// (appliance ID, ENI, VNI — small static exact tables), connection
/// tracking, three ACL levels, LPM routing.
#[derive(Debug, Clone)]
pub struct DashRouting {
    /// The program.
    pub graph: ProgramGraph,
    /// Direction-lookup table.
    pub direction: NodeId,
    /// The three metadata tables (appliance, ENI, VNI).
    pub metadata: Vec<NodeId>,
    /// Connection-tracking table.
    pub conntrack: NodeId,
    /// The three ACL levels.
    pub acls: Vec<NodeId>,
    /// The routing table.
    pub routing: NodeId,
    /// Flow fields.
    pub flow_fields: Vec<FieldRef>,
    /// ACL key fields.
    pub acl_fields: Vec<FieldRef>,
}

impl DashRouting {
    /// Builds the DASH pipeline.
    pub fn build() -> Self {
        let mut b = ProgramBuilder::named("dash_routing");
        let flow_fields: Vec<FieldRef> = ["ipv4.src", "ipv4.dst", "udp.sport", "udp.dport"]
            .iter()
            .map(|n| b.field(n))
            .collect();
        let dir = b.field("meta.direction");
        let appliance = b.field("meta.appliance");
        let eni = b.field("meta.eni");
        let vni = b.field("meta.vni");
        let ct_state = b.field("meta.ct_state");
        let acl_fields = vec![b.field("acl.k0"), b.field("acl.k1"), b.field("acl.k2")];

        let small_exact = |b: &mut ProgramBuilder, name: &str, key: FieldRef, out: FieldRef| {
            let mut tb = b
                .table(name)
                .key(key, MatchKind::Exact)
                .action("set", vec![Primitive::set(out, 1)])
                .action_nop("nop");
            for e in 0..4u64 {
                tb = tb.entry(TableEntry::new(vec![MatchValue::Exact(e)], 0));
            }
            tb.finish()
        };
        let direction = small_exact(&mut b, "direction_lookup", flow_fields[3], dir);
        let metadata = vec![
            small_exact(&mut b, "appliance_id", flow_fields[0], appliance),
            small_exact(&mut b, "eni_lookup", flow_fields[1], eni),
            small_exact(&mut b, "vni_lookup", flow_fields[2], vni),
        ];
        let conntrack = b
            .table("conntrack")
            .key(flow_fields[0], MatchKind::Exact)
            .key(flow_fields[1], MatchKind::Exact)
            .key(flow_fields[2], MatchKind::Exact)
            .key(flow_fields[3], MatchKind::Exact)
            .action("track", vec![Primitive::set(ct_state, 1)])
            .action_nop("nop")
            .finish();
        let mut acls = Vec::new();
        for (i, &f) in acl_fields.iter().enumerate() {
            acls.push(acl_table(&mut b, &format!("acl_level{i}"), f));
        }
        let routing = b
            .table("routing")
            .key(flow_fields[1], MatchKind::Lpm)
            .action("fwd", vec![Primitive::Forward { port: 1 }])
            .entry(TableEntry::new(
                vec![MatchValue::Lpm {
                    value: 0,
                    prefix_len: 0,
                }],
                0,
            ))
            .finish();
        let _ = routing;
        Self {
            graph: b.seal(direction).expect("valid program"),
            direction,
            metadata,
            conntrack,
            acls,
            routing,
            flow_fields,
            acl_fields,
        }
    }

    /// Traffic with per-ACL drop rates, `num_flows` flows, and Zipf skew
    /// `zipf_s` ("long-lived flows" = high skew / fewer active flows).
    pub fn traffic(&self, drop_rates: &[f64], num_flows: usize, zipf_s: f64, seed: u64) -> FlowGen {
        let mut gen = FlowGen::new(
            self.graph.fields.len(),
            self.flow_fields.clone(),
            num_flows,
            seed,
        )
        .with_zipf(zipf_s);
        for (i, &rate) in drop_rates.iter().enumerate() {
            if i < self.acl_fields.len() && rate > 0.0 {
                gen = gen.with_bias(FieldBias {
                    field: self.acl_fields[i],
                    value: ACL_DROP_VALUE,
                    probability: rate,
                });
            }
        }
        gen
    }
}

/// The PISCES-style L2/L3/ACL pipeline (§5.3.3 component): source MAC,
/// destination MAC, IPv4 LPM, one ternary ACL.
#[derive(Debug, Clone)]
pub struct L2L3Acl {
    /// The program.
    pub graph: ProgramGraph,
    /// smac, dmac, ipv4 LPM, ACL, in order.
    pub tables: Vec<NodeId>,
    /// Flow fields.
    pub flow_fields: Vec<FieldRef>,
}

impl L2L3Acl {
    /// Builds the standalone pipeline.
    pub fn build() -> Self {
        let mut b = ProgramBuilder::named("l2l3_acl");
        let ((), tables, flow_fields) = Self::build_into(&mut b, "");
        Self {
            graph: b.seal(tables[0]).expect("valid program"),
            tables,
            flow_fields,
        }
    }

    /// Appends the pipeline's tables into an existing builder (used by NF
    /// composition); caller wires them. Returns `((), ids, fields)`.
    fn build_into(b: &mut ProgramBuilder, prefix: &str) -> ((), Vec<NodeId>, Vec<FieldRef>) {
        let smac_f = b.field(&format!("{prefix}eth.smac"));
        let dmac_f = b.field(&format!("{prefix}eth.dmac"));
        let dst_f = b.field(&format!("{prefix}ipv4.dst"));
        let acl_f = b.field(&format!("{prefix}acl.key"));
        let smac = b
            .table(format!("{prefix}smac"))
            .key(smac_f, MatchKind::Exact)
            .action_nop("known")
            .action_nop("learn")
            .finish();
        let dmac = b
            .table(format!("{prefix}dmac"))
            .key(dmac_f, MatchKind::Exact)
            .action("fwd", vec![Primitive::Forward { port: 2 }])
            .action_nop("flood")
            .finish();
        let lpm = b
            .table(format!("{prefix}ipv4_lpm"))
            .key(dst_f, MatchKind::Lpm)
            .action("route", vec![Primitive::Nop, Primitive::Nop])
            .entry(TableEntry::new(
                vec![MatchValue::Lpm {
                    value: 0x0A00_0000_0000_0000,
                    prefix_len: 8,
                }],
                0,
            ))
            .entry(TableEntry::new(
                vec![MatchValue::Lpm {
                    value: 0x0A0A_0000_0000_0000,
                    prefix_len: 16,
                }],
                0,
            ))
            .finish();
        let acl = b
            .table(format!("{prefix}acl"))
            .key(acl_f, MatchKind::Ternary)
            .action_nop("permit")
            .action_drop("deny")
            .entry(TableEntry::with_priority(
                vec![MatchValue::Ternary {
                    value: ACL_DROP_VALUE,
                    mask: 0xFFFF,
                }],
                1,
                1,
            ))
            .finish();
        (
            (),
            vec![smac, dmac, lpm, acl],
            vec![smac_f, dmac_f, dst_f, acl_f],
        )
    }
}

/// §5.3.3 NF composition: load balancer + DASH routing + L2/L3/ACL behind
/// selector branches — nine pipelets in total.
#[derive(Debug, Clone)]
pub struct NfComposition {
    /// The program.
    pub graph: ProgramGraph,
    /// The selector field: 0 → LB, 1 → DASH, 2 → L2/L3/ACL.
    pub selector: FieldRef,
    /// Entry (first table) of each NF chain.
    pub nf_entries: Vec<NodeId>,
    /// All tables of each NF, in execution order.
    pub nf_tables: Vec<Vec<NodeId>>,
    /// Flow fields used by the traffic generator.
    pub flow_fields: Vec<FieldRef>,
    /// ACL-ish key fields per NF for drop biasing.
    pub acl_fields: Vec<FieldRef>,
}

impl NfComposition {
    /// Builds the composed program.
    pub fn build() -> Self {
        let mut b = ProgramBuilder::named("nf_composition");
        let selector = b.field("meta.nf_selector");
        let flow_fields: Vec<FieldRef> = ["ipv4.src", "ipv4.dst", "l4.sport", "l4.dport"]
            .iter()
            .map(|n| b.field(n))
            .collect();

        // NF1: a compact load balancer (4 regular + LB + ACL).
        let mut nf1 = Vec::new();
        let lb_acl_f = b.field("nf1.acl");
        for i in 0..4 {
            nf1.push(
                b.table(format!("nf1.proc{i}"))
                    .key(flow_fields[i % flow_fields.len()], MatchKind::Exact)
                    .action("proc", vec![Primitive::Nop])
                    .action_nop("nop")
                    .finish(),
            );
        }
        let backend = b.field("nf1.backend");
        nf1.push(
            b.table("nf1.lb")
                .key(flow_fields[0], MatchKind::Exact)
                .action("set_backend", vec![Primitive::set(backend, 1)])
                .action_nop("nop")
                .finish(),
        );
        nf1.push(acl_table(&mut b, "nf1.acl", lb_acl_f));
        for w in nf1.windows(2) {
            b.set_next(w[0], Some(w[1]));
        }
        b.set_next(*nf1.last().expect("nonempty"), None);

        // NF2: compact DASH routing (direction + 2 metadata + ACL + route).
        let mut nf2 = Vec::new();
        let dash_acl_f = b.field("nf2.acl");
        let dir = b.field("nf2.direction");
        nf2.push(
            b.table("nf2.direction")
                .key(flow_fields[3], MatchKind::Exact)
                .action("set_dir", vec![Primitive::set(dir, 1)])
                .action_nop("nop")
                .finish(),
        );
        for (i, name) in ["nf2.eni", "nf2.vni"].iter().enumerate() {
            nf2.push(
                b.table(*name)
                    .key(flow_fields[i], MatchKind::Exact)
                    .action("set", vec![Primitive::Nop])
                    .action_nop("nop")
                    .finish(),
            );
        }
        nf2.push(acl_table(&mut b, "nf2.acl", dash_acl_f));
        nf2.push(
            b.table("nf2.routing")
                .key(flow_fields[1], MatchKind::Lpm)
                .action("fwd", vec![Primitive::Forward { port: 3 }])
                .entry(TableEntry::new(
                    vec![MatchValue::Lpm {
                        value: 0,
                        prefix_len: 0,
                    }],
                    0,
                ))
                .finish(),
        );
        for w in nf2.windows(2) {
            b.set_next(w[0], Some(w[1]));
        }
        b.set_next(*nf2.last().expect("nonempty"), None);

        // NF3: L2/L3/ACL.
        let (_, nf3, _nf3_fields) = L2L3Acl::build_into(&mut b, "nf3.");
        for w in nf3.windows(2) {
            b.set_next(w[0], Some(w[1]));
        }
        b.set_next(*nf3.last().expect("nonempty"), None);
        let nf3_acl_f = b.field("nf3.acl.key");

        // Selector branches: sel < 1 -> NF1; else sel < 2 -> NF2; else NF3.
        let inner = b.branch(
            "sel_dash",
            Condition::lt(selector, 2),
            Some(nf2[0]),
            Some(nf3[0]),
        );
        let outer = b.branch(
            "sel_lb",
            Condition::lt(selector, 1),
            Some(nf1[0]),
            Some(inner),
        );
        let acl_fields = vec![lb_acl_f, dash_acl_f, nf3_acl_f];
        let nf_entries = vec![nf1[0], nf2[0], nf3[0]];
        Self {
            graph: b.seal(outer).expect("valid program"),
            selector,
            nf_entries,
            nf_tables: vec![nf1, nf2, nf3],
            flow_fields,
            acl_fields,
        }
    }

    /// Traffic sending `shares[i]` of packets to NF `i` (shares should sum
    /// to ≤ 1; the remainder goes to NF3).
    pub fn traffic(&self, shares: &[f64; 2], num_flows: usize, seed: u64) -> NfTrafficGen {
        NfTrafficGen {
            inner: FlowGen::new(
                self.graph.fields.len(),
                self.flow_fields.clone(),
                num_flows,
                seed,
            ),
            selector: self.selector,
            shares: *shares,
            seq: 0,
        }
    }
}

/// Specialization benchmark pipeline: tables chosen so each specializing
/// pass has something to bite on. Ternary classifiers (multi-mask linear
/// scans — the expensive general path a hot-key guard short-circuits),
/// exact flow tables (inline-cache targets), one small dense exact table
/// whose keys span `0..CLASS_ENTRIES` (the direct-index candidate), and an
/// LPM route. Traffic is Zipf-skewed with configurable exponent, and
/// [`SkewedPipeline::traffic_flipped`] remaps the popular flows onto
/// disjoint key values mid-experiment (drift that must de-specialize).
#[derive(Debug, Clone)]
pub struct SkewedPipeline {
    /// The program.
    pub graph: ProgramGraph,
    /// Ternary classifier tables, in order.
    pub ternary: Vec<NodeId>,
    /// Exact-match flow tables, in order.
    pub exact: Vec<NodeId>,
    /// The small dense exact table (keys `0..CLASS_ENTRIES`).
    pub class_table: NodeId,
    /// The final LPM routing table.
    pub routing: NodeId,
    /// Flow fields (keys of the classifier and flow tables).
    pub flow_fields: Vec<FieldRef>,
    /// Key field of the dense class table.
    pub class_field: FieldRef,
}

/// Entry count of [`SkewedPipeline`]'s dense class table.
pub const CLASS_ENTRIES: u64 = 8;

impl SkewedPipeline {
    /// Builds the pipeline with `num_ternary` classifiers and `num_exact`
    /// flow tables, five masked entries per classifier.
    pub fn build(num_ternary: usize, num_exact: usize) -> Self {
        Self::build_with_entries(num_ternary, num_exact, 5)
    }

    /// [`SkewedPipeline::build`] with a configurable classifier ruleset
    /// size. Every ternary lookup is a priority scan over
    /// `ternary_entries` masked rules, so this dial sets how much work a
    /// hot-key guard hit gets to skip — realistic ACLs run hundreds of
    /// rules, which is where Morpheus-style specialization earns its
    /// keep.
    pub fn build_with_entries(num_ternary: usize, num_exact: usize, ternary_entries: u64) -> Self {
        let mut b = ProgramBuilder::named("skewed_pipeline");
        let flow_fields: Vec<FieldRef> = ["ipv4.src", "ipv4.dst", "l4.sport", "l4.dport"]
            .iter()
            .map(|n| b.field(n))
            .collect();
        let class_field = b.field("meta.class");
        let qos = b.field("meta.qos");
        let mut ternary = Vec::new();
        for i in 0..num_ternary {
            let mut tb = b
                .table(format!("classify{i}"))
                .key(flow_fields[i % flow_fields.len()], MatchKind::Ternary)
                .action("mark", vec![Primitive::Nop])
                .action_nop("miss");
            // Masked entries spread over distinct mask patterns, so the
            // general path probes one way per pattern (up to 32) like a
            // real multi-pattern ACL. Values sit above bit 20 while
            // generated flow values stay below it, so no rule ever
            // matches — the default-action outcome is the bakeable hot
            // verdict.
            for m in 0..ternary_entries {
                let shift = 20 + (m % 32);
                tb = tb.entry(TableEntry::with_priority(
                    vec![MatchValue::Ternary {
                        value: ((m % 255) + 1) << shift,
                        mask: 0xFF << shift,
                    }],
                    0,
                    m as i32,
                ));
            }
            ternary.push(tb.finish());
        }
        let mut exact = Vec::new();
        for i in 0..num_exact {
            let mut tb = b
                .table(format!("flow{i}"))
                .key(flow_fields[i % flow_fields.len()], MatchKind::Exact)
                .action("proc", vec![Primitive::Nop])
                .action_nop("nop");
            for e in 0..4u64 {
                tb = tb.entry(TableEntry::new(vec![MatchValue::Exact(e)], 0));
            }
            exact.push(tb.finish());
        }
        let mut ct = b
            .table("class_map")
            .key(class_field, MatchKind::Exact)
            .action("set_qos", vec![Primitive::set(qos, 1)])
            .action_nop("best_effort");
        for e in 0..CLASS_ENTRIES {
            ct = ct.entry(TableEntry::new(vec![MatchValue::Exact(e)], 0));
        }
        let class_table = ct.finish();
        let routing = b
            .table("routing")
            .key(flow_fields[1], MatchKind::Lpm)
            .action("fwd", vec![Primitive::Forward { port: 1 }])
            .entry(TableEntry::new(
                vec![MatchValue::Lpm {
                    value: 0,
                    prefix_len: 0,
                }],
                0,
            ))
            .finish();
        let _ = routing;
        let root = *ternary.first().or(exact.first()).unwrap_or(&class_table);
        Self {
            graph: b.seal(root).expect("valid program"),
            ternary,
            exact,
            class_table,
            routing,
            flow_fields,
            class_field,
        }
    }

    /// Zipf-skewed traffic (`skew` = 0 is uniform). Class values spread
    /// over a few dense-table entries via biases; unbiased packets hit
    /// entry 0 (the field defaults to 0).
    pub fn traffic(&self, skew: f64, num_flows: usize, seed: u64) -> FlowGen {
        let mut gen = FlowGen::new(
            self.graph.fields.len(),
            self.flow_fields.clone(),
            num_flows,
            seed,
        )
        .with_zipf(skew);
        for (v, p) in [(1u64, 0.25), (2, 0.2), (3, 0.15)] {
            gen = gen.with_bias(FieldBias {
                field: self.class_field,
                value: v,
                probability: p,
            });
        }
        gen
    }

    /// The same distribution shifted onto a disjoint flow universe: the
    /// popular ranks map to entirely different field values, so every
    /// baked hot key goes stale at once (the de-specialization stimulus).
    pub fn traffic_flipped(&self, skew: f64, num_flows: usize, seed: u64) -> FlowGen {
        self.traffic(skew, num_flows, seed)
            .with_flow_base(num_flows as u64)
    }
}

/// Traffic generator splitting packets across NFs by the selector field.
#[derive(Debug, Clone)]
pub struct NfTrafficGen {
    inner: FlowGen,
    selector: FieldRef,
    shares: [f64; 2],
    seq: u64,
}

impl NfTrafficGen {
    /// Generates a batch of `n` packets. NF selection is stratified (not
    /// sampled) so small batches match the shares exactly.
    pub fn batch(&mut self, n: usize) -> Vec<pipeleon_sim::Packet> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut p = self.inner.next_packet();
            let u = (self.seq % 1000) as f64 / 1000.0;
            self.seq += 1;
            let sel = if u < self.shares[0] {
                0
            } else if u < self.shares[0] + self.shares[1] {
                1
            } else {
                2
            };
            p.set(self.selector, sel);
            out.push(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeleon_cost::CostParams;
    use pipeleon_sim::SmartNic;

    #[test]
    fn linear_tables_builds_all_kinds() {
        for kind in [MatchKind::Exact, MatchKind::Lpm, MatchKind::Ternary] {
            let (g, ids) = linear_tables(6, kind, 2, 3);
            g.validate().unwrap();
            assert_eq!(ids.len(), 6);
            assert_eq!(g.tables().count(), 6);
        }
    }

    #[test]
    fn acl_pipeline_drops_at_configured_rate() {
        let p = AclPipeline::build(2, 3);
        let mut nic = SmartNic::new(p.graph.clone(), CostParams::bluefield2()).unwrap();
        let mut gen = p.traffic(&[0.5, 0.0, 0.0], 1000, 7);
        let stats = nic.measure(gen.batch(10_000));
        let rate = stats.dropped as f64 / stats.packets as f64;
        assert!((rate - 0.5).abs() < 0.03, "drop rate = {rate}");
    }

    #[test]
    fn acl_pipeline_structure() {
        let p = AclPipeline::build(8, 4);
        assert_eq!(p.regular.len(), 8);
        assert_eq!(p.acls.len(), 4);
        assert_eq!(p.graph.tables().count(), 13); // 8 + 4 + routing
    }

    #[test]
    fn load_balancer_builds_and_runs() {
        let lb = LoadBalancer::build();
        lb.graph.validate().unwrap();
        assert_eq!(lb.graph.tables().count(), 12);
        let mut nic = SmartNic::new(lb.graph.clone(), CostParams::bluefield2()).unwrap();
        let mut gen = lb.traffic(&[0.2, 0.1], 500, 3);
        let stats = nic.measure(gen.batch(5000));
        let rate = stats.dropped as f64 / stats.packets as f64;
        // 1 - (1-0.2)(1-0.1) = 0.28.
        assert!((rate - 0.28).abs() < 0.03, "drop rate = {rate}");
    }

    #[test]
    fn dash_routing_structure_and_traffic() {
        let d = DashRouting::build();
        d.graph.validate().unwrap();
        // direction + 3 metadata + conntrack + 3 ACL + routing = 9 tables.
        assert_eq!(d.graph.tables().count(), 9);
        let mut nic = SmartNic::new(d.graph.clone(), CostParams::agilio_cx()).unwrap();
        let mut gen = d.traffic(&[0.3, 0.0, 0.0], 2000, 0.0, 11);
        let stats = nic.measure(gen.batch(5000));
        let rate = stats.dropped as f64 / stats.packets as f64;
        assert!((rate - 0.3).abs() < 0.03, "drop rate = {rate}");
    }

    #[test]
    fn l2l3_acl_standalone() {
        let l = L2L3Acl::build();
        l.graph.validate().unwrap();
        assert_eq!(l.tables.len(), 4);
    }

    #[test]
    fn nf_composition_routes_by_selector() {
        let nf = NfComposition::build();
        nf.graph.validate().unwrap();
        let mut nic = SmartNic::new(nf.graph.clone(), CostParams::emulated_nic()).unwrap();
        let mut gen = nf.traffic(&[0.6, 0.3], 1000, 5);
        nic.set_instrumentation(true, 1);
        nic.measure(gen.batch(3000));
        let prof = nic.take_profile();
        let visits = prof.visit_probabilities(&nf.graph);
        let share = |nf_idx: usize| visits[nf.nf_entries[nf_idx].index()];
        assert!((share(0) - 0.6).abs() < 0.05, "nf1 share = {}", share(0));
        assert!((share(1) - 0.3).abs() < 0.05, "nf2 share = {}", share(1));
        assert!((share(2) - 0.1).abs() < 0.05, "nf3 share = {}", share(2));
    }

    #[test]
    fn skewed_pipeline_builds_and_runs() {
        let s = SkewedPipeline::build(3, 2);
        s.graph.validate().unwrap();
        // 3 ternary + 2 exact + class_map + routing.
        assert_eq!(s.graph.tables().count(), 7);
        let mut nic = SmartNic::new(s.graph.clone(), CostParams::bluefield2()).unwrap();
        let stats = nic.measure(s.traffic(1.2, 1000, 3).batch(4000));
        assert_eq!(stats.packets, 4000);
        assert_eq!(stats.dropped, 0, "nothing in this pipeline drops");
    }

    #[test]
    fn skewed_traffic_concentrates_and_flip_is_disjoint() {
        let s = SkewedPipeline::build(2, 1);
        let top_share = |mut g: FlowGen| {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..4000 {
                *counts
                    .entry(g.next_packet().get(s.flow_fields[0]))
                    .or_insert(0u32) += 1;
            }
            *counts.values().max().unwrap() as f64 / 4000.0
        };
        assert!(top_share(s.traffic(1.3, 500, 7)) > 0.25, "skew too weak");
        assert!(
            top_share(s.traffic(0.0, 500, 7)) < 0.05,
            "uniform too peaky"
        );
        // The flipped generator shares no flow values with the original.
        let values = |mut g: FlowGen| {
            (0..2000)
                .map(|_| g.next_packet().get(s.flow_fields[0]))
                .collect::<std::collections::HashSet<_>>()
        };
        let a = values(s.traffic(1.3, 500, 7));
        let b = values(s.traffic_flipped(1.3, 500, 7));
        assert!(a.is_disjoint(&b), "flip did not move the flow universe");
    }

    #[test]
    fn nf_composition_has_nine_plus_pipelet_chains() {
        // Tables split across three chains; total tables = 6 + 6 + 4.
        let nf = NfComposition::build();
        let total: usize = nf.nf_tables.iter().map(Vec::len).sum();
        assert_eq!(total, 15);
        assert_eq!(nf.graph.tables().count(), 15);
    }
}
