#![warn(missing_docs)]

//! # pipeleon-workloads — programs, profiles, and traffic for experiments
//!
//! Everything the paper's evaluation feeds into Pipeleon, rebuilt as
//! deterministic, seeded generators:
//!
//! * [`synth`] — a random P4 program synthesizer with controllable pipelet
//!   count (PN), pipelet length (PL), match-type mix, action complexity,
//!   and drop/write behaviour. Substitute for the Gauntlet-based
//!   synthesizer of §5.2.2 / §5.4.2.
//! * [`profiles`] — runtime-profile synthesis: random traffic splits over
//!   a program's branches/actions plus entropy computation over pipelet
//!   traffic shares (§5.4.3, Appendix A.3).
//! * [`traffic`] — flow-level packet generation: uniform and Zipf flow
//!   (locality) samplers and field-targeted value distributions; the
//!   TRex/trafgen substitute (§5.1), 512 B packets throughout.
//! * [`trace`] — trace-driven replay: a text format carrying per-packet
//!   header fields (the pcap-replay substitute).
//! * [`scenarios`] — the concrete evaluation programs: the ACL+routing
//!   motivation pipeline (Fig. 2), the four-table microbenchmark pipelets
//!   (Fig. 9), the service load balancer (§5.3.1), the DASH-style packet
//!   routing pipeline (§5.3.2), an L2/L3/ACL pipeline, and the
//!   network-function composition (§5.3.3).

pub mod profiles;
pub mod scenarios;
pub mod synth;
pub mod trace;
pub mod traffic;

pub use profiles::{entropy, random_profile, ProfileSynthConfig};
pub use synth::{synthesize, synthesize_diamonds, MatchMix, SynthConfig};
pub use trace::Trace;
pub use traffic::{FlowGen, ZipfSampler};
