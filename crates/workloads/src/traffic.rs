//! Flow-level traffic generation: the TRex/trafgen substitute (§5.1).
//!
//! Experiments depend on flow statistics — how many distinct flows exist,
//! how skewed the flow popularity is (locality, which drives cache hit
//! rates), and which table entries packets select (which drives drop
//! rates). [`FlowGen`] produces packets over a flow universe with uniform
//! or Zipf popularity; per-field overrides steer packets into specific
//! table entries with configured probabilities.

use pipeleon_ir::FieldRef;
use pipeleon_sim::Packet;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Samples flow ranks from a Zipf distribution over `n` ranks with
/// exponent `s` (s = 0 is uniform; larger s is more skewed / more
/// locality).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler; `n` is clamped to ≥ 1.
    pub fn new(n: usize, s: f64) -> Self {
        let n = n.max(1);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Samples a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> usize {
        let x: f64 = rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&x).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the universe is empty (never true: clamped to 1).
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A per-field value override applied to a fraction of packets.
#[derive(Debug, Clone, Copy)]
pub struct FieldBias {
    /// The field to override.
    pub field: FieldRef,
    /// Value to write.
    pub value: u64,
    /// Probability a packet receives the override.
    pub probability: f64,
}

/// Deterministic flow-level packet generator.
#[derive(Debug, Clone)]
pub struct FlowGen {
    /// Fields that receive flow-derived values (5-tuple-ish).
    pub flow_fields: Vec<FieldRef>,
    /// Number of distinct flows.
    pub num_flows: usize,
    /// Zipf exponent for flow popularity (0 = uniform).
    pub zipf_s: f64,
    /// Per-field biased overrides (applied after flow fields).
    pub biases: Vec<FieldBias>,
    /// Offset added to flow ranks before field derivation. The rank→value
    /// map is otherwise seed-independent, so shifting the base remaps the
    /// popular ranks onto entirely different field values — the
    /// "distribution flip" lever for drift experiments.
    pub flow_base: u64,
    /// Packet wire size in bytes.
    pub packet_bytes: usize,
    /// Number of slots packets carry (the program's field-space size).
    pub slot_count: usize,
    rng: ChaCha8Rng,
    zipf: ZipfSampler,
}

impl FlowGen {
    /// Creates a generator over `num_flows` flows writing `flow_fields`.
    pub fn new(slot_count: usize, flow_fields: Vec<FieldRef>, num_flows: usize, seed: u64) -> Self {
        Self {
            flow_fields,
            num_flows: num_flows.max(1),
            zipf_s: 0.0,
            biases: Vec::new(),
            flow_base: 0,
            packet_bytes: Packet::DEFAULT_BYTES,
            slot_count,
            rng: ChaCha8Rng::seed_from_u64(seed),
            zipf: ZipfSampler::new(num_flows.max(1), 0.0),
        }
    }

    /// Sets Zipf skew (rebuilds the sampler).
    pub fn with_zipf(mut self, s: f64) -> Self {
        self.zipf_s = s;
        self.zipf = ZipfSampler::new(self.num_flows, s);
        self
    }

    /// Adds a biased field override.
    pub fn with_bias(mut self, bias: FieldBias) -> Self {
        self.biases.push(bias);
        self
    }

    /// Offsets flow ranks by `base` before deriving field values. Two
    /// generators with different bases share no flow values, so flipping
    /// the base mid-run moves the entire popularity mass to fresh keys.
    pub fn with_flow_base(mut self, base: u64) -> Self {
        self.flow_base = base;
        self
    }

    /// Generates the next packet.
    pub fn next_packet(&mut self) -> Packet {
        let flow = self.zipf.sample(&mut self.rng) as u64 + self.flow_base;
        let mut p = Packet::with_slots(vec![0; self.slot_count]);
        p.bytes = self.packet_bytes;
        // Distinct per-field values derived from the flow id so multi-field
        // keys stay correlated within a flow.
        for (i, &f) in self.flow_fields.iter().enumerate() {
            p.set(
                f,
                flow.wrapping_mul(2654435761).wrapping_add(i as u64 * 97) % 1_000_003,
            );
        }
        for b in &self.biases {
            if self.rng.gen_bool(b.probability.clamp(0.0, 1.0)) {
                p.set(b.field, b.value);
            }
        }
        p
    }

    /// Generates a batch of `n` packets.
    pub fn batch(&mut self, n: usize) -> Vec<Packet> {
        (0..n).map(|_| self.next_packet()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_zero_is_roughly_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((1500..2600).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn zipf_skew_concentrates_on_low_ranks() {
        let z = ZipfSampler::new(100, 1.2);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut top10 = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                top10 += 1;
            }
        }
        assert!(
            top10 as f64 / n as f64 > 0.6,
            "top-10 share = {}",
            top10 as f64 / n as f64
        );
    }

    #[test]
    fn flow_gen_respects_flow_universe() {
        let fields = vec![FieldRef(0), FieldRef(1)];
        let mut g = FlowGen::new(4, fields, 5, 42);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..1000 {
            let p = g.next_packet();
            distinct.insert((p.get(FieldRef(0)), p.get(FieldRef(1))));
        }
        assert_eq!(distinct.len(), 5);
    }

    #[test]
    fn flow_fields_are_correlated_within_flow() {
        let mut g = FlowGen::new(4, vec![FieldRef(0), FieldRef(1)], 3, 7);
        let mut map = std::collections::HashMap::new();
        for _ in 0..500 {
            let p = g.next_packet();
            let prev = map.insert(p.get(FieldRef(0)), p.get(FieldRef(1)));
            if let Some(v) = prev {
                assert_eq!(v, p.get(FieldRef(1)));
            }
        }
    }

    #[test]
    fn bias_applies_at_configured_rate() {
        let mut g = FlowGen::new(4, vec![FieldRef(0)], 1000, 11).with_bias(FieldBias {
            field: FieldRef(3),
            value: 0xDEAD,
            probability: 0.3,
        });
        let n = 20_000;
        let hits = (0..n)
            .filter(|_| g.next_packet().get(FieldRef(3)) == 0xDEAD)
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn flow_base_disjoint_flow_values() {
        // Shifting the base by ≥ num_flows gives a disjoint value set:
        // the mid-run distribution-flip lever for drift experiments.
        let values = |base: u64| {
            let mut g = FlowGen::new(4, vec![FieldRef(0)], 20, 9).with_flow_base(base);
            (0..500)
                .map(|_| g.next_packet().get(FieldRef(0)))
                .collect::<std::collections::HashSet<_>>()
        };
        let a = values(0);
        let b = values(1_000);
        assert!(a.is_disjoint(&b), "flow values overlap across bases");
    }

    #[test]
    fn generator_is_deterministic() {
        let mk = || {
            let mut g = FlowGen::new(4, vec![FieldRef(0)], 50, 5).with_zipf(0.9);
            g.batch(100)
        };
        assert_eq!(mk(), mk());
    }
}
