//! Minimal JSON formatting helpers shared by the exposition renderers.
//!
//! The obs crate is intentionally dependency-free, so the small amount
//! of JSON it emits (metric snapshots, journal lines) is rendered by
//! hand with these helpers.

/// Escapes a string for embedding inside a JSON (or Prometheus label)
/// double-quoted literal: backslash, double quote, and control
/// characters are escaped; everything else passes through.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Infinity literals).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{01}"), "\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn formats_floats() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }
}
