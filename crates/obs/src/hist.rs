//! Log-bucketed (HDR-style) latency histograms with exact merge laws.
//!
//! A [`LatencyHistogram`] stores per-bucket packet counts over a **fixed
//! log-linear bucket layout**: values below [`SUB_BUCKETS`] ns get one
//! bucket each (exact), and every further power-of-two range is split
//! into [`SUB_BUCKETS`] linear sub-buckets, bounding the relative bucket
//! width — and therefore the quantile error — at `1/SUB_BUCKETS`
//! (3.125%). Recording is O(1) (a leading-zeros count and an index add),
//! and every aggregate is an integer, so [`LatencyHistogram::merge`] is
//! **bit-exact commutative, associative, and has the empty histogram as
//! identity** — the same algebraic laws `RuntimeProfile::merge` obeys,
//! which is what lets sharded datapaths merge per-worker histograms into
//! a result that is identical for any worker count.

/// log2 of the number of linear sub-buckets per power-of-two range.
pub const SUB_BUCKET_BITS: u32 = 5;

/// Linear sub-buckets per power-of-two range; also the bound below which
/// every value gets its own (exact) bucket.
pub const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

/// Total buckets in the fixed layout, covering the full `u64` range of
/// nanosecond values: `SUB_BUCKETS` exact buckets plus `SUB_BUCKETS` per
/// remaining octave.
pub const NUM_BUCKETS: usize =
    (SUB_BUCKETS + (63 - SUB_BUCKET_BITS as u64 + 1) * SUB_BUCKETS) as usize;

/// The bucket index a nanosecond value falls into.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let e = 63 - v.leading_zeros(); // bit length - 1; >= SUB_BUCKET_BITS
    let block = (e - SUB_BUCKET_BITS + 1) as u64;
    let sub = (v >> (e - SUB_BUCKET_BITS)) - SUB_BUCKETS;
    (block * SUB_BUCKETS + sub) as usize
}

/// The smallest nanosecond value mapping to `index`.
pub fn bucket_lower(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let block = index >> SUB_BUCKET_BITS;
    let sub = index & (SUB_BUCKETS - 1);
    (SUB_BUCKETS + sub) << (block - 1)
}

/// The largest nanosecond value mapping to `index`.
pub fn bucket_upper(index: usize) -> u64 {
    if index + 1 < NUM_BUCKETS {
        bucket_lower(index + 1) - 1
    } else {
        u64::MAX
    }
}

/// A mergeable latency histogram over nanosecond values.
///
/// ```
/// use pipeleon_obs::LatencyHistogram;
/// let mut h = LatencyHistogram::new();
/// for v in [12.0, 100.0, 101.0, 5000.0] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// // Values below 32 ns are exact; larger ones land within 3.125%.
/// assert_eq!(h.quantile(0.0), Some(12));
/// let p99 = h.quantile(0.99).unwrap() as f64;
/// assert!((p99 - 5000.0).abs() / 5000.0 <= 1.0 / 32.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram (the identity of [`LatencyHistogram::merge`]).
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one latency sample, in nanoseconds. Negative and NaN
    /// inputs clamp to 0; values beyond `u64::MAX` saturate.
    pub fn record(&mut self, ns: f64) {
        let v = if ns.is_finite() && ns > 0.0 {
            ns.round() as u64 // saturating float->int cast
        } else {
            0
        };
        self.record_ns(v);
    }

    /// Records one wall-clock duration, saturating to `u64` nanoseconds.
    /// The convenience entry point for end-to-end (ingest→egress) timing,
    /// where callers hold `std::time::Duration`s from `Instant` pairs.
    pub fn record_duration(&mut self, d: core::time::Duration) {
        self.record_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one latency sample as an integer nanosecond value.
    pub fn record_ns(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum_ns += v as u128;
        self.min_ns = self.min_ns.min(v);
        self.max_ns = self.max_ns.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded values, in nanoseconds.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Smallest recorded value; `None` if empty.
    pub fn min_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_ns)
    }

    /// Largest recorded value; `None` if empty.
    pub fn max_ns(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_ns)
    }

    /// Mean of all recorded values; `None` if empty.
    pub fn mean_ns(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_ns as f64 / self.count as f64)
    }

    /// Nearest-rank quantile, `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the sample of rank `ceil(q * count)` (clamped into
    /// the recorded min/max). The exact sample of that rank lies in the
    /// same bucket, so the error is bounded by one bucket width —
    /// `1/SUB_BUCKETS` relative (3.125%), exact below [`SUB_BUCKETS`] ns.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(i).min(self.max_ns).max(bucket_lower(i)));
            }
        }
        Some(self.max_ns) // unreachable if counters are consistent
    }

    /// Merges another histogram into this one. Bit-exact: commutative,
    /// associative, with [`LatencyHistogram::new`] as identity — all
    /// aggregates are integer sums/mins/maxes over the same fixed layout.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Iterates the non-empty buckets as `(lower_ns, upper_ns, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower(i), bucket_upper(i), c))
    }

    /// Samples recorded in buckets entirely at or below `v` nanoseconds
    /// (the cumulative count Prometheus `le` buckets report; a bucket
    /// straddling `v` is *not* included, so the result underestimates by
    /// at most one bucket).
    pub fn count_le(&self, v: u64) -> u64 {
        self.counts
            .iter()
            .enumerate()
            .take_while(|(i, _)| bucket_upper(*i) <= v)
            .map(|(_, &c)| c)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_contiguous_and_monotone() {
        // Every bucket's upper is one below the next bucket's lower, and
        // index(v) inverts lower/upper at every boundary.
        for i in 0..NUM_BUCKETS - 1 {
            assert_eq!(bucket_upper(i) + 1, bucket_lower(i + 1), "bucket {i}");
            assert_eq!(bucket_index(bucket_lower(i)), i);
            assert_eq!(bucket_index(bucket_upper(i)), i);
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(0), 0);
    }

    #[test]
    fn relative_width_is_bounded() {
        for v in [33u64, 100, 1000, 123_456, 1 << 40, u64::MAX / 3] {
            let i = bucket_index(v);
            let width = (bucket_upper(i) - bucket_lower(i)) as f64;
            assert!(
                width / bucket_lower(i) as f64 <= 1.0 / SUB_BUCKETS as f64,
                "bucket {i} for {v} too wide"
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record_ns(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(SUB_BUCKETS - 1));
        assert_eq!(h.min_ns(), Some(0));
        assert_eq!(h.max_ns(), Some(SUB_BUCKETS - 1));
    }

    #[test]
    fn merge_is_exact() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = i * 37 % 50_000;
            if i % 2 == 0 { &mut a } else { &mut b }.record_ns(v);
            whole.record_ns(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "commutative");
        assert_eq!(ab, whole, "partition-invariant");
        let mut id = a.clone();
        id.merge(&LatencyHistogram::new());
        assert_eq!(id, a, "identity");
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean_ns(), None);
        assert_eq!(h.min_ns(), None);
        assert_eq!(h.max_ns(), None);
    }

    #[test]
    fn record_clamps_pathological_floats() {
        let mut h = LatencyHistogram::new();
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(1e30); // saturates to u64::MAX
        assert_eq!(h.count(), 4);
        assert_eq!(h.min_ns(), Some(0));
        assert_eq!(h.max_ns(), Some(u64::MAX));
    }

    #[test]
    fn count_le_is_cumulative() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 100, 200, 100_000] {
            h.record_ns(v);
        }
        assert_eq!(h.count_le(10), 1);
        assert_eq!(h.count_le(31), 2);
        assert_eq!(h.count_le(u64::MAX), 5);
        let mut prev = 0;
        for e in [1u64, 32, 64, 1024, 1 << 20, u64::MAX] {
            let c = h.count_le(e);
            assert!(c >= prev, "count_le must be monotone");
            prev = c;
        }
    }
}
