//! Observability subsystem for the Pipeleon reproduction.
//!
//! Pipeleon (Xing et al., SIGCOMM 2023) is a *profile-guided* optimizer:
//! every controller decision hinges on runtime telemetry, so the
//! profiling/decision loop itself must be observable. This crate is the
//! measurement substrate, with **zero external dependencies** (pure
//! `std`) so every other crate can depend on it freely:
//!
//! - [`LatencyHistogram`] — log-bucketed HDR-style histograms with O(1)
//!   record, ≤3.125% quantile error, and a bit-exact `merge` obeying the
//!   same commutative/associative/identity laws as
//!   `RuntimeProfile::merge`, so sharded datapaths merge per-worker
//!   histograms into results identical for any worker count.
//! - [`MetricsRegistry`] — counters, gauges, and histograms with label
//!   sets, rendered deterministically as Prometheus text
//!   ([`MetricsRegistry::render_prometheus`]) or a JSON snapshot
//!   ([`MetricsRegistry::render_json`]); [`validate_prometheus`] checks
//!   the text format line-by-line.
//! - [`EventJournal`] — a bounded ring buffer of structured [`Event`]s
//!   (deploys, rollbacks, plan rejections, injected faults, profiled
//!   windows, per-packet visits) rendered as JSONL for postmortems. The
//!   same [`EventKind`] type backs both per-packet execution traces and
//!   the controller's audit journal.

#![warn(missing_docs)]

mod hist;
mod journal;
mod json;
mod metrics;

pub use hist::{
    bucket_index, bucket_lower, bucket_upper, LatencyHistogram, NUM_BUCKETS, SUB_BUCKETS,
    SUB_BUCKET_BITS,
};
pub use journal::{Event, EventJournal, EventKind};
pub use json::{escape_json, fmt_f64};
pub use metrics::{validate_prometheus, MetricValue, MetricsRegistry, PROM_LE_EDGES};
