//! Structured events and a bounded ring-buffer journal.
//!
//! One [`Event`] type serves both observability surfaces: per-packet
//! execution traces (the sim's `process_one_traced`) and the runtime
//! controller's audit journal (deploys, rollbacks, plan rejections,
//! injected faults, profiled windows). A bounded [`EventJournal`] keeps
//! the most recent events and renders them as JSONL for postmortems.

use std::collections::VecDeque;

use crate::json::{escape_json, fmt_f64};

/// What happened. Packet-level kinds carry raw `u32` node/action ids so
/// this crate stays dependency-free; callers map ids back to names.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A packet visited a pipeline node.
    Visit {
        /// Raw id of the visited node.
        node: u32,
    },
    /// A table lookup selected an action.
    Action {
        /// Raw id of the node whose table matched.
        node: u32,
        /// Index of the selected action.
        action: u32,
    },
    /// The controller deployed a new plan.
    Deploy {
        /// Reconfiguration counter after the deploy.
        reconfig: u64,
        /// Estimated per-packet gain of the plan, in nanoseconds.
        est_gain_ns: f64,
        /// Human-readable summaries of the applied steps.
        summary: Vec<String>,
    },
    /// A deploy attempt failed after retries.
    DeployFailed {
        /// Attempts made before giving up.
        attempts: u32,
        /// The final error string.
        error: String,
    },
    /// The controller rolled the target back.
    Rollback {
        /// What was restored: `"last-good"` or `"original"`.
        to: String,
    },
    /// The safety verifier rejected a candidate plan.
    PlanRejected {
        /// Violations reported by the verifier.
        violations: Vec<String>,
    },
    /// A chaos-mode fault fired inside the target.
    FaultInjected {
        /// The operation the fault was attached to.
        op: String,
        /// The injected fault.
        fault: String,
    },
    /// A profiling window completed.
    WindowProfiled {
        /// Window length in seconds.
        window_s: f64,
        /// Packets observed in the window.
        packets: u64,
        /// Traffic-drift score against the previous window.
        change: f64,
        /// Whether the controller re-optimized this window.
        reoptimized: bool,
        /// Whether a new plan was deployed this window.
        deployed: bool,
    },
    /// The deploy circuit breaker opened (controller degraded).
    BreakerOpened {
        /// Cooldown ticks before deploys resume.
        cooldown_ticks: u32,
    },
    /// The deploy circuit breaker closed (controller healthy again).
    BreakerClosed,
    /// A live datapath published a new program generation while traffic
    /// kept flowing (epoch/RCU swap).
    GenerationSwap {
        /// The generation id published.
        generation: u64,
        /// Packets in flight at publication (completed under the old
        /// generation).
        in_flight: u64,
        /// Control-plane publish latency in nanoseconds.
        latency_ns: f64,
    },
    /// The compiled datapath was specialized to the profiled traffic
    /// (hot-key guards, direct-index ways, hot-chain layout).
    Specialize {
        /// The specialization epoch after applying the plan.
        generation: u64,
        /// Tables carrying a guard or direct-index way afterwards.
        tables: u64,
    },
    /// The compiled datapath reverted to its verbatim lowering (drift,
    /// guard-miss pressure, or an entry op touching a specialized table).
    Despecialize {
        /// The specialization epoch after the revert.
        generation: u64,
        /// Tables still specialized afterwards (0 unless a re-plan
        /// followed in the same window).
        tables: u64,
    },
}

impl EventKind {
    /// Stable lowercase tag used as the `"type"` field in JSONL.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::Visit { .. } => "visit",
            EventKind::Action { .. } => "action",
            EventKind::Deploy { .. } => "deploy",
            EventKind::DeployFailed { .. } => "deploy_failed",
            EventKind::Rollback { .. } => "rollback",
            EventKind::PlanRejected { .. } => "plan_rejected",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::WindowProfiled { .. } => "window_profiled",
            EventKind::BreakerOpened { .. } => "breaker_opened",
            EventKind::BreakerClosed => "breaker_closed",
            EventKind::GenerationSwap { .. } => "generation_swap",
            EventKind::Specialize { .. } => "specialize",
            EventKind::Despecialize { .. } => "despecialize",
        }
    }
}

/// A timestamped, sequenced occurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotone sequence number assigned by the journal (or trace).
    pub seq: u64,
    /// Simulated time of the event, in seconds.
    pub t_s: f64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"seq\":{},\"t_s\":{},\"type\":\"{}\"",
            self.seq,
            fmt_f64(self.t_s),
            self.kind.tag()
        );
        match &self.kind {
            EventKind::Visit { node } => {
                s.push_str(&format!(",\"node\":{node}"));
            }
            EventKind::Action { node, action } => {
                s.push_str(&format!(",\"node\":{node},\"action\":{action}"));
            }
            EventKind::Deploy {
                reconfig,
                est_gain_ns,
                summary,
            } => {
                s.push_str(&format!(
                    ",\"reconfig\":{reconfig},\"est_gain_ns\":{},\"summary\":[{}]",
                    fmt_f64(*est_gain_ns),
                    summary
                        .iter()
                        .map(|x| format!("\"{}\"", escape_json(x)))
                        .collect::<Vec<_>>()
                        .join(",")
                ));
            }
            EventKind::DeployFailed { attempts, error } => {
                s.push_str(&format!(
                    ",\"attempts\":{attempts},\"error\":\"{}\"",
                    escape_json(error)
                ));
            }
            EventKind::Rollback { to } => {
                s.push_str(&format!(",\"to\":\"{}\"", escape_json(to)));
            }
            EventKind::PlanRejected { violations } => {
                s.push_str(&format!(
                    ",\"violations\":[{}]",
                    violations
                        .iter()
                        .map(|x| format!("\"{}\"", escape_json(x)))
                        .collect::<Vec<_>>()
                        .join(",")
                ));
            }
            EventKind::FaultInjected { op, fault } => {
                s.push_str(&format!(
                    ",\"op\":\"{}\",\"fault\":\"{}\"",
                    escape_json(op),
                    escape_json(fault)
                ));
            }
            EventKind::WindowProfiled {
                window_s,
                packets,
                change,
                reoptimized,
                deployed,
            } => {
                s.push_str(&format!(
                    ",\"window_s\":{},\"packets\":{packets},\"change\":{},\"reoptimized\":{reoptimized},\"deployed\":{deployed}",
                    fmt_f64(*window_s),
                    fmt_f64(*change)
                ));
            }
            EventKind::BreakerOpened { cooldown_ticks } => {
                s.push_str(&format!(",\"cooldown_ticks\":{cooldown_ticks}"));
            }
            EventKind::BreakerClosed => {}
            EventKind::GenerationSwap {
                generation,
                in_flight,
                latency_ns,
            } => {
                s.push_str(&format!(
                    ",\"generation\":{generation},\"in_flight\":{in_flight},\"latency_ns\":{}",
                    fmt_f64(*latency_ns)
                ));
            }
            EventKind::Specialize { generation, tables }
            | EventKind::Despecialize { generation, tables } => {
                s.push_str(&format!(",\"generation\":{generation},\"tables\":{tables}"));
            }
        }
        s.push('}');
        s
    }
}

/// A bounded ring buffer of [`Event`]s. When full, the oldest event is
/// evicted and counted in [`EventJournal::dropped`], so the journal's
/// memory is constant regardless of run length.
#[derive(Debug, Clone, PartialEq)]
pub struct EventJournal {
    cap: usize,
    next_seq: u64,
    dropped: u64,
    buf: VecDeque<Event>,
}

impl EventJournal {
    /// Creates a journal retaining at most `cap` events (`cap` is
    /// clamped to at least 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            cap,
            next_seq: 0,
            dropped: 0,
            buf: VecDeque::with_capacity(cap.min(1024)),
        }
    }

    /// Appends an event at simulated time `t_s`, evicting the oldest if
    /// full. Returns the assigned sequence number.
    pub fn push(&mut self, t_s: f64, kind: EventKind) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(Event { seq, t_s, kind });
        seq
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum events retained before eviction.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events evicted so far due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed (retained + dropped).
    pub fn total(&self) -> u64 {
        self.next_seq
    }

    /// Iterates the retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Renders the retained events as JSONL (one JSON object per line,
    /// trailing newline when non-empty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.buf {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut j = EventJournal::new(3);
        for i in 0..5u32 {
            j.push(i as f64, EventKind::Visit { node: i });
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        assert_eq!(j.total(), 5);
        let seqs: Vec<u64> = j.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn jsonl_has_one_object_per_line() {
        let mut j = EventJournal::new(16);
        j.push(0.0, EventKind::Visit { node: 1 });
        j.push(
            0.5,
            EventKind::Deploy {
                reconfig: 2,
                est_gain_ns: 3.25,
                summary: vec!["cache \"t0\"".into()],
            },
        );
        j.push(
            1.0,
            EventKind::PlanRejected {
                violations: vec!["latency bound".into()],
            },
        );
        let jsonl = j.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"seq\":"), "{line}");
            assert!(line.contains("\"type\":\""), "{line}");
        }
        // Embedded quotes must be escaped.
        assert!(lines[1].contains("cache \\\"t0\\\""));
    }

    #[test]
    fn non_finite_times_render_as_null() {
        let ev = Event {
            seq: 0,
            t_s: f64::NAN,
            kind: EventKind::BreakerClosed,
        };
        assert!(ev.to_json().contains("\"t_s\":null"));
    }

    #[test]
    fn every_kind_serializes_with_its_tag() {
        let kinds = vec![
            EventKind::Visit { node: 1 },
            EventKind::Action { node: 1, action: 2 },
            EventKind::Deploy {
                reconfig: 1,
                est_gain_ns: 1.0,
                summary: vec![],
            },
            EventKind::DeployFailed {
                attempts: 3,
                error: "boom".into(),
            },
            EventKind::Rollback {
                to: "last-good".into(),
            },
            EventKind::PlanRejected { violations: vec![] },
            EventKind::FaultInjected {
                op: "deploy".into(),
                fault: "DeployReject".into(),
            },
            EventKind::WindowProfiled {
                window_s: 1.0,
                packets: 10,
                change: 0.1,
                reoptimized: true,
                deployed: false,
            },
            EventKind::BreakerOpened { cooldown_ticks: 4 },
            EventKind::BreakerClosed,
            EventKind::GenerationSwap {
                generation: 3,
                in_flight: 12,
                latency_ns: 850.0,
            },
            EventKind::Specialize {
                generation: 4,
                tables: 2,
            },
            EventKind::Despecialize {
                generation: 5,
                tables: 0,
            },
        ];
        for kind in kinds {
            let tag = kind.tag();
            let ev = Event {
                seq: 7,
                t_s: 1.5,
                kind,
            };
            let json = ev.to_json();
            assert!(
                json.contains(&format!("\"type\":\"{tag}\"")),
                "{json} missing tag {tag}"
            );
        }
    }
}
