//! A label-aware metrics registry with Prometheus text and JSON
//! exposition, plus a validator for the text format.
//!
//! Series are keyed by `(metric name, sorted label set)` inside
//! `BTreeMap`s, so both renderings are **deterministic**: the same
//! recorded state always produces byte-identical output regardless of
//! insertion order.

use std::collections::BTreeMap;

use crate::hist::LatencyHistogram;
use crate::json::{escape_json, fmt_f64};

/// Histogram `le` bucket edges used for Prometheus exposition: powers
/// of two from 16 ns to ~1.07 s (every edge is an exact boundary of the
/// underlying [`LatencyHistogram`] layout), followed by `+Inf`.
pub const PROM_LE_EDGES: [u64; 27] = [
    16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144, 524288,
    1048576, 2097152, 4194304, 8388608, 16777216, 33554432, 67108864, 134217728, 268435456,
    536870912, 1073741824,
];

/// One metric sample: the value half of a `(name, labels)` series.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone event count.
    Counter(u64),
    /// Point-in-time measurement.
    Gauge(f64),
    /// Latency distribution.
    Histogram(LatencyHistogram),
}

impl MetricValue {
    fn type_str(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

type LabelSet = Vec<(String, String)>;

/// A registry of counters, gauges, and histograms with label sets.
///
/// ```
/// use pipeleon_obs::MetricsRegistry;
/// let mut reg = MetricsRegistry::new();
/// reg.help("pkts_total", "Packets processed");
/// reg.counter_add("pkts_total", &[("table", "acl0")], 3);
/// reg.observe("latency_ns", &[], 120.0);
/// let text = reg.render_prometheus();
/// assert!(text.contains("pkts_total{table=\"acl0\"} 3"));
/// assert!(pipeleon_obs::validate_prometheus(&text).is_ok());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    help: BTreeMap<String, String>,
    series: BTreeMap<String, BTreeMap<LabelSet, MetricValue>>,
}

fn label_set(labels: &[(&str, &str)]) -> LabelSet {
    let mut v: LabelSet = labels
        .iter()
        .map(|(k, val)| (k.to_string(), val.to_string()))
        .collect();
    v.sort();
    v
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the `# HELP` text for a metric name.
    pub fn help(&mut self, name: &str, text: &str) {
        self.help.insert(name.to_string(), text.to_string());
    }

    /// Adds `delta` to a counter series, creating it at zero first.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let entry = self
            .series
            .entry(name.to_string())
            .or_default()
            .entry(label_set(labels))
            .or_insert(MetricValue::Counter(0));
        if let MetricValue::Counter(c) = entry {
            *c += delta;
        } else {
            debug_assert!(false, "metric {name} is not a counter");
        }
    }

    /// Sets a counter series to an absolute (monotone) value.
    pub fn counter_set(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .insert(label_set(labels), MetricValue::Counter(value));
    }

    /// Sets a gauge series.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.series
            .entry(name.to_string())
            .or_default()
            .insert(label_set(labels), MetricValue::Gauge(value));
    }

    /// Records one nanosecond sample into a histogram series, creating
    /// it empty first.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], ns: f64) {
        let entry = self
            .series
            .entry(name.to_string())
            .or_default()
            .entry(label_set(labels))
            .or_insert_with(|| MetricValue::Histogram(LatencyHistogram::new()));
        if let MetricValue::Histogram(h) = entry {
            h.record(ns);
        } else {
            debug_assert!(false, "metric {name} is not a histogram");
        }
    }

    /// Merges a whole [`LatencyHistogram`] into a histogram series.
    pub fn merge_histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        hist: &LatencyHistogram,
    ) {
        let entry = self
            .series
            .entry(name.to_string())
            .or_default()
            .entry(label_set(labels))
            .or_insert_with(|| MetricValue::Histogram(LatencyHistogram::new()));
        if let MetricValue::Histogram(h) = entry {
            h.merge(hist);
        } else {
            debug_assert!(false, "metric {name} is not a histogram");
        }
    }

    /// Reads back a counter series, if present.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.series.get(name)?.get(&label_set(labels))? {
            MetricValue::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// Reads back a gauge series, if present.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.series.get(name)?.get(&label_set(labels))? {
            MetricValue::Gauge(g) => Some(*g),
            _ => None,
        }
    }

    /// Reads back a histogram series, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&LatencyHistogram> {
        match self.series.get(name)?.get(&label_set(labels))? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Number of distinct metric names registered.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no series have been recorded.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    fn fmt_labels(labels: &LabelSet, extra: Option<(&str, &str)>) -> String {
        let mut parts: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_json(v)))
            .collect();
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{v}\""));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers per metric, then one
    /// sample line per series; histograms expand into cumulative
    /// `_bucket{le=...}` lines plus `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, per_labels) in &self.series {
            let type_str = per_labels
                .values()
                .next()
                .map(MetricValue::type_str)
                .unwrap_or("untyped");
            if let Some(help) = self.help.get(name) {
                out.push_str(&format!(
                    "# HELP {name} {}\n",
                    help.replace('\\', "\\\\").replace('\n', "\\n")
                ));
            }
            out.push_str(&format!("# TYPE {name} {type_str}\n"));
            for (labels, value) in per_labels {
                match value {
                    MetricValue::Counter(c) => {
                        out.push_str(&format!("{name}{} {c}\n", Self::fmt_labels(labels, None)));
                    }
                    MetricValue::Gauge(g) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            Self::fmt_labels(labels, None),
                            if g.is_finite() {
                                format!("{g}")
                            } else if g.is_nan() {
                                "NaN".to_string()
                            } else if *g > 0.0 {
                                "+Inf".to_string()
                            } else {
                                "-Inf".to_string()
                            }
                        ));
                    }
                    MetricValue::Histogram(h) => {
                        for edge in PROM_LE_EDGES {
                            out.push_str(&format!(
                                "{name}_bucket{} {}\n",
                                Self::fmt_labels(labels, Some(("le", &edge.to_string()))),
                                h.count_le(edge)
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            Self::fmt_labels(labels, Some(("le", "+Inf"))),
                            h.count()
                        ));
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            Self::fmt_labels(labels, None),
                            h.sum_ns()
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            Self::fmt_labels(labels, None),
                            h.count()
                        ));
                    }
                }
            }
        }
        out
    }

    /// Renders the registry as one JSON object:
    /// `{"metric": [{"labels": {...}, "type": "...", ...value...}]}`.
    /// Histograms snapshot count/sum/min/max/mean and the p50/p90/p99
    /// quantiles rather than raw buckets.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let mut first_metric = true;
        for (name, per_labels) in &self.series {
            if !first_metric {
                out.push(',');
            }
            first_metric = false;
            out.push_str(&format!("\"{}\":[", escape_json(name)));
            let mut first_series = true;
            for (labels, value) in per_labels {
                if !first_series {
                    out.push(',');
                }
                first_series = false;
                let labels_json = labels
                    .iter()
                    .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
                    .collect::<Vec<_>>()
                    .join(",");
                match value {
                    MetricValue::Counter(c) => {
                        out.push_str(&format!(
                            "{{\"labels\":{{{labels_json}}},\"type\":\"counter\",\"value\":{c}}}"
                        ));
                    }
                    MetricValue::Gauge(g) => {
                        out.push_str(&format!(
                            "{{\"labels\":{{{labels_json}}},\"type\":\"gauge\",\"value\":{}}}",
                            fmt_f64(*g)
                        ));
                    }
                    MetricValue::Histogram(h) => {
                        out.push_str(&format!(
                            "{{\"labels\":{{{labels_json}}},\"type\":\"histogram\",\"count\":{},\"sum_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{}}}",
                            h.count(),
                            h.sum_ns(),
                            h.min_ns().map_or("null".into(), |v| v.to_string()),
                            h.max_ns().map_or("null".into(), |v| v.to_string()),
                            h.mean_ns().map_or("null".into(), fmt_f64),
                            h.quantile(0.50).map_or("null".into(), |v| v.to_string()),
                            h.quantile(0.90).map_or("null".into(), |v| v.to_string()),
                            h.quantile(0.99).map_or("null".into(), |v| v.to_string()),
                        ));
                    }
                }
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

fn is_valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Validates a Prometheus text exposition line-by-line, returning the
/// number of sample lines on success or `(line_number, reason)` on the
/// first malformed line. Accepts `# HELP`/`# TYPE` headers, comments,
/// blank lines, and `name[{labels}] value` samples.
pub fn validate_prometheus(text: &str) -> Result<usize, (usize, String)> {
    let mut samples = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(rest) = rest.strip_prefix("TYPE ") {
                let mut parts = rest.splitn(2, ' ');
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                if !is_valid_name(name) {
                    return Err((lineno, format!("bad metric name in TYPE: {name:?}")));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err((lineno, format!("bad metric type: {kind:?}")));
                }
            } else if let Some(rest) = rest.strip_prefix("HELP ") {
                let name = rest.split(' ').next().unwrap_or("");
                if !is_valid_name(name) {
                    return Err((lineno, format!("bad metric name in HELP: {name:?}")));
                }
            }
            continue; // other comments are legal
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample: name[{labels}] value. Label values may contain spaces,
        // so locate the closing brace (respecting quotes) before
        // splitting off the value.
        let (name, value_part) = if let Some(brace) = line.find('{') {
            let rest = &line[brace + 1..];
            let mut in_quotes = false;
            let mut escaped = false;
            let mut close = None;
            for (i, c) in rest.char_indices() {
                if escaped {
                    escaped = false;
                    continue;
                }
                match c {
                    '\\' if in_quotes => escaped = true,
                    '"' => in_quotes = !in_quotes,
                    '}' if !in_quotes => {
                        close = Some(i);
                        break;
                    }
                    _ => {}
                }
            }
            let Some(close) = close else {
                return Err((lineno, "unterminated label set".to_string()));
            };
            validate_labels(&rest[..close]).map_err(|e| (lineno, e))?;
            (&line[..brace], rest[close + 1..].trim())
        } else {
            match line.split_once(' ') {
                Some((n, v)) => (n, v.trim()),
                None => return Err((lineno, "sample line missing value".to_string())),
            }
        };
        if value_part.is_empty() {
            return Err((lineno, "sample line missing value".to_string()));
        }
        if !is_valid_name(name) {
            return Err((lineno, format!("bad metric name: {name:?}")));
        }
        let ok = matches!(value_part, "+Inf" | "-Inf" | "NaN") || value_part.parse::<f64>().is_ok();
        if !ok {
            return Err((lineno, format!("bad sample value: {value_part:?}")));
        }
        samples += 1;
    }
    Ok(samples)
}

fn validate_labels(labels: &str) -> Result<(), String> {
    if labels.is_empty() {
        return Ok(());
    }
    // Split on commas outside quoted values.
    let mut in_quotes = false;
    let mut escaped = false;
    let mut current = String::new();
    let mut pairs = Vec::new();
    for c in labels.chars() {
        if escaped {
            escaped = false;
            current.push(c);
            continue;
        }
        match c {
            '\\' if in_quotes => {
                escaped = true;
                current.push(c);
            }
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            ',' if !in_quotes => {
                pairs.push(std::mem::take(&mut current));
            }
            c => current.push(c),
        }
    }
    if in_quotes {
        return Err("unterminated quoted label value".to_string());
    }
    if !current.is_empty() {
        pairs.push(current);
    }
    for pair in pairs {
        let Some((k, v)) = pair.split_once('=') else {
            return Err(format!("label pair missing '=': {pair:?}"));
        };
        if !is_valid_name(k) {
            return Err(format!("bad label name: {k:?}"));
        }
        if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
            return Err(format!("label value not quoted: {v:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_deterministic_and_sorted() {
        let mut a = MetricsRegistry::new();
        a.counter_add("zzz", &[], 1);
        a.counter_add("aaa", &[("t", "x")], 2);
        a.counter_add("aaa", &[("t", "a")], 3);
        let mut b = MetricsRegistry::new();
        b.counter_add("aaa", &[("t", "a")], 3);
        b.counter_add("aaa", &[("t", "x")], 2);
        b.counter_add("zzz", &[], 1);
        assert_eq!(a.render_prometheus(), b.render_prometheus());
        assert_eq!(a.render_json(), b.render_json());
        let text = a.render_prometheus();
        let aaa = text.find("aaa{t=\"a\"}").unwrap();
        let zzz = text.find("zzz 1").unwrap();
        assert!(aaa < zzz, "names must render in sorted order");
    }

    #[test]
    fn histogram_exposition_is_cumulative_and_valid() {
        let mut reg = MetricsRegistry::new();
        reg.help("lat_ns", "End-to-end latency");
        for v in [50.0, 100.0, 5000.0, 2_000_000.0] {
            reg.observe("lat_ns", &[("pipelet", "p0")], v);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE lat_ns histogram"));
        assert!(text.contains("lat_ns_bucket{pipelet=\"p0\",le=\"+Inf\"} 4"));
        assert!(text.contains("lat_ns_count{pipelet=\"p0\"} 4"));
        let samples = validate_prometheus(&text).expect("exposition must validate");
        // 27 finite edges + +Inf + sum + count
        assert_eq!(samples, PROM_LE_EDGES.len() + 3);
    }

    #[test]
    fn json_snapshot_contains_quantiles() {
        let mut reg = MetricsRegistry::new();
        for v in 1..=100u64 {
            reg.observe("h", &[], (v * 100) as f64);
        }
        reg.gauge_set("g", &[("k", "v")], 1.25);
        let json = reg.render_json();
        assert!(json.contains("\"p99_ns\":"));
        assert!(json.contains("\"type\":\"gauge\",\"value\":1.25"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_prometheus("ok_metric 1\n").is_ok());
        assert!(validate_prometheus("bad metric name 1\n").is_err());
        assert!(validate_prometheus("m{unterminated=\"x} 1\n").is_err());
        assert!(validate_prometheus("m{x=\"1\"} notanumber\n").is_err());
        assert!(validate_prometheus("m{noquotes=1} 1\n").is_err());
        assert!(validate_prometheus("# TYPE m bogus\n").is_err());
        assert!(validate_prometheus("# TYPE m counter\nm 3\n").is_ok());
    }

    #[test]
    fn validator_handles_escaped_label_values() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("c", &[("msg", "say \"hi\", ok")], 1);
        let text = reg.render_prometheus();
        assert!(validate_prometheus(&text).is_ok(), "{text}");
    }

    #[test]
    fn merge_histogram_accumulates() {
        let mut h = LatencyHistogram::new();
        h.record(10.0);
        h.record(20.0);
        let mut reg = MetricsRegistry::new();
        reg.merge_histogram("h", &[], &h);
        reg.merge_histogram("h", &[], &h);
        assert_eq!(reg.histogram("h", &[]).unwrap().count(), 4);
    }
}
