#![warn(missing_docs)]

//! # pipeleon-ir — P4 program intermediate representation
//!
//! This crate defines the graph-based IR that the Pipeleon optimizer
//! (SIGCOMM'23) operates on. A P4 program is modeled as a directed acyclic
//! graph whose nodes are match/action (MA) tables or conditional branches and
//! whose edges represent packet dataflow (paper §3.1, Figure 4). Every packet
//! traverses exactly one root-to-sink path, reflecting the run-to-completion
//! processing model of multicore SmartNICs.
//!
//! The crate provides:
//!
//! * [`table`] — MA tables: match keys, [`MatchKind`]s (exact / LPM /
//!   ternary / range), actions built from primitive operations, and concrete
//!   table entries.
//! * [`expr`] — branch condition expressions over packet fields.
//! * [`graph`] — the [`ProgramGraph`] DAG itself: nodes, typed next-hop
//!   edges, validation, traversal, and path enumeration.
//! * [`builder`] — an ergonomic [`ProgramBuilder`] for constructing programs
//!   in tests, examples, and workload synthesizers.
//! * [`deps`] — field-level read/write dependency analysis used to decide
//!   which transformations (reordering, merging) preserve program semantics.
//! * [`json`] — (de)serialization to a BMv2-style JSON format, mirroring the
//!   paper's use of the P4 compiler's `.json` intermediate representation as
//!   the source-to-source interface.
//!
//! Fields are interned per program in a [`FieldSpace`]; packets in the
//! simulator are then plain `Vec<u64>` slots indexed by [`FieldRef`], which
//! keeps the hot path allocation-free.
//!
//! ```
//! use pipeleon_ir::{ProgramBuilder, MatchKind, Primitive};
//!
//! let mut b = ProgramBuilder::new();
//! let ipv4_dst = b.field("ipv4.dst");
//! let routing = b
//!     .table("routing")
//!     .key(ipv4_dst, MatchKind::Lpm)
//!     .action("set_nexthop", vec![Primitive::set(ipv4_dst, 1)])
//!     .action_drop("drop")
//!     .finish();
//! let program = b.seal(routing).unwrap();
//! assert_eq!(program.tables().count(), 1);
//! ```

pub mod builder;
pub mod deps;
pub mod expr;
pub mod graph;
pub mod json;
pub mod table;
pub mod types;

pub use builder::{ProgramBuilder, TableBuilder};
pub use deps::{DependencyAnalysis, RwSets};
pub use expr::{CmpOp, Condition};
pub use graph::{Branch, EdgeRef, NextHops, Node, NodeKind, ProgramGraph, WireBinding};
pub use json::{from_json, to_json};
pub use table::{
    prefix_mask, Action, CacheRole, MatchKey, MatchKind, MatchValue, Primitive, Table, TableEntry,
};
pub use types::{EntryId, FieldRef, FieldSpace, IrError, NodeId};
