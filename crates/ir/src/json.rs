//! BMv2-style JSON round-tripping.
//!
//! Pipeleon is a source-to-source pass over the P4 compiler's intermediate
//! `.json` representation (paper §5.1). This module defines a compact
//! BMv2-flavoured schema — named tables/conditionals with `next_tables`
//! references by name — and converts it to and from [`ProgramGraph`].
//!
//! The schema is deliberately name-based (like BMv2's) rather than
//! id-based so that files are diffable and stable under optimizer rewrites.

use crate::expr::{CmpOp, Condition};
use crate::graph::{Branch, NextHops, NodeKind, ProgramGraph, WireBinding};
use crate::table::{
    Action, CacheRole, MatchKey, MatchKind, MatchValue, Primitive, Table, TableEntry,
};
use crate::types::{IrError, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Top-level JSON document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JsonProgram {
    /// Program name.
    pub name: String,
    /// Header fields, in slot order.
    pub fields: Vec<String>,
    /// The entry node's name.
    pub init_node: String,
    /// Match/action tables.
    pub tables: Vec<JsonTable>,
    /// Conditional branches.
    pub conditionals: Vec<JsonConditional>,
    /// Wire contract: program fields carried in physical frame header
    /// fields when the program is served over sockets (see the net
    /// crate's `FieldMap`). Omitted when empty, so programs without a
    /// contract serialize exactly as before.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub wire: Vec<WireBinding>,
}

/// A table in the JSON schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JsonTable {
    /// Table name (must be unique across tables and conditionals).
    pub name: String,
    /// Key components.
    pub keys: Vec<JsonKey>,
    /// Actions.
    pub actions: Vec<JsonAction>,
    /// Name of the default action.
    pub default_action: String,
    /// Installed entries.
    #[serde(default)]
    pub entries: Vec<JsonEntry>,
    /// Capacity, if bounded.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max_entries: Option<usize>,
    /// Cache role for synthetic tables; omitted = plain table.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cache_role: Option<String>,
    /// Next node per action name (switch-case), or a single `"__always__"`
    /// key (straight-line). `null` targets mean the program sink.
    pub next_tables: BTreeMap<String, Option<String>>,
}

/// One key component.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JsonKey {
    /// Field name (must appear in `fields`).
    pub field: String,
    /// `"exact" | "lpm" | "ternary" | "range"`.
    pub match_type: String,
}

/// One action.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JsonAction {
    /// Action name (unique within the table).
    pub name: String,
    /// Primitive operations.
    pub primitives: Vec<JsonPrimitive>,
}

/// One primitive operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
#[allow(missing_docs)] // field names mirror the JSON schema directly
pub enum JsonPrimitive {
    /// `field = value`
    Set { field: String, value: u64 },
    /// `field += delta`
    Add { field: String, delta: u64 },
    /// `field -= delta`
    Sub { field: String, delta: u64 },
    /// `dst = src`
    Copy { dst: String, src: String },
    /// Drop the packet.
    Drop {},
    /// Set egress port.
    Forward { port: u32 },
    /// Cost-only no-op.
    Nop {},
}

/// One table entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JsonEntry {
    /// Per-key match values.
    pub matches: Vec<JsonMatchValue>,
    /// Action name.
    pub action: String,
    /// Priority (ternary/range).
    #[serde(default)]
    pub priority: i32,
}

/// One match value.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
#[allow(missing_docs)] // field names mirror the JSON schema directly
pub enum JsonMatchValue {
    /// Exact value.
    Exact { value: u64 },
    /// Prefix match.
    Lpm { value: u64, prefix_len: u8 },
    /// Value/mask match.
    Ternary { value: u64, mask: u64 },
    /// Interval match.
    Range { lo: u64, hi: u64 },
}

/// A conditional in the JSON schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JsonConditional {
    /// Branch name (shares the namespace with tables).
    pub name: String,
    /// Condition expression.
    pub expression: JsonCondition,
    /// Target when true (`null` = sink).
    pub true_next: Option<String>,
    /// Target when false (`null` = sink).
    pub false_next: Option<String>,
}

/// Condition expression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
#[allow(missing_docs)] // field names mirror the JSON schema directly
pub enum JsonCondition {
    /// Constant true.
    True {},
    /// `field <op> value`
    Compare {
        field: String,
        op: String,
        value: u64,
    },
    /// `lhs <op> rhs`
    CompareFields {
        lhs: String,
        op: String,
        rhs: String,
    },
    /// Conjunction.
    And {
        a: Box<JsonCondition>,
        b: Box<JsonCondition>,
    },
    /// Disjunction.
    Or {
        a: Box<JsonCondition>,
        b: Box<JsonCondition>,
    },
    /// Negation.
    Not { a: Box<JsonCondition> },
}

const ALWAYS_KEY: &str = "__always__";

fn kind_to_str(k: MatchKind) -> &'static str {
    match k {
        MatchKind::Exact => "exact",
        MatchKind::Lpm => "lpm",
        MatchKind::Ternary => "ternary",
        MatchKind::Range => "range",
    }
}

fn kind_from_str(s: &str) -> Result<MatchKind, IrError> {
    match s {
        "exact" => Ok(MatchKind::Exact),
        "lpm" => Ok(MatchKind::Lpm),
        "ternary" => Ok(MatchKind::Ternary),
        "range" => Ok(MatchKind::Range),
        other => Err(IrError::Json(format!("unknown match_type {other:?}"))),
    }
}

fn op_to_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

fn op_from_str(s: &str) -> Result<CmpOp, IrError> {
    match s {
        "==" => Ok(CmpOp::Eq),
        "!=" => Ok(CmpOp::Ne),
        "<" => Ok(CmpOp::Lt),
        "<=" => Ok(CmpOp::Le),
        ">" => Ok(CmpOp::Gt),
        ">=" => Ok(CmpOp::Ge),
        other => Err(IrError::Json(format!("unknown comparison op {other:?}"))),
    }
}

fn role_to_str(r: CacheRole) -> Option<String> {
    match r {
        CacheRole::None => None,
        CacheRole::FlowCache => Some("flow_cache".into()),
        CacheRole::MergedCache => Some("merged_cache".into()),
    }
}

fn role_from_str(s: Option<&str>) -> Result<CacheRole, IrError> {
    match s {
        None => Ok(CacheRole::None),
        Some("flow_cache") => Ok(CacheRole::FlowCache),
        Some("merged_cache") => Ok(CacheRole::MergedCache),
        Some(other) => Err(IrError::Json(format!("unknown cache_role {other:?}"))),
    }
}

/// Converts a program graph to the JSON document model.
///
/// Only nodes reachable from the root are emitted; node names must be
/// unique (guaranteed if the program came from [`from_json`] or the
/// builder; duplicate names are rejected).
pub fn to_json(g: &ProgramGraph) -> Result<JsonProgram, IrError> {
    g.validate()?;
    let reach = g.reachable();
    let mut names: HashMap<NodeId, String> = HashMap::new();
    for n in g.iter_nodes().filter(|n| reach[n.id.index()]) {
        if names.values().any(|v| v == n.name()) {
            return Err(IrError::Json(format!(
                "duplicate node name {:?}; JSON export requires unique names",
                n.name()
            )));
        }
        names.insert(n.id, n.name().to_owned());
    }
    let name_of = |id: Option<NodeId>| -> Option<String> { id.map(|i| names[&i].clone()) };

    let mut tables = Vec::new();
    let mut conditionals = Vec::new();
    for n in g.iter_nodes().filter(|n| reach[n.id.index()]) {
        match &n.kind {
            NodeKind::Table(t) => {
                let mut next_tables = BTreeMap::new();
                match &n.next {
                    NextHops::Always(target) => {
                        next_tables.insert(ALWAYS_KEY.to_owned(), name_of(*target));
                    }
                    NextHops::ByAction(v) => {
                        for (i, target) in v.iter().enumerate() {
                            next_tables.insert(t.actions[i].name.clone(), name_of(*target));
                        }
                    }
                    NextHops::Branch { .. } => {
                        return Err(IrError::Json("table with branch next-hops".into()))
                    }
                }
                tables.push(JsonTable {
                    name: t.name.clone(),
                    keys: t
                        .keys
                        .iter()
                        .map(|k| JsonKey {
                            field: g.fields.name(k.field).unwrap_or("<unknown>").to_owned(),
                            match_type: kind_to_str(k.kind).to_owned(),
                        })
                        .collect(),
                    actions: t.actions.iter().map(|a| action_to_json(g, a)).collect(),
                    default_action: t.actions[t.default_action].name.clone(),
                    entries: t
                        .entries
                        .iter()
                        .map(|e| JsonEntry {
                            matches: e.matches.iter().map(match_value_to_json).collect(),
                            action: t.actions[e.action].name.clone(),
                            priority: e.priority,
                        })
                        .collect(),
                    max_entries: t.max_entries,
                    cache_role: role_to_str(t.cache_role),
                    next_tables,
                });
            }
            NodeKind::Branch(b) => {
                let (on_true, on_false) = match &n.next {
                    NextHops::Branch { on_true, on_false } => (*on_true, *on_false),
                    _ => return Err(IrError::Json("branch without branch next-hops".into())),
                };
                conditionals.push(JsonConditional {
                    name: b.name.clone(),
                    expression: condition_to_json(g, &b.condition),
                    true_next: name_of(on_true),
                    false_next: name_of(on_false),
                });
            }
        }
    }
    let root = g.root().ok_or(IrError::NoRoot)?;
    Ok(JsonProgram {
        name: g.name.clone(),
        fields: g.fields.iter().map(|(_, n)| n.to_owned()).collect(),
        init_node: names[&root].clone(),
        tables,
        conditionals,
        wire: g.wire.clone(),
    })
}

fn action_to_json(g: &ProgramGraph, a: &Action) -> JsonAction {
    let fname = |f: crate::types::FieldRef| g.fields.name(f).unwrap_or("<unknown>").to_owned();
    JsonAction {
        name: a.name.clone(),
        primitives: a
            .primitives
            .iter()
            .map(|p| match *p {
                Primitive::Set { field, value } => JsonPrimitive::Set {
                    field: fname(field),
                    value,
                },
                Primitive::Add { field, delta } => JsonPrimitive::Add {
                    field: fname(field),
                    delta,
                },
                Primitive::Sub { field, delta } => JsonPrimitive::Sub {
                    field: fname(field),
                    delta,
                },
                Primitive::Copy { dst, src } => JsonPrimitive::Copy {
                    dst: fname(dst),
                    src: fname(src),
                },
                Primitive::Drop => JsonPrimitive::Drop {},
                Primitive::Forward { port } => JsonPrimitive::Forward { port },
                Primitive::Nop => JsonPrimitive::Nop {},
            })
            .collect(),
    }
}

fn match_value_to_json(m: &MatchValue) -> JsonMatchValue {
    match *m {
        MatchValue::Exact(value) => JsonMatchValue::Exact { value },
        MatchValue::Lpm { value, prefix_len } => JsonMatchValue::Lpm { value, prefix_len },
        MatchValue::Ternary { value, mask } => JsonMatchValue::Ternary { value, mask },
        MatchValue::Range { lo, hi } => JsonMatchValue::Range { lo, hi },
    }
}

fn condition_to_json(g: &ProgramGraph, c: &Condition) -> JsonCondition {
    let fname = |f: crate::types::FieldRef| g.fields.name(f).unwrap_or("<unknown>").to_owned();
    match c {
        Condition::True => JsonCondition::True {},
        Condition::Compare { field, op, value } => JsonCondition::Compare {
            field: fname(*field),
            op: op_to_str(*op).to_owned(),
            value: *value,
        },
        Condition::CompareFields { lhs, op, rhs } => JsonCondition::CompareFields {
            lhs: fname(*lhs),
            op: op_to_str(*op).to_owned(),
            rhs: fname(*rhs),
        },
        Condition::And(a, b) => JsonCondition::And {
            a: Box::new(condition_to_json(g, a)),
            b: Box::new(condition_to_json(g, b)),
        },
        Condition::Or(a, b) => JsonCondition::Or {
            a: Box::new(condition_to_json(g, a)),
            b: Box::new(condition_to_json(g, b)),
        },
        Condition::Not(a) => JsonCondition::Not {
            a: Box::new(condition_to_json(g, a)),
        },
    }
}

/// Converts the JSON document model back to a program graph and validates it.
pub fn from_json(doc: &JsonProgram) -> Result<ProgramGraph, IrError> {
    let mut g = ProgramGraph::new(doc.name.clone());
    for f in &doc.fields {
        g.fields.intern(f);
    }
    // First pass: create all nodes so names can be resolved in any order.
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    for t in &doc.tables {
        let id = g.add_table(Table::new(t.name.clone()), None);
        if ids.insert(t.name.clone(), id).is_some() {
            return Err(IrError::Json(format!("duplicate node name {:?}", t.name)));
        }
    }
    for c in &doc.conditionals {
        let id = g.add_branch(
            Branch {
                name: c.name.clone(),
                condition: Condition::True,
            },
            None,
            None,
        );
        if ids.insert(c.name.clone(), id).is_some() {
            return Err(IrError::Json(format!("duplicate node name {:?}", c.name)));
        }
    }
    let resolve = |name: &Option<String>| -> Result<Option<NodeId>, IrError> {
        match name {
            None => Ok(None),
            Some(n) => ids
                .get(n)
                .copied()
                .map(Some)
                .ok_or_else(|| IrError::Json(format!("unknown next node {n:?}"))),
        }
    };

    // Second pass: fill payloads and wire edges.
    for jt in &doc.tables {
        let id = ids[&jt.name];
        let mut table = Table::new(jt.name.clone());
        table.actions.clear();
        for k in &jt.keys {
            let field = g
                .fields
                .get(&k.field)
                .ok_or_else(|| IrError::Json(format!("unknown field {:?}", k.field)))?;
            table.keys.push(MatchKey {
                field,
                kind: kind_from_str(&k.match_type)?,
            });
        }
        for a in &jt.actions {
            table.actions.push(action_from_json(&g, a)?);
        }
        table.default_action = table
            .actions
            .iter()
            .position(|a| a.name == jt.default_action)
            .ok_or_else(|| {
                IrError::Json(format!("unknown default action {:?}", jt.default_action))
            })?;
        for e in &jt.entries {
            let action = table
                .actions
                .iter()
                .position(|a| a.name == e.action)
                .ok_or_else(|| IrError::Json(format!("unknown entry action {:?}", e.action)))?;
            table.entries.push(TableEntry::with_priority(
                e.matches.iter().map(match_value_from_json).collect(),
                action,
                e.priority,
            ));
        }
        table.max_entries = jt.max_entries;
        table.cache_role = role_from_str(jt.cache_role.as_deref())?;

        let next = if jt.next_tables.len() == 1 && jt.next_tables.contains_key(ALWAYS_KEY) {
            NextHops::Always(resolve(&jt.next_tables[ALWAYS_KEY])?)
        } else {
            let mut targets = Vec::with_capacity(table.actions.len());
            for a in &table.actions {
                let t = jt.next_tables.get(&a.name).ok_or_else(|| {
                    IrError::Json(format!(
                        "table {:?}: no next_tables entry for action {:?}",
                        jt.name, a.name
                    ))
                })?;
                targets.push(resolve(t)?);
            }
            NextHops::ByAction(targets)
        };
        let node = g.node_mut(id).expect("node created above");
        node.kind = NodeKind::Table(table);
        node.next = next;
    }
    for jc in &doc.conditionals {
        let id = ids[&jc.name];
        let condition = condition_from_json(&g, &jc.expression)?;
        let on_true = resolve(&jc.true_next)?;
        let on_false = resolve(&jc.false_next)?;
        let node = g.node_mut(id).expect("node created above");
        node.kind = NodeKind::Branch(Branch {
            name: jc.name.clone(),
            condition,
        });
        node.next = NextHops::Branch { on_true, on_false };
    }
    // Wire contract: every bound program field must exist; binding the
    // same wire header field (or the same program field) twice is
    // ambiguous and rejected here, before the codec ever sees it.
    for (i, b) in doc.wire.iter().enumerate() {
        if g.fields.get(&b.field).is_none() {
            return Err(IrError::Json(format!(
                "wire binding {:?}: unknown field {:?}",
                b.wire, b.field
            )));
        }
        for prev in &doc.wire[..i] {
            if prev.wire == b.wire {
                return Err(IrError::Json(format!(
                    "wire header field {:?} bound twice",
                    b.wire
                )));
            }
            if prev.field == b.field {
                return Err(IrError::Json(format!(
                    "program field {:?} bound to two wire fields",
                    b.field
                )));
            }
        }
    }
    g.wire = doc.wire.clone();
    let root = ids
        .get(&doc.init_node)
        .copied()
        .ok_or_else(|| IrError::Json(format!("unknown init_node {:?}", doc.init_node)))?;
    g.set_root(root);
    g.validate()?;
    Ok(g)
}

fn action_from_json(g: &ProgramGraph, a: &JsonAction) -> Result<Action, IrError> {
    let fref = |name: &str| {
        g.fields
            .get(name)
            .ok_or_else(|| IrError::Json(format!("unknown field {name:?}")))
    };
    let mut primitives = Vec::with_capacity(a.primitives.len());
    for p in &a.primitives {
        primitives.push(match p {
            JsonPrimitive::Set { field, value } => Primitive::Set {
                field: fref(field)?,
                value: *value,
            },
            JsonPrimitive::Add { field, delta } => Primitive::Add {
                field: fref(field)?,
                delta: *delta,
            },
            JsonPrimitive::Sub { field, delta } => Primitive::Sub {
                field: fref(field)?,
                delta: *delta,
            },
            JsonPrimitive::Copy { dst, src } => Primitive::Copy {
                dst: fref(dst)?,
                src: fref(src)?,
            },
            JsonPrimitive::Drop {} => Primitive::Drop,
            JsonPrimitive::Forward { port } => Primitive::Forward { port: *port },
            JsonPrimitive::Nop {} => Primitive::Nop,
        });
    }
    Ok(Action::new(a.name.clone(), primitives))
}

fn match_value_from_json(m: &JsonMatchValue) -> MatchValue {
    match *m {
        JsonMatchValue::Exact { value } => MatchValue::Exact(value),
        JsonMatchValue::Lpm { value, prefix_len } => MatchValue::Lpm { value, prefix_len },
        JsonMatchValue::Ternary { value, mask } => MatchValue::Ternary { value, mask },
        JsonMatchValue::Range { lo, hi } => MatchValue::Range { lo, hi },
    }
}

fn condition_from_json(g: &ProgramGraph, c: &JsonCondition) -> Result<Condition, IrError> {
    let fref = |name: &str| {
        g.fields
            .get(name)
            .ok_or_else(|| IrError::Json(format!("unknown field {name:?}")))
    };
    Ok(match c {
        JsonCondition::True {} => Condition::True,
        JsonCondition::Compare { field, op, value } => Condition::Compare {
            field: fref(field)?,
            op: op_from_str(op)?,
            value: *value,
        },
        JsonCondition::CompareFields { lhs, op, rhs } => Condition::CompareFields {
            lhs: fref(lhs)?,
            op: op_from_str(op)?,
            rhs: fref(rhs)?,
        },
        JsonCondition::And { a, b } => Condition::And(
            Box::new(condition_from_json(g, a)?),
            Box::new(condition_from_json(g, b)?),
        ),
        JsonCondition::Or { a, b } => Condition::Or(
            Box::new(condition_from_json(g, a)?),
            Box::new(condition_from_json(g, b)?),
        ),
        JsonCondition::Not { a } => Condition::Not(Box::new(condition_from_json(g, a)?)),
    })
}

/// Serializes a program to a pretty-printed JSON string.
pub fn to_json_string(g: &ProgramGraph) -> Result<String, IrError> {
    let doc = to_json(g)?;
    serde_json::to_string_pretty(&doc).map_err(|e| IrError::Json(e.to_string()))
}

/// Parses a program from a JSON string.
pub fn from_json_string(s: &str) -> Result<ProgramGraph, IrError> {
    let doc: JsonProgram = serde_json::from_str(s).map_err(|e| IrError::Json(e.to_string()))?;
    from_json(&doc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::table::MatchKind;

    fn sample_program() -> ProgramGraph {
        let mut b = ProgramBuilder::named("sample");
        let src = b.field("ipv4.src");
        let dst = b.field("ipv4.dst");
        let ttl = b.field("ipv4.ttl");
        let acl = b
            .table("acl")
            .key(src, MatchKind::Ternary)
            .action_nop("permit")
            .action_drop("deny")
            .entry(TableEntry::with_priority(
                vec![MatchValue::Ternary {
                    value: 10,
                    mask: 0xFF,
                }],
                1,
                5,
            ))
            .finish();
        let route = b
            .table("route")
            .key(dst, MatchKind::Lpm)
            .action(
                "fwd",
                vec![Primitive::sub(ttl, 1), Primitive::Forward { port: 2 }],
            )
            .entry(TableEntry::new(
                vec![MatchValue::Lpm {
                    value: 0xC0A8_0000_0000_0000,
                    prefix_len: 16,
                }],
                0,
            ))
            .finish();
        let _ = route;
        let end = b
            .table("classify")
            .key(dst, MatchKind::Exact)
            .action_nop("a")
            .action_nop("b")
            .by_action(vec![None, None])
            .finish();
        let _ = end;
        let g = b.seal(acl).unwrap();
        g
    }

    #[test]
    fn round_trip_preserves_program() {
        let g = sample_program();
        let s = to_json_string(&g).unwrap();
        let g2 = from_json_string(&s).unwrap();
        // Same structure: compare re-serialized output for stability.
        let s2 = to_json_string(&g2).unwrap();
        assert_eq!(s, s2);
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.fields.len(), g.fields.len());
    }

    #[test]
    fn round_trip_with_branch() {
        let mut b = ProgramBuilder::named("br");
        let f = b.field("proto");
        let t1 = b.table("tcp_t").key(f, MatchKind::Exact).finish();
        let t2 = b.table("udp_t").key(f, MatchKind::Exact).finish();
        b.set_next(t1, None);
        b.set_next(t2, None);
        let br = b.branch("is_tcp", Condition::eq(f, 6), Some(t1), Some(t2));
        let g = b.seal(br).unwrap();
        let s = to_json_string(&g).unwrap();
        let g2 = from_json_string(&s).unwrap();
        assert_eq!(
            g2.iter_nodes().filter(|n| n.as_branch().is_some()).count(),
            1
        );
        assert_eq!(to_json_string(&g2).unwrap(), s);
    }

    #[test]
    fn unknown_field_in_json_is_rejected() {
        let g = sample_program();
        let mut doc = to_json(&g).unwrap();
        doc.tables[0].keys[0].field = "nope".into();
        assert!(matches!(from_json(&doc), Err(IrError::Json(_))));
    }

    #[test]
    fn unknown_next_node_is_rejected() {
        let g = sample_program();
        let mut doc = to_json(&g).unwrap();
        doc.tables[0]
            .next_tables
            .insert(super::ALWAYS_KEY.into(), Some("ghost".into()));
        assert!(matches!(from_json(&doc), Err(IrError::Json(_))));
    }

    #[test]
    fn duplicate_names_rejected_on_import() {
        let g = sample_program();
        let mut doc = to_json(&g).unwrap();
        let dup = doc.tables[0].clone();
        doc.tables.push(dup);
        assert!(matches!(from_json(&doc), Err(IrError::Json(_))));
    }

    #[test]
    fn bad_match_type_is_rejected() {
        let g = sample_program();
        let mut doc = to_json(&g).unwrap();
        doc.tables[0].keys[0].match_type = "fuzzy".into();
        assert!(matches!(from_json(&doc), Err(IrError::Json(_))));
    }

    #[test]
    fn cache_role_round_trips() {
        let mut b = ProgramBuilder::named("c");
        let f = b.field("x");
        let t = b
            .table("cache")
            .key(f, MatchKind::Exact)
            .action_nop("hit")
            .cache_role(CacheRole::FlowCache)
            .max_entries(128)
            .finish();
        let g = b.seal(t).unwrap();
        let g2 = from_json_string(&to_json_string(&g).unwrap()).unwrap();
        let (_, t2) = g2.tables().next().unwrap();
        assert_eq!(t2.cache_role, CacheRole::FlowCache);
        assert_eq!(t2.max_entries, Some(128));
    }

    #[test]
    fn wire_contract_round_trips() {
        let mut g = sample_program();
        g.wire = vec![
            WireBinding {
                wire: "ipv4.src".into(),
                field: "ipv4.src".into(),
            },
            WireBinding {
                wire: "ipv4.dst".into(),
                field: "ipv4.dst".into(),
            },
        ];
        let s = to_json_string(&g).unwrap();
        assert!(s.contains("\"wire\""), "{s}");
        let g2 = from_json_string(&s).unwrap();
        assert_eq!(g2.wire, g.wire);
        assert_eq!(to_json_string(&g2).unwrap(), s);
        // Rewrite-style clones carry the contract too.
        assert_eq!(g.clone().wire, g.wire);
    }

    #[test]
    fn empty_wire_contract_is_omitted_from_json() {
        let g = sample_program();
        assert!(g.wire.is_empty());
        let s = to_json_string(&g).unwrap();
        assert!(!s.contains("\"wire\""), "{s}");
    }

    #[test]
    fn wire_contract_rejects_unknown_and_duplicate_bindings() {
        let g = sample_program();
        let mut doc = to_json(&g).unwrap();
        doc.wire = vec![WireBinding {
            wire: "ipv4.src".into(),
            field: "nope".into(),
        }];
        assert!(matches!(from_json(&doc), Err(IrError::Json(_))));
        let dup_wire = WireBinding {
            wire: "ipv4.src".into(),
            field: "ipv4.src".into(),
        };
        doc.wire = vec![
            dup_wire.clone(),
            WireBinding {
                wire: "ipv4.src".into(),
                field: "ipv4.dst".into(),
            },
        ];
        assert!(matches!(from_json(&doc), Err(IrError::Json(_))));
        doc.wire = vec![
            dup_wire,
            WireBinding {
                wire: "ipv4.dst".into(),
                field: "ipv4.src".into(),
            },
        ];
        assert!(matches!(from_json(&doc), Err(IrError::Json(_))));
    }

    #[test]
    fn malformed_json_string_errors() {
        assert!(matches!(
            from_json_string("{not json"),
            Err(IrError::Json(_))
        ));
    }
}
