//! Ergonomic construction of program graphs.
//!
//! [`ProgramBuilder`] assembles programs front-to-back: tables and branches
//! are declared first, then wired together. `seal` wires straight-line
//! defaults (declaration order) for any table whose next hop was not set
//! explicitly, sets the root, and validates.

use crate::expr::Condition;
use crate::graph::{Branch, NextHops, NodeKind, ProgramGraph};
use crate::table::{Action, CacheRole, MatchKey, MatchKind, Primitive, Table, TableEntry};
use crate::types::{FieldRef, IrError, NodeId};

/// Incrementally builds a [`ProgramGraph`].
#[derive(Debug)]
pub struct ProgramBuilder {
    graph: ProgramGraph,
    /// Declaration order of nodes whose next-hop was not set explicitly.
    sequence: Vec<NodeId>,
    explicit_next: Vec<NodeId>,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Creates a builder for an unnamed program.
    pub fn new() -> Self {
        Self::named("program")
    }

    /// Creates a builder for a named program.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            graph: ProgramGraph::new(name),
            sequence: Vec::new(),
            explicit_next: Vec::new(),
        }
    }

    /// Interns a field name.
    pub fn field(&mut self, name: &str) -> FieldRef {
        self.graph.fields.intern(name)
    }

    /// Starts a table definition; finish with [`TableBuilder::finish`].
    pub fn table(&mut self, name: impl Into<String>) -> TableBuilder<'_> {
        TableBuilder {
            builder: self,
            table: {
                let mut t = Table::new(name);
                t.actions.clear();
                t
            },
            switch_case: None,
        }
    }

    /// Adds a fully-formed table node, appended to the default sequence.
    pub fn add_table(&mut self, table: Table) -> NodeId {
        let id = self.graph.add_table(table, None);
        self.sequence.push(id);
        id
    }

    /// Adds a branch with explicit arms. Arms may be `None` (sink) or nodes
    /// added earlier/later; targets are validated at seal time.
    pub fn branch(
        &mut self,
        name: impl Into<String>,
        condition: Condition,
        on_true: Option<NodeId>,
        on_false: Option<NodeId>,
    ) -> NodeId {
        let id = self.graph.add_branch(
            Branch {
                name: name.into(),
                condition,
            },
            on_true,
            on_false,
        );
        self.sequence.push(id);
        self.explicit_next.push(id);
        id
    }

    /// Explicitly sets the next hop of a table node (removing it from the
    /// default straight-line wiring).
    pub fn set_next(&mut self, from: NodeId, to: Option<NodeId>) {
        if let Some(n) = self.graph.node_mut(from) {
            n.next = NextHops::Always(to);
        }
        if !self.explicit_next.contains(&from) {
            self.explicit_next.push(from);
        }
    }

    /// Makes a table switch-case: action `i` continues at `targets[i]`.
    pub fn set_by_action(&mut self, from: NodeId, targets: Vec<Option<NodeId>>) {
        if let Some(n) = self.graph.node_mut(from) {
            n.next = NextHops::ByAction(targets);
        }
        if !self.explicit_next.contains(&from) {
            self.explicit_next.push(from);
        }
    }

    /// Installs an entry into a previously added table.
    pub fn add_entry(&mut self, table: NodeId, entry: TableEntry) -> Result<(), IrError> {
        let node = self
            .graph
            .node_mut(table)
            .ok_or(IrError::UnknownNode(table))?;
        match &mut node.kind {
            NodeKind::Table(t) => {
                t.entries.push(entry);
                Ok(())
            }
            NodeKind::Branch(_) => Err(IrError::BadTable {
                table,
                reason: "node is a branch, not a table".into(),
            }),
        }
    }

    /// Direct access to the graph under construction (for advanced wiring).
    pub fn graph_mut(&mut self) -> &mut ProgramGraph {
        &mut self.graph
    }

    /// Finishes the program: wires declaration-order fallthrough for tables
    /// without explicit next hops, sets `root`, and validates.
    pub fn seal(mut self, root: NodeId) -> Result<ProgramGraph, IrError> {
        // Straight-line wiring: each non-explicit node in the declared
        // sequence flows to the next declared node (explicit or not);
        // the last one flows to the sink.
        for i in 0..self.sequence.len() {
            let id = self.sequence[i];
            if self.explicit_next.contains(&id) {
                continue;
            }
            let next = self.sequence.get(i + 1).copied();
            if let Some(n) = self.graph.node_mut(id) {
                n.next = NextHops::Always(next);
            }
        }
        self.graph.set_root(root);
        self.graph.validate()?;
        Ok(self.graph)
    }

    /// Like [`seal`](Self::seal) but uses the first declared node as root.
    pub fn seal_sequential(self) -> Result<ProgramGraph, IrError> {
        let root = self.sequence.first().copied().ok_or(IrError::NoRoot)?;
        self.seal(root)
    }
}

/// Fluent builder for one table, returned by [`ProgramBuilder::table`].
#[derive(Debug)]
pub struct TableBuilder<'a> {
    builder: &'a mut ProgramBuilder,
    table: Table,
    switch_case: Option<Vec<Option<NodeId>>>,
}

impl<'a> TableBuilder<'a> {
    /// Adds a key component.
    pub fn key(mut self, field: FieldRef, kind: MatchKind) -> Self {
        self.table.keys.push(MatchKey { field, kind });
        self
    }

    /// Adds an action built from primitives.
    pub fn action(mut self, name: impl Into<String>, primitives: Vec<Primitive>) -> Self {
        self.table.actions.push(Action::new(name, primitives));
        self
    }

    /// Adds a drop action.
    pub fn action_drop(mut self, name: impl Into<String>) -> Self {
        self.table.actions.push(Action::drop_action(name));
        self
    }

    /// Adds a no-op action.
    pub fn action_nop(mut self, name: impl Into<String>) -> Self {
        self.table.actions.push(Action::nop(name));
        self
    }

    /// Selects the default action by index (defaults to 0).
    pub fn default_action(mut self, index: usize) -> Self {
        self.table.default_action = index;
        self
    }

    /// Installs an entry.
    pub fn entry(mut self, entry: TableEntry) -> Self {
        self.table.entries.push(entry);
        self
    }

    /// Sets the capacity.
    pub fn max_entries(mut self, cap: usize) -> Self {
        self.table.max_entries = Some(cap);
        self
    }

    /// Marks the table's cache role (used when hand-building optimized
    /// layouts in tests).
    pub fn cache_role(mut self, role: CacheRole) -> Self {
        self.table.cache_role = role;
        self
    }

    /// Makes the table switch-case with per-action targets (checked against
    /// the action count at seal time).
    pub fn by_action(mut self, targets: Vec<Option<NodeId>>) -> Self {
        self.switch_case = Some(targets);
        self
    }

    /// Adds the table to the program and returns its node id.
    pub fn finish(self) -> NodeId {
        let TableBuilder {
            builder,
            mut table,
            switch_case,
        } = self;
        if table.actions.is_empty() {
            table.actions.push(Action::nop("nop"));
        }
        let id = builder.add_table(table);
        if let Some(targets) = switch_case {
            builder.set_by_action(id, targets);
        }
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::MatchValue;

    #[test]
    fn sequential_program_builds_and_wires() {
        let mut b = ProgramBuilder::named("seq");
        let f = b.field("ipv4.dst");
        let t0 = b
            .table("acl")
            .key(f, MatchKind::Exact)
            .action_nop("permit")
            .action_drop("deny")
            .finish();
        let t1 = b
            .table("route")
            .key(f, MatchKind::Lpm)
            .action("fwd", vec![Primitive::Forward { port: 1 }])
            .finish();
        let g = b.seal(t0).unwrap();
        assert_eq!(g.root(), Some(t0));
        let n0 = g.node(t0).unwrap();
        assert_eq!(n0.next, NextHops::Always(Some(t1)));
        let n1 = g.node(t1).unwrap();
        assert_eq!(n1.next, NextHops::Always(None));
    }

    #[test]
    fn seal_sequential_uses_first_node() {
        let mut b = ProgramBuilder::new();
        let f = b.field("x");
        let first = b.table("a").key(f, MatchKind::Exact).finish();
        b.table("b").key(f, MatchKind::Exact).finish();
        let g = b.seal_sequential().unwrap();
        assert_eq!(g.root(), Some(first));
    }

    #[test]
    fn explicit_next_overrides_sequence() {
        let mut b = ProgramBuilder::new();
        let f = b.field("x");
        let a = b.table("a").key(f, MatchKind::Exact).finish();
        let _skipped = b.table("b").key(f, MatchKind::Exact).finish();
        let c = b.table("c").key(f, MatchKind::Exact).finish();
        b.set_next(a, Some(c));
        let g = b.seal(a).unwrap();
        assert_eq!(g.node(a).unwrap().next, NextHops::Always(Some(c)));
    }

    #[test]
    fn switch_case_wiring_via_builder() {
        let mut b = ProgramBuilder::new();
        let f = b.field("x");
        let end = b.table("end").key(f, MatchKind::Exact).finish();
        b.set_next(end, None);
        let sw = b
            .table("sw")
            .key(f, MatchKind::Exact)
            .action_nop("to_end")
            .action_nop("to_sink")
            .by_action(vec![Some(end), None])
            .finish();
        let g = b.seal(sw).unwrap();
        assert!(g.node(sw).unwrap().is_switch_case());
    }

    #[test]
    fn entries_install_through_builder() {
        let mut b = ProgramBuilder::new();
        let f = b.field("x");
        let t = b
            .table("t")
            .key(f, MatchKind::Exact)
            .action_nop("hit")
            .finish();
        b.add_entry(t, TableEntry::new(vec![MatchValue::Exact(5)], 0))
            .unwrap();
        let g = b.seal(t).unwrap();
        assert_eq!(g.node(t).unwrap().as_table().unwrap().entries.len(), 1);
    }

    #[test]
    fn add_entry_to_branch_fails() {
        let mut b = ProgramBuilder::new();
        let f = b.field("x");
        let t = b.table("t").key(f, MatchKind::Exact).finish();
        let br = b.branch("if", Condition::eq(f, 1), Some(t), Some(t));
        let err = b.add_entry(br, TableEntry::new(vec![], 0)).unwrap_err();
        assert!(matches!(err, IrError::BadTable { .. }));
    }

    #[test]
    fn empty_builder_cannot_seal() {
        let b = ProgramBuilder::new();
        assert_eq!(b.seal_sequential().unwrap_err(), IrError::NoRoot);
    }
}
