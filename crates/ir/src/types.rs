//! Core identifier types and the per-program field space.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node (table or branch) within a [`crate::ProgramGraph`].
///
/// Node ids are dense: they index directly into the graph's node vector.
/// Transformations that remove nodes leave tombstones rather than renumber,
/// so ids handed out by the optimizer's counter/entry maps stay stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The integer index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Index of a concrete entry within a table's entry list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EntryId(pub u32);

impl EntryId {
    /// The integer index of this entry.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A reference to an interned packet header field.
///
/// Fields are interned once per program in a [`FieldSpace`]; simulator
/// packets are then flat `Vec<u64>` slot arrays indexed by `FieldRef`, which
/// keeps per-packet processing allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FieldRef(pub u16);

impl FieldRef {
    /// The integer slot index of this field.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// The set of header fields a program reads or writes, interned by name.
///
/// Typical names follow P4 conventions such as `"ipv4.dst"` or
/// `"tcp.sport"`, but any string is accepted.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldSpace {
    names: Vec<String>,
}

impl FieldSpace {
    /// Creates an empty field space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the existing reference if already present.
    pub fn intern(&mut self, name: &str) -> FieldRef {
        if let Some(pos) = self.names.iter().position(|n| n == name) {
            return FieldRef(pos as u16);
        }
        assert!(
            self.names.len() < u16::MAX as usize,
            "field space overflow: more than {} fields",
            u16::MAX
        );
        self.names.push(name.to_owned());
        FieldRef((self.names.len() - 1) as u16)
    }

    /// Looks up a field by name without interning.
    pub fn get(&self, name: &str) -> Option<FieldRef> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|p| FieldRef(p as u16))
    }

    /// Returns the name of `field`, or `None` if it is not from this space.
    pub fn name(&self, field: FieldRef) -> Option<&str> {
        self.names.get(field.index()).map(String::as_str)
    }

    /// Number of interned fields (the required packet slot count).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no field has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(FieldRef, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (FieldRef, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (FieldRef(i as u16), n.as_str()))
    }
}

/// Errors produced while constructing, validating, or transforming the IR.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are named by their role
pub enum IrError {
    /// A node id referenced a node that does not exist (or was removed).
    UnknownNode(NodeId),
    /// A field reference pointed outside the program's field space.
    UnknownField(FieldRef),
    /// The graph contains a cycle; P4 control flow must be a DAG.
    CyclicGraph { at: NodeId },
    /// The graph has no root configured.
    NoRoot,
    /// A table entry is malformed (wrong arity, bad action index, …).
    BadEntry { table: NodeId, reason: String },
    /// A table definition is malformed.
    BadTable { table: NodeId, reason: String },
    /// Generic structural violation with context.
    Invalid(String),
    /// JSON (de)serialization failure, with context.
    Json(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownNode(id) => write!(f, "unknown node {id}"),
            IrError::UnknownField(fr) => write!(f, "unknown field {fr}"),
            IrError::CyclicGraph { at } => write!(f, "control-flow cycle detected at {at}"),
            IrError::NoRoot => write!(f, "program has no root node"),
            IrError::BadEntry { table, reason } => {
                write!(f, "bad entry in table {table}: {reason}")
            }
            IrError::BadTable { table, reason } => write!(f, "bad table {table}: {reason}"),
            IrError::Invalid(msg) => write!(f, "invalid program: {msg}"),
            IrError::Json(msg) => write!(f, "json error: {msg}"),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_space_interns_unique_names_once() {
        let mut fs = FieldSpace::new();
        let a = fs.intern("ipv4.src");
        let b = fs.intern("ipv4.dst");
        let a2 = fs.intern("ipv4.src");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(fs.len(), 2);
    }

    #[test]
    fn field_space_lookup_and_names() {
        let mut fs = FieldSpace::new();
        let a = fs.intern("tcp.sport");
        assert_eq!(fs.get("tcp.sport"), Some(a));
        assert_eq!(fs.get("tcp.dport"), None);
        assert_eq!(fs.name(a), Some("tcp.sport"));
        assert_eq!(fs.name(FieldRef(99)), None);
    }

    #[test]
    fn field_space_iteration_order_is_interning_order() {
        let mut fs = FieldSpace::new();
        fs.intern("a");
        fs.intern("b");
        fs.intern("c");
        let names: Vec<&str> = fs.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = IrError::CyclicGraph { at: NodeId(3) };
        assert!(e.to_string().contains("n3"));
        let e = IrError::BadEntry {
            table: NodeId(1),
            reason: "arity".into(),
        };
        assert!(e.to_string().contains("arity"));
    }
}
