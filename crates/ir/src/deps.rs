//! Field-level dependency analysis.
//!
//! The paper's transformations must "preserve the program semantics by table
//! dependency analysis" (§3.2). Two tables can be reordered when no
//! read-after-write, write-after-read, or write-after-write hazard exists
//! between them; merging additionally requires that neither table's match
//! keys depend on the other's writes.
//!
//! Drops need no special casing: a drop halts execution, so for packets that
//! survive both orders the field state is identical, and for dropped packets
//! the final state is unobservable. A hazard only exists when one table's
//! *match or condition* reads a field the other *writes* — which is exactly
//! the field-level RAW test below.
//!
//! # Read classes and the predicate hierarchy (audited)
//!
//! [`RwSets`] deliberately keeps two read classes apart:
//!
//! * **match reads** ([`RwSets::match_reads`]) — fields consulted *before*
//!   any action runs: table keys and branch conditions. They select which
//!   action fires, so they are sensitive to any earlier write.
//! * **action reads** ([`RwSets::action_reads`]) — fields read by action
//!   primitives *while* they execute. They matter only for transformations
//!   that change the relative order of primitive execution.
//!
//! The three predicates use those classes differently, giving a strict
//! one-way hierarchy:
//!
//! * [`DependencyAnalysis::commute`] — the strongest: checks **all** reads
//!   plus WAW, because reordering swaps both match evaluation *and*
//!   primitive execution order.
//! * [`DependencyAnalysis::mergeable`] — strictly weaker: only
//!   cross-table *match* RAW matters. A merged table evaluates both key
//!   sets up front, then replays the winning actions' primitives in the
//!   original program order — so action-read RAW and WAW hazards are
//!   harmless (see `waw_hazard_blocks_reorder_but_not_merge` and
//!   `action_read_hazard_blocks_reorder_only` below).
//! * [`DependencyAnalysis::cacheable_segment`] — directional: an earlier
//!   table must not write a *later* table's match field, else the segment
//!   entry key does not determine the outcome. Action reads and WAW are
//!   fine because a cache hit replays the recorded final action, and a
//!   miss executes the segment unchanged.
//!
//! Hence `commute(a, b)` implies `mergeable(a, b)` and
//! `cacheable_segment(&[a, b])`, but **neither converse holds** — merging
//! or caching a pair is often legal when reordering it is not. Regression
//! tests at the bottom of this file pin the hierarchy.

use crate::graph::{Node, NodeKind};
use crate::table::Table;
use crate::types::FieldRef;

/// The fields a node reads (match keys, branch conditions, action operand
/// reads) and writes (action primitive targets).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RwSets {
    /// Fields read by the key match or branch condition.
    pub match_reads: Vec<FieldRef>,
    /// Fields read by action primitives.
    pub action_reads: Vec<FieldRef>,
    /// Fields written by action primitives (any action of the table).
    pub writes: Vec<FieldRef>,
}

impl RwSets {
    /// All reads (match + action).
    pub fn reads(&self) -> impl Iterator<Item = FieldRef> + '_ {
        self.match_reads
            .iter()
            .chain(self.action_reads.iter())
            .copied()
    }

    fn push_unique(v: &mut Vec<FieldRef>, f: FieldRef) {
        if !v.contains(&f) {
            v.push(f);
        }
    }

    /// Computes the read/write sets of a table.
    pub fn of_table(t: &Table) -> Self {
        let mut s = RwSets::default();
        for k in &t.keys {
            Self::push_unique(&mut s.match_reads, k.field);
        }
        for a in &t.actions {
            for p in &a.primitives {
                if let Some(f) = p.read_field() {
                    Self::push_unique(&mut s.action_reads, f);
                }
                if let Some(f) = p.written_field() {
                    Self::push_unique(&mut s.writes, f);
                }
            }
        }
        s
    }

    /// Computes the read/write sets of any node.
    pub fn of_node(n: &Node) -> Self {
        match &n.kind {
            NodeKind::Table(t) => Self::of_table(t),
            NodeKind::Branch(b) => {
                let mut s = RwSets::default();
                let mut fields = Vec::new();
                b.condition.read_fields(&mut fields);
                for f in fields {
                    Self::push_unique(&mut s.match_reads, f);
                }
                s
            }
        }
    }
}

/// Pairwise dependency queries between nodes.
#[derive(Debug, Clone)]
pub struct DependencyAnalysis;

impl DependencyAnalysis {
    /// Whether executing `a` then `b` is equivalent to `b` then `a`.
    ///
    /// True when there is no data hazard between them:
    /// * no field written by `a` is read (match or action) by `b`, and
    ///   vice versa (RAW / WAR), and
    /// * no field is written by both (WAW).
    pub fn commute(a: &RwSets, b: &RwSets) -> bool {
        let raw_ab = a.writes.iter().any(|w| b.reads().any(|r| r == *w));
        let raw_ba = b.writes.iter().any(|w| a.reads().any(|r| r == *w));
        let waw = a.writes.iter().any(|w| b.writes.contains(w));
        !(raw_ab || raw_ba || waw)
    }

    /// Whether two tables may be merged into one (paper §3.2.3): their key
    /// matches must not depend on each other's writes, because the merged
    /// table matches both keys *before* running either action.
    ///
    /// Action-level hazards (`a` writes a field `b`'s action reads, or
    /// both write the same field) are allowed because the merged action
    /// preserves the original execution order of the primitives. This
    /// makes `mergeable` deliberately **weaker** than [`Self::commute`]:
    /// a mergeable pair need not be reorderable, and a merge must never
    /// be justified by (or used to justify) a reorder.
    pub fn mergeable(a: &RwSets, b: &RwSets) -> bool {
        let match_raw_ab = a.writes.iter().any(|w| b.match_reads.contains(w));
        let match_raw_ba = b.writes.iter().any(|w| a.match_reads.contains(w));
        !(match_raw_ab || match_raw_ba)
    }

    /// Whether a sequence of tables (by their RW sets) can be cached as one
    /// unit keyed on their combined match fields: no table in the segment
    /// may write a field that a *later* table in the segment matches on
    /// (otherwise the cache key at segment entry does not determine the
    /// outcome).
    pub fn cacheable_segment(sets: &[RwSets]) -> bool {
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                if sets[i]
                    .writes
                    .iter()
                    .any(|w| sets[j].match_reads.contains(w))
                {
                    return false;
                }
            }
        }
        true
    }

    /// The combined cache key fields for a segment: every field matched by
    /// any table in the segment (deduplicated, in first-seen order). This is
    /// the cross-product key of paper §3.2.2.
    pub fn segment_key_fields(sets: &[RwSets]) -> Vec<FieldRef> {
        let mut out = Vec::new();
        for s in sets {
            for f in &s.match_reads {
                if !out.contains(f) {
                    out.push(*f);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Action, MatchKey, MatchKind, Primitive};

    fn f(i: u16) -> FieldRef {
        FieldRef(i)
    }

    fn table_matching_writing(matches: &[u16], writes: &[u16]) -> Table {
        let mut t = Table::new("t");
        for &m in matches {
            t.keys.push(MatchKey {
                field: f(m),
                kind: MatchKind::Exact,
            });
        }
        let prims = writes.iter().map(|&w| Primitive::set(f(w), 1)).collect();
        t.actions = vec![Action::new("a", prims)];
        t
    }

    #[test]
    fn independent_tables_commute() {
        let a = RwSets::of_table(&table_matching_writing(&[0], &[1]));
        let b = RwSets::of_table(&table_matching_writing(&[2], &[3]));
        assert!(DependencyAnalysis::commute(&a, &b));
        assert!(DependencyAnalysis::mergeable(&a, &b));
    }

    #[test]
    fn raw_hazard_blocks_reorder() {
        // a writes field 1, b matches on field 1.
        let a = RwSets::of_table(&table_matching_writing(&[0], &[1]));
        let b = RwSets::of_table(&table_matching_writing(&[1], &[2]));
        assert!(!DependencyAnalysis::commute(&a, &b));
        assert!(!DependencyAnalysis::mergeable(&a, &b));
    }

    #[test]
    fn waw_hazard_blocks_reorder_but_not_merge() {
        let a = RwSets::of_table(&table_matching_writing(&[0], &[5]));
        let b = RwSets::of_table(&table_matching_writing(&[1], &[5]));
        assert!(!DependencyAnalysis::commute(&a, &b));
        // Merge keeps primitive order, so WAW is fine.
        assert!(DependencyAnalysis::mergeable(&a, &b));
    }

    #[test]
    fn action_read_hazard_blocks_reorder_only() {
        // a writes field 1; b's action reads field 1 (but matches field 2).
        let a = RwSets::of_table(&table_matching_writing(&[0], &[1]));
        let mut tb = table_matching_writing(&[2], &[]);
        tb.actions = vec![Action::new("a", vec![Primitive::add(f(1), 1)])];
        let b = RwSets::of_table(&tb);
        assert!(!DependencyAnalysis::commute(&a, &b));
        assert!(DependencyAnalysis::mergeable(&a, &b));
    }

    #[test]
    fn drop_only_acl_tables_commute() {
        // ACL tables: match disjoint fields, only drop (no field writes).
        let mut ta = table_matching_writing(&[0], &[]);
        ta.actions = vec![Action::nop("permit"), Action::drop_action("deny")];
        let mut tb = table_matching_writing(&[1], &[]);
        tb.actions = vec![Action::nop("permit"), Action::drop_action("deny")];
        let a = RwSets::of_table(&ta);
        let b = RwSets::of_table(&tb);
        assert!(DependencyAnalysis::commute(&a, &b));
    }

    #[test]
    fn cacheable_segment_rejects_internal_match_dependency() {
        // t0 writes field 3, t1 matches on field 3: outcome at segment
        // entry is not determined by the entry key -> not cacheable.
        let s0 = RwSets::of_table(&table_matching_writing(&[0], &[3]));
        let s1 = RwSets::of_table(&table_matching_writing(&[3], &[4]));
        assert!(!DependencyAnalysis::cacheable_segment(&[
            s0.clone(),
            s1.clone()
        ]));
        // Reverse order is fine: t1 matches 3 before t0 writes it.
        assert!(DependencyAnalysis::cacheable_segment(&[s1, s0]));
    }

    #[test]
    fn segment_key_is_deduplicated_union() {
        let s0 = RwSets::of_table(&table_matching_writing(&[0, 1], &[]));
        let s1 = RwSets::of_table(&table_matching_writing(&[1, 2], &[]));
        let key = DependencyAnalysis::segment_key_fields(&[s0, s1]);
        assert_eq!(key, vec![f(0), f(1), f(2)]);
    }

    #[test]
    fn commute_implies_mergeable_and_cacheable() {
        // The hierarchy over a small fixture matrix: wherever commute
        // holds, the weaker predicates must hold in both orders.
        let fixtures = [
            table_matching_writing(&[0], &[1]),
            table_matching_writing(&[2], &[3]),
            table_matching_writing(&[1], &[2]),
            table_matching_writing(&[0, 2], &[5]),
            table_matching_writing(&[5], &[]),
        ];
        for ta in &fixtures {
            for tb in &fixtures {
                let a = RwSets::of_table(ta);
                let b = RwSets::of_table(tb);
                if DependencyAnalysis::commute(&a, &b) {
                    assert!(DependencyAnalysis::mergeable(&a, &b));
                    assert!(DependencyAnalysis::cacheable_segment(&[
                        a.clone(),
                        b.clone()
                    ]));
                    assert!(DependencyAnalysis::cacheable_segment(&[b, a]));
                }
            }
        }
    }

    #[test]
    fn mergeable_does_not_imply_commute() {
        // WAW counterexample: merge keeps primitive order, reorder does not.
        let a = RwSets::of_table(&table_matching_writing(&[0], &[5]));
        let b = RwSets::of_table(&table_matching_writing(&[1], &[5]));
        assert!(DependencyAnalysis::mergeable(&a, &b));
        assert!(!DependencyAnalysis::commute(&a, &b));
    }

    #[test]
    fn cacheable_does_not_imply_commute() {
        // a's action reads a field b writes: a cache over [a, b] is fine
        // (the entry key still determines the outcome), swapping is not.
        let mut ta = table_matching_writing(&[0], &[]);
        ta.actions = vec![Action::new("a", vec![Primitive::add(f(7), 1)])];
        let b_tbl = table_matching_writing(&[1], &[7]);
        let a = RwSets::of_table(&ta);
        let b = RwSets::of_table(&b_tbl);
        assert!(DependencyAnalysis::cacheable_segment(&[
            a.clone(),
            b.clone()
        ]));
        assert!(!DependencyAnalysis::commute(&a, &b));
    }

    #[test]
    fn rw_sets_of_branch_node() {
        use crate::expr::Condition;
        use crate::graph::{Branch, NextHops, Node, NodeKind};
        use crate::types::NodeId;
        let n = Node {
            id: NodeId(0),
            kind: NodeKind::Branch(Branch {
                name: "if".into(),
                condition: Condition::eq(f(4), 1),
            }),
            next: NextHops::Branch {
                on_true: None,
                on_false: None,
            },
        };
        let s = RwSets::of_node(&n);
        assert_eq!(s.match_reads, vec![f(4)]);
        assert!(s.writes.is_empty());
    }
}
