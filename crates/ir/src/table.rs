//! Match/action tables: keys, match kinds, actions, primitives, and entries.
//!
//! The cost model (paper §3.1) distinguishes tables by their *match kind*
//! (which determines the number of memory accesses `m` a key match needs)
//! and by the number of *action primitives* `n_a` an action executes. Both
//! are first-class here so the optimizer and the simulator agree on costs.

use crate::types::FieldRef;
use serde::{Deserialize, Serialize};

/// The match kind of a single table key, in increasing implementation cost.
///
/// * `Exact` — one hash plus one memory access (`m = 1`).
/// * `Lpm` — longest prefix match, implemented as one hash table per
///   distinct prefix length (`m` = number of distinct prefix lengths).
/// * `Ternary` — arbitrary value/mask, implemented as one hash table per
///   distinct mask (`m` = number of distinct masks), with priorities to
///   disambiguate overlapping entries.
/// * `Range` — `lo..=hi` interval match; modeled like ternary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchKind {
    /// Exact value match.
    Exact,
    /// Longest-prefix match.
    Lpm,
    /// Value/mask match with priority.
    Ternary,
    /// Interval match with priority.
    Range,
}

impl MatchKind {
    /// True if entries of this kind carry a priority used to break ties.
    pub fn prioritized(self) -> bool {
        matches!(self, MatchKind::Ternary | MatchKind::Range)
    }
}

/// One key component of a table: which field is matched, and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MatchKey {
    /// The packet field this key matches on.
    pub field: FieldRef,
    /// The match kind of this key component.
    pub kind: MatchKind,
}

/// A primitive operation inside an action (paper Figure 4 "action
/// primitives", e.g. `ipv4.ttl = ipv4.ttl - 1`).
///
/// The cost model charges `L_act` per primitive; the simulator executes them
/// for real so semantic-equivalence tests can compare packet contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)] // operand fields are named by their role
pub enum Primitive {
    /// `field = value`
    Set { field: FieldRef, value: u64 },
    /// `field = field + delta` (wrapping)
    Add { field: FieldRef, delta: u64 },
    /// `field = field - delta` (wrapping)
    Sub { field: FieldRef, delta: u64 },
    /// `dst = src`
    Copy { dst: FieldRef, src: FieldRef },
    /// Mark the packet as dropped; execution halts after the action.
    Drop,
    /// Set the egress port metadata field.
    Forward { port: u32 },
    /// A primitive with cost but no architectural effect (e.g. checksum
    /// update); lets synthesized programs scale `n_a` without touching
    /// packet state.
    Nop,
}

impl Primitive {
    /// Convenience constructor for `Set`.
    pub fn set(field: FieldRef, value: u64) -> Self {
        Primitive::Set { field, value }
    }

    /// Convenience constructor for `Add`.
    pub fn add(field: FieldRef, delta: u64) -> Self {
        Primitive::Add { field, delta }
    }

    /// Convenience constructor for `Sub`.
    pub fn sub(field: FieldRef, delta: u64) -> Self {
        Primitive::Sub { field, delta }
    }

    /// The field this primitive writes, if any.
    pub fn written_field(&self) -> Option<FieldRef> {
        match *self {
            Primitive::Set { field, .. }
            | Primitive::Add { field, .. }
            | Primitive::Sub { field, .. } => Some(field),
            Primitive::Copy { dst, .. } => Some(dst),
            Primitive::Drop | Primitive::Forward { .. } | Primitive::Nop => None,
        }
    }

    /// The field this primitive reads, if any (beyond its written field).
    pub fn read_field(&self) -> Option<FieldRef> {
        match *self {
            Primitive::Copy { src, .. } => Some(src),
            Primitive::Add { field, .. } | Primitive::Sub { field, .. } => Some(field),
            _ => None,
        }
    }
}

/// A named action: a sequence of primitives.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Action {
    /// Human-readable action name (unique within its table by convention).
    pub name: String,
    /// The primitive operations executed when this action fires.
    pub primitives: Vec<Primitive>,
}

impl Action {
    /// Creates an action from a name and primitive list.
    pub fn new(name: impl Into<String>, primitives: Vec<Primitive>) -> Self {
        Self {
            name: name.into(),
            primitives,
        }
    }

    /// An action whose only effect is dropping the packet.
    pub fn drop_action(name: impl Into<String>) -> Self {
        Self::new(name, vec![Primitive::Drop])
    }

    /// A no-op action with zero primitives (the typical "permit"/default).
    pub fn nop(name: impl Into<String>) -> Self {
        Self::new(name, Vec::new())
    }

    /// The number of primitives, `n_a` in the cost model (Eq. 4b).
    pub fn num_primitives(&self) -> usize {
        self.primitives.len()
    }

    /// Whether executing this action drops the packet.
    pub fn drops(&self) -> bool {
        self.primitives.iter().any(|p| matches!(p, Primitive::Drop))
    }
}

/// The matched value for one key component of a table entry.
///
/// The variant must agree with the corresponding [`MatchKey`]'s kind; this
/// is validated by [`Table::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // operand fields are named by their role
pub enum MatchValue {
    /// Matches exactly `value`.
    Exact(u64),
    /// Matches the top `prefix_len` bits of a 64-bit value. `prefix_len = 0`
    /// matches anything.
    Lpm { value: u64, prefix_len: u8 },
    /// Matches where `packet & mask == value & mask`. A zero mask matches
    /// anything (the `*` wildcard of paper Figure 6).
    Ternary { value: u64, mask: u64 },
    /// Matches `lo <= packet <= hi`.
    Range { lo: u64, hi: u64 },
}

impl MatchValue {
    /// The wildcard ternary value (`*` / mask 0) from paper Figure 6.
    pub const ANY: MatchValue = MatchValue::Ternary { value: 0, mask: 0 };

    /// Whether a concrete packet field value satisfies this match value.
    pub fn matches(&self, packet_value: u64) -> bool {
        match *self {
            MatchValue::Exact(v) => packet_value == v,
            MatchValue::Lpm { value, prefix_len } => {
                let mask = prefix_mask(prefix_len);
                packet_value & mask == value & mask
            }
            MatchValue::Ternary { value, mask } => packet_value & mask == value & mask,
            MatchValue::Range { lo, hi } => (lo..=hi).contains(&packet_value),
        }
    }

    /// Whether this value is compatible with the given key kind.
    pub fn compatible_with(&self, kind: MatchKind) -> bool {
        matches!(
            (self, kind),
            (MatchValue::Exact(_), MatchKind::Exact)
                | (MatchValue::Lpm { .. }, MatchKind::Lpm)
                | (MatchValue::Ternary { .. }, MatchKind::Ternary)
                | (MatchValue::Range { .. }, MatchKind::Range)
        )
    }
}

/// The 64-bit mask selecting the top `prefix_len` bits.
pub fn prefix_mask(prefix_len: u8) -> u64 {
    match prefix_len {
        0 => 0,
        n if n >= 64 => u64::MAX,
        n => !0u64 << (64 - n),
    }
}

/// One installed rule in a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableEntry {
    /// One match value per table key, in key order.
    pub matches: Vec<MatchValue>,
    /// Index into the table's action list.
    pub action: usize,
    /// Priority for `Ternary`/`Range` tables; higher wins. Ignored for
    /// exact/LPM tables (LPM resolves by longest prefix instead).
    pub priority: i32,
}

impl TableEntry {
    /// Creates an entry with priority 0.
    pub fn new(matches: Vec<MatchValue>, action: usize) -> Self {
        Self {
            matches,
            action,
            priority: 0,
        }
    }

    /// Creates an entry with an explicit priority.
    pub fn with_priority(matches: Vec<MatchValue>, action: usize, priority: i32) -> Self {
        Self {
            matches,
            action,
            priority,
        }
    }
}

/// Why a table exists, from the optimizer's point of view.
///
/// Transformed programs contain synthetic tables (caches, merged tables)
/// whose runtime behaviour differs from plain program tables: cache tables
/// self-populate on misses (table caching, §3.2.2) or do not (merge-as-cache,
/// §3.2.3), and their counters map back to original tables differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheRole {
    /// A plain program table.
    None,
    /// A flow cache created by table caching: on a miss the packet falls
    /// through to the original tables *and the result is inserted* into the
    /// cache (subject to the insertion rate limit).
    FlowCache,
    /// A merged-exact table used as a cache (paper §3.2.3): misses fall back
    /// to the original tables but do **not** trigger insertions; entries are
    /// materialized from the merge cross-product by the control plane.
    MergedCache,
}

/// A match/action table node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table name (for diagnostics and JSON round-tripping).
    pub name: String,
    /// Key components; empty keys are allowed (the table always misses and
    /// runs the default action, a pattern used for pure "action stages").
    pub keys: Vec<MatchKey>,
    /// Actions selectable by entries. Must be non-empty.
    pub actions: Vec<Action>,
    /// Index of the action run when no entry matches.
    pub default_action: usize,
    /// Installed entries.
    pub entries: Vec<TableEntry>,
    /// Capacity for caches / resource accounting. `None` = unbounded.
    pub max_entries: Option<usize>,
    /// Synthetic-table role (caches); `CacheRole::None` for program tables.
    pub cache_role: CacheRole,
    /// Bytes of memory one entry occupies, used by the resource model
    /// `M(v)`; defaults to [`Table::DEFAULT_ENTRY_BYTES`].
    pub entry_bytes: usize,
}

impl Table {
    /// Default per-entry memory footprint in bytes (key + action data).
    pub const DEFAULT_ENTRY_BYTES: usize = 32;

    /// Creates an empty table with the given name and a single no-op
    /// default action.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            keys: Vec::new(),
            actions: vec![Action::nop("nop")],
            default_action: 0,
            entries: Vec::new(),
            max_entries: None,
            cache_role: CacheRole::None,
            entry_bytes: Self::DEFAULT_ENTRY_BYTES,
        }
    }

    /// The dominant match kind of the table: the most expensive kind among
    /// its keys (a table with any ternary key behaves like a ternary table).
    pub fn effective_kind(&self) -> MatchKind {
        let mut kind = MatchKind::Exact;
        for k in &self.keys {
            kind = match (kind, k.kind) {
                (_, MatchKind::Ternary) | (MatchKind::Ternary, _) => MatchKind::Ternary,
                (_, MatchKind::Range) | (MatchKind::Range, _) => MatchKind::Range,
                (_, MatchKind::Lpm) | (MatchKind::Lpm, _) => MatchKind::Lpm,
                _ => MatchKind::Exact,
            };
        }
        kind
    }

    /// The number of hash-table lookups a key match performs — the `m`
    /// parameter of cost-model Eq. 4a — derived from the installed entries:
    ///
    /// * exact: 1
    /// * LPM: number of distinct prefix lengths (≥ 1)
    /// * ternary/range: number of distinct masks / distinct range shapes
    ///   (≥ 1)
    ///
    /// Multi-key tables count the distinct *combinations* of
    /// per-key patterns, matching the multiple-hash-table implementation.
    pub fn memory_accesses(&self) -> usize {
        if self.keys.is_empty() {
            return 0;
        }
        match self.effective_kind() {
            MatchKind::Exact => 1,
            _ => {
                let mut patterns: Vec<Vec<u64>> = Vec::new();
                for e in &self.entries {
                    let sig: Vec<u64> = e
                        .matches
                        .iter()
                        .map(|m| match *m {
                            MatchValue::Exact(_) => u64::MAX,
                            MatchValue::Lpm { prefix_len, .. } => prefix_mask(prefix_len),
                            MatchValue::Ternary { mask, .. } => mask,
                            // Ranges are binned by their width's bit length,
                            // approximating the number of covering prefixes.
                            MatchValue::Range { lo, hi } => 64 - (hi - lo).leading_zeros() as u64,
                        })
                        .collect();
                    if !patterns.contains(&sig) {
                        patterns.push(sig);
                    }
                }
                patterns.len().max(1)
            }
        }
    }

    /// Estimated memory footprint in bytes: entries × entry size × `m`
    /// (LPM/ternary tables are stored once per hash table; paper §4).
    pub fn memory_bytes(&self) -> usize {
        self.entries.len() * self.entry_bytes * self.memory_accesses().max(1)
    }

    /// Whether any action of this table can drop a packet.
    pub fn can_drop(&self) -> bool {
        self.actions.iter().any(Action::drops)
    }

    /// Validates entry arity, action indices, and match-value/kind
    /// compatibility. Returns a human-readable reason on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.actions.is_empty() {
            return Err("table has no actions".into());
        }
        if self.default_action >= self.actions.len() {
            return Err(format!(
                "default action index {} out of range ({} actions)",
                self.default_action,
                self.actions.len()
            ));
        }
        for (i, e) in self.entries.iter().enumerate() {
            if e.matches.len() != self.keys.len() {
                return Err(format!(
                    "entry {i} has {} match values but table has {} keys",
                    e.matches.len(),
                    self.keys.len()
                ));
            }
            if e.action >= self.actions.len() {
                return Err(format!(
                    "entry {i} references action {} out of range",
                    e.action
                ));
            }
            for (mv, key) in e.matches.iter().zip(&self.keys) {
                if !mv.compatible_with(key.kind) {
                    return Err(format!(
                        "entry {i}: match value {mv:?} incompatible with key kind {:?}",
                        key.kind
                    ));
                }
            }
        }
        if let Some(cap) = self.max_entries {
            if self.entries.len() > cap {
                return Err(format!(
                    "table holds {} entries, exceeding max_entries {cap}",
                    self.entries.len()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u16) -> FieldRef {
        FieldRef(i)
    }

    #[test]
    fn prefix_mask_edges() {
        assert_eq!(prefix_mask(0), 0);
        assert_eq!(prefix_mask(64), u64::MAX);
        assert_eq!(prefix_mask(1), 1u64 << 63);
        assert_eq!(prefix_mask(32), 0xFFFF_FFFF_0000_0000);
    }

    #[test]
    fn match_value_semantics() {
        assert!(MatchValue::Exact(7).matches(7));
        assert!(!MatchValue::Exact(7).matches(8));
        let lpm = MatchValue::Lpm {
            value: 0xAB00_0000_0000_0000,
            prefix_len: 8,
        };
        assert!(lpm.matches(0xABCD_0000_0000_0000));
        assert!(!lpm.matches(0xAC00_0000_0000_0000));
        let tern = MatchValue::Ternary {
            value: 0b1010,
            mask: 0b1110,
        };
        assert!(tern.matches(0b1011));
        assert!(!tern.matches(0b0010));
        assert!(MatchValue::ANY.matches(u64::MAX));
        assert!(MatchValue::Range { lo: 5, hi: 9 }.matches(5));
        assert!(MatchValue::Range { lo: 5, hi: 9 }.matches(9));
        assert!(!MatchValue::Range { lo: 5, hi: 9 }.matches(10));
    }

    #[test]
    fn effective_kind_is_most_expensive() {
        let mut t = Table::new("t");
        t.keys = vec![
            MatchKey {
                field: f(0),
                kind: MatchKind::Exact,
            },
            MatchKey {
                field: f(1),
                kind: MatchKind::Lpm,
            },
        ];
        assert_eq!(t.effective_kind(), MatchKind::Lpm);
        t.keys.push(MatchKey {
            field: f(2),
            kind: MatchKind::Ternary,
        });
        assert_eq!(t.effective_kind(), MatchKind::Ternary);
    }

    #[test]
    fn memory_accesses_counts_distinct_patterns() {
        let mut t = Table::new("lpm");
        t.keys = vec![MatchKey {
            field: f(0),
            kind: MatchKind::Lpm,
        }];
        t.actions = vec![Action::nop("nop"), Action::drop_action("drop")];
        // Three distinct prefix lengths -> m = 3 (paper §3.1 methodology).
        for (plen, v) in [(8u8, 1u64), (16, 2), (24, 3), (24, 4)] {
            t.entries.push(TableEntry::new(
                vec![MatchValue::Lpm {
                    value: v << 40,
                    prefix_len: plen,
                }],
                0,
            ));
        }
        assert_eq!(t.memory_accesses(), 3);

        let mut e = Table::new("exact");
        e.keys = vec![MatchKey {
            field: f(0),
            kind: MatchKind::Exact,
        }];
        e.entries
            .push(TableEntry::new(vec![MatchValue::Exact(1)], 0));
        assert_eq!(e.memory_accesses(), 1);
    }

    #[test]
    fn empty_pattern_table_still_costs_one_access() {
        let mut t = Table::new("tern");
        t.keys = vec![MatchKey {
            field: f(0),
            kind: MatchKind::Ternary,
        }];
        assert_eq!(t.memory_accesses(), 1);
    }

    #[test]
    fn validation_catches_arity_and_action_errors() {
        let mut t = Table::new("t");
        t.keys = vec![MatchKey {
            field: f(0),
            kind: MatchKind::Exact,
        }];
        t.entries.push(TableEntry::new(vec![], 0));
        assert!(t.validate().unwrap_err().contains("match values"));
        t.entries.clear();
        t.entries
            .push(TableEntry::new(vec![MatchValue::Exact(1)], 9));
        assert!(t.validate().unwrap_err().contains("action 9"));
        t.entries.clear();
        t.entries.push(TableEntry::new(
            vec![MatchValue::Ternary { value: 0, mask: 0 }],
            0,
        ));
        assert!(t.validate().unwrap_err().contains("incompatible"));
    }

    #[test]
    fn validation_enforces_capacity() {
        let mut t = Table::new("t");
        t.max_entries = Some(1);
        t.entries.push(TableEntry::new(vec![], 0));
        t.entries.push(TableEntry::new(vec![], 0));
        assert!(t.validate().unwrap_err().contains("exceeding"));
    }

    #[test]
    fn action_drop_detection() {
        assert!(Action::drop_action("d").drops());
        assert!(!Action::nop("n").drops());
        let a = Action::new("mixed", vec![Primitive::Nop, Primitive::Drop]);
        assert!(a.drops());
    }

    #[test]
    fn primitive_read_write_sets() {
        let p = Primitive::Copy {
            dst: f(1),
            src: f(2),
        };
        assert_eq!(p.written_field(), Some(f(1)));
        assert_eq!(p.read_field(), Some(f(2)));
        assert_eq!(Primitive::Drop.written_field(), None);
        assert_eq!(Primitive::add(f(3), 1).read_field(), Some(f(3)));
    }

    #[test]
    fn memory_bytes_scales_with_m() {
        let mut t = Table::new("tern");
        t.keys = vec![MatchKey {
            field: f(0),
            kind: MatchKind::Ternary,
        }];
        t.actions = vec![Action::nop("nop")];
        for mask in [0xFF00u64, 0x00FF, 0xFFFF] {
            t.entries.push(TableEntry::new(
                vec![MatchValue::Ternary { value: 0, mask }],
                0,
            ));
        }
        // 3 entries, 3 distinct masks, default 32 B/entry -> 3*32*3.
        assert_eq!(t.memory_bytes(), 3 * 32 * 3);
    }
}
